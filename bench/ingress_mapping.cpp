// §2.1 reproduction: the geography of ingress mapping.
//
// Paper: "half of all traffic is to users within 500 km of the serving
// PoP, and 90% is to users within 2500 km and in the same continent. The
// 10% of traffic served by a PoP in a different continent is composed
// predominantly of European PoPs serving users in Asia (4.8% of all
// traffic) and Africa (2.1%)."
#include <cstdio>

#include "stats/cdf.h"
#include "workload/world.h"

using namespace fbedge;

int main(int argc, char** argv) {
  WorldConfig wc;
  wc.seed = 2019;
  wc.groups_per_continent = argc > 1 ? std::atoi(argv[1]) : 200;
  const World world = build_world(wc);

  WeightedCdf distance_km;
  double total_weight = 0;
  double within_2500_same_continent = 0;
  double eu_serves_asia = 0;
  double eu_serves_africa = 0;
  double cross_continent = 0;

  for (const auto& g : world.groups) {
    const double w = g.weight * g.sessions_per_window;  // traffic proxy
    total_weight += w;
    distance_km.add(g.pop_distance_km, w);
    if (!g.remote_served && g.pop_distance_km <= 2500) {
      within_2500_same_continent += w;
    }
    if (g.remote_served) {
      cross_continent += w;
      if (g.continent == Continent::kAsia) eu_serves_asia += w;
      if (g.continent == Continent::kAfrica) eu_serves_africa += w;
    }
  }

  std::printf("==== §2.1: distance from users to their serving PoP ====\n");
  std::printf("paper: 50%% of traffic within 500 km; 90%% within 2500 km and\n");
  std::printf("       same-continent; cross-continent ~10%% dominated by\n");
  std::printf("       EU->Asia (4.8%%) and EU->Africa (2.1%%)\n\n");
  std::printf("measured: within 500 km:            %.3f\n",
              distance_km.fraction_at_or_below(500));
  std::printf("measured: within 2500 km + local:   %.3f\n",
              within_2500_same_continent / total_weight);
  std::printf("measured: cross-continent total:    %.3f\n",
              cross_continent / total_weight);
  std::printf("measured: EU serving Asia:          %.3f\n",
              eu_serves_asia / total_weight);
  std::printf("measured: EU serving Africa:        %.3f\n",
              eu_serves_africa / total_weight);

  std::printf("\ndistance CDF [km]:\n");
  for (const auto& [km, frac] : distance_km.series(12)) {
    std::printf("  %8.0f  %.3f\n", km, frac);
  }
  return 0;
}
