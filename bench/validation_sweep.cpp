// §3.2.3 validation sweep (the paper used NS3; this uses the built-in
// packet-level TCP simulator): 15,840 configurations varying bottleneck
// bandwidth (0.5-5 Mbps), round-trip propagation delay (20-200 ms),
// initial cwnd (1-50 packets), and transfer size (1-500 packets).
//
// For every configuration whose transfer can test for the bottleneck rate
// (Gtestable > Gbottleneck), the estimated delivery rate must never
// overestimate the bottleneck; the paper reports a 99th-percentile
// relative error (Gbottleneck - G) / Gbottleneck of 0.066.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "goodput/ideal_model.h"
#include "goodput/tmodel.h"
#include "stats/quantiles.h"
#include "tcp/tcp.h"

using namespace fbedge;

namespace {

constexpr Bytes kMss = 1440;

struct Config {
  double bottleneck;
  double rtt;
  int iw;
  int size;
};

struct Result {
  bool testable{false};
  double relative_error{0};
};

Result run(const Config& c) {
  Simulator sim;
  TcpConfig tcp;
  tcp.initial_cwnd = c.iw;
  tcp.delayed_acks = false;  // matches the paper's NS3 setup (footnote 7)
  LinkConfig forward{.rate = c.bottleneck, .delay = c.rtt / 2,
                     .queue_capacity = 4 << 20};
  TcpConnection conn(sim, tcp, forward, {.rate = 0, .delay = c.rtt / 2});

  Result out;
  TransferReport report;
  bool completed = false;
  conn.handshake();
  conn.sender().write(static_cast<Bytes>(c.size) * kMss, [&](const TransferReport& r) {
    report = r;
    completed = true;
  });
  sim.run_until(3600.0);
  if (!completed) return out;

  TxnTiming txn{report.adjusted_bytes(), report.adjusted_duration(), report.wnic,
                report.min_rtt};
  if (txn.btotal <= 0 || txn.ttotal <= 0) return out;

  const double testable = ideal::testable_goodput(txn.btotal, txn.wnic, txn.min_rtt);
  if (testable <= c.bottleneck) return out;
  out.testable = true;
  const double estimate = estimate_delivery_rate(txn);
  out.relative_error = (c.bottleneck - estimate) / c.bottleneck;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string_view(argv[1]) == "--quick";

  // 10 x 12 x 12 x 11 = 15,840 configurations (paper's count).
  std::vector<double> bandwidths, rtts;
  std::vector<int> windows, sizes;
  for (int i = 0; i < 10; ++i) bandwidths.push_back((0.5 + 0.5 * i) * 1e6);
  for (int i = 0; i < 12; ++i) rtts.push_back((20.0 + i * 180.0 / 11.0) * 1e-3);
  windows = {1, 2, 4, 6, 8, 10, 15, 20, 25, 30, 40, 50};
  sizes = {1, 2, 5, 10, 20, 40, 75, 100, 150, 250, 500};
  if (quick) {
    bandwidths.resize(3);
    rtts.resize(3);
    windows = {1, 10, 50};
    sizes = {5, 50, 500};
  }

  std::vector<double> errors;
  int total = 0, testable = 0, overestimates = 0;
  for (double bw : bandwidths)
    for (double rtt : rtts)
      for (int w : windows)
        for (int size : sizes) {
          ++total;
          const auto r = run({bw, rtt, w, size});
          if (!r.testable) continue;
          ++testable;
          errors.push_back(r.relative_error);
          if (r.relative_error < -0.01) ++overestimates;
        }

  std::printf("==== §3.2.3 validation sweep ====\n");
  std::printf("configurations: %d  testable: %d\n", total, testable);
  std::printf("paper: estimate never overestimates the bottleneck; p99 of\n");
  std::printf("       (Gbottleneck - G)/Gbottleneck = 0.066\n\n");
  std::printf("overestimates (beyond 1%% slack): %d\n", overestimates);
  if (!errors.empty()) {
    std::sort(errors.begin(), errors.end());
    std::printf("relative error: p50=%.4f p90=%.4f p99=%.4f max=%.4f min=%.4f\n",
                quantile_sorted(errors, 0.50), quantile_sorted(errors, 0.90),
                quantile_sorted(errors, 0.99), errors.back(), errors.front());
  }
  return overestimates == 0 ? 0 : 1;
}
