// google-benchmark microbenchmarks for the hot paths: the goodput solver,
// t-digest ingestion/queries, the fluid TCP model, the packet-level
// simulator, coalescing, and route ranking. These bound the cost of running
// the methodology inline at a load balancer (the paper's deployment runs it
// on production traffic at every PoP).
#include <benchmark/benchmark.h>

#include "goodput/hdratio.h"
#include "goodput/tmodel.h"
#include "routing/policy.h"
#include "sampler/coalescer.h"
#include "stats/tdigest.h"
#include "tcp/fluid_model.h"
#include "tcp/tcp.h"
#include "util/rng.h"

namespace fbedge {
namespace {

void BM_TDigestAdd(benchmark::State& state) {
  Rng rng(1);
  TDigest digest(100);
  for (auto _ : state) {
    digest.add(rng.lognormal(0, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TDigestAdd);

void BM_TDigestQuantile(benchmark::State& state) {
  Rng rng(1);
  TDigest digest(100);
  for (int i = 0; i < 100000; ++i) digest.add(rng.lognormal(0, 1));
  digest.compress();
  double q = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(digest.quantile(q));
    q += 0.013;
    if (q > 0.99) q = 0.01;
  }
}
BENCHMARK(BM_TDigestQuantile);

void BM_TDigestMerge(benchmark::State& state) {
  Rng rng(1);
  TDigest base(100);
  for (int i = 0; i < 100000; ++i) base.add(rng.lognormal(0, 1));
  base.compress();
  for (auto _ : state) {
    TDigest copy = base;
    copy.merge(base);
    benchmark::DoNotOptimize(copy.quantile(0.5));
  }
}
BENCHMARK(BM_TDigestMerge);

void BM_TmodelCheck(benchmark::State& state) {
  const TxnTiming txn{120000, 0.25, 15000, 0.060};
  for (auto _ : state) {
    benchmark::DoNotOptimize(achieved_rate(txn, 2.5e6));
  }
}
BENCHMARK(BM_TmodelCheck);

void BM_EstimateDeliveryRate(benchmark::State& state) {
  const TxnTiming txn{120000, 0.25, 15000, 0.060};
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_delivery_rate(txn));
  }
}
BENCHMARK(BM_EstimateDeliveryRate);

void BM_HdEvaluatorSession(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  for (auto _ : state) {
    HdEvaluator eval;
    for (int i = 0; i < txns; ++i) {
      eval.evaluate({30000 + i * 1000, 0.100, 14400, 0.040});
    }
    benchmark::DoNotOptimize(eval.result());
  }
  state.SetItemsProcessed(state.iterations() * txns);
}
BENCHMARK(BM_HdEvaluatorSession)->Arg(1)->Arg(10)->Arg(100);

void BM_FluidTransfer(benchmark::State& state) {
  PathConditions path;
  path.min_rtt = 0.050;
  path.bottleneck = 10e6;
  path.loss_rate = 0.002;
  path.jitter = 0.001;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    FluidTcpConnection conn({}, ++seed);
    benchmark::DoNotOptimize(conn.transfer(100 * 1440, 0, path));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FluidTransfer);

void BM_PacketSimTransfer(benchmark::State& state) {
  const Bytes size = state.range(0) * 1440;
  for (auto _ : state) {
    Simulator sim;
    TcpConnection conn(sim, {}, {.rate = 10e6, .delay = 0.025, .queue_capacity = 1 << 20},
                       {.rate = 0, .delay = 0.025});
    bool done = false;
    conn.sender().write(size, [&](const TransferReport&) { done = true; });
    sim.run_until(600.0);
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_PacketSimTransfer)->Arg(10)->Arg(100)->Arg(1000);

void BM_Coalescer(benchmark::State& state) {
  std::vector<ResponseWrite> writes;
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    ResponseWrite w;
    w.first_byte_nic = t;
    w.last_byte_nic = t + 0.0004;
    w.second_last_ack = t + 0.050;
    w.last_ack = t + 0.055;
    w.bytes = 8000;
    w.last_packet_bytes = 800;
    w.wnic = 14400;
    t += (i % 3 == 0) ? 0.0004 : 0.5;
    writes.push_back(w);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(coalesce_session(writes, 0.040));
  }
}
BENCHMARK(BM_Coalescer);

void BM_PolicyRank(benchmark::State& state) {
  std::vector<Route> routes;
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    Route r;
    r.prefix = {0x0a000000, 20};
    r.relationship = static_cast<Relationship>(rng.uniform_int(0, 2));
    r.as_path = {static_cast<std::uint32_t>(rng.uniform_int(1000, 4000)), 65001};
    if (rng.bernoulli(0.3)) r.as_path.push_back(65001);
    routes.push_back(r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoutingPolicy::rank(routes));
  }
}
BENCHMARK(BM_PolicyRank);

}  // namespace
}  // namespace fbedge

BENCHMARK_MAIN();
