// Figure 4 walk-through: the paper's worked example of three back-to-back
// HTTP transactions over one session (60 ms RTT, IW10, 1500 B packets),
// showing per-transaction Gtestable and the HD determination.
#include <cstdio>

#include "analysis/format.h"
#include "goodput/hdratio.h"

using namespace fbedge;

namespace {

void show(const char* name, const TxnTiming& txn, const TxnVerdict& v) {
  std::printf("%-6s  bytes=%-6lld Wstart=%-6lld Gtestable=%5.2f Mbps  "
              "can_test=%-3s achieved=%s\n",
              name, static_cast<long long>(txn.btotal),
              static_cast<long long>(v.wstart), to_mbps(v.gtestable),
              v.can_test ? "yes" : "no",
              v.can_test ? (v.achieved ? "yes" : "no") : "-");
}

}  // namespace

int main() {
  constexpr Bytes kPkt = 1500;
  constexpr Duration kRtt = 0.060;

  print_header("Figure 4: sequence example (60 ms RTT, IW10, 1500 B packets)");
  std::printf(
      "paper: txn1 goodput 0.4 Mbps (2 pkts / 1 RTT, no cwnd growth)\n"
      "       txn2 goodput 2.4 Mbps (24 pkts / 2 RTT, cwnd grows to 20)\n"
      "       txn3 goodput 2.8 Mbps (14 pkts / 1 RTT at cwnd 20)\n"
      "       -> txn1 tests 0.4 Mbps; txn2 and txn3 test 2.8 Mbps\n\n");

  HdEvaluator eval;

  const TxnTiming txn1{2 * kPkt, 1 * kRtt, 10 * kPkt, kRtt};
  show("txn1", txn1, eval.evaluate(txn1));

  const TxnTiming txn2{24 * kPkt, 2 * kRtt, 10 * kPkt, kRtt};
  show("txn2", txn2, eval.evaluate(txn2));

  const TxnTiming txn3{14 * kPkt, 1 * kRtt, 20 * kPkt, kRtt};
  show("txn3", txn3, eval.evaluate(txn3));

  const auto& result = eval.result();
  std::printf("\nsession: tested=%d achieved=%d HDratio=%.2f\n", result.tested,
              result.achieved, result.hdratio().value_or(-1));

  print_header("§3.2.3 bottleneck correction example");
  std::printf(
      "paper: with a 3 Mbps bottleneck, txn3 takes ~115 ms; naive goodput "
      "1.46 Mbps\n       (wrongly below HD), but the model recognizes "
      "transmission time.\n\n");
  const TxnTiming slow3{14 * kPkt, 0.115, 20 * kPkt, kRtt};
  std::printf("naive goodput: %.2f Mbps\n", to_mbps(to_bits(slow3.btotal) / slow3.ttotal));
  std::printf("Tmodel(2.5 Mbps) = %.1f ms >= Ttotal = %.1f ms -> achieved=%s\n",
              to_ms(t_model(slow3, 2.5e6)), to_ms(slow3.ttotal),
              achieved_rate(slow3, 2.5e6) ? "yes" : "no");
  std::printf("estimated delivery rate: %.2f Mbps (bottleneck: 3 Mbps)\n",
              to_mbps(estimate_delivery_rate(slow3)));
  return 0;
}
