// Figure 7 reproduction: relationship between MinRTT (bucketed) and
// HDratio — sessions with high MinRTT can often still achieve HD goodput.
#include "analysis/figures.h"
#include "analysis/format.h"
#include "bench_common.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const auto rc = bench::performance_run(argc, argv);
  const World world = build_world(rc.world);
  const auto perf = measure_global_performance(world, rc.dataset);

  static const char* kBucketNames[] = {"0-30 ms", "31-50 ms", "51-80 ms", "81+ ms"};

  print_header("Figure 7: HDratio CDF by MinRTT bucket");
  bench::print_paper_note(
      "HDratio degrades as latency increases, but the majority of sessions "
      "achieve HD goodput for some transactions even at MinRTT above 80 ms");
  for (int b = 0; b < 4; ++b) {
    const auto& cdf = perf.hdratio_by_rtt[static_cast<std::size_t>(b)];
    if (cdf.empty()) {
      std::printf("%s: (no data)\n", kBucketNames[b]);
      continue;
    }
    print_cdf(kBucketNames[b], cdf, 10);
  }

  print_header("Bucket summaries");
  for (int b = 0; b < 4; ++b) {
    const auto& cdf = perf.hdratio_by_rtt[static_cast<std::size_t>(b)];
    if (cdf.empty()) continue;
    std::printf("%-9s P(HDratio=0)=%.3f  P(HDratio>0)=%.3f  median=%.2f\n",
                kBucketNames[b], cdf.fraction_at_or_below(0.0),
                1.0 - cdf.fraction_at_or_below(0.0), cdf.quantile(0.5));
  }
  return 0;
}
