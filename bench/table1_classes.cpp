// Table 1 reproduction: fraction of traffic by temporal behavior class
// (uneventful / continuous / diurnal / episodic), per continent, for
// degradation and opportunity at multiple thresholds. For each cell the
// first number weights user groups by total traffic (the paper's blue
// column) and the second is traffic sent during event windows (orange).
#include <cstdio>

#include "analysis/edge_analysis.h"
#include "analysis/format.h"
#include "bench_common.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const auto rc = bench::edge_run(argc, argv);
  const World world = build_world(rc.world);
  RunStats stats;
  const auto result = run_edge_analysis(world, rc.dataset, {}, {}, {}, rc.runtime,
                                        &stats, {}, rc.cache);

  bench::print_paper_note(
      "most degradation is diurnal (destination congestion at peak hours) "
      "and small; most MinRTT opportunity is continuous (~1.2% of traffic); "
      "episodic classes are widespread but carry little event traffic; "
      "uneventful rows dominate (57-93% of traffic depending on threshold)");

  print_table1(result, AnalysisKind::kDegradationRtt,
               {"+5ms", "+10ms", "+20ms", "+50ms"});
  print_table1(result, AnalysisKind::kDegradationHd,
               {"-0.05", "-0.1", "-0.2", "-0.5"});
  print_table1(result, AnalysisKind::kOpportunityRtt, {"-5ms", "-10ms"});
  print_table1(result, AnalysisKind::kOpportunityHd, {"+0.05"});

  std::printf("\ngroups analyzed: %d\n", result.groups_analyzed);
  stats.print("table1_classes");

  bench::JsonOutput json(rc.json_path);
  // Overall uneventful share at the first threshold of each analysis — the
  // headline "how much traffic is boring" numbers.
  const auto overall = [&](AnalysisKind kind, TemporalClass cls) {
    const auto it = result.table1.find({kind, 0, cls, -1});
    return it == result.table1.end() ? 0.0 : it->second.group_traffic;
  };
  json.add("degr_rtt_uneventful",
           overall(AnalysisKind::kDegradationRtt, TemporalClass::kUneventful));
  json.add("degr_rtt_diurnal",
           overall(AnalysisKind::kDegradationRtt, TemporalClass::kDiurnal));
  json.add("degr_hd_uneventful",
           overall(AnalysisKind::kDegradationHd, TemporalClass::kUneventful));
  json.add("opp_rtt_continuous",
           overall(AnalysisKind::kOpportunityRtt, TemporalClass::kContinuous));
  json.add("opp_rtt_uneventful",
           overall(AnalysisKind::kOpportunityRtt, TemporalClass::kUneventful));
  json.add("groups_analyzed", result.groups_analyzed);
  bench::add_runtime_json(json, stats);
  return json.write() ? 0 : 1;
}
