// Figure 8 reproduction: degradation of MinRTT_P50 and HDratio_P50
// relative to each user group's baseline, traffic-weighted, with the CI
// lower/upper-bound distributions (the paper's shaded bands).
#include "analysis/edge_analysis.h"
#include "analysis/format.h"
#include "bench_common.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const auto rc = bench::edge_run(argc, argv);
  const World world = build_world(rc.world);
  RunStats stats;
  const auto result = run_edge_analysis(world, rc.dataset, {}, {}, {}, rc.runtime,
                                        &stats, {}, rc.cache);

  print_header("Figure 8(a): MinRTT_P50 degradation CDF [ms, current - baseline]");
  print_cdf("point estimate", result.degr_rtt, 20, 1e3);
  print_cdf("CI lower band", result.degr_rtt_lower, 10, 1e3);
  print_cdf("CI upper band", result.degr_rtt_upper, 10, 1e3);

  print_header("Figure 8(b): HDratio_P50 degradation CDF [baseline - current]");
  print_cdf("point estimate", result.degr_hd, 20);
  print_cdf("CI lower band", result.degr_hd_lower, 10);
  print_cdf("CI upper band", result.degr_hd_upper, 10);

  print_header("Checkpoints");
  bench::print_paper_note(
      "valid aggregations cover 94.8% (MinRTT) / 89.5% (HDratio) of "
      "traffic; only 10% of traffic sees >= 4 ms or >= 0.065 degradation; "
      "1.1% sees >= 20 ms; 2.3% sees >= 0.4");
  std::printf("measured: valid traffic MinRTT=%.3f HDratio=%.3f\n",
              result.degr_valid_traffic_rtt, result.degr_valid_traffic_hd);
  std::printf("measured: P(degradation >= 4 ms)=%.3f  >= 20 ms: %.3f\n",
              1.0 - result.degr_rtt.fraction_at_or_below(0.004),
              1.0 - result.degr_rtt.fraction_at_or_below(0.020));
  std::printf("measured: P(HD degradation >= 0.065)=%.3f  >= 0.4: %.3f\n",
              1.0 - result.degr_hd.fraction_at_or_below(0.065),
              1.0 - result.degr_hd.fraction_at_or_below(0.4));
  std::printf("groups analyzed: %d\n", result.groups_analyzed);
  stats.print("fig8_degradation");

  bench::JsonOutput json(rc.json_path);
  json.add("degr_valid_traffic_rtt", result.degr_valid_traffic_rtt);
  json.add("degr_valid_traffic_hd", result.degr_valid_traffic_hd);
  json.add("degr_rtt_ge_4ms", 1.0 - result.degr_rtt.fraction_at_or_below(0.004));
  json.add("degr_rtt_ge_20ms", 1.0 - result.degr_rtt.fraction_at_or_below(0.020));
  json.add("degr_hd_ge_0065", 1.0 - result.degr_hd.fraction_at_or_below(0.065));
  json.add("groups_analyzed", result.groups_analyzed);
  bench::add_runtime_json(json, stats);
  return json.write() ? 0 : 1;
}
