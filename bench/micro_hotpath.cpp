// Micro-benchmarks for the per-session / per-window hot paths: t_model
// rate solving, t-digest add/merge, exact quantiles, window aggregation,
// and response coalescing. End-to-end bench walls (fig6, table1) mix all
// of these with generation cost; this binary tracks the constant factors
// individually so perf wins/regressions are attributable.
//
// Usage: micro_hotpath [--json PATH]   (other common flags are ignored)
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "agg/aggregation.h"
#include "agg/series_io.h"
#include "analysis/edge_reduce.h"
#include "analysis/ingest_cache.h"
#include "bench_common.h"
#include "goodput/hdratio.h"
#include "goodput/tmodel.h"
#include "sampler/coalescer.h"
#include "sampler/session_batch.h"
#include "stats/quantiles.h"
#include "stats/tdigest.h"
#include "util/rng.h"
#include "util/simd.h"

using namespace fbedge;

namespace {

// Sink defeating dead-code elimination without fencing the loop body.
volatile double g_sink = 0;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs `body(i)` for i in [0, iters) and returns nanoseconds per call.
template <typename F>
double time_per_op(int iters, F&& body) {
  const double t0 = now_seconds();
  for (int i = 0; i < iters; ++i) body(i);
  return (now_seconds() - t0) / static_cast<double>(iters) * 1e9;
}

/// Mixed realistic TxnTimings: sizes/windows/RTTs spanning the regimes the
/// pipeline sees (single-round small responses to multi-round transfers).
std::vector<TxnTiming> make_txns(std::size_t n) {
  Rng rng(4242);
  std::vector<TxnTiming> txns;
  txns.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TxnTiming t;
    t.btotal = static_cast<Bytes>(std::exp(rng.uniform(std::log(2e3), std::log(2e7))));
    t.wnic = static_cast<Bytes>(1460 * rng.uniform_int(2, 40));
    t.min_rtt = rng.uniform(0.004, 0.25);
    // Place Ttotal around the model time at a plausible delivered rate so
    // the solver's search actually has to find an interior segment.
    const BitsPerSecond rate = std::exp(rng.uniform(std::log(2e5), std::log(2e8)));
    t.ttotal = t_model(t, rate) * rng.uniform(0.7, 1.5);
    txns.push_back(t);
  }
  return txns;
}

std::vector<ResponseWrite> make_writes(std::size_t n) {
  Rng rng(99);
  std::vector<ResponseWrite> writes;
  writes.reserve(n);
  SimTime t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ResponseWrite w;
    w.bytes = static_cast<Bytes>(rng.uniform_int(500, 60000));
    w.wnic = 14600;
    w.first_byte_nic = t;
    w.last_byte_nic = t + 0.002;
    w.second_last_ack = t + 0.030;
    w.last_ack = t + 0.034;
    w.last_packet_bytes = 1000;
    // Mix of back-to-back runs and spaced-out responses.
    t += rng.bernoulli(0.4) ? 0.00001 : 0.06;
    writes.push_back(w);
  }
  return writes;
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunConfig rc;
  bench::parse_common_args(argc, argv, rc, 0);

  // ---- t_model rate solving ----------------------------------------------
  const auto txns = make_txns(4096);
  const int solve_iters = 200000;
  const double closed_ns = time_per_op(solve_iters, [&](int i) {
    g_sink = estimate_delivery_rate(txns[static_cast<std::size_t>(i) % txns.size()]);
  });
  const double bisect_ns = time_per_op(20000, [&](int i) {
    g_sink =
        estimate_delivery_rate_bisect(txns[static_cast<std::size_t>(i) % txns.size()]);
  });

  // ---- t-digest ----------------------------------------------------------
  Rng rng(7);
  std::vector<double> values(200000);
  for (auto& v : values) v = rng.lognormal(-3.0, 0.8);
  TDigest digest(100);
  const double add_ns = time_per_op(static_cast<int>(values.size()), [&](int i) {
    digest.add(values[static_cast<std::size_t>(i)]);
  });
  g_sink = digest.quantile(0.5);

  std::vector<TDigest> parts;
  for (int p = 0; p < 64; ++p) {
    TDigest d(100);
    for (int i = 0; i < 10000; ++i) d.add(rng.lognormal(-3.0, 0.8));
    d.compress();
    parts.push_back(std::move(d));
  }
  TDigest merged(100);
  const double merge_ns = time_per_op(static_cast<int>(parts.size()), [&](int i) {
    merged.merge(parts[static_cast<std::size_t>(i)]);
  });
  g_sink = merged.quantile(0.9);

  // ---- exact quantile (selection-based) ----------------------------------
  std::vector<double> sample(100000);
  for (auto& v : sample) v = rng.uniform();
  const double quantile_ns = time_per_op(200, [&](int i) {
    g_sink = quantile(sample, i % 2 ? 0.5 : 0.95);
  });

  // ---- window aggregation add path ---------------------------------------
  GroupSeries series;
  const double agg_ns = time_per_op(400000, [&](int i) {
    const int w = (i / 500) % 960;  // in-order windows, 500 sessions each
    series.windows[w].route(i % 3).add_session(
        0.02 + 1e-7 * i, (i % 5) ? std::optional<double>(0.9) : std::nullopt, 20000);
  });

  // ---- batched HD evaluation ---------------------------------------------
  // Sessions-worth of pre-coalesced transactions in the flat (txns, offset,
  // count) layout the columnar pipeline produces; cost is reported per
  // session so it is directly comparable to the scalar evaluator loop.
  const std::size_t hd_rows = 4096;
  std::vector<std::uint32_t> hd_offsets(hd_rows);
  std::vector<std::uint32_t> hd_counts(hd_rows);
  for (std::size_t i = 0; i < hd_rows; ++i) {
    hd_counts[i] = static_cast<std::uint32_t>(1 + i % 5);
    hd_offsets[i] =
        static_cast<std::uint32_t>((i * 7) % (txns.size() - hd_counts[i]));
  }
  std::vector<SessionHd> hd_out(hd_rows);
  const double hd_batch_call_ns = time_per_op(100, [&](int) {
    evaluate_hd_batch(txns.data(), hd_offsets.data(), hd_counts.data(), hd_rows,
                      hd_out.data());
  });
  const double hd_batch_per_session_ns =
      hd_batch_call_ns / static_cast<double>(hd_rows);
  g_sink = static_cast<double>(hd_out[0].tested);

  // ---- SessionBatch row append -------------------------------------------
  // The generator-side cost of the columnar layout: one begin_row + four
  // add_write + finish_row per session, reusing the arena across windows.
  SessionBatch batch;
  const auto batch_writes = make_writes(4);
  const double batch_append_ns = time_per_op(400000, [&](int i) {
    if (batch.size() >= 4096) batch.clear();  // window boundary
    batch.begin_row(SessionId{static_cast<std::uint64_t>(i)},
                    /*at=*/0.001 * i, /*route=*/i % 3,
                    /*ip=*/0x0a000000u + static_cast<std::uint32_t>(i),
                    /*hosting_provider=*/false, HttpVersion::kHttp2,
                    EndpointClass::kDynamic, /*num_txns=*/4);
    for (const auto& w : batch_writes) batch.add_write(w);
    batch.finish_row(/*dur=*/1.0, /*busy=*/0.3, /*rtt=*/0.03);
  });
  g_sink = g_sink + static_cast<double>(batch.arena_bytes());

  // ---- GroupSeries serialization (ingest-artifact cache) ------------------
  // save/load of the window-aggregation series built above (~960 windows x 3
  // routes), i.e. one cache-artifact group blob round-trip.
  ByteWriter series_writer;
  const double series_save_ns = time_per_op(50, [&](int) {
    series_writer.clear();
    save_group_series(series, series_writer);
    g_sink = static_cast<double>(series_writer.size());
  });
  GroupSeries loaded_series;
  RouteAggPool load_pool;
  const double series_load_ns = time_per_op(50, [&](int) {
    ByteReader r(series_writer.data().data(), series_writer.size());
    load_group_series(r, loaded_series, &load_pool);
    g_sink = static_cast<double>(loaded_series.windows.size());
  });

  // ---- artifact reduce path (distrib shard coordinator) -------------------
  // The two per-group constants of the coordinator's warm reduce: validating
  // and indexing a shard artifact (checksum + blob table, amortized over its
  // groups), and analyzing one group straight from its serialized blob then
  // folding the partial (EdgeReducer's whole per-group cost).
  char artifact_path[128];
  std::snprintf(artifact_path, sizeof(artifact_path),
                "/tmp/fbedge-micro-hotpath-%ld.fbecache",
                static_cast<long>(::getpid()));
  const std::size_t artifact_groups = 64;
  {
    const std::vector<std::string> blobs(artifact_groups, series_writer.data());
    write_ingest_artifact(artifact_path, 1234, blobs);
  }
  IngestArtifactReader micro_reader;
  std::string micro_blob;
  const double artifact_load_ns =
      time_per_op(20, [&](int) {
        micro_reader.open(artifact_path, 1234, artifact_groups);
        double bytes = 0;
        for (std::size_t g = 0; g < artifact_groups; ++g) {
          micro_reader.next(micro_blob);
          bytes += static_cast<double>(micro_blob.size());
        }
        g_sink = bytes;
      }) /
      static_cast<double>(artifact_groups);
  std::remove(artifact_path);

  WorldConfig reduce_wc;
  reduce_wc.seed = 2019;
  reduce_wc.groups_per_continent = 2;
  reduce_wc.days = 1;
  const World reduce_world = build_world(reduce_wc);
  DatasetConfig reduce_dc;
  reduce_dc.seed = 2019;
  reduce_dc.days = 1;
  reduce_dc.session_scale = 0.1;
  std::vector<std::string> group_blobs(reduce_world.groups.size());
  ingest_range_to_blobs(
      reduce_world, reduce_dc, {}, ShardRange{0, reduce_world.groups.size()},
      RuntimeOptions::sequential(),
      [&](std::size_t g, std::string&& blob) { group_blobs[g] = std::move(blob); });
  const double reduce_fold_ns =
      time_per_op(20, [&](int) {
        EdgeReducer reducer(reduce_world, reduce_dc, {}, {}, {});
        reducer.reduce_range(
            ShardRange{0, group_blobs.size()},
            [&](std::size_t g) {
              return GroupBlobRef{group_blobs[g].data(), group_blobs[g].size()};
            },
            RuntimeOptions::sequential());
        g_sink = static_cast<double>(reducer.finish().groups_analyzed);
      }) /
      static_cast<double>(group_blobs.size());

  // ---- response coalescing -----------------------------------------------
  const auto writes = make_writes(64);
  CoalescedSession scratch;
  const double coalesce_ns = time_per_op(100000, [&](int) {
    coalesce_session_into(writes, 0.040, scratch);
    g_sink = static_cast<double>(scratch.txns.size());
  });

  // ---- SIMD kernel variants ----------------------------------------------
  // The unsuffixed entries above follow runtime dispatch (FBEDGE_SIMD); the
  // _simd entries force the AVX2 path so the committed JSON always carries
  // an explicit vectorized number, falling back to scalar only when the
  // build or CPU lacks AVX2 (the values then simply repeat the scalar cost).
  const bool have_avx2 = simd::compiled_avx2() && simd::cpu_supports_avx2();
  const simd::Path dispatched = simd::active_path();
  simd::force_path(have_avx2 ? simd::Path::kAvx2 : simd::Path::kScalar);

  const double hd_batch_simd_call_ns = time_per_op(100, [&](int) {
    evaluate_hd_batch(txns.data(), hd_offsets.data(), hd_counts.data(), hd_rows,
                      hd_out.data());
  });
  const double hd_batch_simd_per_session_ns =
      hd_batch_simd_call_ns / static_cast<double>(hd_rows);
  g_sink = static_cast<double>(hd_out[0].tested);

  // Batched coalesce over 64 sessions of 64 writes each, reported per
  // session so it lines up with coalesce_session above.
  SessionBatch coalesce_batch_input;
  const std::size_t coalesce_rows = 64;
  for (std::size_t row = 0; row < coalesce_rows; ++row) {
    coalesce_batch_input.begin_row(
        SessionId{row}, /*at=*/0.001 * static_cast<double>(row), /*route=*/0,
        /*ip=*/0x0a000000u, /*hosting_provider=*/false, HttpVersion::kHttp2,
        EndpointClass::kDynamic, /*num_txns=*/4);
    for (const auto& w : writes) coalesce_batch_input.add_write(w);
    coalesce_batch_input.finish_row(/*dur=*/1.0, /*busy=*/0.3, /*rtt=*/0.040);
  }
  CoalescedBatch coalesced_out;
  const double coalesce_simd_ns =
      time_per_op(2000, [&](int) {
        coalesce_batch(coalesce_batch_input, nullptr, coalesced_out);
        g_sink = static_cast<double>(coalesced_out.txns.size());
      }) /
      static_cast<double>(coalesce_rows);

  TDigest simd_digest(100);
  const double tdigest_add_simd_ns =
      time_per_op(static_cast<int>(values.size()), [&](int i) {
        simd_digest.add(values[static_cast<std::size_t>(i)]);
      });
  g_sink = simd_digest.quantile(0.5);

  simd::force_path(dispatched);

  std::printf("micro_hotpath (ns/op)\n");
  std::printf("  tmodel_solve_closed   %10.1f\n", closed_ns);
  std::printf("  tmodel_solve_bisect   %10.1f  (legacy reference, %.1fx)\n",
              bisect_ns, bisect_ns / closed_ns);
  std::printf("  tdigest_add           %10.1f  (amortized compress)\n", add_ns);
  std::printf("  tdigest_merge         %10.1f  (per 10k-point digest)\n", merge_ns);
  std::printf("  quantile_exact        %10.1f  (100k doubles)\n", quantile_ns);
  std::printf("  agg_add_session       %10.1f\n", agg_ns);
  std::printf("  series_save           %10.1f  (960-window series)\n", series_save_ns);
  std::printf("  series_load           %10.1f  (960-window series)\n", series_load_ns);
  std::printf("  artifact_group_load   %10.1f  (64-group shard artifact)\n",
              artifact_load_ns);
  std::printf("  reduce_fold_per_group %10.1f  (blob -> analyze -> fold)\n",
              reduce_fold_ns);
  std::printf("  coalesce_session      %10.1f  (64 writes)\n", coalesce_ns);
  std::printf("  hd_batch_per_session  %10.1f  (4096-row batch)\n",
              hd_batch_per_session_ns);
  std::printf("  batch_append          %10.1f  (row + 4 writes)\n", batch_append_ns);
  std::printf("  hd_batch_simd         %10.1f  (forced %s)\n",
              hd_batch_simd_per_session_ns, have_avx2 ? "avx2" : "scalar");
  std::printf("  coalesce_simd         %10.1f  (batched, per 64-write session)\n",
              coalesce_simd_ns);
  std::printf("  tdigest_add_simd      %10.1f  (amortized compress)\n",
              tdigest_add_simd_ns);

  bench::JsonOutput json(rc.json_path);
  json.add("tmodel_solve_closed_ns", closed_ns);
  json.add("tmodel_solve_bisect_ns", bisect_ns);
  json.add("tdigest_add_ns", add_ns);
  json.add("tdigest_merge_ns", merge_ns);
  json.add("quantile_exact_ns", quantile_ns);
  json.add("agg_add_session_ns", agg_ns);
  json.add("series_save_ns", series_save_ns);
  json.add("series_load_ns", series_load_ns);
  json.add("artifact_group_load_ns", artifact_load_ns);
  json.add("reduce_fold_per_group_ns", reduce_fold_ns);
  json.add("coalesce_session_ns", coalesce_ns);
  json.add("hd_batch_per_session_ns", hd_batch_per_session_ns);
  json.add("batch_append_ns", batch_append_ns);
  json.add("hd_batch_simd_per_session_ns", hd_batch_simd_per_session_ns);
  json.add("coalesce_simd_ns", coalesce_simd_ns);
  json.add("tdigest_add_simd_ns", tdigest_add_simd_ns);
  json.add("runtime_simd_avx2", simd::avx2_active() ? 1 : 0);
  return json.write() ? 0 : 1;
}
