// Ablation: goodput-estimation robustness to the sender's congestion
// control. The Tmodel best-case transaction assumes idealized doubling
// (§3.2.3), while real senders run Reno or CUBIC and may exit slow start
// early (CUBIC hybrid slow start). The never-overestimate invariant must
// hold regardless — early exits make the real transfer *slower*, which can
// only push the estimate down.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "goodput/ideal_model.h"
#include "goodput/tmodel.h"
#include "stats/quantiles.h"
#include "tcp/tcp.h"

using namespace fbedge;

namespace {

constexpr Bytes kMss = 1440;

struct Variant {
  const char* name;
  CongestionControl cc;
  bool hystart;
};

struct Stats {
  int testable{0};
  int overestimates{0};
  std::vector<double> errors;
};

Stats sweep(const Variant& variant, double loss_rate) {
  Stats stats;
  for (double bw_mbps : {0.5, 1.0, 2.0, 3.5, 5.0})
    for (double rtt_ms : {20.0, 60.0, 120.0, 200.0})
      for (int iw : {2, 10, 30})
        for (int size : {20, 80, 200, 500}) {
          Simulator sim;
          TcpConfig tcp;
          tcp.initial_cwnd = iw;
          tcp.delayed_acks = false;
          tcp.congestion_control = variant.cc;
          tcp.hystart = variant.hystart;
          LinkConfig forward{.rate = bw_mbps * 1e6, .delay = rtt_ms * 1e-3 / 2,
                             .queue_capacity = 4 << 20, .loss_rate = loss_rate};
          TcpConnection conn(sim, tcp, forward, {.rate = 0, .delay = rtt_ms * 1e-3 / 2});
          conn.handshake();
          TransferReport report;
          bool done = false;
          conn.sender().write(static_cast<Bytes>(size) * kMss,
                              [&](const TransferReport& r) {
                                report = r;
                                done = true;
                              });
          sim.run_until(3600.0);
          if (!done) continue;

          TxnTiming txn{report.adjusted_bytes(), report.adjusted_duration(),
                        report.wnic, report.min_rtt};
          if (txn.btotal <= 0 || txn.ttotal <= 0) continue;
          const double bottleneck = bw_mbps * 1e6;
          if (ideal::testable_goodput(txn.btotal, txn.wnic, txn.min_rtt) <= bottleneck) {
            continue;
          }
          ++stats.testable;
          const double estimate = estimate_delivery_rate(txn);
          const double err = (bottleneck - estimate) / bottleneck;
          stats.errors.push_back(err);
          if (err < -0.01) ++stats.overestimates;
        }
  return stats;
}

}  // namespace

int main() {
  std::printf("==== Ablation: estimator vs sender congestion control ====\n");
  std::printf("paper: the model transaction idealizes slow start; real CUBIC\n");
  std::printf("       (incl. hystart exits) can only be slower, so estimates\n");
  std::printf("       must never overestimate under any CC.\n\n");
  std::printf("%-16s %6s %9s %6s %8s %8s %8s\n", "congestion ctl", "loss",
              "testable", "over", "err p50", "err p90", "err p99");

  const Variant variants[] = {
      {"reno", CongestionControl::kReno, false},
      {"cubic", CongestionControl::kCubic, false},
      {"cubic+hystart", CongestionControl::kCubic, true},
      {"bbr", CongestionControl::kBbr, false},
  };
  int total_over = 0;
  for (const double loss : {0.0, 0.01}) {
    for (const auto& v : variants) {
      auto stats = sweep(v, loss);
      std::sort(stats.errors.begin(), stats.errors.end());
      total_over += stats.overestimates;
      std::printf("%-16s %6.2f %9d %6d %8.4f %8.4f %8.4f\n", v.name, loss,
                  stats.testable, stats.overestimates,
                  stats.errors.empty() ? 0 : quantile_sorted(stats.errors, 0.5),
                  stats.errors.empty() ? 0 : quantile_sorted(stats.errors, 0.9),
                  stats.errors.empty() ? 0 : quantile_sorted(stats.errors, 0.99));
    }
  }
  std::printf("\nUnder loss the estimate reflects the *reduced* delivered rate\n");
  std::printf("(larger positive error), still never exceeding the bottleneck.\n");
  std::printf("\ninvariant %s: zero overestimates across all variants\n",
              total_over == 0 ? "HOLDS" : "VIOLATED");
  return total_over == 0 ? 0 : 1;
}
