// §6.2.2 reproduction: are routing opportunities practical?
//
// The paper argues that a controller naively chasing the best-performing
// route risks congestion and oscillation, while an active system must
// shift gradually and guarantee convergence — and that Edge Fabric's
// overload-protection is the safe production behaviour. This bench runs
// one peak period through all four shift policies and reports oscillation
// flips, overloaded intervals, and traffic-weighted latency.
#include <cstdio>
#include <vector>

#include "routing/controller.h"

using namespace fbedge;

namespace {

/// Diurnal demand: baseline 70 Mbps, peak 165 Mbps for 4 "hours".
BitsPerSecond demand_at(int interval) {
  const int hour = (interval / 4) % 24;
  const bool peak = hour >= 19 && hour < 23;
  return (peak ? 165.0 : 70.0) * kMbps;
}

struct Summary {
  int flips;
  int overloaded;
  double mean_rtt_ms;
  double peak_rtt_ms;
};

Summary run(ShiftPolicy policy) {
  // Preferred private peer (100 Mbps, 40 ms) + transit (200 Mbps, 44 ms).
  EgressController controller({{100 * kMbps, 0.040}, {200 * kMbps, 0.044}},
                              {.policy = policy});
  double sum_rtt = 0, peak_rtt = 0;
  const int intervals = 24 * 4 * 2;  // two days of 15-minute intervals
  for (int i = 0; i < intervals; ++i) {
    const auto step = controller.step(demand_at(i));
    sum_rtt += step.weighted_rtt;
    peak_rtt = std::max(peak_rtt, step.weighted_rtt);
  }
  return {controller.majority_flips(), controller.overloaded_intervals(),
          1e3 * sum_rtt / intervals, 1e3 * peak_rtt};
}

}  // namespace

int main() {
  std::printf("==== §6.2.2: controller dynamics over a diurnal peak ====\n");
  std::printf("paper: shifting everything onto the best alternate \"may cause\n");
  std::printf("congestion and risk oscillations\"; an active system must shift\n");
  std::printf("gradually and converge; Edge Fabric detours only on overload.\n\n");
  std::printf("%-22s %8s %12s %12s %12s\n", "policy", "flips", "overloaded",
              "mean rtt", "peak rtt");

  struct Row {
    const char* name;
    ShiftPolicy policy;
  };
  const Row rows[] = {
      {"static BGP", ShiftPolicy::kStatic},
      {"greedy performance", ShiftPolicy::kGreedyPerformance},
      {"damped performance", ShiftPolicy::kDampedPerformance},
      {"overload protection", ShiftPolicy::kOverloadProtection},
  };
  for (const auto& row : rows) {
    const Summary s = run(row.policy);
    std::printf("%-22s %8d %12d %9.1f ms %9.1f ms\n", row.name, s.flips,
                s.overloaded, s.mean_rtt_ms, s.peak_rtt_ms);
  }

  std::printf(
      "\nGreedy chases measurements into whichever route it just congested\n"
      "(many flips); damped shifting converges with a handful of moves;\n"
      "overload protection never congests and restores the preferred peer\n"
      "off-peak — the production trade-off the paper describes.\n");
  return 0;
}
