// Figure 9 reproduction: per-aggregation performance difference between
// the BGP-preferred route and the best alternate, traffic-weighted, with
// CI bands — plus the §6.2 headline numbers.
#include "analysis/edge_analysis.h"
#include "analysis/format.h"
#include "bench_common.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const auto rc = bench::edge_run(argc, argv);
  const World world = build_world(rc.world);
  RunStats stats;
  const auto result = run_edge_analysis(world, rc.dataset, {}, {}, {}, rc.runtime,
                                        &stats, {}, rc.cache);

  print_header(
      "Figure 9(a): MinRTT_P50 difference CDF [ms, preferred - alternate; "
      "positive = alternate faster]");
  print_cdf("point estimate", result.opp_rtt, 20, 1e3);
  print_cdf("CI lower band", result.opp_rtt_lower, 10, 1e3);
  print_cdf("CI upper band", result.opp_rtt_upper, 10, 1e3);

  print_header(
      "Figure 9(b): HDratio_P50 difference CDF [alternate - preferred; "
      "positive = alternate better]");
  print_cdf("point estimate", result.opp_hd, 20);
  print_cdf("CI lower band", result.opp_hd_lower, 10);
  print_cdf("CI upper band", result.opp_hd_upper, 10);

  print_header("§6.2 checkpoints");
  bench::print_paper_note(
      "preferred within 3 ms of optimal for 83.9% of traffic; within 0.025 "
      "HDratio for 93.4%; MinRTT improvable >= 5 ms for only 2.0% of "
      "traffic; HDratio improvable >= 0.05 for 0.2%; distributions "
      "concentrated at 0 and skewed toward the preferred route");
  std::printf("measured: within 3 ms of optimal:   %.3f\n", result.rtt_within_3ms);
  std::printf("measured: within 0.025 of optimal:  %.3f\n", result.hd_within_0025);
  std::printf("measured: improvable >= 5 ms:       %.3f\n", result.rtt_improvable_5ms);
  std::printf("measured: improvable >= 0.05 HD:    %.3f\n", result.hd_improvable_005);
  std::printf("measured: valid traffic rtt=%.3f hd=%.3f\n", result.opp_valid_traffic_rtt,
              result.opp_valid_traffic_hd);
  std::printf("measured: median diff rtt=%.2f ms (negative = preferred better)\n",
              result.opp_rtt.empty() ? 0.0 : result.opp_rtt.quantile(0.5) * 1e3);
  stats.print("fig9_opportunity");

  bench::JsonOutput json(rc.json_path);
  json.add("rtt_within_3ms", result.rtt_within_3ms);
  json.add("hd_within_0025", result.hd_within_0025);
  json.add("rtt_improvable_5ms", result.rtt_improvable_5ms);
  json.add("hd_improvable_005", result.hd_improvable_005);
  json.add("opp_valid_traffic_rtt", result.opp_valid_traffic_rtt);
  json.add("opp_valid_traffic_hd", result.opp_valid_traffic_hd);
  json.add("opp_rtt_median_ms",
           result.opp_rtt.empty() ? 0.0 : result.opp_rtt.quantile(0.5) * 1e3);
  json.add("groups_analyzed", result.groups_analyzed);
  bench::add_runtime_json(json, stats);
  return json.write() ? 0 : 1;
}
