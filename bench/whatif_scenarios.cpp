// Scenario-pack what-if suite: a fixed set of operational questions (PoP
// drain at peak, transit depref, flash crowd, submarine-cable cut) run
// against the same world as the §5/§6 benches, reporting each scenario's
// opportunity/degradation deltas vs baseline plus a verdict hash. The
// scenario configs are embedded as config-format text so this bench also
// exercises the parser end-to-end.
//
// --sweep switches to the incremental sweep engine (analysis/sweep.h) over
// an extended 8-scenario pack set: one baseline ingest, each scenario
// re-ingesting only its affected groups. The bench then re-runs every
// scenario as an independent full analysis, fails if any verdict hash
// differs from its sweep twin, and reports both walls plus the reuse
// counters (sweep_groups_reused / sweep_groups_recomputed) in the JSON.
// Timings go to stderr/JSON only; stdout stays byte-identical for any
// --threads in both modes.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/sweep.h"
#include "analysis/whatif.h"
#include "bench_common.h"
#include "fbedge/fbedge.h"
#include "scenario/scenario.h"

using namespace fbedge;

namespace {

// Windows are 15 minutes; day d's 19:00-23:00 peak is windows
// d*96+76 .. d*96+92. The world default is 10 days (960 windows).
constexpr const char* kScenarios[] = {
    R"(# Drain the primary European PoP through day 1's peak hours.
[scenario]
name = drain-eu-peak
seed = 42

[drain]
pop = EU-pop1
start_window = 172
end_window = 188
reroute_rtt_min_ms = 20
reroute_rtt_max_ms = 45
reroute_loss = 0.002
)",
    R"(# Deprefer the largest tier-1 transit everywhere: every group whose
# preferred route rides AS3356 falls back to its next-best route.
[scenario]
name = depref-transit-3356
seed = 42

[depref]
asn = 3356
continent = all
)",
    R"(# Flash-crowd a South American country 8x for a day, with the shared
# destination bottleneck congesting while the crowd lasts.
[scenario]
name = flash-crowd-sa
seed = 42

[flash_crowd]
country = 500
multiplier = 8
jitter = 0.15
start_window = 480
end_window = 576
congestion_delay_ms = 12
congestion_loss = 0.01
)",
    R"(# Submarine-cable cut on the EU-AF corridor for the whole study:
# Africa's Europe-served overflow traffic detours ~80 ms the long way.
[scenario]
name = cable-cut-eu-af
seed = 42

[cable_cut]
continents = EU-AF
extra_rtt_ms = 80
extra_loss = 0.003
start_window = 0
end_window = 960
)",
};

// Four additional narrow-footprint questions for the --sweep suite. Each
// perturbs a small slice of the world (one PoP, one continent's transit,
// one country, one corridor), which is where the incremental engine's
// reuse pays: the sweep re-ingests only these footprints.
constexpr const char* kSweepExtraScenarios[] = {
    R"(# Drain the secondary Asian PoP through day 2's peak hours.
[scenario]
name = drain-as-peak
seed = 42

[drain]
pop = AS-pop2
start_window = 268
end_window = 284
reroute_rtt_min_ms = 25
reroute_rtt_max_ms = 50
reroute_loss = 0.002
)",
    R"(# Deprefer AS1299 transit for European groups only.
[scenario]
name = depref-transit-1299-eu
seed = 42

[depref]
asn = 1299
continent = EU
)",
    R"(# Flash-crowd an African country 5x through day 3.
[scenario]
name = flash-crowd-af
seed = 42

[flash_crowd]
country = 1
multiplier = 5
jitter = 0.1
start_window = 288
end_window = 384
congestion_delay_ms = 8
congestion_loss = 0.006
)",
    R"(# Cable fault on the NA-SA corridor for two days.
[scenario]
name = cable-cut-na-sa
seed = 42

[cable_cut]
continents = NA-SA
extra_rtt_ms = 60
extra_loss = 0.002
start_window = 96
end_window = 288
)",
};

ScenarioPack parse_embedded(const char* text) {
  ScenarioParseResult parsed = parse_scenario(text);
  if (!parsed.ok) {
    std::fprintf(stderr, "whatif_scenarios: bad embedded scenario: %s\n",
                 parsed.error.c_str());
    std::exit(1);
  }
  return std::move(parsed.pack);
}

void print_scenario_block(const WhatifReport& baseline,
                          const WhatifReport& report, const ScenarioPack& pack,
                          const FaultCounters& faults) {
  std::printf("=== scenario %s ===\n", pack.name.c_str());
  print_whatif_report(report);
  std::printf("applied: drained=%llu depref=%llu flash=%llu cable_cut=%llu\n",
              static_cast<unsigned long long>(faults.scenario_drained_groups),
              static_cast<unsigned long long>(faults.scenario_depref_groups),
              static_cast<unsigned long long>(faults.scenario_flash_groups),
              static_cast<unsigned long long>(faults.scenario_cable_cut_groups));
  print_whatif_deltas(baseline, report);
}

void add_delta_json(bench::JsonOutput& json, const WhatifReport& baseline,
                    const WhatifReport& report, const std::string& name) {
  for (std::size_t i = 0; i < report.metrics.size(); ++i) {
    json.add(name + "_d_" + report.metrics[i].first,
             report.metrics[i].second - baseline.metrics[i].second);
  }
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --sweep before the shared parser (which rejects unknown flags).
  bool sweep = false;
  std::vector<char*> filtered;
  filtered.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else {
      filtered.push_back(argv[i]);
    }
  }
  bench::RunConfig rc =
      bench::edge_run(static_cast<int>(filtered.size()), filtered.data());
  bench::print_paper_note(
      "what-if scenario packs over the §3.4/§6 analyses (decision-tool use)");

  std::vector<ScenarioPack> packs;
  for (const char* text : kScenarios) packs.push_back(parse_embedded(text));
  if (sweep) {
    for (const char* text : kSweepExtraScenarios) {
      packs.push_back(parse_embedded(text));
    }
  }

  const World world = build_world(rc.world);
  RunStats stats;
  bench::JsonOutput json(rc.json_path);

  if (sweep) {
    const auto sweep_start = std::chrono::steady_clock::now();
    const SweepOutcome outcome = run_scenario_sweep(
        world, rc.dataset, {}, {}, {}, packs, rc.runtime, &stats, {}, rc.cache);
    const double sweep_wall = seconds_since(sweep_start);

    const WhatifReport baseline = whatif_report(outcome.baseline);
    std::printf("=== baseline ===\n");
    print_whatif_report(baseline);
    for (const auto& [name, value] : baseline.metrics) {
      json.add("baseline_" + name, value);
    }

    std::uint64_t total_reused = 0;
    std::uint64_t total_recomputed = 0;
    for (const SweepScenarioResult& scen : outcome.scenarios) {
      const WhatifReport report = whatif_report(scen.result);
      print_scenario_block(baseline, report, scen.pack, scen.result.faults);
      const std::uint64_t reused = scen.result.faults.scenario_groups_reused;
      const std::uint64_t recomputed =
          scen.result.faults.scenario_groups_recomputed;
      std::printf("sweep: reused=%llu recomputed=%llu\n",
                  static_cast<unsigned long long>(reused),
                  static_cast<unsigned long long>(recomputed));
      total_reused += reused;
      total_recomputed += recomputed;
      add_delta_json(json, baseline, report, scen.pack.name);
      json.add(scen.pack.name + "_sweep_groups_reused",
               static_cast<double>(reused));
      json.add(scen.pack.name + "_sweep_groups_recomputed",
               static_cast<double>(recomputed));
    }

    // Re-answer every scenario independently and insist on bitwise-equal
    // verdicts: the sweep's entire value rests on this equivalence.
    RunStats independent_stats;
    const auto independent_start = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < packs.size(); ++k) {
      const auto result =
          run_edge_analysis(world, rc.dataset, {}, {}, {}, rc.runtime,
                            &independent_stats, {}, {}, packs[k]);
      const WhatifReport report = whatif_report(result);
      if (report.verdict_hash != whatif_report(outcome.scenarios[k].result)
                                     .verdict_hash) {
        std::fprintf(stderr,
                     "whatif_scenarios: sweep verdict mismatch for %s "
                     "(%016llx != %016llx)\n",
                     packs[k].name.c_str(),
                     static_cast<unsigned long long>(
                         whatif_report(outcome.scenarios[k].result)
                             .verdict_hash),
                     static_cast<unsigned long long>(report.verdict_hash));
        return 1;
      }
    }
    const double independent_wall = seconds_since(independent_start);

    json.add("sweep_groups_reused", static_cast<double>(total_reused));
    json.add("sweep_groups_recomputed", static_cast<double>(total_recomputed));
    json.add("sweep_wall_seconds", sweep_wall);
    json.add("independent_wall_seconds", independent_wall);
    std::fprintf(stderr,
                 "[sweep] %zu scenarios: wall=%.3fs vs independent=%.3fs "
                 "(%.2fx) reused=%llu recomputed=%llu\n",
                 packs.size(), sweep_wall, independent_wall,
                 independent_wall > 0 ? sweep_wall / independent_wall : 0.0,
                 static_cast<unsigned long long>(total_reused),
                 static_cast<unsigned long long>(total_recomputed));
    bench::add_runtime_json(json, stats);
    stats.print("whatif_scenarios");
    return json.write() ? 0 : 1;
  }

  const auto baseline_result = run_edge_analysis(
      world, rc.dataset, {}, {}, {}, rc.runtime, &stats, {}, rc.cache);
  const WhatifReport baseline = whatif_report(baseline_result);
  std::printf("=== baseline ===\n");
  print_whatif_report(baseline);
  for (const auto& [name, value] : baseline.metrics) {
    json.add("baseline_" + name, value);
  }

  for (const auto& pack : packs) {
    const auto result = run_edge_analysis(world, rc.dataset, {}, {}, {},
                                          rc.runtime, &stats, {}, rc.cache,
                                          pack);
    const WhatifReport report = whatif_report(result);
    print_scenario_block(baseline, report, pack, result.faults);
    add_delta_json(json, baseline, report, pack.name);
  }

  bench::add_runtime_json(json, stats);
  stats.print("whatif_scenarios");
  return json.write() ? 0 : 1;
}
