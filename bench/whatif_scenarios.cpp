// Scenario-pack what-if suite: a fixed set of operational questions (PoP
// drain at peak, transit depref, flash crowd, submarine-cable cut) run
// against the same world as the §5/§6 benches, reporting each scenario's
// opportunity/degradation deltas vs baseline plus a verdict hash. The
// scenario configs are embedded as config-format text so this bench also
// exercises the parser end-to-end.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/whatif.h"
#include "bench_common.h"
#include "fbedge/fbedge.h"
#include "scenario/scenario.h"

using namespace fbedge;

namespace {

// Windows are 15 minutes; day d's 19:00-23:00 peak is windows
// d*96+76 .. d*96+92. The world default is 10 days (960 windows).
constexpr const char* kScenarios[] = {
    R"(# Drain the primary European PoP through day 1's peak hours.
[scenario]
name = drain-eu-peak
seed = 42

[drain]
pop = EU-pop1
start_window = 172
end_window = 188
reroute_rtt_min_ms = 20
reroute_rtt_max_ms = 45
reroute_loss = 0.002
)",
    R"(# Deprefer the largest tier-1 transit everywhere: every group whose
# preferred route rides AS3356 falls back to its next-best route.
[scenario]
name = depref-transit-3356
seed = 42

[depref]
asn = 3356
continent = all
)",
    R"(# Flash-crowd a South American country 8x for a day, with the shared
# destination bottleneck congesting while the crowd lasts.
[scenario]
name = flash-crowd-sa
seed = 42

[flash_crowd]
country = 500
multiplier = 8
jitter = 0.15
start_window = 480
end_window = 576
congestion_delay_ms = 12
congestion_loss = 0.01
)",
    R"(# Submarine-cable cut on the EU-AF corridor for the whole study:
# Africa's Europe-served overflow traffic detours ~80 ms the long way.
[scenario]
name = cable-cut-eu-af
seed = 42

[cable_cut]
continents = EU-AF
extra_rtt_ms = 80
extra_loss = 0.003
start_window = 0
end_window = 960
)",
};

}  // namespace

int main(int argc, char** argv) {
  bench::RunConfig rc = bench::edge_run(argc, argv);
  bench::print_paper_note(
      "what-if scenario packs over the §3.4/§6 analyses (decision-tool use)");

  std::vector<ScenarioPack> packs;
  for (const char* text : kScenarios) {
    ScenarioParseResult parsed = parse_scenario(text);
    if (!parsed.ok) {
      std::fprintf(stderr, "whatif_scenarios: bad embedded scenario: %s\n",
                   parsed.error.c_str());
      return 1;
    }
    packs.push_back(std::move(parsed.pack));
  }

  const World world = build_world(rc.world);
  RunStats stats;
  bench::JsonOutput json(rc.json_path);

  const auto baseline_result = run_edge_analysis(
      world, rc.dataset, {}, {}, {}, rc.runtime, &stats, {}, rc.cache);
  const WhatifReport baseline = whatif_report(baseline_result);
  std::printf("=== baseline ===\n");
  print_whatif_report(baseline);
  for (const auto& [name, value] : baseline.metrics) {
    json.add("baseline_" + name, value);
  }

  for (const auto& pack : packs) {
    const auto result = run_edge_analysis(world, rc.dataset, {}, {}, {},
                                          rc.runtime, &stats, {}, rc.cache,
                                          pack);
    const WhatifReport report = whatif_report(result);
    std::printf("=== scenario %s ===\n", pack.name.c_str());
    print_whatif_report(report);
    std::printf("applied: drained=%llu depref=%llu flash=%llu cable_cut=%llu\n",
                static_cast<unsigned long long>(
                    result.faults.scenario_drained_groups),
                static_cast<unsigned long long>(
                    result.faults.scenario_depref_groups),
                static_cast<unsigned long long>(
                    result.faults.scenario_flash_groups),
                static_cast<unsigned long long>(
                    result.faults.scenario_cable_cut_groups));
    print_whatif_deltas(baseline, report);
    for (std::size_t i = 0; i < report.metrics.size(); ++i) {
      json.add(pack.name + "_d_" + report.metrics[i].first,
               report.metrics[i].second - baseline.metrics[i].second);
    }
  }

  bench::add_runtime_json(json, stats);
  stats.print("whatif_scenarios");
  return json.write() ? 0 : 1;
}
