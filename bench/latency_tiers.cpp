// §3.1/§4 extension: what do the MinRTT distributions mean for user
// experience? Buckets sessions into the latency tiers implied by the
// paper's rules of thumb (gaming 80 ms cutoff, ITU-T G.114 300 ms RTT),
// globally and per continent.
#include <array>
#include <cstdio>

#include "analysis/latency_quality.h"
#include "analysis/session_metrics.h"
#include "bench_common.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const auto rc = bench::performance_run(argc, argv);
  const World world = build_world(rc.world);
  DatasetGenerator generator(world, rc.dataset);

  LatencyTierTally global;
  std::array<LatencyTierTally, kNumContinents> per_continent{};
  generator.generate([&](const SessionSample& s) {
    if (!SessionSampler::keep_for_analysis(s.client)) return;
    if (s.route_index != 0) return;
    global.add(s.min_rtt);
    per_continent[static_cast<std::size_t>(s.client.continent)].add(s.min_rtt);
  });

  std::printf("==== Latency experience tiers (§3.1 rules of thumb) ====\n");
  bench::print_paper_note(
      "most users reach Facebook over routes with low MinRTT, enabling "
      "real-time applications such as video calls; 80 ms is a gaming "
      "cutoff, 300 ms RTT the ITU-T G.114 telephony bound");
  std::printf("\n%-6s", "");
  for (int t = 0; t < kNumLatencyTiers; ++t) {
    std::printf(" %26s", std::string(to_string(static_cast<LatencyTier>(t))).c_str());
  }
  std::printf("\n%-6s", "all");
  for (int t = 0; t < kNumLatencyTiers; ++t) {
    std::printf(" %25.1f%%", 100.0 * global.fraction(static_cast<LatencyTier>(t)));
  }
  std::printf("\n");
  for (const Continent c : kAllContinents) {
    const auto& tally = per_continent[static_cast<std::size_t>(c)];
    if (tally.total() == 0) continue;
    std::printf("%-6s", std::string(to_code(c)).c_str());
    for (int t = 0; t < kNumLatencyTiers; ++t) {
      std::printf(" %25.1f%%", 100.0 * tally.fraction(static_cast<LatencyTier>(t)));
    }
    std::printf("\n");
  }
  std::printf("\nsessions: %llu\n", static_cast<unsigned long long>(global.total()));
  return 0;
}
