// Shared configuration for the figure/table reproduction binaries.
//
// Each bench binary regenerates one figure or table of the paper from a
// freshly synthesized dataset. Sizes are chosen so a single binary runs in
// tens of seconds; pass a positive integer argument to scale the number of
// user groups per continent.
//
// Common flags (after the optional group-count positional):
//   --threads N      worker threads for the sharded runtime (default:
//                    hardware concurrency; results are byte-identical for
//                    any N, including 1)
//   --json PATH      also emit headline metrics as machine-readable JSON
//                    (metric name -> value) for cross-PR tracking
//   --cache-dir DIR  persist/reuse the ingest artifact (per-group series)
//                    in DIR; warm runs skip session generation and are
//                    byte-identical to cold runs. The FBEDGE_CACHE_DIR
//                    environment variable sets a default; the flag wins.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "analysis/ingest_cache.h"
#include "runtime/pipeline.h"
#include "workload/generator.h"
#include "workload/world.h"

namespace fbedge::bench {

/// Headline-metric sink for `--json`. Keys keep insertion order; write()
/// is a no-op when no path was given.
class JsonOutput {
 public:
  explicit JsonOutput(std::string path = {}) : path_(std::move(path)) {}

  void add(const std::string& name, double value) {
    entries_.emplace_back(name, value);
  }

  /// Writes `{"name": value, ...}`; returns false on I/O failure.
  bool write() const {
    if (path_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot open %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.10g%s\n", entries_[i].first.c_str(),
                   entries_[i].second, i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
  }

  bool enabled() const { return !path_.empty(); }

 private:
  std::vector<std::pair<std::string, double>> entries_;
  std::string path_;
};

struct RunConfig {
  WorldConfig world;
  DatasetConfig dataset;
  /// threads=0 -> hardware concurrency (resolve_threads).
  RuntimeOptions runtime;
  std::string json_path;
  /// Ingest-artifact cache directory (empty = caching off); see
  /// analysis/ingest_cache.h.
  IngestCacheOptions cache;
};

/// Parses the shared command line: an optional positional integer (user
/// groups per continent) plus --threads/--json. Exits on unknown flags.
inline void parse_common_args(int argc, char** argv, RunConfig& rc,
                              int default_groups) {
  rc.world.groups_per_continent = default_groups;
  if (const char* env = std::getenv("FBEDGE_CACHE_DIR")) rc.cache.dir = env;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--threads") {
      if (const char* v = next()) rc.runtime.threads = std::atoi(v);
    } else if (arg == "--json") {
      if (const char* v = next()) rc.json_path = v;
    } else if (arg == "--cache-dir") {
      if (const char* v = next()) rc.cache.dir = v;
    } else if (!arg.empty() && arg[0] != '-') {
      rc.world.groups_per_continent = std::atoi(arg.c_str());
    } else {
      std::fprintf(stderr,
                   "usage: %s [groups] [--threads N] [--json PATH] "
                   "[--cache-dir DIR]\n",
                   argv[0]);
      std::exit(2);
    }
  }
}

/// Traffic-characterization runs (Figs. 1-3): modest world, full sessions.
inline RunConfig traffic_run(int argc, char** argv) {
  RunConfig rc;
  rc.world.seed = 2019;
  rc.world.days = 2;
  rc.dataset.seed = 2019;
  rc.dataset.days = 2;
  rc.dataset.session_scale = 0.5;
  parse_common_args(argc, argv, rc, 4);
  return rc;
}

/// Global-performance runs (Figs. 6-7): wider world for continent CDFs.
inline RunConfig performance_run(int argc, char** argv) {
  RunConfig rc;
  rc.world.seed = 2019;
  rc.world.days = 2;
  rc.dataset.seed = 2019;
  rc.dataset.days = 2;
  rc.dataset.session_scale = 0.4;
  parse_common_args(argc, argv, rc, 12);
  return rc;
}

/// Edge analysis runs (Figs. 8-10, Tables 1-2): full 10-day span so the
/// temporal classifier has the paper's time base; fewer groups to
/// compensate.
inline RunConfig edge_run(int argc, char** argv) {
  RunConfig rc;
  rc.world.seed = 2019;
  rc.world.days = 10;
  rc.dataset.seed = 2019;
  rc.dataset.days = 10;
  rc.dataset.session_scale = 1.0;
  parse_common_args(argc, argv, rc, 10);
  return rc;
}

inline void print_paper_note(const char* note) {
  std::printf("paper: %s\n", note);
}

/// Standard runtime block every bench appends to its `--json` output.
/// Cache hits/misses stay 0 unless a cache dir was configured, so
/// committed BENCH files (always cold, uncached runs) are unaffected.
inline void add_runtime_json(JsonOutput& json, const RunStats& stats) {
  json.add("runtime_threads", stats.threads);
  // 1 = AVX2 kernels, 0 = scalar reference, -1 = unknown. CI's scalar-rot
  // guard asserts this is 1 under FBEDGE_SIMD=avx2 on an AVX2 runner.
  json.add("runtime_simd_avx2", stats.simd_avx2);
  json.add("runtime_wall_seconds", stats.wall_seconds);
  json.add("runtime_cpu_seconds", stats.cpu_seconds);
  json.add("runtime_alloc_count", static_cast<double>(stats.alloc_count));
  json.add("runtime_rss_peak", static_cast<double>(stats.rss_sampled_peak_bytes));
  json.add("runtime_steals", static_cast<double>(stats.steals));
  json.add("runtime_cache_hits", static_cast<double>(stats.cache_hits));
  json.add("runtime_cache_misses", static_cast<double>(stats.cache_misses));
}

}  // namespace fbedge::bench
