// Shared configuration for the figure/table reproduction binaries.
//
// Each bench binary regenerates one figure or table of the paper from a
// freshly synthesized dataset. Sizes are chosen so a single binary runs in
// tens of seconds on one core; pass a positive integer argument to scale
// the number of user groups per continent.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "workload/generator.h"
#include "workload/world.h"

namespace fbedge::bench {

struct RunConfig {
  WorldConfig world;
  DatasetConfig dataset;
};

/// Traffic-characterization runs (Figs. 1-3): modest world, full sessions.
inline RunConfig traffic_run(int argc, char** argv) {
  RunConfig rc;
  rc.world.seed = 2019;
  rc.world.groups_per_continent = argc > 1 ? std::atoi(argv[1]) : 4;
  rc.world.days = 2;
  rc.dataset.seed = 2019;
  rc.dataset.days = 2;
  rc.dataset.session_scale = 0.5;
  return rc;
}

/// Global-performance runs (Figs. 6-7): wider world for continent CDFs.
inline RunConfig performance_run(int argc, char** argv) {
  RunConfig rc;
  rc.world.seed = 2019;
  rc.world.groups_per_continent = argc > 1 ? std::atoi(argv[1]) : 12;
  rc.world.days = 2;
  rc.dataset.seed = 2019;
  rc.dataset.days = 2;
  rc.dataset.session_scale = 0.4;
  return rc;
}

/// Edge analysis runs (Figs. 8-10, Tables 1-2): full 10-day span so the
/// temporal classifier has the paper's time base; fewer groups to
/// compensate.
inline RunConfig edge_run(int argc, char** argv) {
  RunConfig rc;
  rc.world.seed = 2019;
  rc.world.days = 10;
  rc.world.groups_per_continent = argc > 1 ? std::atoi(argv[1]) : 10;
  rc.dataset.seed = 2019;
  rc.dataset.days = 10;
  rc.dataset.session_scale = 1.0;
  return rc;
}

inline void print_paper_note(const char* note) {
  std::printf("paper: %s\n", note);
}

}  // namespace fbedge::bench
