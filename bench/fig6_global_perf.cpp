// Figure 6 reproduction: distributions of MinRTT and HDratio over all
// sessions and per continent, plus the §4 ablations (naive goodput, D1).
// Runs on the sharded runtime; stdout is byte-identical for any --threads.
#include "analysis/figures.h"
#include "analysis/format.h"
#include "bench_common.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const auto rc = bench::performance_run(argc, argv);
  const World world = build_world(rc.world);
  RunStats stats;
  const auto perf =
      measure_global_performance(world, rc.dataset, {}, rc.runtime, &stats);

  print_header("Figure 6(a): MinRTT CDF, all sessions [ms]");
  print_cdf("MinRTT", perf.minrtt_all, 20, 1e3);
  bench::print_paper_note("50% of sessions < 39 ms; 80% < 78 ms");
  std::printf("measured: p50=%.1f ms  p80=%.1f ms\n",
              perf.minrtt_all.quantile(0.5) * 1e3, perf.minrtt_all.quantile(0.8) * 1e3);

  print_header("Figure 6(b): MinRTT per continent [ms]");
  bench::print_paper_note("medians: AF 58, AS 51, SA 40, others <= ~25");
  for (const Continent c : kAllContinents) {
    const auto& cdf = perf.minrtt_continent[static_cast<int>(c)];
    if (cdf.empty()) continue;
    print_quantile_summary(std::string(to_code(c)) + " MinRTT [ms]", cdf, 1e3);
  }

  print_header("Figure 6(a): HDratio CDF, all sessions");
  print_cdf("HDratio", perf.hdratio_all);
  bench::print_paper_note(">82% of sessions have HDratio > 0; 60% have HDratio = 1");
  std::printf("measured: P(HDratio>0)=%.3f  P(HDratio=1)=%.3f\n",
              1.0 - perf.hdratio_all.fraction_at_or_below(0.0),
              1.0 - perf.hdratio_all.fraction_at_or_below(0.999));

  print_header("Figure 6(c): HDratio per continent, P(HDratio = 0)");
  bench::print_paper_note("HDratio=0 shares: AF 36%, AS 24%, SA 27%");
  for (const Continent c : kAllContinents) {
    const auto& cdf = perf.hdratio_continent[static_cast<int>(c)];
    if (cdf.empty()) continue;
    std::printf("%-4s P(HDratio=0)=%.3f  P(HDratio=1)=%.3f\n",
                std::string(to_code(c)).c_str(), cdf.fraction_at_or_below(0.0),
                1.0 - cdf.fraction_at_or_below(0.999));
  }

  print_header("Ablation D1 (§4): model-corrected vs naive goodput");
  bench::print_paper_note("naive approach underestimates: median HDratio 0.69 vs 1.0");
  std::printf("measured: corrected median=%.2f  naive median=%.2f\n",
              perf.hdratio_all.quantile(0.5), perf.hdratio_naive_all.quantile(0.5));
  std::printf("measured: corrected P(=1)=%.3f  naive P(=1)=%.3f\n",
              1.0 - perf.hdratio_all.fraction_at_or_below(0.999),
              1.0 - perf.hdratio_naive_all.fraction_at_or_below(0.999));

  std::printf("\nsessions: %llu (HD-testable: %llu, hosting filtered: %llu)\n",
              static_cast<unsigned long long>(perf.sessions_total),
              static_cast<unsigned long long>(perf.sessions_hd_testable),
              static_cast<unsigned long long>(perf.filtered_hosting));
  stats.print("fig6_global_perf");

  bench::JsonOutput json(rc.json_path);
  json.add("minrtt_p50_ms", perf.minrtt_all.quantile(0.5) * 1e3);
  json.add("minrtt_p80_ms", perf.minrtt_all.quantile(0.8) * 1e3);
  json.add("hdratio_gt0", 1.0 - perf.hdratio_all.fraction_at_or_below(0.0));
  json.add("hdratio_eq1", 1.0 - perf.hdratio_all.fraction_at_or_below(0.999));
  json.add("hdratio_naive_median", perf.hdratio_naive_all.quantile(0.5));
  json.add("sessions_total", static_cast<double>(perf.sessions_total));
  json.add("sessions_hd_testable", static_cast<double>(perf.sessions_hd_testable));
  bench::add_runtime_json(json, stats);
  return json.write() ? 0 : 1;
}
