// Figure 10 reproduction: MinRTT_P50 difference (preferred - alternate) by
// relationship comparison — peering vs transit, transit vs transit, and
// private vs public — traffic-weighted over valid aggregations.
#include "analysis/edge_analysis.h"
#include "analysis/format.h"
#include "bench_common.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const auto rc = bench::edge_run(argc, argv);
  const World world = build_world(rc.world);
  RunStats stats;
  const auto result = run_edge_analysis(world, rc.dataset, {}, {}, {}, rc.runtime,
                                        &stats, {}, rc.cache);

  bench::print_paper_note(
      "distributions concentrate near 0 and skew left (preferred/peer "
      "better); transit rarely beats peering; 10% of traffic has peer "
      "routes >= 10 ms better than alternate transits");

  print_header("Figure 10: Peering vs Transit [ms, preferred - alternate]");
  print_cdf("Peering vs Transit", result.fig10_peer_vs_transit, 20, 1e3);

  print_header("Figure 10: Transit vs Transit [ms]");
  print_cdf("Transit vs Transit", result.fig10_transit_vs_transit, 20, 1e3);

  print_header("Figure 10: Private vs Public [ms]");
  print_cdf("Private vs Public", result.fig10_private_vs_public, 20, 1e3);

  print_header("Checkpoints");
  if (!result.fig10_peer_vs_transit.empty()) {
    std::printf(
        "peer vs transit: median=%.2f ms, P(alternate transit >= 10 ms "
        "worse)=%.3f\n",
        result.fig10_peer_vs_transit.quantile(0.5) * 1e3,
        result.fig10_peer_vs_transit.fraction_at_or_below(-0.010));
  }
  if (!result.fig10_transit_vs_transit.empty()) {
    std::printf("transit vs transit: median=%.2f ms\n",
                result.fig10_transit_vs_transit.quantile(0.5) * 1e3);
  }
  if (!result.fig10_private_vs_public.empty()) {
    std::printf("private vs public: median=%.2f ms\n",
                result.fig10_private_vs_public.quantile(0.5) * 1e3);
  }
  stats.print("fig10_peer_transit");

  bench::JsonOutput json(rc.json_path);
  json.add("peer_vs_transit_median_ms",
           result.fig10_peer_vs_transit.empty()
               ? 0.0
               : result.fig10_peer_vs_transit.quantile(0.5) * 1e3);
  json.add("transit_vs_transit_median_ms",
           result.fig10_transit_vs_transit.empty()
               ? 0.0
               : result.fig10_transit_vs_transit.quantile(0.5) * 1e3);
  json.add("groups_analyzed", result.groups_analyzed);
  bench::add_runtime_json(json, stats);
  return json.write() ? 0 : 1;
}
