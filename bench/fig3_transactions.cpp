// Figure 3 reproduction: CDF of transactions per session by HTTP version,
// plus the traffic share carried by sessions with >= 50 transactions.
#include "analysis/figures.h"
#include "analysis/format.h"
#include "bench_common.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const auto rc = bench::traffic_run(argc, argv);
  const World world = build_world(rc.world);
  const auto traffic = characterize_traffic(world, rc.dataset);

  print_header("Figure 3: transactions per session CDF");
  print_cdf("All", traffic.txns_all);
  print_cdf("HTTP/1.1", traffic.txns_h1);
  print_cdf("HTTP/2", traffic.txns_h2);

  print_header("Figure 3 checkpoints");
  bench::print_paper_note(
      "over 87% of HTTP/1.1 and 75% of HTTP/2 sessions have < 5 "
      "transactions; sessions with >= 50 transactions carry more than half "
      "of all traffic");
  print_fraction_at("measured: HTTP/1.1", traffic.txns_h1, {4.99});
  print_fraction_at("measured: HTTP/2", traffic.txns_h2, {4.99});
  std::printf("measured: traffic on sessions with >= 50 txns: %.3f\n",
              static_cast<double>(traffic.traffic_sessions_50plus) /
                  static_cast<double>(traffic.traffic_total));
  return 0;
}
