// Table 2 reproduction: opportunity to improve MinRTT_P50 / HDratio_P50
// broken down by the (preferred, alternate) relationship pair, with the
// fraction of opportunity where the alternate lost the policy decision on
// AS-path length and where it was prepended more than the preferred route.
#include <cstdio>

#include "analysis/edge_analysis.h"
#include "analysis/format.h"
#include "bench_common.h"

using namespace fbedge;

namespace {

void print_rows(const std::map<std::pair<Relationship, Relationship>, Table2Row>& rows) {
  double total_abs = 0;
  for (const auto& [pair, row] : rows) total_abs += row.absolute;
  std::printf("%-22s %9s %9s %8s %10s\n", "Relationships", "Absolute", "Relative",
              "Longer", "Prepended");
  for (const auto& [pair, row] : rows) {
    const bool as_path_applicable = pair.first == pair.second ||
                                    (pair.first != Relationship::kTransit &&
                                     pair.second != Relationship::kTransit);
    std::printf("%-9s -> %-9s %9.4f %9.3f", to_string(pair.first),
                to_string(pair.second), row.absolute,
                total_abs > 0 ? row.absolute / total_abs : 0.0);
    if (as_path_applicable) {
      std::printf(" %8.3f %10.3f\n", row.longer, row.prepended);
    } else {
      std::printf(" %8s %10s\n", "N/A", "N/A");
    }
  }
  if (rows.empty()) std::printf("(no opportunity windows at this threshold)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto rc = bench::edge_run(argc, argv);
  const World world = build_world(rc.world);
  RunStats stats;
  const auto result = run_edge_analysis(world, rc.dataset, {}, {}, {}, rc.runtime,
                                        &stats, {}, rc.cache);

  bench::print_paper_note(
      "a significant fraction of opportunity is on same-relationship pairs "
      "(often alternates that lost on AS-path length); an additional share "
      "is peer traffic that would do better on transit");

  print_header("Table 2: MinRTT_P50 opportunity (>= 5 ms) by relationship pair");
  print_rows(result.table2_rtt);

  print_header("Table 2: HDratio_P50 opportunity (>= 0.05) by relationship pair");
  print_rows(result.table2_hd);

  std::printf("\ngroups analyzed: %d\n", result.groups_analyzed);
  stats.print("table2_relationships");

  bench::JsonOutput json(rc.json_path);
  double rtt_total = 0;
  for (const auto& [pair, row] : result.table2_rtt) rtt_total += row.absolute;
  double hd_total = 0;
  for (const auto& [pair, row] : result.table2_hd) hd_total += row.absolute;
  json.add("table2_rtt_total_opportunity", rtt_total);
  json.add("table2_hd_total_opportunity", hd_total);
  json.add("groups_analyzed", result.groups_analyzed);
  bench::add_runtime_json(json, stats);
  return json.write() ? 0 : 1;
}
