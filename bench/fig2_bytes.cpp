// Figure 2 reproduction: distribution of bytes transferred per session,
// per HTTP response, and per media response.
#include "analysis/figures.h"
#include "analysis/format.h"
#include "bench_common.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const auto rc = bench::traffic_run(argc, argv);
  const World world = build_world(rc.world);
  const auto traffic = characterize_traffic(world, rc.dataset);

  print_header("Figure 2: bytes per session / response / media response [bytes]");
  print_cdf("Sessions", traffic.session_bytes);
  print_cdf("All responses", traffic.response_bytes);
  print_cdf("Media responses", traffic.media_response_bytes);

  print_header("Figure 2 checkpoints");
  bench::print_paper_note(
      "58% of sessions < 10 KB; 6% of sessions > 1 MB; 50% of responses "
      "< 6 KB; media median ~19 KB; 50% of objects < 3 KB");
  print_fraction_at("measured: sessions", traffic.session_bytes, {10e3, 1e6});
  print_fraction_at("measured: responses", traffic.response_bytes, {3e3, 6e3});
  print_quantile_summary("measured: media [KB]", traffic.media_response_bytes, 1e-3);
  return 0;
}
