// Fidelity cross-validation: does the measurement pipeline reach the same
// conclusions when traffic comes from the packet-level TCP stack instead
// of the fluid model?
//
// Runs the same session plans through both substrates over identical path
// conditions and compares the resulting MinRTT medians and HDratio
// verdicts. Agreement here is what licenses using the fast fluid model
// for the 10-day dataset.
#include <cstdio>

#include "analysis/session_metrics.h"
#include "stats/cdf.h"
#include "workload/generator.h"
#include "workload/packet_generator.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const int sessions_per_group = argc > 1 ? std::atoi(argv[1]) : 150;

  WorldConfig wc;
  wc.seed = 2019;
  wc.groups_per_continent = 2;
  wc.dest_diurnal_fraction = 0;
  wc.route_diurnal_fraction = 0;
  wc.episodic_fraction = 0;
  wc.continuous_opportunity_fraction = 0;
  const World world = build_world(wc);

  DatasetConfig dc;
  dc.seed = 2019;
  dc.hosting_fraction = 0;
  dc.bufferbloat_fraction = 0;
  DatasetGenerator fluid_generator(world, dc);
  TrafficModel traffic(2019);

  WeightedCdf fluid_rtt, packet_rtt, fluid_hd, packet_hd;
  int fluid_tested = 0, packet_tested = 0;

  std::uint64_t session_seq = 0;
  for (const auto& group : world.groups) {
    Rng rng(hash_mix(2019 ^ group.key.prefix.addr));
    for (int s = 0; s < sessions_per_group; ++s) {
      const SessionSpec spec = traffic.make_session(SessionId{session_seq++}, rng);
      const SimTime start = rng.uniform(0.0, 900.0);

      Rng fluid_rng = rng.fork();
      Rng packet_rng = fluid_rng;  // identical downstream draws

      const SessionSample fluid_sample =
          fluid_generator.run_session(group, spec, 0, start, fluid_rng);
      const SessionSample packet_sample =
          run_packet_session(group, spec, 0, start, packet_rng);

      const SessionMetrics fm = compute_session_metrics(fluid_sample);
      const SessionMetrics pm = compute_session_metrics(packet_sample);
      fluid_rtt.add(fm.min_rtt);
      packet_rtt.add(pm.min_rtt);
      if (fm.hdratio) {
        fluid_hd.add(*fm.hdratio);
        ++fluid_tested;
      }
      if (pm.hdratio) {
        packet_hd.add(*pm.hdratio);
        ++packet_tested;
      }
    }
  }

  std::printf("==== Fluid vs packet-level substrate, same session plans ====\n");
  std::printf("sessions per substrate: %d\n\n",
              sessions_per_group * static_cast<int>(world.groups.size()));
  std::printf("%-22s %12s %12s\n", "", "fluid", "packet");
  std::printf("%-22s %9.1f ms %9.1f ms\n", "MinRTT p50",
              fluid_rtt.quantile(0.5) * 1e3, packet_rtt.quantile(0.5) * 1e3);
  std::printf("%-22s %9.1f ms %9.1f ms\n", "MinRTT p90",
              fluid_rtt.quantile(0.9) * 1e3, packet_rtt.quantile(0.9) * 1e3);
  std::printf("%-22s %12d %12d\n", "HD-testable sessions", fluid_tested,
              packet_tested);
  std::printf("%-22s %12.3f %12.3f\n", "P(HDratio = 0)",
              fluid_hd.fraction_at_or_below(0.0), packet_hd.fraction_at_or_below(0.0));
  std::printf("%-22s %12.3f %12.3f\n", "P(HDratio = 1)",
              1.0 - fluid_hd.fraction_at_or_below(0.999),
              1.0 - packet_hd.fraction_at_or_below(0.999));
  std::printf("\nClose agreement licenses the fluid model for the large-scale\n");
  std::printf("dataset; residual gaps reflect ACK-clocking details the fluid\n");
  std::printf("model idealizes.\n");
  return 0;
}
