// Ablation D4 (§3.3, footnote 10): percentile vs mean aggregation.
//
// The paper aggregates MinRTT/HDratio to medians because (a) tail MinRTT
// reaches seconds (bufferbloat / last-mile timeouts) and (b) HDratio is
// bimodal at {0, 1}. This bench injects a bufferbloated-session tail into
// otherwise-identical aggregations and measures how often each aggregation
// style produces a *false* routing-opportunity or degradation signal, and
// how often the mean's inflated variance simply invalidates the window.
#include <cstdio>

#include "agg/comparison.h"
#include "util/rng.h"

using namespace fbedge;

namespace {

struct Tally {
  int valid{0};
  int false_events{0};
  int invalid{0};
};

void run_trials(double tail_fraction, int trials, Tally& median_tally,
                Tally& mean_tally) {
  Rng rng(99);
  for (int t = 0; t < trials; ++t) {
    // Two routes with IDENTICAL underlying path quality; route A's sample
    // happens to include bufferbloated sessions (multi-second MinRTT tail,
    // §3.3), e.g. a burst of uploads from a few homes.
    RouteWindowAgg a, b;
    for (int i = 0; i < 200; ++i) {
      const bool tail = rng.uniform() < tail_fraction;
      a.add_session(tail ? rng.uniform(1.0, 3.0) : 0.050 + rng.normal(0, 0.003),
                    0.9, 1000);
      b.add_session(0.050 + rng.normal(0, 0.003), 0.9, 1000);
    }
    for (const bool use_mean : {false, true}) {
      const Comparison cmp =
          use_mean ? compare_minrtt_mean(a, b, {}) : compare_minrtt(a, b, {});
      Tally& tally = use_mean ? mean_tally : median_tally;
      if (!cmp.valid()) {
        ++tally.invalid;
        continue;
      }
      ++tally.valid;
      // Any confident >= 5 ms difference is false: the paths are identical.
      if (cmp.exceeds(0.005) || (-cmp.diff.upper) > 0.005) ++tally.false_events;
    }
  }
}

}  // namespace

int main() {
  std::printf("==== Ablation D4: median vs mean aggregation ====\n");
  std::printf("paper (footnote 10): average-based analysis is qualitatively\n");
  std::printf("similar, but §3.3 aggregates to percentiles to avoid tail skew\n");
  std::printf("(MinRTT tails on the order of seconds) and bimodal HDratio.\n\n");
  std::printf("%-12s %-8s %8s %8s %8s\n", "tail share", "agg", "valid", "false",
              "invalid");

  for (const double tail : {0.0, 0.02, 0.05, 0.10}) {
    Tally med, mean;
    run_trials(tail, 300, med, mean);
    std::printf("%-12.2f %-8s %8d %8d %8d\n", tail, "median", med.valid,
                med.false_events, med.invalid);
    std::printf("%-12s %-8s %8d %8d %8d\n", "", "mean", mean.valid,
                mean.false_events, mean.invalid);
  }

  std::printf("\nThe median stays valid and quiet as the bufferbloat tail\n");
  std::printf("grows; the mean either loses validity (CI blows up) or, with\n");
  std::printf("enough samples, confidently reports a difference that is an\n");
  std::printf("artifact of the tail — exactly the failure §3.3 designs out.\n");
  return 0;
}
