// Figure 1 reproduction: CDFs of HTTP session duration (a) and of the
// percentage of session time spent actively sending (b), split by HTTP
// version.
#include "analysis/figures.h"
#include "analysis/format.h"
#include "bench_common.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const auto rc = bench::traffic_run(argc, argv);
  const World world = build_world(rc.world);
  const auto traffic = characterize_traffic(world, rc.dataset);

  print_header("Figure 1(a): session duration CDF [s]");
  print_cdf("All", traffic.duration_all);
  print_cdf("HTTP/1.1", traffic.duration_h1);
  print_cdf("HTTP/2", traffic.duration_h2);

  print_header("Figure 1(a) checkpoints");
  bench::print_paper_note(
      "7.4% of sessions < 1 s; 33% < 60 s; 20% > 3 min; "
      "HTTP/1.1 44% < 60 s vs HTTP/2 26% < 60 s");
  print_fraction_at("measured: all", traffic.duration_all, {1.0, 60.0, 180.0});
  print_fraction_at("measured: HTTP/1.1", traffic.duration_h1, {60.0});
  print_fraction_at("measured: HTTP/2", traffic.duration_h2, {60.0});

  print_header("Figure 1(b): percent of session time sending CDF");
  print_cdf("All", traffic.busy_all);
  print_cdf("HTTP/1.1", traffic.busy_h1);
  print_cdf("HTTP/2", traffic.busy_h2);

  print_header("Figure 1(b) checkpoints");
  bench::print_paper_note(
      "80% of HTTP/2 and 75% of HTTP/1.1 sessions active < 10% of lifetime");
  print_fraction_at("measured: HTTP/2", traffic.busy_h2, {10.0});
  print_fraction_at("measured: HTTP/1.1", traffic.busy_h1, {10.0});

  std::printf("\nsessions analyzed: %llu\n",
              static_cast<unsigned long long>(traffic.sessions));
  return 0;
}
