// Extension bench: the goodput methodology at every rung of a video rate
// ladder (§3.2.1 notes the method is generic in the target rate). For each
// continent, prints the share of sessions that sustain each bitrate — the
// input an ABR / delivery-quality planning team would consume.
#include <array>
#include <cstdio>

#include "analysis/session_metrics.h"
#include "bench_common.h"
#include "goodput/rate_ladder.h"
#include "sampler/coalescer.h"

using namespace fbedge;

int main(int argc, char** argv) {
  const auto rc = bench::performance_run(argc, argv);
  const World world = build_world(rc.world);
  DatasetGenerator generator(world, rc.dataset);

  const auto ladder_spec = default_video_ladder();
  struct ContinentTally {
    std::array<int, 5> sustained{};  // sessions whose rung ratio >= 0.5
    std::array<int, 5> tested{};
    int sessions{0};
  };
  using Tallies = std::array<ContinentTally, kNumContinents>;

  RunStats stats;
  const Tallies tallies = shard_map_reduce(
      world, rc.runtime, Tallies{},
      [&](const UserGroupProfile& group, std::size_t) {
        Tallies part{};
        generator.generate_group(group, [&](const SessionSample& s) {
          if (!SessionSampler::keep_for_analysis(s.client)) return;
          if (s.route_index != 0) return;
          const auto coalesced = coalesce_session(s.writes, s.min_rtt);
          RateLadderEvaluator ladder(ladder_spec);
          for (const auto& txn : coalesced.txns) ladder.evaluate(txn);
          auto& tally = part[static_cast<std::size_t>(s.client.continent)];
          ++tally.sessions;
          const auto& rungs = ladder.results();
          for (std::size_t r = 0; r < rungs.size(); ++r) {
            const auto ratio = rungs[r].ratio();
            if (!ratio) continue;
            ++tally.tested[r];
            if (*ratio >= 0.5) ++tally.sustained[r];
          }
        });
        return part;
      },
      [](Tallies& acc, Tallies&& part, std::size_t) {
        for (std::size_t c = 0; c < acc.size(); ++c) {
          acc[c].sessions += part[c].sessions;
          for (std::size_t r = 0; r < acc[c].sustained.size(); ++r) {
            acc[c].sustained[r] += part[c].sustained[r];
            acc[c].tested[r] += part[c].tested[r];
          }
        }
      },
      &stats);

  std::printf("==== Rate ladder: share of testable sessions sustaining each "
              "bitrate ====\n");
  std::printf("paper: methodology \"can work for any target goodput\" (§3.2.1); "
              "HD=2.5 Mbps\n\n");
  std::printf("%-4s", "");
  for (const auto& rung : ladder_spec) std::printf(" %12s", rung.name.c_str());
  std::printf("\n");
  for (const Continent c : kAllContinents) {
    const auto& tally = tallies[static_cast<std::size_t>(c)];
    if (tally.sessions == 0) continue;
    std::printf("%-4s", std::string(to_code(c)).c_str());
    for (std::size_t r = 0; r < ladder_spec.size(); ++r) {
      if (tally.tested[r] == 0) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %11.1f%%", 100.0 * tally.sustained[r] / tally.tested[r]);
      }
    }
    std::printf("\n");
  }
  std::printf("\nHigher rungs are testable on fewer sessions (larger responses\n");
  std::printf("needed) and sustained by fewer still; the HD column matches the\n");
  std::printf("Figure 6(c) shares.\n");
  stats.print("rate_ladder_sweep");

  bench::JsonOutput json(rc.json_path);
  for (const Continent c : kAllContinents) {
    const auto& tally = tallies[static_cast<std::size_t>(c)];
    if (tally.sessions == 0) continue;
    // HD rung (2.5 Mbps) sustained share per continent.
    for (std::size_t r = 0; r < ladder_spec.size(); ++r) {
      if (ladder_spec[r].name != "hd-2.5" || tally.tested[r] == 0) continue;
      json.add(std::string("hd_sustained_") + std::string(to_code(c)),
               static_cast<double>(tally.sustained[r]) / tally.tested[r]);
    }
  }
  bench::add_runtime_json(json, stats);
  return json.write() ? 0 : 1;
}
