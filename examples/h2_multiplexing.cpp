// HTTP/2 multiplexing and why §3.2.5 coalescing exists.
//
// Two equal-priority responses share one HTTP/2 connection. Measured
// individually, each response's wall-clock transfer time includes the
// other's bytes — naive per-transaction goodput says the path is slow
// when it is not. Coalescing the multiplexed pair restores the truth.
#include <cstdio>

#include "fbedge/fbedge.h"

using namespace fbedge;

int main() {
  constexpr Duration kRtt = 0.050;
  constexpr BitsPerSecond kPathRate = 8 * kMbps;  // genuinely HD-capable

  // Proxygen's scheduler interleaves two equal-priority 96 KB images.
  const auto schedule = schedule_h2_writes(
      {{1, 0.0, 96 * 1024, 16}, {2, 0.0, 96 * 1024, 16}}, 16 * 1024, kPathRate);

  std::printf("HTTP/2 write schedule (16 KB chunks, equal priority):\n  ");
  for (const auto& chunk : schedule.chunks) std::printf("[s%d]", chunk.stream_id);
  std::printf("\n  stream 1 multiplexed=%s, stream 2 multiplexed=%s\n\n",
              schedule.outcomes[0].multiplexed ? "yes" : "no",
              schedule.outcomes[1].multiplexed ? "yes" : "no");

  // What the load balancer records: each response's first NIC write to its
  // final ACK spans the *whole interleaved region*.
  const Bytes each = 96 * 1024;
  const Duration both_done = to_bits(2 * each) / kPathRate + kRtt;
  ResponseWrite w1, w2;
  w1.bytes = w2.bytes = each;
  w1.last_packet_bytes = w2.last_packet_bytes = 1024;
  w1.wnic = w2.wnic = 14400;
  w1.first_byte_nic = 0.000;
  w2.first_byte_nic = 0.016;  // second chunk slot
  w1.last_byte_nic = w2.last_byte_nic = both_done - kRtt;
  w1.second_last_ack = w2.second_last_ack = both_done - 0.002;
  w1.last_ack = w2.last_ack = both_done;
  w1.multiplexed = schedule.outcomes[0].multiplexed;
  w2.multiplexed = schedule.outcomes[1].multiplexed;

  // Naive per-transaction view: blame each response for the full duration.
  std::printf("naive per-transaction goodput: %.2f Mbps each (path is %.0f Mbps!)\n",
              to_mbps(to_bits(each) / both_done), to_mbps(kPathRate));

  // The §3.2.5 pipeline coalesces the pair and evaluates once.
  const auto coalesced = coalesce_session({w1, w2}, kRtt);
  HdEvaluator evaluator;
  for (const auto& txn : coalesced.txns) evaluator.evaluate(txn);
  std::printf("coalesced transactions: %zu (merged %d writes)\n",
              coalesced.txns.size(), coalesced.coalesced_writes);
  std::printf("coalesced verdict: tested=%d achieved=%d -> HDratio %.1f\n",
              evaluator.result().tested, evaluator.result().achieved,
              evaluator.result().hdratio().value_or(-1));
  std::printf("\nMultiplexing inflated each response's Ttotal with the other's\n"
              "bytes; coalescing measures the pair as one large transfer and\n"
              "correctly certifies the 8 Mbps path as HD-capable (§3.2.5).\n");
  return 0;
}
