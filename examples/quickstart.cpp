// Quickstart: evaluate whether an HTTP session's transactions demonstrate
// HD-capable goodput from server-side passive measurements.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The inputs are exactly what a load balancer can capture per response
// (§2.2.2): bytes sent (minus the final packet), elapsed time from the
// first NIC write to the ACK of the second-to-last packet, the congestion
// window at the first write (Wnic), and the connection's windowed MinRTT.
#include <cstdio>

#include "fbedge/fbedge.h"

using namespace fbedge;

int main() {
  // Target: 2.5 Mbps, the minimum bitrate for HD video (§3.2.1).
  HdEvaluator evaluator(GoodputConfig{.target_goodput = 2.5 * kMbps});

  // A session with a 45 ms MinRTT serving three responses.
  const Duration min_rtt = 0.045;

  const TxnTiming transactions[] = {
      // A 4 KB API response: too small to say anything about goodput.
      {.btotal = 4 * kKiB, .ttotal = 0.046, .wnic = 14400, .min_rtt = min_rtt},
      // A 60 KB image delivered in ~2.1 RTTs: fast.
      {.btotal = 60 * kKiB, .ttotal = 0.095, .wnic = 14400, .min_rtt = min_rtt},
      // A 200 KB video chunk that took 1.9 s: the path is struggling.
      {.btotal = 200 * kKiB, .ttotal = 1.9, .wnic = 28800, .min_rtt = min_rtt},
  };

  for (const auto& txn : transactions) {
    const TxnVerdict verdict = evaluator.evaluate(txn);
    std::printf("%6lld bytes in %6.1f ms: Gtestable=%5.2f Mbps -> %s\n",
                static_cast<long long>(txn.btotal), to_ms(txn.ttotal),
                to_mbps(verdict.gtestable),
                !verdict.can_test      ? "cannot test for HD goodput"
                : verdict.achieved     ? "achieved HD goodput"
                                       : "FAILED to achieve HD goodput");
  }

  const SessionHd& session = evaluator.result();
  std::printf("\nsession HDratio: %.2f (%d of %d testable transactions)\n",
              session.hdratio().value_or(0.0), session.achieved, session.tested);
  return 0;
}
