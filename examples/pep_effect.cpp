// Split-TCP proxy (PEP) measurement caveat (§2.2.1).
//
// Satellite and cellular carriers deploy PEPs that terminate the client's
// TCP connection near the core and run their own connection over the bad
// segment. Server-side passive measurements then describe the
// server<->PEP path: latency is underestimated and goodput overestimated
// relative to what the user experiences. The paper accepts this because
// the provider can only optimize its own segment — and notes QUIC's
// encryption removes PEPs entirely. This example quantifies the skew.
#include <cstdio>

#include "fbedge/fbedge.h"

using namespace fbedge;

namespace {

struct Measurement {
  Duration server_minrtt{0};
  Duration server_transfer{0};
  Duration end_to_end_transfer{0};
};

Measurement run(bool with_pep, Bytes size) {
  Simulator sim;
  // WAN: PoP to carrier core, 20 ms, fast. Last mile: satellite, 300 ms
  // one-way-ish RTT contribution and 2 Mbps.
  const LinkConfig wan_fwd{.rate = 1e8, .delay = 0.010};
  const LinkConfig wan_rev{.rate = 0, .delay = 0.010};
  const LinkConfig sat_fwd{.rate = 2e6, .delay = 0.150, .queue_capacity = 1 << 20};
  const LinkConfig sat_rev{.rate = 0, .delay = 0.150};

  Measurement m;
  if (with_pep) {
    SplitTcpPep pep(sim, {}, wan_fwd, wan_rev, sat_fwd, sat_rev);
    pep.wan().handshake();
    TransferReport report;
    pep.server_sender().write(size, [&](const TransferReport& r) { report = r; });
    sim.run_until(1200.0);
    m.server_minrtt = report.min_rtt;
    m.server_transfer = report.full_duration();
    m.end_to_end_transfer = pep.client_last_delivery() - report.first_byte_sent;
  } else {
    // No PEP: one end-to-end connection across both segments. Model the
    // concatenated path as a single link pair (rates/min delays compose).
    const LinkConfig e2e_fwd{.rate = 2e6, .delay = 0.160, .queue_capacity = 1 << 20};
    const LinkConfig e2e_rev{.rate = 0, .delay = 0.160};
    TcpConnection conn(sim, {}, e2e_fwd, e2e_rev);
    conn.handshake();
    TransferReport report;
    conn.sender().write(size, [&](const TransferReport& r) { report = r; });
    sim.run_until(1200.0);
    m.server_minrtt = report.min_rtt;
    m.server_transfer = report.full_duration();
    m.end_to_end_transfer = report.full_duration();
  }
  return m;
}

}  // namespace

int main() {
  constexpr Bytes kObject = 150 * 1440;  // a ~216 KB media object

  const Measurement direct = run(false, kObject);
  const Measurement pep = run(true, kObject);

  std::printf("Serving a %lld KB object over a satellite last mile\n",
              static_cast<long long>(kObject / 1024));
  std::printf("(20 ms WAN + 300 ms / 2 Mbps satellite segment):\n\n");
  std::printf("%-34s %14s %14s\n", "", "no PEP", "carrier PEP");
  std::printf("%-34s %11.1f ms %11.1f ms\n", "server-measured MinRTT",
              to_ms(direct.server_minrtt), to_ms(pep.server_minrtt));
  std::printf("%-34s %11.1f ms %11.1f ms\n", "server-measured transfer time",
              to_ms(direct.server_transfer), to_ms(pep.server_transfer));
  std::printf("%-34s %11.1f ms %11.1f ms\n", "actual time to reach the client",
              to_ms(direct.end_to_end_transfer), to_ms(pep.end_to_end_transfer));
  std::printf("%-34s %11.2f    %11.2f\n", "server-apparent goodput [Mbps]",
              to_mbps(goodput_bps(kObject, direct.server_transfer)),
              to_mbps(goodput_bps(kObject, pep.server_transfer)));

  std::printf(
      "\nUnder the PEP the server sees a ~20 ms path and fast ACKs while the\n"
      "client is still draining the satellite link: latency is under- and\n"
      "goodput over-estimated (§2.2.1). Facebook can only optimize up to the\n"
      "PEP, so the paper treats the skew as acceptable; QUIC removes it.\n");
  return 0;
}
