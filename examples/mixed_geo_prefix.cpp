// Figure 5 scenario: why user groups include the client country (§3.3).
//
// One /16 BGP prefix serves clients in two regions — "California" (20 ms
// from the PoP) and "Hawaii" (60 ms). Each region's share of traffic peaks
// at its own local evening, so the *prefix-level* median MinRTT oscillates
// between ~20 ms and ~60 ms even though every client's path is perfectly
// stable. Splitting the aggregation by country removes the artifact —
// design decision D6 in DESIGN.md.
#include <cstdio>

#include "fbedge/fbedge.h"

using namespace fbedge;

namespace {

/// Relative traffic intensity for a region whose local evening peak is at
/// `peak_hour` (UTC): 1.0 at peak, 0.15 at the trough.
double intensity(double hour_utc, double peak_hour) {
  double d = std::fmod(std::abs(hour_utc - peak_hour), 24.0);
  d = std::min(d, 24.0 - d);  // circular distance in hours
  return 0.15 + 0.85 * std::max(0.0, 1.0 - d / 6.0);
}

}  // namespace

int main() {
  Rng rng(2019);

  constexpr Duration kCaliforniaRtt = 0.020;
  constexpr Duration kHawaiiRtt = 0.060;
  constexpr double kCaliforniaPeakUtc = 4.0;  // 20:00 PT
  constexpr double kHawaiiPeakUtc = 8.0;      // 22:00 HST

  // Prefix-level aggregation (the mistake) vs per-country aggregation.
  std::printf("hour   sessions(CA/HI)   prefix-median   CA-median   HI-median\n");

  double prefix_min = 1e9, prefix_max = 0;
  double ca_min = 1e9, ca_max = 0, hi_min = 1e9, hi_max = 0;

  for (int hour = 0; hour < 24; ++hour) {
    TDigest prefix_level(100), california(100), hawaii(100);
    const int ca_sessions =
        static_cast<int>(600 * intensity(hour, kCaliforniaPeakUtc));
    const int hi_sessions = static_cast<int>(500 * intensity(hour, kHawaiiPeakUtc));
    for (int i = 0; i < ca_sessions; ++i) {
      const double rtt = kCaliforniaRtt + rng.exponential(0.002);
      prefix_level.add(rtt);
      california.add(rtt);
    }
    for (int i = 0; i < hi_sessions; ++i) {
      const double rtt = kHawaiiRtt + rng.exponential(0.002);
      prefix_level.add(rtt);
      hawaii.add(rtt);
    }

    const double p = prefix_level.quantile(0.5) * 1e3;
    const double ca = california.quantile(0.5) * 1e3;
    const double hi = hawaii.quantile(0.5) * 1e3;
    prefix_min = std::min(prefix_min, p);
    prefix_max = std::max(prefix_max, p);
    ca_min = std::min(ca_min, ca);
    ca_max = std::max(ca_max, ca);
    hi_min = std::min(hi_min, hi);
    hi_max = std::max(hi_max, hi);

    if (hour % 2 == 0) {
      std::printf("%02d:00     %4d/%-4d        %6.1f ms     %6.1f ms   %6.1f ms\n",
                  hour, ca_sessions, hi_sessions, p, ca, hi);
    }
  }

  std::printf("\nprefix-level median swings %.1f ms (%.1f..%.1f) purely from\n",
              prefix_max - prefix_min, prefix_min, prefix_max);
  std::printf("population shift; per-country medians move only %.1f / %.1f ms.\n",
              ca_max - ca_min, hi_max - hi_min);
  std::printf("A degradation detector on the prefix alone would page twice a\n");
  std::printf("day for a network that never changed — hence (PoP, prefix,\n");
  std::printf("country) user groups (§3.3).\n");
  return 0;
}
