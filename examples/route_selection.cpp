// Performance-aware routing scenario (§6): a PoP serves one user group
// over a policy-preferred private peer plus two transit alternates. The
// peering link congests at the destination's peak hours; the example runs
// the paper's measurement + comparison pipeline and shows when (and when
// not) shifting to an alternate is statistically justified.
#include <cstdio>

#include "fbedge/fbedge.h"

using namespace fbedge;

int main() {
  // --- the user group and its routes -------------------------------------
  WorldConfig wc;
  wc.seed = 11;
  wc.groups_per_continent = 1;
  wc.dest_diurnal_fraction = 0;
  wc.route_diurnal_fraction = 0;
  wc.continuous_opportunity_fraction = 0;
  wc.episodic_fraction = 0;
  World world = build_world(wc);

  UserGroupProfile& group = world.groups.front();
  group.base_rtt = 0.042;
  group.tz_offset_hours = 0;
  group.sessions_per_window = 420;
  // Congest the preferred route at peak hours: +12 ms and 1.5% loss.
  group.routes.front().diurnal_congestion = true;
  group.routes.front().peak_extra_delay = 0.012;
  group.routes.front().peak_extra_loss = 0.015;

  std::printf("Routes for %s (policy order):\n",
              group.key.prefix.to_string().c_str());
  for (std::size_t i = 0; i < group.routes.size(); ++i) {
    const Route& r = group.routes[i].route;
    std::printf("  %zu. %-8s as_path_len=%d%s\n", i, to_string(r.relationship),
                r.as_path_length(), i == 0 ? "   <- preferred (§6.1)" : "");
  }

  // --- generate one day of measured traffic ------------------------------
  DatasetConfig dc;
  dc.seed = 11;
  dc.days = 1;
  DatasetGenerator generator(world, dc);

  GroupSeries series;
  series.continent = group.continent;
  generator.generate_group(group, [&](const SessionSample& s) {
    if (!SessionSampler::keep_for_analysis(s.client)) return;
    const SessionMetrics m = compute_session_metrics(s);
    series.windows[window_index(s.established_at)]
        .route(s.route_index)
        .add_session(m.min_rtt, m.hdratio, m.traffic);
  });

  // --- §3.4 comparison per 15-minute window ------------------------------
  const auto opportunities = analyze_opportunity(series, {});
  std::printf("\n%-8s %-12s %-12s %-22s %s\n", "window", "pref p50", "alt p50",
              "diff CI [ms]", "decision");
  int shown = 0;
  int opportunity_windows = 0;
  for (const auto& ow : opportunities) {
    if (ow.rtt_opportunity(0.005)) ++opportunity_windows;
    // Print a readable subset: every 8th window.
    if (ow.window % 8 != 0) continue;
    const auto& agg = series.windows.at(ow.window);
    const char* decision = !ow.rtt.valid()         ? "insufficient data"
                           : ow.rtt_opportunity(0.005) ? "SHIFT to alternate"
                                                       : "keep preferred";
    std::printf("%02d:%02d    %8.1f ms  %8.1f ms  [%+6.1f, %+6.1f]        %s\n",
                (ow.window * 15) / 60, (ow.window * 15) % 60,
                to_ms(agg.route(0)->minrtt_p50()),
                ow.rtt_alternate > 0
                    ? to_ms(agg.route(ow.rtt_alternate)->minrtt_p50())
                    : 0.0,
                ow.rtt.valid() ? to_ms(ow.rtt.diff.lower) : 0.0,
                ow.rtt.valid() ? to_ms(ow.rtt.diff.upper) : 0.0, decision);
    ++shown;
  }

  std::printf("\nwindows with a statistically confirmed >= 5 ms opportunity: "
              "%d of %zu\n", opportunity_windows, opportunities.size());
  std::printf("(they cluster in the 19:00-23:00 local peak, when the peering\n"
              " link congests; off-peak, default BGP routing is optimal — the\n"
              " paper's §6 conclusion.)\n");
  return 0;
}
