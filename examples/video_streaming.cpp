// Video streaming scenario: a client fetches a sequence of video segments
// over one TCP connection through access links of different speeds; the
// server-side estimator must tell HD-capable paths from non-HD paths
// *without* any client cooperation — the paper's core use case.
//
// This example drives the full packet-level stack: TCP with slow start,
// delayed ACKs and loss recovery through a droptail bottleneck, the
// load-balancer sampler capturing per-response timings, §3.2.5 coalescing,
// and the goodput model.
#include <cstdio>
#include <vector>

#include "fbedge/fbedge.h"

using namespace fbedge;

namespace {

struct ScenarioResult {
  int segments{0};
  SessionHd hd;
  Duration min_rtt{0};
};

/// Streams `segments` x `segment_bytes` over a fresh connection through the
/// given bottleneck, then runs the measurement pipeline on what the
/// load balancer observed.
ScenarioResult stream_video(BitsPerSecond access_rate, Duration rtt, double loss,
                            int segments, Bytes segment_bytes) {
  Simulator sim;
  TcpConfig tcp;
  LinkConfig forward{.rate = access_rate,
                     .delay = rtt / 2,
                     .queue_capacity = 1 << 20,
                     .loss_rate = loss};
  TcpConnection conn(sim, tcp, forward, {.rate = 0, .delay = rtt / 2}, 7);
  conn.handshake();

  // The player requests the next segment as soon as the previous one
  // finishes (back-to-back at the server).
  std::vector<ResponseWrite> writes;
  std::function<void(int)> request = [&](int index) {
    if (index >= segments) return;
    conn.sender().write(segment_bytes, [&, index](const TransferReport& r) {
      ResponseWrite w;
      w.first_byte_nic = r.first_byte_sent;
      w.last_byte_nic = r.first_byte_sent;  // written in one burst
      w.second_last_ack = r.second_to_last_acked;
      w.last_ack = r.last_byte_acked;
      w.bytes = r.bytes;
      w.last_packet_bytes = r.last_packet_bytes;
      w.wnic = r.wnic;
      writes.push_back(w);
      request(index + 1);
    });
  };
  request(0);
  sim.run_until(1200.0);

  ScenarioResult out;
  out.segments = static_cast<int>(writes.size());
  out.min_rtt = conn.sender().min_rtt().lifetime_min();

  const CoalescedSession coalesced = coalesce_session(writes, out.min_rtt);
  HdEvaluator evaluator;
  for (const auto& txn : coalesced.txns) evaluator.evaluate(txn);
  out.hd = evaluator.result();
  return out;
}

}  // namespace

int main() {
  struct Client {
    const char* name;
    BitsPerSecond rate;
    Duration rtt;
    double loss;
  };
  const Client clients[] = {
      {"fiber (100 Mbps, 12 ms)", 100 * kMbps, 0.012, 0.0},
      {"cable (20 Mbps, 35 ms)", 20 * kMbps, 0.035, 0.001},
      {"dsl (6 Mbps, 55 ms)", 6 * kMbps, 0.055, 0.002},
      {"hd-floor (2.6 Mbps, 80 ms)", 2.6 * kMbps, 0.080, 0.0},
      {"congested 3G (1.2 Mbps, 120 ms, 2% loss)", 1.2 * kMbps, 0.120, 0.02},
  };

  std::printf("Streaming 12 x 180 KB video segments per client; the server\n");
  std::printf("decides HD capability from passive measurements alone.\n\n");
  std::printf("%-44s %8s %9s %8s\n", "client", "MinRTT", "HDratio", "verdict");

  for (const auto& c : clients) {
    const auto r = stream_video(c.rate, c.rtt, c.loss, 12, 180 * kKiB);
    const double hd = r.hd.hdratio().value_or(-1);
    std::printf("%-44s %6.1fms %9.2f %8s\n", c.name, to_ms(r.min_rtt), hd,
                hd < 0      ? "no data"
                : hd >= 0.8 ? "HD"
                : hd > 0.2  ? "unstable"
                            : "not HD");
  }

  std::printf("\nClients above the 2.5 Mbps HD floor stream HD; those below\n");
  std::printf("it are detected without a single active measurement.\n");
  return 0;
}
