// Streaming telemetry scenario: the measurement pipeline as an operations
// dashboard. Sessions stream in; per-window t-digest sketches maintain
// MinRTT_P50/HDratio_P50 (footnote 11's streaming-analytics design); a
// degradation detector alerts when a window's performance departs from the
// group baseline with statistical confidence.
#include <cstdio>

#include "fbedge/fbedge.h"

using namespace fbedge;

int main() {
  // A group with an afternoon fiber-cut episode on top of normal diurnal
  // behaviour.
  WorldConfig wc;
  wc.seed = 23;
  wc.groups_per_continent = 1;
  wc.dest_diurnal_fraction = 0;
  wc.route_diurnal_fraction = 0;
  wc.continuous_opportunity_fraction = 0;
  wc.episodic_fraction = 0;
  World world = build_world(wc);
  UserGroupProfile& group = world.groups.front();
  group.base_rtt = 0.038;
  group.sessions_per_window = 380;
  group.episodes.push_back({.start_window = 56,   // 14:00
                            .end_window = 64,     // 16:00
                            .route_index = -1,
                            .extra_delay = 0.022,
                            .extra_loss = 0.01});

  DatasetConfig dc;
  dc.seed = 23;
  dc.days = 1;
  DatasetGenerator generator(world, dc);

  // Streaming ingest: one t-digest pair per window, fed session by session.
  GroupSeries series;
  std::uint64_t sessions = 0;
  generator.generate_group(group, [&](const SessionSample& s) {
    if (!SessionSampler::keep_for_analysis(s.client)) return;
    if (s.route_index != 0) return;  // dashboard tracks the serving route
    const SessionMetrics m = compute_session_metrics(s);
    series.windows[window_index(s.established_at)].route(0).add_session(
        m.min_rtt, m.hdratio, m.traffic);
    ++sessions;
  });

  const DegradationResult degr = analyze_degradation(series, {});
  std::printf("ingested %llu sampled sessions across %zu windows\n",
              static_cast<unsigned long long>(sessions), series.windows.size());
  std::printf("baseline: MinRTT_P50=%.1f ms  HDratio_P50=%.2f\n\n",
              to_ms(degr.baseline_minrtt_p50), degr.baseline_hdratio_p50);

  std::printf("%-7s %-10s %-9s %-24s %s\n", "window", "MinRTT_P50", "HDratio",
              "degradation CI [ms]", "status");
  for (const auto& dw : degr.windows) {
    if (dw.window % 4 != 0 && !(dw.rtt.exceeds(0.005))) continue;
    const auto& agg = series.windows.at(dw.window).route(0);
    const char* status = !dw.rtt.valid()        ? "…"
                         : dw.rtt.exceeds(0.020) ? "ALERT: major degradation"
                         : dw.rtt.exceeds(0.005) ? "warn: degraded"
                                                 : "ok";
    std::printf("%02d:%02d   %7.1f ms %8.2f  [%+6.1f, %+6.1f]          %s\n",
                (dw.window * 15) / 60, (dw.window * 15) % 60,
                to_ms(agg.minrtt_p50()), agg.hdratio_p50(),
                dw.rtt.valid() ? to_ms(dw.rtt.diff.lower) : 0.0,
                dw.rtt.valid() ? to_ms(dw.rtt.diff.upper) : 0.0, status);
  }

  std::printf("\nThe 14:00-16:00 episode trips the alert; ordinary window-to-\n");
  std::printf("window noise stays inside the confidence interval and does not.\n");
  return 0;
}
