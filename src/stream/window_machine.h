// Per-group event-time window state machine (the stream side of §3.3's
// 15-minute aggregation).
//
// The batch pipeline materializes a group's whole GroupSeries, then
// analyzes it. A long-running monitor cannot: it must close each window as
// soon as the stream guarantees no more of its rows can arrive, emit the
// verdict, and free the window's state. WindowMachine implements that
// contract with a low-watermark: the watermark is the highest *nominal*
// window id delivered so far (the source emits micro-batches in nominal
// window order), and every open window older than
// `watermark - allowed_lateness_windows` is sealed — in ascending window
// order, exactly once — through the seal callback, then recycled into the
// route-cell pool. Rows addressed at an already-sealed window are counted
// and dropped (the late-drop path); they can only exist when delivery is
// reordered (fault injection), never on a clean in-order replay, because a
// nominal batch w's rows land in windows w or w+1 only (a session's start
// is drawn inside its window; the draw can round up across the boundary).
//
// Batch equivalence is structural: with allowed_lateness_windows =
// kStreamNeverSeal nothing seals before flush(), so the machine *is* the
// batch materialization — flush() then seals the full series ascending.
// Either way every window receives the same rows in the same order and is
// sealed in the same ascending sequence, which is why stream and batch
// verdicts are bitwise identical (tests/stream_test.cpp enforces this over
// a 100-seed sweep).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "agg/aggregation.h"
#include "agg/user_group.h"
#include "util/units.h"

namespace fbedge {

/// One analysis-ready session on the stream: the survivor of the
/// generate -> coalesce -> HD pipeline, compacted to exactly what
/// RouteWindowAgg::add_session consumes. `hd_value` is meaningful only
/// when `has_hd` (§3.2.4's "no signal" sessions stream as has_hd = 0).
struct StreamRow {
  SimTime at{0};
  std::int32_t route{0};
  Duration min_rtt{0};
  double hd_value{0};
  std::uint8_t has_hd{0};
  Bytes bytes{0};

  std::optional<double> hdratio() const {
    if (!has_hd) return std::nullopt;
    return hd_value;
  }
};

/// Lateness sentinel: never seal on the watermark, only at flush() — the
/// batch-replay mode of the monitor pipeline.
constexpr int kStreamNeverSeal = std::numeric_limits<int>::max();

/// Computes window_index(rows[i].at) for every row of a delivery into
/// out[0..n) — the window-key bucketing pass of the streaming classifier,
/// split out so it can run vectorized. The scalar variant is the pinned
/// reference; on_delivery dispatches via util/simd.h.
void bucket_window_keys_scalar(const StreamRow* rows, std::size_t n, std::int32_t* out);

/// AVX2 variant (defined only when FBEDGE_HAVE_AVX2; guard call sites with
/// simd::compiled_avx2()): four timestamps per divide, truncated with the
/// same toward-zero semantics (including the 0x80000000 out-of-range/NaN
/// result) as the scalar cast, so keys are bitwise identical.
void bucket_window_keys_avx2(const StreamRow* rows, std::size_t n, std::int32_t* out);

class WindowMachine {
 public:
  /// Called exactly once per non-empty window, in ascending window order.
  /// The agg is mutable so the callee may consume it; the machine recycles
  /// its route cells right after the call returns.
  using SealFn = std::function<void(int window, WindowAgg& agg)>;

  /// Arms the machine for one group: clears open windows and counters
  /// (keeping every heap buffer warm via the internal pool) and installs
  /// the group's lateness band and seal callback.
  void start_group(int allowed_lateness_windows, SealFn seal);

  /// Ingests one micro-batch delivery. `nominal_window` drives the
  /// watermark; rows are binned by their own timestamps (boundary rows may
  /// belong to nominal_window + 1). A zero-row delivery still advances the
  /// watermark — event-time progress is not data.
  void on_delivery(int nominal_window, const StreamRow* rows, std::size_t count);

  /// Seals every remaining open window (ascending). Further deliveries
  /// would be entirely late; a second flush seals nothing (idempotent).
  void flush();

  // Per-group counters (reset by start_group).
  std::uint64_t sealed_windows() const { return sealed_windows_; }
  std::uint64_t watermark_advances() const { return watermark_advances_; }
  /// Peak simultaneously-open windows — the machine's live state bound
  /// (<= lateness + 2 on a clean in-order stream).
  std::uint64_t open_windows_peak() const { return open_windows_peak_; }
  /// Rows dropped because their window had already sealed, and the number
  /// of deliveries that contained at least one such row.
  std::uint64_t late_rows() const { return late_rows_; }
  std::uint64_t late_deliveries() const { return late_deliveries_; }

  std::size_t open_windows() const { return open_.size(); }

 private:
  /// Seals (ascending) and recycles every open window with id < `bound`.
  void seal_below(long long bound);

  WindowMap open_;
  RouteAggPool pool_;
  /// Per-delivery window keys from the bucketing pass; capacity persists
  /// across deliveries and groups.
  std::vector<std::int32_t> key_scratch_;
  SealFn seal_;
  int lateness_{0};
  /// Highest nominal window delivered; windows below `sealed_below_` are
  /// gone and can never reopen.
  long long watermark_{std::numeric_limits<long long>::min()};
  long long sealed_below_{std::numeric_limits<long long>::min()};

  std::uint64_t sealed_windows_{0};
  std::uint64_t watermark_advances_{0};
  std::uint64_t open_windows_peak_{0};
  std::uint64_t late_rows_{0};
  std::uint64_t late_deliveries_{0};
};

}  // namespace fbedge
