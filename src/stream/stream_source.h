// Deterministic event-time stream source: replays one group's generated
// workload as ordered micro-batch deliveries into a WindowMachine.
//
// The source reuses the batch pipeline's columnar stages verbatim —
// generate_group_batched -> coalesce_batch -> evaluate_hd_batch — so every
// row carries bit-identical values to what batch ingest aggregates; the
// only new step is compacting the survivors into StreamRows and slicing
// each window's rows into micro-batches of at most `max_batch_rows`. On a
// fault-free run deliveries leave in strict nominal-window order (a window
// with zero surviving rows still emits one empty delivery, so the
// watermark advances through idle periods exactly like wall time would).
//
// With stream faults armed (FaultPlan::stream_faults()), a per-micro-batch
// transport sits between the source and the machine: kStreamLate holds a
// batch back 1..stream_late_max_delay windows (released, in original
// creation order, once the source reaches the target window), and
// kStreamDup delivers a batch twice. Both decisions are pure functions of
// (plan seed, site, group x window x sequence) — see
// stream_batch_fault_key — so a recount that replays the source standalone
// reproduces the injected schedule exactly, independent of thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "faultsim/fault_plan.h"
#include "goodput/hdratio.h"
#include "runtime/run_stats.h"
#include "sampler/session_batch.h"
#include "stream/window_machine.h"
#include "workload/generator.h"

namespace fbedge {

/// Receives each micro-batch delivery (normally WindowMachine::on_delivery).
/// `rows` may be null when `count` is 0 (watermark-only delivery).
using StreamDeliverFn =
    std::function<void(int nominal_window, const StreamRow* rows, std::size_t count)>;

/// Per-worker scratch for replay_group_stream: the batch-pipeline arenas
/// plus the row compaction buffer and the held-delivery store used by the
/// fault transport. Cleared (not shrunk) per group.
struct StreamSourceScratch {
  SessionBatch batch;
  CoalescedBatch coalesced;
  std::vector<SessionHd> hd;
  std::vector<StreamRow> rows;
  /// Fault transport: rows of held-back deliveries, plus one record per
  /// held delivery (slice of `held_rows` + its release schedule).
  std::vector<StreamRow> held_rows;
  struct HeldDelivery {
    int nominal_window{0};
    int release_window{0};
    std::uint32_t begin{0};
    std::uint32_t count{0};
    std::uint8_t duplicate{0};
    std::uint8_t released{0};
  };
  std::vector<HeldDelivery> held;
};

struct StreamSourceTotals {
  std::uint64_t rows{0};
  std::uint64_t deliveries{0};
};

/// Replays one group's whole study span as micro-batch deliveries, in
/// event-time order, and returns row/delivery totals. Fault counters for
/// the stream transport sites accumulate into `counters`; with a zero-rate
/// plan the transport is bypassed entirely (`deliver` is invoked straight
/// from the slicing loop) so fault-free streams stay byte-identical to a
/// build without the fault sites. `max_batch_rows` <= 0 means one delivery
/// per window.
StreamSourceTotals replay_group_stream(const DatasetGenerator& generator,
                                       const UserGroupProfile& group,
                                       const GoodputConfig& goodput,
                                       int max_batch_rows, const FaultPlan& faults,
                                       FaultCounters& counters,
                                       StreamSourceScratch& scratch,
                                       const StreamDeliverFn& deliver);

}  // namespace fbedge
