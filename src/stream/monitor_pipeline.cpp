#include "stream/monitor_pipeline.h"

#include <algorithm>
#include <utility>

#include "runtime/alloc_counter.h"

namespace fbedge {

namespace {

/// Per-worker scratch: the source arenas, the window machine (whose
/// WindowMap spine and route-cell pool stay warm across every group the
/// worker processes), and the verdict-step state.
struct MonitorScratch {
  StreamSourceScratch source;
  WindowMachine machine;
  RollingBaseline baseline;
  WindowVerdict verdict;
};

/// One group's contribution, produced on the pool and folded in group-id
/// order on the calling thread.
struct GroupPartial {
  GroupVerdictSummary summary;
  std::vector<WindowVerdict> verdicts;
  FaultCounters faults;
  std::uint64_t sealed{0};
  std::uint64_t watermark_advances{0};
  std::uint64_t open_windows_peak{0};
};

void fold_summary(GroupVerdictSummary& acc, const GroupVerdictSummary& g) {
  acc.windows += g.windows;
  acc.degraded_rtt += g.degraded_rtt;
  acc.degraded_hd += g.degraded_hd;
  acc.opp_rtt += g.opp_rtt;
  acc.opp_hd += g.opp_hd;
  acc.traffic += g.traffic;
  acc.degraded_traffic += g.degraded_traffic;
  acc.opportunity_traffic += g.opportunity_traffic;
  acc.rows += g.rows;
  acc.late_rows += g.late_rows;
}

}  // namespace

MonitorResult run_stream_monitor(const World& world, const DatasetConfig& config,
                                 MonitorMode mode,
                                 const StreamMonitorOptions& options,
                                 const RuntimeOptions& runtime, RunStats* stats,
                                 const FaultPlan& faults) {
  DatasetGenerator generator(world, config);
  RollingBaselineConfig baseline_config = options.baseline;
  baseline_config.min_samples = options.comparison.min_samples;
  // Batch mode IS the stream pipeline with an infinite lateness band: no
  // window seals before flush, so the machine materializes the whole
  // series and then seals it ascending — same rows, same order, same
  // verdicts; only the memory profile differs.
  const int lateness = mode == MonitorMode::kBatch
                           ? kStreamNeverSeal
                           : options.allowed_lateness_windows;

  auto partials = parallel_map_scratch<MonitorScratch>(
      world.groups.size(), runtime,
      [&](MonitorScratch& s, std::size_t g) {
        const UserGroupProfile& group = world.groups[g];
        GroupPartial part;
        s.baseline = RollingBaseline(baseline_config);
        Fnv64 hash;
        std::uint64_t seals = 0;
        const auto seal = [&](int window, WindowAgg& agg) {
          evaluate_window_verdict(window, agg, s.baseline, options.comparison,
                                  s.verdict);
          hash_window_verdict(s.verdict, hash);
          const WindowVerdict& v = s.verdict;
          GroupVerdictSummary& sum = part.summary;
          ++sum.windows;
          sum.traffic += static_cast<double>(agg.total_traffic());
          const bool d_rtt = v.degr.rtt.exceeds(options.policy.degradation_rtt);
          const bool d_hd = v.degr.hd.exceeds(options.policy.degradation_hd);
          if (d_rtt) ++sum.degraded_rtt;
          if (d_hd) ++sum.degraded_hd;
          if (d_rtt || d_hd) {
            sum.degraded_traffic += static_cast<double>(v.degr.traffic);
          }
          const bool o_rtt =
              v.has_opp && v.opp.rtt_opportunity(options.policy.opportunity_rtt);
          const bool o_hd =
              v.has_opp && v.opp.hd_opportunity(options.policy.opportunity_hd);
          if (o_rtt) ++sum.opp_rtt;
          if (o_hd) ++sum.opp_hd;
          if (o_rtt || o_hd) {
            sum.opportunity_traffic += static_cast<double>(v.opp.traffic);
          }
          if (options.collect_verdicts) part.verdicts.push_back(v);
          // Window seals are the stream's steady-state beat; feed the
          // sampled-RSS watermark here so the flat-memory claim is judged
          // on RSS *while windows churn*, not only at task boundaries.
          if ((++seals & 63u) == 0) rss_sample();
        };
        s.machine.start_group(lateness, seal);
        const StreamSourceTotals totals = replay_group_stream(
            generator, group, options.goodput, options.max_batch_rows, faults,
            part.faults, s.source,
            [&](int w, const StreamRow* rows, std::size_t n) {
              s.machine.on_delivery(w, rows, n);
            });
        s.machine.flush();
        part.summary.rows = totals.rows;
        part.summary.late_rows = s.machine.late_rows();
        part.summary.verdict_hash = hash.value();
        // Rows the machine refused because their window had already sealed
        // are the degraded artifact of injected transport lateness.
        part.faults.stream_dropped_rows += s.machine.late_rows();
        part.sealed = s.machine.sealed_windows();
        part.watermark_advances = s.machine.watermark_advances();
        part.open_windows_peak = s.machine.open_windows_peak();
        return part;
      },
      stats);

  MonitorResult out;
  out.groups.resize(partials.size());
  if (options.collect_verdicts) out.verdicts.resize(partials.size());
  Fnv64 total_hash;
  std::uint64_t sealed = 0;
  std::uint64_t advances = 0;
  std::uint64_t open_peak = 0;
  for (std::size_t g = 0; g < partials.size(); ++g) {
    GroupPartial& p = partials[g];
    out.groups[g] = p.summary;
    fold_summary(out.total, p.summary);
    total_hash.u64(p.summary.verdict_hash);
    out.faults.accumulate(p.faults);
    sealed += p.sealed;
    advances += p.watermark_advances;
    open_peak = std::max(open_peak, p.open_windows_peak);
    if (options.collect_verdicts) out.verdicts[g] = std::move(p.verdicts);
  }
  out.total.verdict_hash = total_hash.value();
  if (stats) {
    stats->stream_windows_sealed += sealed;
    stats->stream_watermark_advances += advances;
    stats->stream_open_windows_peak =
        std::max(stats->stream_open_windows_peak, open_peak);
    stats->faults.accumulate(out.faults);
  }
  return out;
}

}  // namespace fbedge
