#include "stream/window_machine.h"

#include <utility>

#include "util/expect.h"
#include "util/simd.h"

namespace fbedge {

void bucket_window_keys_scalar(const StreamRow* rows, std::size_t n, std::int32_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = window_index(rows[i].at);
}

void WindowMachine::start_group(int allowed_lateness_windows, SealFn seal) {
  FBEDGE_EXPECT(allowed_lateness_windows >= 0,
                "allowed lateness must be non-negative");
  // Recycle whatever a previous group left open (a flushed group leaves
  // nothing; an aborted one must not leak cells into the next group).
  for (auto& [w, agg] : open_) {
    for (auto& cell : agg.routes) pool_.put(std::move(cell));
    agg.routes.clear();
  }
  open_.clear();
  seal_ = std::move(seal);
  lateness_ = allowed_lateness_windows;
  watermark_ = std::numeric_limits<long long>::min();
  sealed_below_ = std::numeric_limits<long long>::min();
  sealed_windows_ = 0;
  watermark_advances_ = 0;
  open_windows_peak_ = 0;
  late_rows_ = 0;
  late_deliveries_ = 0;
}

void WindowMachine::on_delivery(int nominal_window, const StreamRow* rows,
                                std::size_t count) {
  if (nominal_window > watermark_) {
    watermark_ = nominal_window;
    ++watermark_advances_;
    // Signed arithmetic on long long: lateness may be kStreamNeverSeal
    // (batch mode), which must push the bound far below any real window
    // rather than wrap.
    seal_below(watermark_ - static_cast<long long>(lateness_));
  }
  // Bucketing pass first (vectorizable), then the grouping scan consumes
  // the precomputed keys.
  key_scratch_.resize(count);
  if (count > 0) {
#if FBEDGE_HAVE_AVX2
    if (simd::avx2_active()) {
      bucket_window_keys_avx2(rows, count, key_scratch_.data());
    } else
#endif
    {
      bucket_window_keys_scalar(rows, count, key_scratch_.data());
    }
  }
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const StreamRow& row = rows[i];
    const int w = key_scratch_[i];
    if (w < sealed_below_) {
      ++dropped;
      continue;
    }
    open_[w].route_pooled(row.route, pool_).add_session(row.min_rtt,
                                                        row.hdratio(), row.bytes);
  }
  if (dropped > 0) {
    late_rows_ += dropped;
    ++late_deliveries_;
  }
  if (open_.size() > open_windows_peak_) open_windows_peak_ = open_.size();
}

void WindowMachine::flush() {
  // One past the largest representable window: everything seals, and any
  // post-flush delivery is entirely late.
  seal_below(static_cast<long long>(std::numeric_limits<int>::max()) + 1);
}

void WindowMachine::seal_below(long long bound) {
  if (bound <= sealed_below_) return;
  sealed_below_ = bound;
  if (open_.empty()) return;
  // WindowMap iterates ascending, so windows seal oldest-first — the same
  // order the batch analysis walks a materialized series.
  std::size_t to_remove = 0;
  for (auto& [w, agg] : open_) {
    if (w >= bound) break;
    seal_(w, agg);
    for (auto& cell : agg.routes) pool_.put(std::move(cell));
    agg.routes.clear();
    ++to_remove;
    ++sealed_windows_;
  }
  if (to_remove > 0) {
    open_.remove_if([&](int w, const WindowAgg&) {
      return static_cast<long long>(w) < bound;
    });
  }
}

}  // namespace fbedge
