// AVX2 window-key bucketing for the streaming classifier (see
// window_machine.h and the bitwise contract in util/simd.h).
//
// window_index(t) is one IEEE divide by the window length and one truncating
// cast. vdivpd is correctly rounded (identical to the scalar divide), and
// vcvttpd2dq truncates toward zero with the same 0x80000000 result for
// out-of-range and NaN inputs as the scalar cvttsd2si the cast compiles to,
// so the four-wide pass is bitwise identical to calling window_index per row.
#include "stream/window_machine.h"

#if FBEDGE_HAVE_AVX2

#include <immintrin.h>

namespace fbedge {

void bucket_window_keys_avx2(const StreamRow* rows, std::size_t n, std::int32_t* out) {
  const __m256d len = _mm256_set1_pd(kWindowLength);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d at =
        _mm256_setr_pd(rows[i].at, rows[i + 1].at, rows[i + 2].at, rows[i + 3].at);
    const __m128i keys = _mm256_cvttpd_epi32(_mm256_div_pd(at, len));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), keys);
  }
  for (; i < n; ++i) out[i] = window_index(rows[i].at);
}

}  // namespace fbedge

#endif  // FBEDGE_HAVE_AVX2
