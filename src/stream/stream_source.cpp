#include "stream/stream_source.h"

#include <algorithm>

namespace fbedge {

namespace {

/// Releases every held delivery whose release window has been reached, in
/// the order the deliveries were created (the transport is a FIFO per
/// release window). `up_to_window` = INT_MAX drains everything (group end).
void release_held(StreamSourceScratch& scratch, long long up_to_window,
                  FaultCounters& counters, StreamSourceTotals& totals,
                  const StreamDeliverFn& deliver) {
  for (auto& h : scratch.held) {
    if (h.released || static_cast<long long>(h.release_window) > up_to_window) {
      continue;
    }
    h.released = 1;
    const StreamRow* rows = scratch.held_rows.data() + h.begin;
    deliver(h.nominal_window, rows, h.count);
    ++totals.deliveries;
    if (h.duplicate) {
      ++counters.stream_duplicate_batches;
      deliver(h.nominal_window, rows, h.count);
      ++totals.deliveries;
    }
  }
}

}  // namespace

StreamSourceTotals replay_group_stream(const DatasetGenerator& generator,
                                       const UserGroupProfile& group,
                                       const GoodputConfig& goodput,
                                       int max_batch_rows, const FaultPlan& faults,
                                       FaultCounters& counters,
                                       StreamSourceScratch& scratch,
                                       const StreamDeliverFn& deliver) {
  StreamSourceTotals totals;
  const bool faulted = faults.stream_faults();
  const std::uint64_t gkey = group_fault_key(group.key);
  scratch.held_rows.clear();
  scratch.held.clear();

  generator.generate_group_batched(
      group, scratch.batch, [&](int window, const SessionBatch& b) {
        // Same columnar stages — and therefore bit-identical row values —
        // as the batch pipeline's ingest_group.
        coalesce_batch(b, b.hosting.data(), scratch.coalesced);
        const std::size_t n = b.size();
        scratch.hd.resize(n);
        evaluate_hd_batch(scratch.coalesced.txns.data(),
                          scratch.coalesced.offset.data(),
                          scratch.coalesced.count.data(), n, scratch.hd.data(),
                          goodput);
        scratch.rows.clear();
        for (std::size_t i = 0; i < n; ++i) {
          if (b.hosting[i] != 0) continue;
          StreamRow row;
          row.at = b.established_at[i];
          row.route = b.route_index[i];
          row.min_rtt = b.min_rtt[i];
          const std::optional<double> hd = scratch.hd[i].hdratio();
          row.has_hd = hd.has_value() ? 1 : 0;
          row.hd_value = hd.value_or(0.0);
          row.bytes = b.total_bytes[i];
          scratch.rows.push_back(row);
        }
        totals.rows += scratch.rows.size();

        // Slice into micro-batches. A window whose rows were all filtered
        // out still emits one empty delivery: the watermark must advance on
        // event-time progress, not on data.
        const std::size_t total = scratch.rows.size();
        const std::size_t chunk =
            max_batch_rows > 0 ? static_cast<std::size_t>(max_batch_rows) : total;
        std::size_t begin = 0;
        int seq = 0;
        do {
          const std::size_t count =
              chunk > 0 ? std::min(chunk, total - begin) : total;
          const StreamRow* rows = scratch.rows.data() + begin;
          if (!faulted) {
            deliver(window, rows, count);
            ++totals.deliveries;
          } else {
            const std::uint64_t key = stream_batch_fault_key(gkey, window, seq);
            const bool dup =
                fault_decision(faults, faultsite::kStreamDup, key,
                               faults.stream_duplicate_rate);
            if (fault_decision(faults, faultsite::kStreamLate, key,
                               faults.stream_late_rate)) {
              // Held back: the delivery leaves the transport only when the
              // source reaches window + delay. The duplicate decision is
              // drawn now (pure data) and applied at release.
              ++counters.stream_late_batches;
              const int max_delay = std::max(1, faults.stream_late_max_delay);
              const int delay = static_cast<int>(
                  fault_stream(faults, faultsite::kStreamLateDelay, key)
                      .uniform_int(1, max_delay));
              StreamSourceScratch::HeldDelivery h;
              h.nominal_window = window;
              h.release_window = window + delay;
              h.begin = static_cast<std::uint32_t>(scratch.held_rows.size());
              h.count = static_cast<std::uint32_t>(count);
              h.duplicate = dup ? 1 : 0;
              scratch.held_rows.insert(scratch.held_rows.end(), rows, rows + count);
              scratch.held.push_back(h);
            } else {
              deliver(window, rows, count);
              ++totals.deliveries;
              if (dup) {
                ++counters.stream_duplicate_batches;
                deliver(window, rows, count);
                ++totals.deliveries;
              }
            }
          }
          begin += count;
          ++seq;
        } while (begin < total);

        // On-time traffic for this window is out; release transport-held
        // deliveries that were due by now.
        if (faulted && !scratch.held.empty()) {
          release_held(scratch, window, counters, totals, deliver);
        }
      });

  // Group end: drain the transport. Rows whose windows sealed while their
  // delivery was held become counted late-drops at the machine.
  if (faulted && !scratch.held.empty()) {
    release_held(scratch, std::numeric_limits<long long>::max(), counters, totals,
                 deliver);
  }
  return totals;
}

}  // namespace fbedge
