// The streaming monitor pipeline: world -> per-group event-time replay ->
// window machine -> shared §3.4 verdict step, sharded over the runtime
// pool with per-group verdicts folded in group-id order.
//
// One pipeline, two memory models. In stream mode each group's machine
// seals windows on the low-watermark (holding only the lateness band
// open), so live state per group is O(open windows), independent of the
// study length. In batch mode the same machine runs with lateness =
// kStreamNeverSeal: every window stays open until the group's flush, which
// then seals them ascending — the materialize-everything replay. Both
// modes push the same rows into the same cells and seal in the same
// ascending order, so their verdicts are bitwise identical; only
// `open_windows_peak` (and RSS) differs. That equivalence is the
// subsystem's core invariant, enforced by tests/stream_test.cpp and the CI
// stream-equivalence job.
#pragma once

#include <cstdint>
#include <vector>

#include "agg/window_verdict.h"
#include "faultsim/fault_plan.h"
#include "runtime/pipeline.h"
#include "stream/stream_source.h"

namespace fbedge {

enum class MonitorMode {
  kStream,  // seal on the watermark; verdict per window as it closes
  kBatch,   // materialize the whole series, seal everything at flush
};

struct StreamMonitorOptions {
  ComparisonConfig comparison;
  /// Thresholds for counting a verdict as degraded / improvable.
  VerdictPolicy policy;
  /// Rolling-baseline shape; min_samples is overridden from `comparison`
  /// by run_stream_monitor so the two floors cannot diverge.
  RollingBaselineConfig baseline;
  /// Stream-mode lateness band: windows older than watermark - lateness
  /// seal immediately. 0 is exactly safe on a clean in-order replay (rows
  /// of nominal batch w land only in windows w and w+1).
  int allowed_lateness_windows{0};
  /// Micro-batch slice size; <= 0 delivers one batch per window.
  int max_batch_rows{256};
  GoodputConfig goodput;
  /// Keep every WindowVerdict per group (tests; large for real runs).
  bool collect_verdicts{false};
};

/// One group's monitor outcome, plus the fold of all groups (`total`).
struct GroupVerdictSummary {
  std::uint64_t windows{0};  // sealed, non-empty
  std::uint64_t degraded_rtt{0};
  std::uint64_t degraded_hd{0};
  std::uint64_t opp_rtt{0};
  std::uint64_t opp_hd{0};
  /// Traffic sums in bytes (doubles: folded in group-id order, so exact
  /// order-dependent rounding is reproducible).
  double traffic{0};
  double degraded_traffic{0};
  double opportunity_traffic{0};
  std::uint64_t rows{0};
  std::uint64_t late_rows{0};
  /// FNV-1a over the group's verdict stream (see hash_window_verdict); for
  /// `total`, FNV-1a over the per-group hashes in group-id order.
  std::uint64_t verdict_hash{0};
};

struct MonitorResult {
  std::vector<GroupVerdictSummary> groups;  // indexed by group id
  GroupVerdictSummary total;
  /// Per-group verdict streams (only when options.collect_verdicts).
  std::vector<std::vector<WindowVerdict>> verdicts;
  FaultCounters faults;
};

/// Runs the monitor over every group of `world`. Stream counters
/// (windows sealed / watermark advances / open-window peak) and fault
/// counters land in `stats` when provided; verdict outputs are
/// byte-identical for any `runtime.threads` and across modes.
MonitorResult run_stream_monitor(const World& world, const DatasetConfig& config,
                                 MonitorMode mode,
                                 const StreamMonitorOptions& options,
                                 const RuntimeOptions& runtime,
                                 RunStats* stats = nullptr,
                                 const FaultPlan& faults = {});

}  // namespace fbedge
