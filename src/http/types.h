// HTTP session and transaction vocabulary (§2.1, §2.3).
//
// A client establishes an HTTP *session* (HTTP/1.1 or HTTP/2 over TLS/TCP)
// with an endpoint; each session carries one or more *transactions*
// (request/response pairs). These types describe the workload-facing view;
// the transport-level timings live in tcp/ and sampler/.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"
#include "util/units.h"

namespace fbedge {

enum class HttpVersion : std::uint8_t { kHttp1_1, kHttp2 };

/// Endpoint classes with distinct response-size profiles (§2.3): dynamic
/// content (API responses, rendered HTML; median ~6 KB) vs media (images
/// and video; median ~19 KB with a heavy tail).
enum class EndpointClass : std::uint8_t { kDynamic, kMedia };

/// One HTTP transaction as the workload generator plans it.
struct TransactionSpec {
  /// When the request arrives at the load balancer, relative to session
  /// establishment.
  Duration at{0};
  /// Response body size.
  Bytes response_bytes{0};
  /// HTTP/2 priority (lower value = more urgent); ignored for HTTP/1.1.
  int priority{16};
};

/// One HTTP session as the workload generator plans it.
struct SessionSpec {
  SessionId id{};
  HttpVersion version{HttpVersion::kHttp1_1};
  EndpointClass endpoint{EndpointClass::kDynamic};
  /// Time from TCP establishment to termination.
  Duration duration{0};
  std::vector<TransactionSpec> transactions;

  Bytes total_response_bytes() const {
    Bytes total = 0;
    for (const auto& t : transactions) total += t.response_bytes;
    return total;
  }
};

}  // namespace fbedge
