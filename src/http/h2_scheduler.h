// HTTP/2 response write scheduling (§2.1, §3.2.5).
//
// Proxygen multiplexes an HTTP/2 connection's send window across
// concurrent responses by priority: a strictly more urgent response
// *preempts* (pauses) the current one; equal-priority responses are
// *multiplexed* (round-robin interleaved). The §3.2.5 coalescing rules
// exist precisely because these two behaviours inflate a single
// transaction's wall-clock transfer time.
//
// This scheduler turns a set of (arrival, size, priority) response streams
// into the ordered chunk sequence the transport would write, annotating
// each response with the multiplexed/preempted flags the sampler records.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace fbedge {

/// One response stream handed to the scheduler.
struct H2Response {
  int stream_id{0};
  /// When the response became ready to send (server-side).
  Duration ready_at{0};
  Bytes bytes{0};
  /// Lower value = more urgent (HTTP/2 priority-ish).
  int priority{16};
};

/// One scheduled write chunk.
struct H2Chunk {
  int stream_id{0};
  Bytes bytes{0};
};

/// Per-response outcome flags (what the load balancer instrumentation
/// would set on the ResponseWrite record).
struct H2Outcome {
  int stream_id{0};
  /// Shared the connection with an equal-priority response.
  bool multiplexed{false};
  /// Paused for a strictly higher-priority response.
  bool preempted{false};
  /// Order of first chunk in the schedule (0-based).
  int first_chunk_index{-1};
  /// Order of last chunk.
  int last_chunk_index{-1};
};

struct H2Schedule {
  std::vector<H2Chunk> chunks;
  std::vector<H2Outcome> outcomes;  // one per input response, same order
};

/// Produces the write schedule for a set of responses.
///
/// Model: the connection drains `chunk_bytes` at a time at a fixed
/// `drain_rate` (bits/s). At each chunk boundary the scheduler picks the
/// highest-priority ready response; ties rotate round-robin (multiplexing).
/// A response that was mid-flight when a strictly higher-priority response
/// arrived is marked preempted; responses that shared chunk boundaries
/// with equal-priority peers are marked multiplexed.
H2Schedule schedule_h2_writes(std::vector<H2Response> responses,
                              Bytes chunk_bytes = 16 * 1024,
                              BitsPerSecond drain_rate = 50e6);

}  // namespace fbedge
