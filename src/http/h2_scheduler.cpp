#include "http/h2_scheduler.h"

#include <algorithm>

#include "util/expect.h"

namespace fbedge {

H2Schedule schedule_h2_writes(std::vector<H2Response> responses, Bytes chunk_bytes,
                              BitsPerSecond drain_rate) {
  FBEDGE_EXPECT(chunk_bytes > 0 && drain_rate > 0, "invalid scheduler config");
  H2Schedule out;
  out.outcomes.resize(responses.size());

  struct Stream {
    std::size_t input_index;
    Bytes remaining;
    int last_served_round{-1};  // for round-robin among equals
    bool started{false};
  };
  std::vector<Stream> streams;
  streams.reserve(responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    FBEDGE_EXPECT(responses[i].bytes > 0, "empty response stream");
    out.outcomes[i].stream_id = responses[i].stream_id;
    streams.push_back({i, responses[i].bytes, -1, false});
  }

  Duration clock = 0;
  int round = 0;
  int current = -1;  // stream index served by the previous chunk

  auto pending = [&]() {
    for (const auto& s : streams) {
      if (s.remaining > 0) return true;
    }
    return false;
  };

  while (pending()) {
    // Candidates: ready responses with bytes left.
    int best = -1;
    for (int i = 0; i < static_cast<int>(streams.size()); ++i) {
      const auto& s = streams[static_cast<std::size_t>(i)];
      if (s.remaining <= 0) continue;
      if (responses[s.input_index].ready_at > clock + 1e-12) continue;
      if (best < 0) {
        best = i;
        continue;
      }
      const auto& b = streams[static_cast<std::size_t>(best)];
      const int pi = responses[s.input_index].priority;
      const int pb = responses[b.input_index].priority;
      if (pi < pb ||
          (pi == pb && s.last_served_round < b.last_served_round)) {
        best = i;  // more urgent, or least-recently-served among equals
      }
    }
    if (best < 0) {
      // Nothing ready yet: advance the clock to the next arrival.
      Duration next_ready = 1e18;
      for (const auto& s : streams) {
        if (s.remaining > 0) {
          next_ready = std::min(next_ready, responses[s.input_index].ready_at);
        }
      }
      clock = next_ready;
      continue;
    }

    auto& s = streams[static_cast<std::size_t>(best)];
    auto& outcome = out.outcomes[s.input_index];

    // Flag detection against the previously served stream.
    if (current >= 0 && current != best) {
      auto& prev = streams[static_cast<std::size_t>(current)];
      if (prev.remaining > 0) {
        const int p_new = responses[s.input_index].priority;
        const int p_prev = responses[prev.input_index].priority;
        if (p_new < p_prev) {
          // The interrupted stream is preempted.
          out.outcomes[prev.input_index].preempted = true;
        } else if (p_new == p_prev) {
          out.outcomes[prev.input_index].multiplexed = true;
          outcome.multiplexed = true;
        }
      }
    }

    const Bytes sent = std::min(chunk_bytes, s.remaining);
    s.remaining -= sent;
    s.last_served_round = round++;
    if (!s.started) {
      s.started = true;
      outcome.first_chunk_index = static_cast<int>(out.chunks.size());
    }
    outcome.last_chunk_index = static_cast<int>(out.chunks.size());
    out.chunks.push_back({responses[s.input_index].stream_id, sent});
    clock += to_bits(sent) / drain_rate;
    current = best;
  }
  return out;
}

}  // namespace fbedge
