// Session-level activity accounting for the Figure 1 reproduction.
#pragma once

#include <algorithm>

#include "http/types.h"

namespace fbedge {

/// Accumulates the intervals during which the load balancer is actively
/// sending for a session (data to send and/or unacked data in flight) and
/// reports the busy fraction of the session lifetime (Fig. 1(b)).
class SessionActivity {
 public:
  /// Records an active interval [start, end); overlapping intervals are
  /// merged by construction when fed in nondecreasing start order.
  void add_active(Duration start, Duration end) {
    if (end <= start) return;
    if (start <= open_end_) {
      open_end_ = std::max(open_end_, end);
    } else {
      busy_ += open_end_ - open_start_;
      open_start_ = start;
      open_end_ = end;
    }
  }

  /// Total busy time across all recorded intervals.
  Duration busy_time() const { return busy_ + (open_end_ - open_start_); }

  /// Busy fraction of a session lasting `duration` (clamped to [0, 1]).
  double busy_fraction(Duration duration) const {
    if (duration <= 0) return 0.0;
    return std::clamp(busy_time() / duration, 0.0, 1.0);
  }

 private:
  Duration busy_{0};
  Duration open_start_{0};
  Duration open_end_{0};
};

}  // namespace fbedge
