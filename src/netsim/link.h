// Point-to-point link with finite rate, propagation delay, a droptail
// queue, optional random loss, and optional jitter.
//
// This is the "bottleneck link" of §3.2.3: serialization at the link rate is
// exactly the transmission-time effect the goodput model corrects for.
#pragma once

#include <cstdint>
#include <functional>

#include "netsim/packet.h"
#include "netsim/simulator.h"
#include "util/rng.h"
#include "util/units.h"

namespace fbedge {

/// Configuration for a Link.
struct LinkConfig {
  /// Serialization rate. <= 0 means infinite (no serialization delay).
  BitsPerSecond rate{0};
  /// One-way propagation delay.
  Duration delay{0};
  /// Droptail queue capacity in bytes (on top of the packet in service).
  /// <= 0 means unbounded.
  Bytes queue_capacity{0};
  /// Independent per-packet drop probability (applied before enqueue).
  double loss_rate{0};
  /// Extra per-packet delay drawn uniformly from [0, jitter].
  Duration jitter{0};
  /// Token-bucket traffic policer (Flach et al., cited as [31]: policing is
  /// a prime suspect for non-HD goodput at high RTT, §4). <= 0 disables.
  /// Unlike a shaper, a policer never queues: packets beyond the bucket
  /// are dropped outright, which interacts brutally with slow start.
  BitsPerSecond policer_rate{0};
  /// Bucket depth in bytes (burst allowance). Defaults to ~8 KB if a
  /// policer_rate is set but no burst given.
  Bytes policer_burst{0};
};

/// Unidirectional link. Delivery order is FIFO even with jitter (jitter is
/// clamped so packets cannot overtake).
class Link {
 public:
  using DeliverFn = std::function<void(const Packet&)>;

  Link(Simulator& sim, LinkConfig config, DeliverFn deliver, std::uint64_t rng_seed = 1)
      : sim_(sim), config_(config), deliver_(std::move(deliver)), rng_(rng_seed) {}

  /// Offers a packet to the link; it may be dropped (loss or full queue).
  void send(const Packet& packet);

  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t packets_dropped_loss() const { return dropped_loss_; }
  std::uint64_t packets_dropped_queue() const { return dropped_queue_; }
  std::uint64_t packets_dropped_policer() const { return dropped_policer_; }
  Bytes queued_bytes() const { return queued_bytes_; }

  LinkConfig& config() { return config_; }
  const LinkConfig& config() const { return config_; }

 private:
  Simulator& sim_;
  LinkConfig config_;
  DeliverFn deliver_;
  Rng rng_;
  SimTime busy_until_{0};
  SimTime last_delivery_{0};
  Bytes queued_bytes_{0};
  double policer_tokens_{-1};  // lazily initialized to the burst size
  SimTime policer_refill_at_{0};
  std::uint64_t sent_{0};
  std::uint64_t dropped_loss_{0};
  std::uint64_t dropped_queue_{0};
  std::uint64_t dropped_policer_{0};
};

}  // namespace fbedge
