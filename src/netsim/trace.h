// Packet trace recording — tcpdump for the simulator.
//
// A TraceRecorder can be interposed on any Link callback to log
// send/deliver events. Tests use it to assert ordering and timing
// invariants; humans use dump() to read a time-sequence view when
// debugging congestion-control changes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "netsim/packet.h"
#include "util/units.h"

namespace fbedge {

/// One recorded packet event.
struct TraceEvent {
  enum class Kind : std::uint8_t { kSend, kDeliver } kind;
  SimTime at{0};
  Packet packet;
};

/// Accumulates packet events and renders simple views of them.
class TraceRecorder {
 public:
  void record_send(SimTime at, const Packet& p) {
    events_.push_back({TraceEvent::Kind::kSend, at, p});
  }
  void record_deliver(SimTime at, const Packet& p) {
    events_.push_back({TraceEvent::Kind::kDeliver, at, p});
  }

  /// Wraps a deliver callback so every delivery is recorded before being
  /// forwarded. `now` supplies the clock (usually [&sim]{return sim.now();}).
  std::function<void(const Packet&)> tap(std::function<void(const Packet&)> next,
                                         std::function<SimTime()> now) {
    return [this, next = std::move(next), now = std::move(now)](const Packet& p) {
      record_deliver(now(), p);
      next(p);
    };
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Count of data (non-ACK) deliveries.
  int data_deliveries() const {
    int n = 0;
    for (const auto& e : events_) {
      if (e.kind == TraceEvent::Kind::kDeliver && !e.packet.is_ack) ++n;
    }
    return n;
  }

  /// Bytes of payload delivered.
  Bytes payload_delivered() const {
    Bytes total = 0;
    for (const auto& e : events_) {
      if (e.kind == TraceEvent::Kind::kDeliver) total += e.packet.payload;
    }
    return total;
  }

  /// Renders one line per event: "12.345ms  >  seq=1440..2880 (1440B)".
  std::string dump(std::size_t max_lines = 200) const;

  /// True iff delivery timestamps are non-decreasing (FIFO links).
  bool deliveries_monotone() const {
    SimTime last = -1;
    for (const auto& e : events_) {
      if (e.kind != TraceEvent::Kind::kDeliver) continue;
      if (e.at < last) return false;
      last = e.at;
    }
    return true;
  }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace fbedge
