#include "netsim/trace.h"

#include <cstdio>

namespace fbedge {

std::string TraceRecorder::dump(std::size_t max_lines) const {
  std::string out;
  std::size_t lines = 0;
  for (const auto& e : events_) {
    if (lines++ >= max_lines) {
      out += "... (truncated)\n";
      break;
    }
    char buf[160];
    if (e.packet.is_ack) {
      std::snprintf(buf, sizeof(buf), "%10.3fms  %s  ack=%lld\n", e.at * 1e3,
                    e.kind == TraceEvent::Kind::kSend ? ">" : "<",
                    static_cast<long long>(e.packet.ack));
    } else {
      std::snprintf(buf, sizeof(buf), "%10.3fms  %s  seq=%lld..%lld (%lldB)%s\n",
                    e.at * 1e3, e.kind == TraceEvent::Kind::kSend ? ">" : "<",
                    static_cast<long long>(e.packet.seq),
                    static_cast<long long>(e.packet.seq + e.packet.payload),
                    static_cast<long long>(e.packet.payload),
                    e.packet.retransmit ? " RETX" : "");
    }
    out += buf;
  }
  return out;
}

}  // namespace fbedge
