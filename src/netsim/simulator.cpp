#include "netsim/simulator.h"

#include <algorithm>

#include "util/expect.h"

namespace fbedge {

std::uint64_t Simulator::schedule(Duration delay, Action action) {
  FBEDGE_EXPECT(delay >= 0, "cannot schedule events in the past");
  const std::uint64_t id = next_seq_++;
  queue_.push(Event{now_ + delay, id, std::move(action)});
  ++live_events_;
  return id;
}

void Simulator::cancel(std::uint64_t id) { cancelled_.insert(id); }

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; we need to move the action out. The
    // const_cast is confined here and safe because we pop immediately.
    Event& top = const_cast<Event&>(queue_.top());
    Event ev{top.time, top.seq, std::move(top.action)};
    queue_.pop();
    --live_events_;
    // erase() doubles as the membership test; ids are unique (next_seq_ is
    // monotonic), so set semantics match the old erase-one-occurrence scan.
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) continue;
    out = std::move(ev);
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime deadline) {
  Event ev;
  while (!queue_.empty()) {
    if (queue_.top().time > deadline) break;
    if (!pop_next(ev)) break;
    now_ = ev.time;
    ++executed_;
    ev.action();
  }
  now_ = std::max(now_, deadline);
}

void Simulator::run() {
  Event ev;
  while (pop_next(ev)) {
    now_ = ev.time;
    ++executed_;
    ev.action();
  }
}

}  // namespace fbedge
