// Packet representation for the simulated transport.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace fbedge {

/// A simulated packet. Sequence/ack numbers are in bytes, TCP-style.
struct Packet {
  /// First byte of payload carried (data packets).
  std::int64_t seq{0};
  /// Payload bytes carried (0 for pure ACKs).
  Bytes payload{0};
  /// Header overhead contributing to serialization time.
  Bytes header{40};
  /// Cumulative acknowledgment: all bytes < ack received (ACK packets).
  std::int64_t ack{0};
  bool is_ack{false};
  /// Time the packet left the sender (for RTT sampling).
  SimTime sent_at{0};
  /// Marks retransmissions; RTT samples from them are ambiguous (Karn).
  bool retransmit{false};
  /// Handshake echo: a ping reply carries the ping's send time here so the
  /// sender can take an RTT sample from a header-only exchange (< 0 = none).
  SimTime echo{-1};

  Bytes wire_size() const { return payload + header; }
};

}  // namespace fbedge
