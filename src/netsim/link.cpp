#include "netsim/link.h"

#include <algorithm>

namespace fbedge {

void Link::send(const Packet& packet) {
  if (config_.loss_rate > 0 && rng_.bernoulli(config_.loss_rate)) {
    ++dropped_loss_;
    return;
  }
  if (config_.policer_rate > 0) {
    const Bytes burst = config_.policer_burst > 0 ? config_.policer_burst : 8192;
    if (policer_tokens_ < 0) policer_tokens_ = static_cast<double>(burst);
    // Refill since the last arrival, capped at the bucket depth.
    policer_tokens_ += (sim_.now() - policer_refill_at_) * config_.policer_rate / 8.0;
    policer_tokens_ = std::min(policer_tokens_, static_cast<double>(burst));
    policer_refill_at_ = sim_.now();
    if (static_cast<double>(packet.wire_size()) > policer_tokens_) {
      ++dropped_policer_;  // policers drop; they never queue
      return;
    }
    policer_tokens_ -= static_cast<double>(packet.wire_size());
  }
  const SimTime now = sim_.now();
  if (config_.queue_capacity > 0 && busy_until_ > now &&
      queued_bytes_ + packet.wire_size() > config_.queue_capacity) {
    ++dropped_queue_;
    return;
  }

  const SimTime start = std::max(now, busy_until_);
  const Duration serialize =
      config_.rate > 0 ? transmission_time(packet.wire_size(), config_.rate) : 0.0;
  busy_until_ = start + serialize;
  queued_bytes_ += packet.wire_size();

  Duration extra = config_.delay;
  if (config_.jitter > 0) extra += rng_.uniform(0.0, config_.jitter);
  // FIFO guarantee: never deliver before a previously sent packet.
  SimTime delivery = std::max(busy_until_ + extra, last_delivery_);
  last_delivery_ = delivery;
  ++sent_;

  Packet copy = packet;
  const SimTime dequeue_at = busy_until_;
  sim_.schedule(dequeue_at - now, [this, size = packet.wire_size()] {
    queued_bytes_ -= size;
  });
  sim_.schedule(delivery - now, [this, copy] { deliver_(copy); });
}

}  // namespace fbedge
