// Minimal discrete-event simulation engine.
//
// The engine drives the packet-level TCP model used for (a) the §3.2.3
// validation sweep (the paper used NS3; we build our own) and (b) generating
// ground-truth transfer timings that the goodput estimator is tested
// against.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace fbedge {

/// Single-threaded event loop with a monotonically advancing clock.
///
/// Events scheduled for the same instant run in scheduling order (stable
/// FIFO tie-break), which keeps simulations deterministic.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` seconds from now. Returns an event id
  /// usable with cancel(). delay must be >= 0.
  std::uint64_t schedule(Duration delay, Action action);

  /// Cancels a pending event. Cancelling an already-run or unknown id is a
  /// no-op (timers race with the events that would cancel them).
  void cancel(std::uint64_t id);

  /// Runs events until the queue drains or `deadline` is passed.
  void run_until(SimTime deadline);

  /// Runs until the event queue is empty.
  void run();

  /// Number of events executed so far (for tests and benchmarks).
  std::uint64_t events_executed() const { return executed_; }

  bool empty() const { return live_events_ == 0; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break + cancellation handle
    Action action;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  bool pop_next(Event& out);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  /// Cancelled-but-not-yet-popped event ids. Timeout-heavy workloads (every
  /// transfer arms a retransmission timer it usually cancels) can hold
  /// thousands of pending cancellations, so membership must be O(1); a
  /// linear scan here made pop_next O(cancelled) per event.
  std::unordered_set<std::uint64_t> cancelled_;
  SimTime now_{0};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  std::uint64_t live_events_{0};
};

}  // namespace fbedge
