// Deterministic fault-injection plan (chaos testing the measurement
// pipeline).
//
// A production deployment of the paper's pipeline loses records to
// truncated captures, sees corrupt fields, duplicated samples, and clock
// skew between instrumentation streams, drops aggregation windows, and has
// shard workers die mid-run. FaultPlan describes a reproducible dose of
// each: every injection decision is a pure function of
// (plan.seed, fault site, entity key), drawn from a freshly derived
// fbedge::Rng stream — never from shared sequential state — so decisions
// are independent of thread count, processing order, and of each other,
// and any test can recompute exactly which faults a run injected.
//
// Layering: faultsim sits between runtime and analysis. It may use
// sampler/agg/runtime types; analysis wires it into the pipeline. The
// counters it fills live in runtime/run_stats.h (FaultCounters) so lower
// layers can carry them without a faultsim dependency.
#pragma once

#include <cstdint>

#include "agg/user_group.h"
#include "util/rng.h"
#include "util/units.h"

namespace fbedge {

/// Fault rates and knobs for one chaos run. All rates are probabilities in
/// [0, 1]; the zero-initialized plan injects nothing and run_edge_analysis
/// takes exactly the fault-free code path (byte-identical outputs).
struct FaultPlan {
  /// Seed of every injection decision; independent of the dataset seed so
  /// the same fault schedule can be replayed against different worlds.
  std::uint64_t seed{0};

  // ---- sampler layer (per sampled session, keyed by session id) ----------
  /// Record cut mid-line before parsing (capture truncation).
  double truncate_rate{0};
  /// Record with mutated fields (bit flips / garbage captures).
  double corrupt_rate{0};
  /// Record delivered twice (at-least-once shipping).
  double duplicate_rate{0};
  /// ACK-timestamp stream shifted against the NIC-timestamp stream (clock
  /// skew between the MinRTT and HDratio instrumentation points).
  double skew_rate{0};
  /// Skew magnitude: shift drawn uniformly from [-skew_max, skew_max].
  Duration skew_max{0.25};
  /// Per group: most sessions dropped, leaving under-30-sample windows.
  double thin_rate{0};
  /// Fraction of a thinned group's sessions that survive.
  double thin_keep_fraction{0.1};
  /// Per PoP: every group served by the PoP goes silent (empty PoP).
  double pop_outage_rate{0};

  // ---- aggregation layer (per (group, window)) ---------------------------
  /// Aggregated 15-minute window dropped before analysis.
  double window_drop_rate{0};

  // ---- stream layer (per (group, window, micro-batch)) -------------------
  /// Micro-batch delivery held back by 1..stream_late_max_delay windows of
  /// event time (delivery-order fault on the source -> window-machine
  /// transport). Held batches whose windows seal in the meantime become
  /// counted late-drops at the machine.
  double stream_late_rate{0};
  /// Maximum hold-back of a late batch, in 15-minute windows (>= 1).
  int stream_late_max_delay{4};
  /// Micro-batch delivered twice (at-least-once transport), inflating the
  /// open window exactly like duplicated sampler records.
  double stream_duplicate_rate{0};

  // ---- runtime layer (per (group, attempt)) ------------------------------
  /// Shard task abort probability per attempt.
  double task_abort_rate{0};
  /// Attempts per group before it is abandoned (>= 1).
  int task_max_attempts{3};
  /// Base backoff between attempts (doubles per retry); 0 = no sleep.
  double task_backoff_seconds{0};

  // ---- distrib layer (per (shard, attempt)) ------------------------------
  /// Probability that a shard worker process crashes on a given attempt —
  /// before publishing anything, so a crashed attempt can never leave a
  /// partial artifact or manifest behind. The coordinator re-spawns up to
  /// worker_max_attempts total attempts, then degrades the shard to cold
  /// ingest during the reduce (output stays byte-identical; the loss is
  /// counted in FaultCounters::degraded_shards).
  double worker_crash_rate{0};
  /// Spawn attempts per shard before it is degraded (>= 1).
  int worker_max_attempts{2};

  bool sampler_faults() const {
    return truncate_rate > 0 || corrupt_rate > 0 || duplicate_rate > 0 ||
           skew_rate > 0 || thin_rate > 0 || pop_outage_rate > 0;
  }
  bool agg_faults() const { return window_drop_rate > 0; }
  bool stream_faults() const {
    return stream_late_rate > 0 || stream_duplicate_rate > 0;
  }
  bool runtime_faults() const { return task_abort_rate > 0; }
  bool worker_faults() const { return worker_crash_rate > 0; }
  bool enabled() const {
    return sampler_faults() || agg_faults() || stream_faults() ||
           runtime_faults() || worker_faults();
  }
};

/// Fault-site salts: each site derives its own decision stream so adding a
/// site (or toggling one rate) never reshuffles another site's decisions.
namespace faultsite {
constexpr std::uint64_t kTruncate = 0x7472756e63617465ULL;     // "truncate"
constexpr std::uint64_t kTruncatePos = 0x7472756e63706f73ULL;  // "truncpos"
constexpr std::uint64_t kCorrupt = 0x636f727275707431ULL;      // "corrupt1"
constexpr std::uint64_t kCorruptKind = 0x636f72406b696e64ULL;
constexpr std::uint64_t kSkewDelta = 0x736b6577406d6167ULL;
constexpr std::uint64_t kDuplicate = 0x6475706c6963617BULL;
constexpr std::uint64_t kSkew = 0x736b657764656c74ULL;         // "skewdelt"
constexpr std::uint64_t kThinGroup = 0x7468696e67727570ULL;    // "thingrup"
constexpr std::uint64_t kThinKeep = 0x7468696e6b656570ULL;     // "thinkeep"
constexpr std::uint64_t kPopOutage = 0x706f706f75746167ULL;    // "popoutag"
constexpr std::uint64_t kWindowDrop = 0x77696e64726f7031ULL;   // "windrop1"
constexpr std::uint64_t kTaskAbort = 0x7461736b61626f72ULL;    // "taskabor"
constexpr std::uint64_t kStreamLate = 0x7374726d6c617465ULL;   // "strmlate"
constexpr std::uint64_t kStreamLateDelay = 0x7374726d64656c79ULL;  // "strmdely"
constexpr std::uint64_t kStreamDup = 0x7374726d64757031ULL;    // "strmdup1"
constexpr std::uint64_t kWorkerCrash = 0x776f726b63726173ULL;  // "workcras"
// Scenario-pack perturbation sites (src/scenario/): same purity rule as the
// fault sites above, but seeded from ScenarioPack::seed instead of a
// FaultPlan. kScenarioDepref is structural (no draw today) and reserved so
// a future probabilistic depref cannot collide with another site.
constexpr std::uint64_t kScenarioDrain = 0x7363646e7261696eULL;     // "scdnrain"
constexpr std::uint64_t kScenarioDepref = 0x7363646570726566ULL;    // "scdepref"
constexpr std::uint64_t kScenarioFlash = 0x7363666c61736831ULL;     // "scflash1"
constexpr std::uint64_t kScenarioCableCut = 0x7363636162637574ULL;  // "sccabcut"
}  // namespace faultsite

/// The decision stream for one (site, entity) pair. Fresh per call: the
/// first draws decide the injection, later draws parameterize it (cut
/// position, skew delta, ...), and no state survives between entities.
inline Rng fault_stream(const FaultPlan& plan, std::uint64_t site,
                        std::uint64_t key) {
  return entity_stream(plan.seed ^ site, key);
}

/// One Bernoulli injection decision; false whenever the rate is zero
/// (without deriving a stream, so a zeroed plan costs nothing).
inline bool fault_decision(const FaultPlan& plan, std::uint64_t site,
                           std::uint64_t key, double rate) {
  if (rate <= 0) return false;
  return fault_stream(plan, site, key).bernoulli(rate);
}

/// Canonical fault key of a user group (same value on every thread/shard).
inline std::uint64_t group_fault_key(const UserGroupKey& key) {
  return static_cast<std::uint64_t>(UserGroupKeyHash{}(key));
}

/// Canonical fault key of one stream micro-batch: (group, nominal window,
/// sequence within the window). Pure data — independent of delivery order
/// and thread count — so the stream fault sites (kStreamLate /
/// kStreamLateDelay / kStreamDup) are exactly recountable.
inline std::uint64_t stream_batch_fault_key(std::uint64_t group_key, int window,
                                            int seq) {
  return hash_combine(group_key,
                      hash_combine(static_cast<std::uint64_t>(window),
                                   static_cast<std::uint64_t>(seq)));
}

/// Whether the shard task for `group_key` aborts on `attempt` (runtime
/// layer). Deterministic in (plan, group, attempt): a group is lost iff
/// the decision holds for every attempt 0..task_max_attempts-1.
inline bool task_abort_decision(const FaultPlan& plan, std::uint64_t group_key,
                                int attempt) {
  return fault_decision(plan, faultsite::kTaskAbort,
                        hash_combine(group_key, static_cast<std::uint64_t>(attempt)),
                        plan.task_abort_rate);
}

/// Whether the worker process for shard `shard` crashes on `attempt`
/// (distrib layer). Deterministic in (plan, shard, attempt) — independent
/// of pids, spawn order, and wall time — so a shard is degraded iff the
/// decision holds for every attempt 0..worker_max_attempts-1, and any test
/// can recount coordinator crash/retry/degrade tallies exactly from the
/// plan and the shard count alone. The worker checks this before touching
/// the cache directory, so a crashed attempt never publishes an artifact
/// or manifest.
inline bool worker_crash_decision(const FaultPlan& plan, int shard, int attempt) {
  return fault_decision(plan, faultsite::kWorkerCrash,
                        hash_combine(static_cast<std::uint64_t>(shard),
                                     static_cast<std::uint64_t>(attempt)),
                        plan.worker_crash_rate);
}

}  // namespace fbedge
