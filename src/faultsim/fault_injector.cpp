#include "faultsim/fault_injector.h"

#include <cmath>
#include <limits>
#include <string>

#include "agg/aggregation.h"

namespace fbedge {

SamplerFaultStage::SamplerFaultStage(const FaultPlan& plan,
                                     const UserGroupKey& group)
    : plan_(plan) {
  // PoP outage is keyed by the PoP alone so every group served by an
  // affected PoP goes silent together.
  pop_out_ = fault_decision(plan_, faultsite::kPopOutage,
                            static_cast<std::uint64_t>(group.pop.value),
                            plan_.pop_outage_rate);
  if (pop_out_) {
    ++counters_.pop_outage_groups;
    return;
  }
  thinned_ = fault_decision(plan_, faultsite::kThinGroup, group_fault_key(group),
                            plan_.thin_rate);
  if (thinned_) ++counters_.thinned_groups;
}

bool SamplerFaultStage::truncate_record(const SessionSample& s) {
  // Exercise the real wire format: serialize, cut mid-line, re-parse. A cut
  // almost never lands on a record boundary, so the record is usually lost;
  // when it does parse, the validation gate still applies.
  const std::string line = serialize_sample(s);
  if (line.size() < 2) return false;
  Rng rng = fault_stream(plan_, faultsite::kTruncatePos, s.id.value);
  const auto cut = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(line.size()) - 1));
  const auto parsed = parse_sample(line.substr(0, cut));
  if (!parsed || validate_sample(*parsed) != SampleDefect::kNone) return false;
  scratch_ = *parsed;
  return true;
}

void SamplerFaultStage::corrupt_record(const SessionSample& s) {
  scratch_ = s;
  Rng rng = fault_stream(plan_, faultsite::kCorruptKind, s.id.value);
  switch (rng.uniform_int(0, 5)) {
    case 0: scratch_.total_bytes = -1; break;
    case 1: scratch_.min_rtt = -0.05; break;
    case 2: scratch_.min_rtt = std::numeric_limits<double>::quiet_NaN(); break;
    case 3: scratch_.client.bgp_prefix.length = 99; break;
    case 4: scratch_.route_index = -3; break;
    default:
      if (!scratch_.writes.empty()) {
        scratch_.writes.front().bytes = -500;
      } else {
        scratch_.num_transactions = -1;
      }
      break;
  }
}

void SamplerFaultStage::skew_record(const SessionSample& s) {
  scratch_ = s;
  Rng rng = fault_stream(plan_, faultsite::kSkewDelta, s.id.value);
  // The ACK stream's clock drifts against the NIC stream's; min_rtt (the
  // MinRTT stream) and the NIC write timestamps stay put. A negative delta
  // can drive a transaction's Ttotal to or below zero — exactly the input
  // the goodput evaluator must reject rather than abort on.
  const Duration delta = rng.uniform(-plan_.skew_max, plan_.skew_max);
  for (auto& w : scratch_.writes) {
    w.second_last_ack += delta;
    w.last_ack += delta;
  }
}

void AggFaultStage::apply(GroupSeries& series, std::uint64_t group_key,
                          FaultCounters& counters) const {
  if (plan_.window_drop_rate <= 0) return;
  counters.dropped_windows +=
      series.windows.remove_if([&](int w, const WindowAgg&) {
        return fault_decision(
            plan_, faultsite::kWindowDrop,
            hash_combine(group_key, static_cast<std::uint64_t>(w)),
            plan_.window_drop_rate);
      });
}

}  // namespace fbedge
