// Fault-injection stages for the measurement pipeline.
//
// SamplerFaultStage sits between the dataset generator and per-session
// metric extraction (where the load balancer hands records to the
// analytics tier, §2.2.2): it truncates, corrupts, duplicates, skews,
// thins, and silences records per the FaultPlan, and guarantees that no
// record failing semantic validation (sampler/io.h) is ever emitted
// downstream. AggFaultStage drops whole aggregated windows from a group's
// series (post-aggregation data loss). Both count every injection into a
// FaultCounters, and both make decisions via the pure functions in
// fault_plan.h, so tests can recompute the injected counts exactly.
#pragma once

#include "faultsim/fault_plan.h"
#include "runtime/run_stats.h"
#include "sampler/io.h"
#include "sampler/record.h"

namespace fbedge {

struct GroupSeries;

/// Per-group sampler-layer injector. Construct one per user group (the
/// group-level decisions — PoP outage, thinning — are fixed at
/// construction), then apply() each generated sample; surviving records
/// (possibly mutated, possibly repeated) are passed to `emit`.
class SamplerFaultStage {
 public:
  SamplerFaultStage(const FaultPlan& plan, const UserGroupKey& group);

  /// Runs the sampler fault schedule for one record. `emit` is called 0, 1,
  /// or 2 times with a record that passed validation.
  template <typename Emit>
  void apply(const SessionSample& s, Emit&& emit) {
    if (pop_out_) return;
    const std::uint64_t key = s.id.value;
    if (thinned_ &&
        !fault_stream(plan_, faultsite::kThinKeep, key)
             .bernoulli(plan_.thin_keep_fraction)) {
      ++counters_.thinned_sessions;
      return;
    }
    // At most one mutating fault per record, decided in priority order;
    // each site draws from its own stream so the priorities don't couple.
    const SessionSample* out = &s;
    if (fault_decision(plan_, faultsite::kTruncate, key, plan_.truncate_rate)) {
      ++counters_.truncated_records;
      if (!truncate_record(s)) {
        ++counters_.rejected_records;
        return;
      }
      out = &scratch_;
    } else if (fault_decision(plan_, faultsite::kCorrupt, key, plan_.corrupt_rate)) {
      ++counters_.corrupt_records;
      corrupt_record(s);
      if (validate_sample(scratch_) != SampleDefect::kNone) {
        ++counters_.rejected_records;
        return;
      }
      out = &scratch_;
    } else if (fault_decision(plan_, faultsite::kSkew, key, plan_.skew_rate)) {
      ++counters_.skewed_samples;
      skew_record(s);
      out = &scratch_;
    }
    emit(*out);
    if (fault_decision(plan_, faultsite::kDuplicate, key, plan_.duplicate_rate)) {
      ++counters_.duplicated_samples;
      emit(*out);
    }
  }

  /// Group was silenced by a PoP outage (nothing will be emitted).
  bool pop_out() const { return pop_out_; }
  /// Group is thinned (most sessions dropped).
  bool thinned() const { return thinned_; }

  const FaultCounters& counters() const { return counters_; }

 private:
  /// Serializes, cuts at a derived position, and re-parses + validates into
  /// scratch_. Returns false when the mangled record is unusable (the
  /// overwhelmingly common outcome).
  bool truncate_record(const SessionSample& s);
  /// Copies `s` into scratch_ and mutates one field per a derived draw.
  void corrupt_record(const SessionSample& s);
  /// Copies `s` into scratch_ and shifts the ACK timestamps of every write
  /// by a derived delta (the NIC timestamps and min_rtt stay put).
  void skew_record(const SessionSample& s);

  FaultPlan plan_;
  bool pop_out_{false};
  bool thinned_{false};
  FaultCounters counters_;
  SessionSample scratch_;
};

/// Aggregation-layer injector: window drops on an aggregated group series.
class AggFaultStage {
 public:
  explicit AggFaultStage(const FaultPlan& plan) : plan_(plan) {}

  /// Removes each of the series' windows per the plan's window_drop_rate
  /// (decision keyed by (group, window index)); counts into `counters`.
  void apply(GroupSeries& series, std::uint64_t group_key,
             FaultCounters& counters) const;

 private:
  FaultPlan plan_;
};

}  // namespace fbedge
