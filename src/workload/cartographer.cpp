#include "workload/cartographer.h"

#include <cmath>
#include <limits>

#include "util/expect.h"

namespace fbedge {

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDeg = M_PI / 180.0;
  const double dlat = (b.lat - a.lat) * kDeg;
  const double dlon = (b.lon - a.lon) * kDeg;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(a.lat * kDeg) * std::cos(b.lat * kDeg) *
                       std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

Duration propagation_delay(double distance_km) {
  constexpr double kPathInflation = 1.7;    // fibre rarely follows great circles
  constexpr double kGlassKmPerSec = 2.0e5;  // ~2/3 c
  return distance_km * kPathInflation / kGlassKmPerSec;
}

std::vector<PopSite> default_pop_sites() {
  // Two metros per continent, index-aligned with the world builder's PoPs.
  return {
      {0, Continent::kAfrica, {6.5, 3.4}},            // Lagos
      {1, Continent::kAfrica, {-26.2, 28.0}},         // Johannesburg
      {2, Continent::kAsia, {1.35, 103.8}},           // Singapore
      {3, Continent::kAsia, {35.7, 139.7}},           // Tokyo
      {4, Continent::kEurope, {50.1, 8.7}},           // Frankfurt
      {5, Continent::kEurope, {51.5, -0.1}},          // London
      {6, Continent::kNorthAmerica, {39.0, -77.5}},   // Ashburn
      {7, Continent::kNorthAmerica, {37.4, -122.1}},  // Palo Alto
      {8, Continent::kOceania, {-33.9, 151.2}},       // Sydney
      {9, Continent::kOceania, {-36.8, 174.8}},       // Auckland
      {10, Continent::kSouthAmerica, {-23.5, -46.6}}, // Sao Paulo
      {11, Continent::kSouthAmerica, {-34.6, -58.4}}, // Buenos Aires
  };
}

GeoPoint continent_anchor(Continent c) {
  switch (c) {
    case Continent::kAfrica: return {0.0, 20.0};
    case Continent::kAsia: return {23.0, 100.0};
    case Continent::kEurope: return {50.0, 10.0};
    case Continent::kNorthAmerica: return {39.0, -98.0};
    case Continent::kOceania: return {-30.0, 150.0};
    case Continent::kSouthAmerica: return {-15.0, -58.0};
  }
  return {0.0, 0.0};
}

Cartographer::Cartographer(std::vector<PopSite> pops, CartographerConfig config)
    : pops_(std::move(pops)), config_(config), rng_(config.seed) {
  FBEDGE_EXPECT(!pops_.empty(), "cartographer needs PoP sites");
}

int Cartographer::nearest_pop(const GeoPoint& where, Continent continent,
                              bool same_continent, double* distance_out) const {
  int best = -1;
  double best_km = std::numeric_limits<double>::infinity();
  for (const auto& pop : pops_) {
    if ((pop.continent == continent) != same_continent) continue;
    const double km = haversine_km(where, pop.location);
    if (km < best_km) {
      best_km = km;
      best = pop.index;
    }
  }
  if (distance_out) *distance_out = best_km;
  return best;
}

IngressAssignment Cartographer::assign(const GeoPoint& where, Continent continent) {
  // Coverage shortfall: some AF/AS populations cannot be served in-continent
  // (2019-era PoP density) and map to a PoP on the overflow continent —
  // Europe — reproducing the EU->AS / EU->AF flows of §2.1.
  double remote_fraction = 0;
  if (continent == Continent::kAfrica) remote_fraction = config_.africa_remote_fraction;
  if (continent == Continent::kAsia) remote_fraction = config_.asia_remote_fraction;

  if (remote_fraction > 0 && continent != config_.overflow_continent &&
      rng_.bernoulli(remote_fraction)) {
    return assign_overflow(where);
  }
  return assign_local(where, continent);
}

IngressAssignment Cartographer::assign_local(const GeoPoint& where,
                                             Continent continent) {
  IngressAssignment out;
  out.pop_index =
      nearest_pop(where, continent, /*same_continent=*/true, &out.distance_km);
  out.cross_continent = false;
  FBEDGE_EXPECT(out.pop_index >= 0, "no PoP available for assignment");
  return out;
}

IngressAssignment Cartographer::assign_overflow(const GeoPoint& where) {
  IngressAssignment out;
  out.pop_index = nearest_pop(where, config_.overflow_continent,
                              /*same_continent=*/true, &out.distance_km);
  out.cross_continent = true;
  FBEDGE_EXPECT(out.pop_index >= 0, "no PoP available for assignment");
  return out;
}

}  // namespace fbedge
