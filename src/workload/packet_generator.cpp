#include "workload/packet_generator.h"

#include <algorithm>

namespace fbedge {

SessionSample run_packet_session(const UserGroupProfile& group, const SessionSpec& spec,
                                 int route_index, SimTime start, Rng& rng,
                                 const PacketSessionConfig& config) {
  SessionSample sample;
  sample.id = spec.id;
  sample.pop = group.key.pop;
  sample.client.bgp_prefix = group.key.prefix;
  sample.client.asn = group.asn;
  sample.client.country = group.key.country;
  sample.client.continent = group.continent;
  sample.client.ip =
      group.key.prefix.addr + static_cast<std::uint32_t>(rng.uniform_int(1, 1000));
  sample.version = spec.version;
  sample.endpoint = spec.endpoint;
  sample.established_at = start;
  sample.route_index = route_index;
  sample.num_transactions = static_cast<int>(spec.transactions.size());

  const BitsPerSecond client_rate = draw_client_rate(group, rng);
  const PathConditions path = path_conditions(group, route_index, start, client_rate);

  Simulator sim;
  LinkConfig forward{.rate = path.bottleneck,
                     .delay = path.min_rtt / 2,
                     .queue_capacity = config.queue_capacity,
                     .loss_rate = path.loss_rate,
                     .jitter = path.jitter};
  LinkConfig reverse{.rate = 0, .delay = path.min_rtt / 2, .jitter = path.jitter};
  TcpConnection conn(sim, config.tcp, forward, reverse, rng());
  conn.handshake();

  // Serve transactions serially: each write is issued when its request
  // arrives or the previous response finishes, whichever is later.
  Duration busy = 0;
  std::size_t next = 0;
  std::function<void()> issue = [&] {
    if (next >= spec.transactions.size()) return;
    const auto& txn = spec.transactions[next];
    ++next;
    const SimTime issue_at = std::max<SimTime>(txn.at, sim.now());
    sim.schedule(issue_at - sim.now(), [&, bytes = txn.response_bytes] {
      conn.sender().write(bytes, [&](const TransferReport& r) {
        ResponseWrite w;
        w.first_byte_nic = r.first_byte_sent;
        w.last_byte_nic = r.first_byte_sent;  // whole response buffered at once
        w.second_last_ack = r.second_to_last_acked;
        w.last_ack = r.last_byte_acked;
        w.bytes = r.bytes;
        w.last_packet_bytes = r.last_packet_bytes;
        w.wnic = r.wnic;
        sample.writes.push_back(w);
        sample.total_bytes += r.bytes;
        busy += r.full_duration();
        issue();
      });
    });
  };
  issue();
  sim.run_until(config.session_deadline);

  sample.duration = std::max<Duration>(spec.duration, sim.now());
  sample.busy_time = std::min(busy, sample.duration);
  const Duration min_rtt = conn.sender().min_rtt().lifetime_min();
  sample.min_rtt = std::isfinite(min_rtt) ? min_rtt : path.min_rtt;
  return sample;
}

}  // namespace fbedge
