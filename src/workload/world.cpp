#include "workload/world.h"

#include <algorithm>
#include <cmath>

#include "routing/policy.h"
#include "util/expect.h"

namespace fbedge {

namespace {

/// Per-continent calibration (paper §4, Fig. 6; Sandvine-style traffic
/// shares). RTT medians are end-to-end MinRTT targets; the builder deducts
/// nothing for route offsets since preferred-route offsets are ~0-2 ms.
struct ContinentParams {
  Continent continent;
  double traffic_share;
  Duration median_rtt;
  double rtt_sigma;     // lognormal sigma in log-space
  double non_hd_median; // fraction of clients that cannot sustain HD
  double tz_lo, tz_hi;  // local-time offsets in hours
};

// The non-HD shares are set below the paper's observed HDratio=0 shares
// (AF 36% / AS 24% / SA 27%) because marginal HD-capable clients also land
// at HDratio 0 when loss or peak-hour congestion strikes; the *measured*
// shares land on the paper's numbers.
// AF/AS medians are *local-serving* targets: Cartographer adds the
// intercontinental round trip for the ~30%/14% of their traffic served
// from Europe, which lifts the observed continent medians to the paper's
// 58/51 ms.
constexpr ContinentParams kContinentParams[] = {
    {Continent::kAfrica, 0.07, 0.048, 0.33, 0.25, 0.0, 3.0},
    {Continent::kAsia, 0.35, 0.048, 0.33, 0.15, 5.0, 9.0},
    {Continent::kEurope, 0.20, 0.024, 0.40, 0.06, 0.0, 2.0},
    {Continent::kNorthAmerica, 0.25, 0.024, 0.40, 0.05, -8.0, -5.0},
    {Continent::kOceania, 0.03, 0.022, 0.40, 0.07, 8.0, 11.0},
    {Continent::kSouthAmerica, 0.10, 0.040, 0.45, 0.18, -5.0, -3.0},
};

constexpr std::uint32_t kTier1Asns[] = {3356, 1299, 174, 2914, 6762, 3257};

std::vector<std::uint32_t> peer_path(std::uint32_t asn) { return {asn}; }

std::vector<std::uint32_t> transit_path(std::uint32_t tier1, std::uint32_t asn,
                                        int prepends) {
  std::vector<std::uint32_t> path{tier1};
  path.push_back(asn);
  for (int i = 0; i < prepends; ++i) path.push_back(asn);
  return path;
}

/// Route-set templates reflecting §6.1: most groups have a private peer
/// preferred over transit alternates.
std::vector<RouteProfile> make_routes(const IpPrefix& prefix, std::uint32_t asn,
                                      Rng& rng) {
  const std::uint32_t t1a = kTier1Asns[rng.uniform_int(0, 5)];
  const std::uint32_t t1b = kTier1Asns[rng.uniform_int(0, 5)];
  std::vector<RouteProfile> routes;
  auto add = [&](Relationship rel, std::vector<std::uint32_t> path, Duration offset) {
    RouteProfile r;
    r.route.prefix = prefix;
    r.route.as_path = std::move(path);
    r.route.relationship = rel;
    r.rtt_offset = offset;
    r.base_loss = rng.uniform(0.0001, 0.001);
    r.capacity = rng.uniform(80.0, 400.0) * kMbps;
    routes.push_back(std::move(r));
  };

  const double u = rng.uniform();
  const Duration peer_off = rng.uniform(0.0, 0.002);
  if (u < 0.48) {
    // Private peer + two transits.
    add(Relationship::kPrivatePeer, peer_path(asn), peer_off);
    add(Relationship::kTransit, transit_path(t1a, asn, 0), rng.uniform(0.001, 0.008));
    add(Relationship::kTransit, transit_path(t1b, asn, rng.bernoulli(0.3) ? 2 : 0),
        rng.uniform(0.002, 0.010));
  } else if (u < 0.60) {
    // Two private interconnects to the same AS (e.g. different metros);
    // the second announces a prepended path to steer bulk traffic away
    // even though its physical path is often shorter (§6.2.2 hints this is
    // capacity-driven ingress TE) — the paper's Table 2 "Longer/Prepended"
    // situation, where the policy-losing route would perform better.
    const Duration faster_extra = rng.uniform(0.006, 0.014);  // drawn always
    const bool prepended_is_faster = rng.bernoulli(0.15);
    add(Relationship::kPrivatePeer, peer_path(asn),
        peer_off + (prepended_is_faster ? faster_extra : 0.001));
    std::vector<std::uint32_t> prepended{asn, asn};
    add(Relationship::kPrivatePeer, std::move(prepended), peer_off);
    add(Relationship::kTransit, transit_path(t1a, asn, 0), rng.uniform(0.001, 0.008));
  } else if (u < 0.75) {
    // Public IXP peer + two transits.
    add(Relationship::kPublicPeer, peer_path(asn), peer_off + 0.0005);
    add(Relationship::kTransit, transit_path(t1a, asn, 0), rng.uniform(0.001, 0.008));
    add(Relationship::kTransit, transit_path(t1b, asn, 0), rng.uniform(0.002, 0.010));
  } else if (u < 0.90) {
    // Private + public peers + one transit.
    add(Relationship::kPrivatePeer, peer_path(asn), peer_off);
    add(Relationship::kPublicPeer, peer_path(asn), peer_off + rng.uniform(0.0, 0.002));
    add(Relationship::kTransit, transit_path(t1a, asn, 0), rng.uniform(0.001, 0.008));
  } else {
    // Transit-only (no peering with this AS).
    add(Relationship::kTransit, transit_path(t1a, asn, 0), rng.uniform(0.000, 0.004));
    add(Relationship::kTransit, transit_path(t1b, asn, rng.bernoulli(0.3) ? 2 : 0),
        rng.uniform(0.001, 0.008));
  }

  // Rank by the §6.1 policy so index 0 is the preferred route.
  std::vector<Route> bare;
  bare.reserve(routes.size());
  for (const auto& r : routes) bare.push_back(r.route);
  std::stable_sort(routes.begin(), routes.end(),
                   [](const RouteProfile& a, const RouteProfile& b) {
                     return RoutingPolicy::compare(a.route, b.route) < 0;
                   });
  return routes;
}

}  // namespace

World build_world(const WorldConfig& config) {
  Rng rng(config.seed);
  World world;

  // Two PoPs per continent (a metro pair) — enough to exercise the PoP
  // dimension of the user-group key.
  std::uint32_t pop_id = 1;
  for (const auto& params : kContinentParams) {
    for (int i = 0; i < 2; ++i) {
      PopInfo pop;
      pop.id = PopId{pop_id++};
      pop.continent = params.continent;
      pop.name = std::string(to_code(params.continent)) + "-pop" + std::to_string(i + 1);
      world.pops.push_back(pop);
    }
  }

  std::uint32_t next_asn = 64500;
  std::uint32_t next_net = 0x0a000000;  // 10.0.0.0 onwards
  std::uint64_t group_seq = 0;

  // Ingress mapping (§2.1): groups get coordinates; Cartographer assigns
  // the serving PoP with Europe absorbing AF/AS coverage shortfall.
  const std::vector<PopSite> sites = default_pop_sites();
  Cartographer cartographer(sites, {.seed = config.seed ^ 0xCA270ULL});

  for (std::size_t ci = 0; ci < std::size(kContinentParams); ++ci) {
    const auto& params = kContinentParams[ci];
    for (int g = 0; g < config.groups_per_continent; ++g) {
      UserGroupProfile group;
      group.continent = params.continent;
      group.asn = Asn{next_asn};
      if (g % 2 == 1) ++next_asn;  // two prefixes per AS on average

      // Allocate a disjoint, properly aligned block for the prefix.
      const int prefix_len = static_cast<int>(rng.uniform_int(16, 22));
      const std::uint32_t block = 1u << (32 - prefix_len);
      next_net = (next_net + block - 1) & ~(block - 1);  // align up
      group.key.prefix = IpPrefix{next_net, prefix_len};
      next_net += block;
      group.key.country = CountryId{static_cast<std::uint32_t>(ci * 100 + g % 3)};

      // Place the population: ~55% in a PoP metro area, the rest scattered
      // across the continent — calibrated so half of all traffic is within
      // 500 km of its PoP and 90% within 2500 km (§2.1).
      if (rng.bernoulli(0.55)) {
        const auto& metro = sites[ci * 2 + static_cast<std::size_t>(rng.uniform_int(0, 1))];
        group.location = {metro.location.lat + rng.normal(0, 1.5),
                          metro.location.lon + rng.normal(0, 1.5)};
      } else {
        const GeoPoint anchor = continent_anchor(params.continent);
        group.location = {anchor.lat + rng.normal(0, 9.0),
                          anchor.lon + rng.normal(0, 13.0)};
      }
      // Stratified overflow decision (exact fractions instead of a per-
      // group coin flip, which at bench-scale group counts has enough
      // variance to distort the continent medians).
      double remote_fraction = 0;
      if (params.continent == Continent::kAfrica) remote_fraction = 0.30;
      if (params.continent == Continent::kAsia) remote_fraction = 0.14;
      const bool remote =
          std::floor((g + 1) * remote_fraction) > std::floor(g * remote_fraction);
      const IngressAssignment ingress =
          remote ? cartographer.assign_overflow(group.location)
                 : cartographer.assign_local(group.location, params.continent);
      group.key.pop = world.pops[static_cast<std::size_t>(ingress.pop_index)].id;
      group.pop_distance_km = ingress.distance_km;
      group.remote_served = ingress.cross_continent;
      // Remote serving adds the intercontinental propagation round trip on
      // top of the (locally calibrated) base RTT draw, capped: operators
      // route overflow to the *nearest* viable remote PoP.
      const Duration remote_extra =
          ingress.cross_continent
              ? std::min(0.075, std::max(0.0, 2.0 * (propagation_delay(
                                                         ingress.distance_km) -
                                                     propagation_delay(800.0))))
              : 0.0;

      group.tz_offset_hours = rng.uniform(params.tz_lo, params.tz_hi);
      group.base_rtt =
          rng.lognormal(std::log(params.median_rtt), params.rtt_sigma) + remote_extra;
      group.base_rtt = std::clamp(group.base_rtt, 0.002, 0.800);
      group.jitter_mean = rng.uniform(0.0002, 0.003);
      group.non_hd_fraction =
          std::clamp(params.non_hd_median + rng.normal(0.0, 0.08), 0.01, 0.85);
      // Volume per group: enough that alternate routes (26.5% of sampled
      // sessions each) clear the 30-sample validity floor for HD-testable
      // sessions in most windows, as the paper's per-PoP volumes did.
      group.sessions_per_window = rng.lognormal(std::log(320.0), 0.4);
      group.weight = params.traffic_share / config.groups_per_continent;

      group.routes = make_routes(group.key.prefix, next_asn, rng);

      // Temporal processes.
      if (rng.bernoulli(config.dest_diurnal_fraction)) {
        group.dest_diurnal = true;
        group.dest_peak_delay = rng.uniform(0.003, 0.025);
        group.dest_peak_loss = rng.uniform(0.002, 0.02);
      }
      if (group.routes.size() >= 2 && rng.bernoulli(config.route_diurnal_fraction)) {
        auto& preferred = group.routes.front();
        preferred.diurnal_congestion = true;
        preferred.peak_extra_delay = rng.uniform(0.005, 0.020);
        preferred.peak_extra_loss = rng.uniform(0.005, 0.03);
      }
      if (group.routes.size() >= 2 &&
          rng.bernoulli(config.continuous_opportunity_fraction)) {
        // Preferred route persistently slower than the best alternate —
        // e.g. a peer with a circuitous internal path (§6.2.1 continuous).
        // Sized so the 5 ms threshold is confidently cleared.
        group.routes.front().rtt_offset += rng.uniform(0.008, 0.020);
      }
      if (rng.bernoulli(config.episodic_fraction)) {
        const int episodes = static_cast<int>(rng.uniform_int(1, 3));
        const int total_windows = config.days * 96;
        for (int e = 0; e < episodes; ++e) {
          Episode ep;
          ep.start_window = static_cast<int>(rng.uniform_int(0, total_windows - 9));
          ep.end_window = ep.start_window + static_cast<int>(rng.uniform_int(1, 8));
          ep.route_index = rng.bernoulli(0.5) ? -1 : 0;
          ep.extra_delay = rng.uniform(0.005, 0.030);
          ep.extra_loss = rng.uniform(0.0, 0.03);
          group.episodes.push_back(ep);
        }
      }

      (void)group_seq;
      ++group_seq;
      world.groups.push_back(std::move(group));
    }
  }
  return world;
}

bool in_peak_hours(const UserGroupProfile& group, SimTime t) {
  const double local_hours = t / 3600.0 + group.tz_offset_hours;
  // One fmod instead of two: f is in (-24, 24), so g = f + 24 lands in
  // (0, 48] and fmod(g, 24) is g, g - 24 (exact by Sterbenz), or 0 at
  // g == 48 — reproduced bit-for-bit by the comparisons below, including
  // the rounding of f + 24 near the boundaries.
  const double f = std::fmod(local_hours, 24.0);
  const double g = f + 24.0;
  double hour_of_day = g >= 24.0 ? g - 24.0 : g;
  if (hour_of_day >= 24.0) hour_of_day -= 24.0;
  return hour_of_day >= 19.0 && hour_of_day < 23.0;
}

PathConditions path_conditions(const UserGroupProfile& group, int route_index, SimTime t,
                               BitsPerSecond client_rate) {
  FBEDGE_EXPECT(route_index >= 0 && route_index < static_cast<int>(group.routes.size()),
                "route index out of range");
  const RouteProfile& route = group.routes[static_cast<std::size_t>(route_index)];

  PathConditions path;
  path.min_rtt = group.base_rtt + route.rtt_offset;
  path.loss_rate = route.base_loss;
  path.jitter = group.jitter_mean;
  path.bottleneck = std::min(client_rate, route.capacity);

  const bool peak = in_peak_hours(group, t);
  if (peak && group.dest_diurnal) {
    path.min_rtt += group.dest_peak_delay;
    path.loss_rate += group.dest_peak_loss;
  }
  if (peak && route.diurnal_congestion) {
    path.min_rtt += route.peak_extra_delay;
    path.loss_rate += route.peak_extra_loss;
  }

  const int window = window_index(t);
  for (const auto& ep : group.episodes) {
    if (window >= ep.start_window && window < ep.end_window &&
        (ep.route_index < 0 || ep.route_index == route_index)) {
      path.min_rtt += ep.extra_delay;
      path.loss_rate += ep.extra_loss;
    }
  }
  path.loss_rate = std::min(path.loss_rate, 0.3);
  return path;
}

BitsPerSecond draw_client_rate(const UserGroupProfile& group, Rng& rng) {
  if (rng.bernoulli(group.non_hd_fraction)) {
    return rng.uniform(0.3, 2.2) * kMbps;
  }
  const double rate = rng.lognormal(std::log(12.0), 0.8);
  return std::clamp(rate, 2.6, 500.0) * kMbps;
}

}  // namespace fbedge
