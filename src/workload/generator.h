// Dataset generator: drives the synthetic world through the fluid TCP
// model and emits the SessionSamples the load-balancer instrumentation
// would have captured (§2.2).
//
// Sessions are generated group-by-group so that downstream analysis can
// process one user group's full 10-day series at a time and release it —
// the whole dataset never needs to be resident.
#pragma once

#include <functional>

#include "sampler/record.h"
#include "sampler/sampler.h"
#include "workload/distributions.h"
#include "workload/world.h"

namespace fbedge {

struct DatasetConfig {
  std::uint64_t seed{7};
  int days{10};
  /// Multiplies every group's sessions_per_window (sampled-session counts).
  double session_scale{1.0};
  /// Route-override behaviour (§2.2.3): fraction on preferred route and
  /// number of alternates under continuous measurement.
  SamplerConfig sampler;
  /// Fraction of sessions from hosting-provider / VPN clients (§2.2.4
  /// filters these; the generator produces them so the filter has work).
  double hosting_fraction{0.02};
  /// Fraction of sessions behind a bufferbloated access link: every RTT
  /// the session observes is inflated by hundreds of ms to seconds (§3.3
  /// cites tail MinRTT values "on the order of seconds"). These sessions
  /// are why the aggregation layer uses medians, not means.
  double bufferbloat_fraction{0.004};
};

using SessionSink = std::function<void(const SessionSample&)>;

class DatasetGenerator {
 public:
  DatasetGenerator(const World& world, DatasetConfig config);

  /// Emits every sampled session of one group across the whole study span,
  /// in time order.
  void generate_group(const UserGroupProfile& group, const SessionSink& sink) const;

  /// Emits all groups, one at a time.
  void generate(const SessionSink& sink) const;

  /// Simulates a single session end-to-end (exposed for tests): plans the
  /// transactions, coalesces overlapping/back-to-back responses into
  /// transfer groups, runs each group through the fluid TCP model under
  /// the group's path conditions, and assembles the sample record.
  SessionSample run_session(const UserGroupProfile& group, const SessionSpec& spec,
                            int route_index, SimTime start, Rng& rng) const;

  /// As run_session, but refills `sample` in place (the writes vector keeps
  /// its capacity across sessions) so the steady-state hot path allocates
  /// nothing. Same RNG draw sequence and output as run_session.
  void run_session_into(const UserGroupProfile& group, const SessionSpec& spec,
                        int route_index, SimTime start, Rng& rng,
                        SessionSample& sample) const;

  const World& world() const { return world_; }
  const DatasetConfig& config() const { return config_; }

 private:
  const World& world_;
  DatasetConfig config_;
  TrafficModel traffic_;
  SessionSampler sampler_;
};

}  // namespace fbedge
