// Dataset generator: drives the synthetic world through the fluid TCP
// model and emits the SessionSamples the load-balancer instrumentation
// would have captured (§2.2).
//
// Sessions are generated group-by-group so that downstream analysis can
// process one user group's full 10-day series at a time and release it —
// the whole dataset never needs to be resident.
#pragma once

#include <functional>

#include "sampler/record.h"
#include "sampler/sampler.h"
#include "sampler/session_batch.h"
#include "workload/distributions.h"
#include "workload/world.h"

namespace fbedge {

struct DatasetConfig {
  std::uint64_t seed{7};
  int days{10};
  /// Multiplies every group's sessions_per_window (sampled-session counts).
  double session_scale{1.0};
  /// Route-override behaviour (§2.2.3): fraction on preferred route and
  /// number of alternates under continuous measurement.
  SamplerConfig sampler;
  /// Fraction of sessions from hosting-provider / VPN clients (§2.2.4
  /// filters these; the generator produces them so the filter has work).
  double hosting_fraction{0.02};
  /// Fraction of sessions behind a bufferbloated access link: every RTT
  /// the session observes is inflated by hundreds of ms to seconds (§3.3
  /// cites tail MinRTT values "on the order of seconds"). These sessions
  /// are why the aggregation layer uses medians, not means.
  double bufferbloat_fraction{0.004};
};

using SessionSink = std::function<void(const SessionSample&)>;

/// Receives one filled SessionBatch per 15-minute window (only windows with
/// at least one session). The batch reference is only valid for the call.
using WindowBatchSink = std::function<void(int window, const SessionBatch&)>;

class DatasetGenerator {
 public:
  DatasetGenerator(const World& world, DatasetConfig config);

  /// Emits every sampled session of one group across the whole study span,
  /// in time order.
  void generate_group(const UserGroupProfile& group, const SessionSink& sink) const;

  /// Columnar variant of generate_group: fills `batch` with one window's
  /// sessions at a time and hands it to `sink` (empty windows are skipped).
  /// The caller owns `batch` so its arena survives across windows *and*
  /// groups — at steady state no per-session allocation happens. Consumes
  /// the identical RNG draw sequence as generate_group (both run the same
  /// session-simulation template), so emitted values are bit-identical to
  /// the scalar path's, column-for-field.
  void generate_group_batched(const UserGroupProfile& group, SessionBatch& batch,
                              const WindowBatchSink& sink) const;

  /// Emits all groups, one at a time.
  void generate(const SessionSink& sink) const;

  /// Simulates a single session end-to-end (exposed for tests): plans the
  /// transactions, coalesces overlapping/back-to-back responses into
  /// transfer groups, runs each group through the fluid TCP model under
  /// the group's path conditions, and assembles the sample record.
  SessionSample run_session(const UserGroupProfile& group, const SessionSpec& spec,
                            int route_index, SimTime start, Rng& rng) const;

  /// As run_session, but refills `sample` in place (the writes vector keeps
  /// its capacity across sessions) so the steady-state hot path allocates
  /// nothing. Same RNG draw sequence and output as run_session.
  void run_session_into(const UserGroupProfile& group, const SessionSpec& spec,
                        int route_index, SimTime start, Rng& rng,
                        SessionSample& sample) const;

  const World& world() const { return world_; }
  const DatasetConfig& config() const { return config_; }

 private:
  /// The one session-simulation body. Both output layouts (SessionSample
  /// via run_session_into, SessionBatch rows via generate_group_batched)
  /// instantiate this with their own emitter, which guarantees the two
  /// paths consume identical RNG draws and compute identical values — the
  /// emitter only decides where each value is stored. Defined in
  /// generator.cpp; both instantiations live there.
  template <typename Emitter>
  void run_session_emit(const UserGroupProfile& group, const SessionSpec& spec,
                        int route_index, SimTime start, Rng& rng,
                        Emitter& emit) const;

  const World& world_;
  DatasetConfig config_;
  TrafficModel traffic_;
  SessionSampler sampler_;
};

}  // namespace fbedge
