// Packet-level session generation — the high-fidelity counterpart of the
// fluid-model DatasetGenerator.
//
// The fluid model makes the 10-day dataset tractable; this generator runs
// the *same* session plans through the real packet-level TCP stack (slow
// start, delayed ACKs, droptail bottleneck, loss recovery) and produces
// the same SessionSample records. Tests and the fidelity_check bench use
// it to confirm that the measurement pipeline reaches the same
// conclusions (MinRTT, HDratio) regardless of which substrate produced
// the traffic — evidence that the headline results are not artifacts of
// the fluid approximation.
#pragma once

#include "sampler/record.h"
#include "tcp/tcp.h"
#include "workload/distributions.h"
#include "workload/world.h"

namespace fbedge {

struct PacketSessionConfig {
  TcpConfig tcp;
  /// Queue at the bottleneck (bytes).
  Bytes queue_capacity{1 << 20};
  /// Cap on simulated wall-clock per session.
  Duration session_deadline{600.0};
};

/// Runs one planned session through a packet-level TCP connection under
/// the group's path conditions at time `start` and returns the sample the
/// load balancer would capture. Transactions are served serially (HTTP/2
/// interleaving is exercised separately via http/h2_scheduler.h).
SessionSample run_packet_session(const UserGroupProfile& group, const SessionSpec& spec,
                                 int route_index, SimTime start, Rng& rng,
                                 const PacketSessionConfig& config = {});

}  // namespace fbedge
