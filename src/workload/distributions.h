// Piecewise-CDF samplers calibrated to the paper's traffic characterization
// (Figures 1-3).
//
// Rather than fitting parametric mixtures, the generator encodes each
// published distribution as CDF control points and samples by inverse
// transform with log-space interpolation between points. The Figure 1-3
// bench binaries then re-measure these distributions from generated
// traffic, closing the loop.
#pragma once

#include <vector>

#include "http/types.h"
#include "util/rng.h"
#include "util/units.h"

namespace fbedge {

/// Inverse-transform sampler over explicit CDF control points.
/// Values are interpolated geometrically (log-space) between points, which
/// suits the heavy-tailed size/duration distributions here.
class PiecewiseCdfSampler {
 public:
  struct Point {
    double value;      // must be > 0 and strictly increasing
    double cumulative; // in [0, 1], strictly increasing, last == 1
  };

  explicit PiecewiseCdfSampler(std::vector<Point> points);

  double sample(Rng& rng) const;

  /// Inverse CDF at quantile q (what sample() evaluates at a uniform draw).
  double quantile(double q) const;

 private:
  std::vector<Point> points_;
  // Per-segment geometry precomputed at construction: ratio_[i] is
  // value_i / value_{i-1} and log_ratio_[i] its log, so quantile()
  // interpolates with one exp() instead of a pow() per draw.
  std::vector<double> ratio_;
  std::vector<double> log_ratio_;
};

/// Session/transaction property samplers for one HTTP version (§2.3).
class TrafficModel {
 public:
  explicit TrafficModel(std::uint64_t seed);

  /// Draws a full session plan: version, endpoint class, duration,
  /// transaction arrival times / sizes / priorities.
  SessionSpec make_session(SessionId id, Rng& rng) const;

  /// As make_session, but refills `spec` in place (the transaction buffer
  /// keeps its capacity) so the steady-state hot path allocates nothing.
  /// Same RNG draw sequence and output as make_session.
  void make_session_into(SessionId id, Rng& rng, SessionSpec& spec) const;

  // Individual samplers, exposed for tests and for Fig. 1-3 shape checks.
  Duration sample_duration(HttpVersion v, Rng& rng) const;
  int sample_txn_count(HttpVersion v, Rng& rng) const;
  Bytes sample_response_size(EndpointClass e, Rng& rng) const;
  HttpVersion sample_version(Rng& rng) const;
  EndpointClass sample_endpoint(Rng& rng) const;

 private:
  PiecewiseCdfSampler duration_h1_;
  PiecewiseCdfSampler duration_h2_;
  PiecewiseCdfSampler size_dynamic_;
  PiecewiseCdfSampler size_media_;
  PiecewiseCdfSampler txn_h1_;
  PiecewiseCdfSampler txn_h2_;
};

}  // namespace fbedge
