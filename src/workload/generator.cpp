#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace fbedge {

namespace {

/// Poisson draw: Knuth for small means, normal approximation for large.
int poisson(Rng& rng, double mean) {
  if (mean <= 0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double product = rng.uniform();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= rng.uniform();
    }
    return count;
  }
  return std::max(0, static_cast<int>(std::llround(rng.normal(mean, std::sqrt(mean)))));
}

/// A run of transactions transferred as one unit (overlapping or
/// back-to-back responses; §3.2.5).
struct TransferGroup {
  std::size_t first;
  std::size_t last;
  Bytes bytes{0};
  bool overlapped{false};  // any member arrived while previous was in flight
};

/// Emitter writing into a classic AoS SessionSample (the legacy layout).
struct SampleEmitter {
  SessionSample& sample;

  void begin_session(const UserGroupProfile& group, const SessionSpec& spec,
                     int route_index, SimTime start, std::uint32_t ip, bool hosting) {
    // Every other field is assigned here or at finish; only the
    // accumulating ones need a reset.
    sample.writes.clear();
    sample.writes.reserve(spec.transactions.size());
    sample.total_bytes = 0;
    sample.id = spec.id;
    sample.pop = group.key.pop;
    sample.client.bgp_prefix = group.key.prefix;
    sample.client.asn = group.asn;
    sample.client.country = group.key.country;
    sample.client.continent = group.continent;
    sample.client.ip = ip;
    sample.client.hosting_provider = hosting;
    sample.version = spec.version;
    sample.endpoint = spec.endpoint;
    sample.established_at = start;
    sample.route_index = route_index;
    sample.num_transactions = static_cast<int>(spec.transactions.size());
  }

  void add_write(const ResponseWrite& w) {
    sample.writes.push_back(w);
    sample.total_bytes += w.bytes;
  }

  void finish_session(Duration duration, Duration busy, Duration min_rtt) {
    sample.duration = duration;
    sample.busy_time = busy;
    sample.min_rtt = min_rtt;
  }
};

/// Emitter appending one row to a columnar SessionBatch.
struct BatchEmitter {
  SessionBatch& batch;

  void begin_session(const UserGroupProfile&, const SessionSpec& spec, int route_index,
                     SimTime start, std::uint32_t ip, bool hosting) {
    batch.begin_row(spec.id, start, route_index, ip, hosting, spec.version,
                    spec.endpoint, static_cast<int>(spec.transactions.size()));
  }

  void add_write(const ResponseWrite& w) { batch.add_write(w); }

  void finish_session(Duration duration, Duration busy, Duration min_rtt) {
    batch.finish_row(duration, busy, min_rtt);
  }
};

}  // namespace

DatasetGenerator::DatasetGenerator(const World& world, DatasetConfig config)
    : world_(world), config_(config), traffic_(config.seed), sampler_(config.sampler) {}

SessionSample DatasetGenerator::run_session(const UserGroupProfile& group,
                                            const SessionSpec& spec, int route_index,
                                            SimTime start, Rng& rng) const {
  SessionSample sample;
  run_session_into(group, spec, route_index, start, rng, sample);
  return sample;
}

void DatasetGenerator::run_session_into(const UserGroupProfile& group,
                                        const SessionSpec& spec, int route_index,
                                        SimTime start, Rng& rng,
                                        SessionSample& sample) const {
  SampleEmitter emit{sample};
  run_session_emit(group, spec, route_index, start, rng, emit);
}

template <typename Emitter>
void DatasetGenerator::run_session_emit(const UserGroupProfile& group,
                                        const SessionSpec& spec, int route_index,
                                        SimTime start, Rng& rng, Emitter& emit) const {
  // Draw order below is calibrated state (see CLAUDE.md): ip, hosting flag,
  // client rate, bufferbloat, connection seed, then the per-group path and
  // fluid-model draws. One ResponseWrite is emitted per transaction.
  const std::uint32_t ip =
      group.key.prefix.addr + static_cast<std::uint32_t>(rng.uniform_int(1, 1000));
  const bool hosting = rng.bernoulli(config_.hosting_fraction);
  emit.begin_session(group, spec, route_index, start, ip, hosting);

  const BitsPerSecond client_rate = draw_client_rate(group, rng);
  // Bufferbloated access links inflate every RTT the session sees (§3.3).
  const Duration bloat = rng.bernoulli(config_.bufferbloat_fraction)
                             ? rng.uniform(0.3, 2.0)
                             : 0.0;
  FluidTcpConnection conn({}, rng());

  Duration min_rtt = std::numeric_limits<Duration>::infinity();
  Duration busy = 0;
  SimTime clock = 0;  // session-relative time of the last response's final ACK

  // Group transactions: a transaction joins the open group if it arrives
  // before the previous response finished (HTTP/2 multiplexing / HTTP/1.1
  // socket queueing) or within a negligible gap (back-to-back writes).
  std::size_t i = 0;
  while (i < spec.transactions.size()) {
    TransferGroup g{i, i, spec.transactions[i].response_bytes, false};
    const SimTime group_start = std::max<SimTime>(spec.transactions[i].at, clock);

    // Path conditions at the moment this transfer begins.
    PathConditions path =
        path_conditions(group, route_index, start + group_start, client_rate);
    path.min_rtt += bloat;

    // Tentatively extend the group. Joins are decided against the finish
    // time of the group transferred so far; candidates run against a trial
    // cache (connection state untouched until commit) that replays only the
    // size-dependent tail of the simulation, so growing a k-member group
    // costs the shared slow-start prefix once instead of k times.
    FluidTrialCache trial;
    FluidTransfer transfer =
        conn.transfer_candidate(g.bytes, start + group_start, path, trial);
    while (g.last + 1 < spec.transactions.size()) {
      const auto& next = spec.transactions[g.last + 1];
      const SimTime finish = group_start + transfer.full_duration;
      const bool overlaps = next.at < finish;
      const bool back_to_back = next.at - finish < 0.005;
      if (!overlaps && !back_to_back) break;
      g.last += 1;
      g.bytes += next.response_bytes;
      g.overlapped = g.overlapped || overlaps;
      transfer = conn.transfer_candidate(g.bytes, start + group_start, path, trial);
    }
    conn.commit(trial);

    min_rtt = std::min(min_rtt, transfer.observed_rtt);
    busy += transfer.full_duration;

    // Emit one ResponseWrite per member transaction; the sampler-side
    // coalescer will re-merge them exactly as §3.2.5 prescribes.
    const std::size_t members = g.last - g.first + 1;
    const Duration nic_span = transfer.adjusted_duration * 0.5;  // writes early
    if (members == 1) {
      // Single-member group (the common case): frac_lo = 0/1 and
      // frac_hi = 1/1, so the interpolation below collapses exactly to the
      // group boundaries — same values, two divisions fewer.
      const auto& txn = spec.transactions[g.first];
      ResponseWrite w;
      w.bytes = txn.response_bytes;
      w.wnic = transfer.wnic;
      w.first_byte_nic = group_start;
      w.last_byte_nic = group_start + nic_span;
      w.second_last_ack = group_start + transfer.adjusted_duration;
      w.last_ack = group_start + transfer.full_duration;
      w.last_packet_bytes = transfer.last_packet_bytes;
      emit.add_write(w);

      clock = group_start + transfer.full_duration;
      i = g.last + 1;
      continue;
    }
    for (std::size_t m = 0; m < members; ++m) {
      const auto& txn = spec.transactions[g.first + m];
      ResponseWrite w;
      w.bytes = txn.response_bytes;
      w.wnic = transfer.wnic;
      const double frac_lo = static_cast<double>(m) / static_cast<double>(members);
      const double frac_hi = static_cast<double>(m + 1) / static_cast<double>(members);
      w.first_byte_nic = group_start + frac_lo * nic_span;
      w.last_byte_nic = group_start + frac_hi * nic_span;
      w.second_last_ack = group_start + transfer.adjusted_duration;
      w.last_ack = group_start + transfer.full_duration;
      w.last_packet_bytes =
          (m + 1 == members) ? transfer.last_packet_bytes
                             : std::min<Bytes>(txn.response_bytes, 1440);
      if (g.overlapped && members > 1 && m > 0) {
        const bool high_priority = spec.transactions[g.first + m].priority <
                                   spec.transactions[g.first + m - 1].priority;
        w.preempted = spec.version == HttpVersion::kHttp2 && high_priority;
        w.multiplexed = !w.preempted && spec.version == HttpVersion::kHttp2;
      }
      emit.add_write(w);
    }

    clock = group_start + transfer.full_duration;
    i = g.last + 1;
  }

  emit.finish_session(std::max(spec.duration, clock), busy,
                      std::isfinite(min_rtt) ? min_rtt : 0);
}

void DatasetGenerator::generate_group(const UserGroupProfile& group,
                                      const SessionSink& sink) const {
  // Deterministic per-group stream regardless of group order or which
  // shard/thread of the runtime processes this group (same bits as the
  // pre-runtime derivation; world calibration depends on it).
  Rng rng = entity_stream(config_.seed,
                          hash_mix(group.key.prefix.addr) ^
                              (static_cast<std::uint64_t>(group.key.pop.value) << 32));
  std::uint64_t session_seq =
      static_cast<std::uint64_t>(group.key.prefix.addr) << 20;

  const int total_windows = config_.days * 96;
  const int num_routes = static_cast<int>(group.routes.size());
  // Session scratch reused across the whole group: spec.transactions and
  // sample.writes keep their capacity, so session generation is
  // allocation-free at steady state.
  SessionSpec spec;
  SessionSample sample;
  for (int w = 0; w < total_windows; ++w) {
    // Diurnal traffic volume: more sessions at local evening peak.
    const SimTime window_start = w * kWindowLength;
    const double peak_boost = in_peak_hours(group, window_start + kWindowLength / 2)
                                  ? 1.5
                                  : 1.0;
    const int sessions =
        poisson(rng, group.sessions_per_window * config_.session_scale * peak_boost);
    for (int s = 0; s < sessions; ++s) {
      const SessionId id{session_seq++};
      const SimTime start = window_start + rng.uniform(0.0, kWindowLength);
      traffic_.make_session_into(id, rng, spec);
      const int route = sampler_.choose_route(id, num_routes);
      run_session_into(group, spec, route, start, rng, sample);
      sink(sample);
    }
  }
}

void DatasetGenerator::generate_group_batched(const UserGroupProfile& group,
                                              SessionBatch& batch,
                                              const WindowBatchSink& sink) const {
  // Mirrors generate_group draw-for-draw: same per-group stream seed, same
  // poisson/start/make_session draws per window, so either path can consume
  // the group and produce bit-identical values.
  Rng rng = entity_stream(config_.seed,
                          hash_mix(group.key.prefix.addr) ^
                              (static_cast<std::uint64_t>(group.key.pop.value) << 32));
  std::uint64_t session_seq =
      static_cast<std::uint64_t>(group.key.prefix.addr) << 20;

  const int total_windows = config_.days * 96;
  const int num_routes = static_cast<int>(group.routes.size());
  SessionSpec spec;
  BatchEmitter emit{batch};
  for (int w = 0; w < total_windows; ++w) {
    batch.clear();
    // Diurnal traffic volume: more sessions at local evening peak.
    const SimTime window_start = w * kWindowLength;
    const double peak_boost = in_peak_hours(group, window_start + kWindowLength / 2)
                                  ? 1.5
                                  : 1.0;
    const int sessions =
        poisson(rng, group.sessions_per_window * config_.session_scale * peak_boost);
    for (int s = 0; s < sessions; ++s) {
      const SessionId id{session_seq++};
      const SimTime start = window_start + rng.uniform(0.0, kWindowLength);
      traffic_.make_session_into(id, rng, spec);
      const int route = sampler_.choose_route(id, num_routes);
      run_session_emit(group, spec, route, start, rng, emit);
    }
    if (!batch.empty()) sink(w, batch);
  }
}

void DatasetGenerator::generate(const SessionSink& sink) const {
  for (const auto& group : world_.groups) generate_group(group, sink);
}

}  // namespace fbedge
