#include "workload/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace fbedge {

PiecewiseCdfSampler::PiecewiseCdfSampler(std::vector<Point> points)
    : points_(std::move(points)) {
  FBEDGE_EXPECT(points_.size() >= 2, "need at least 2 CDF control points");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    FBEDGE_EXPECT(points_[i].value > 0, "control values must be positive");
    if (i > 0) {
      FBEDGE_EXPECT(points_[i].value > points_[i - 1].value, "values must increase");
      FBEDGE_EXPECT(points_[i].cumulative > points_[i - 1].cumulative,
                    "cumulative must increase");
    }
  }
  FBEDGE_EXPECT(std::abs(points_.back().cumulative - 1.0) < 1e-9,
                "last control point must have cumulative 1");
  ratio_.resize(points_.size(), 1.0);
  log_ratio_.resize(points_.size(), 0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    ratio_[i] = points_[i].value / points_[i - 1].value;
    log_ratio_[i] = std::log(ratio_[i]);
  }
}

double PiecewiseCdfSampler::quantile(double q) const {
  q = std::clamp(q, points_.front().cumulative, 1.0);
  // Control-point lists are short (<= 9 entries), so a forward scan finds
  // the same segment as a binary search for less; the loop terminates
  // because the last cumulative is 1 and q <= 1.
  std::size_t i = 1;
  while (points_[i].cumulative < q) ++i;
  const Point& hi = points_[i];
  const Point& lo = points_[i - 1];
  const double frac = (q - lo.cumulative) / (hi.cumulative - lo.cumulative);
  // Geometric interpolation: heavy-tailed sizes/durations are log-linear
  // between control points. The frac <= 0 / >= 1 branches return the exact
  // pow(r, 0) and pow(r, 1) values (control points stay bit-exact);
  // interior points use exp(frac * log r), within an ulp or two of pow.
  if (frac <= 0.0) return lo.value;
  if (frac >= 1.0) return lo.value * ratio_[i];
  return lo.value * std::exp(frac * log_ratio_[i]);
}

double PiecewiseCdfSampler::sample(Rng& rng) const { return quantile(rng.uniform()); }

namespace {

using P = PiecewiseCdfSampler::Point;

// Session duration CDFs (Fig. 1(a)): overall 7.4% < 1 s, 33% < 60 s,
// 20% > 180 s; HTTP/1.1 has more short sessions (44% < 60 s) than HTTP/2
// (26% < 60 s).
std::vector<P> duration_h1_points() {
  return {{0.2, 0.0},  {1.0, 0.09},  {5.0, 0.17},   {15.0, 0.27}, {60.0, 0.44},
          {180.0, 0.82}, {600.0, 0.94}, {1800.0, 0.99}, {7200.0, 1.0}};
}
std::vector<P> duration_h2_points() {
  return {{0.2, 0.0},  {1.0, 0.05},  {5.0, 0.10},   {15.0, 0.16}, {60.0, 0.26},
          {180.0, 0.77}, {600.0, 0.92}, {1800.0, 0.99}, {7200.0, 1.0}};
}

// Response size CDFs (Fig. 2): overall ~50% of responses < 6 KB; media
// endpoints have median ~19 KB and 17% of responses >= 100 KB.
std::vector<P> size_dynamic_points() {
  return {{80, 0.0},      {300, 0.12},   {1000, 0.30},  {3000, 0.48}, {6000, 0.63},
          {20000, 0.82},  {100000, 0.95}, {1000000, 0.993}, {10000000, 1.0}};
}
std::vector<P> size_media_points() {
  return {{200, 0.0},     {2000, 0.10},  {6000, 0.25},  {19000, 0.50}, {60000, 0.72},
          {100000, 0.83}, {1000000, 0.97}, {20000000, 1.0}};
}

// Transactions per session (Fig. 3): most sessions have one transaction;
// 87% of HTTP/1.1 and 75% of HTTP/2 sessions have < 5; sessions with >= 50
// transactions carry over half of total traffic.
std::vector<P> txn_h1_points() {
  return {{1, 0.55}, {2, 0.70}, {5, 0.88}, {10, 0.94}, {50, 0.985}, {200, 0.998},
          {1000, 1.0}};
}
std::vector<P> txn_h2_points() {
  return {{1, 0.40}, {2, 0.55}, {5, 0.76}, {10, 0.86}, {50, 0.955}, {200, 0.995},
          {1000, 1.0}};
}

constexpr double kHttp2Share = 0.55;
constexpr double kMediaShare = 0.22;

}  // namespace

TrafficModel::TrafficModel(std::uint64_t /*seed*/)
    : duration_h1_(duration_h1_points()),
      duration_h2_(duration_h2_points()),
      size_dynamic_(size_dynamic_points()),
      size_media_(size_media_points()),
      txn_h1_(txn_h1_points()),
      txn_h2_(txn_h2_points()) {}

HttpVersion TrafficModel::sample_version(Rng& rng) const {
  return rng.bernoulli(kHttp2Share) ? HttpVersion::kHttp2 : HttpVersion::kHttp1_1;
}

EndpointClass TrafficModel::sample_endpoint(Rng& rng) const {
  return rng.bernoulli(kMediaShare) ? EndpointClass::kMedia : EndpointClass::kDynamic;
}

Duration TrafficModel::sample_duration(HttpVersion v, Rng& rng) const {
  return (v == HttpVersion::kHttp2 ? duration_h2_ : duration_h1_).sample(rng);
}

int TrafficModel::sample_txn_count(HttpVersion v, Rng& rng) const {
  const double x = (v == HttpVersion::kHttp2 ? txn_h2_ : txn_h1_).sample(rng);
  return std::max(1, static_cast<int>(std::llround(x)));
}

Bytes TrafficModel::sample_response_size(EndpointClass e, Rng& rng) const {
  const double x =
      (e == EndpointClass::kMedia ? size_media_ : size_dynamic_).sample(rng);
  return std::max<Bytes>(64, static_cast<Bytes>(x));
}

SessionSpec TrafficModel::make_session(SessionId id, Rng& rng) const {
  SessionSpec spec;
  make_session_into(id, rng, spec);
  return spec;
}

void TrafficModel::make_session_into(SessionId id, Rng& rng, SessionSpec& spec) const {
  spec.id = id;
  spec.version = sample_version(rng);
  spec.endpoint = sample_endpoint(rng);
  spec.duration = sample_duration(spec.version, rng);
  const int txns = sample_txn_count(spec.version, rng);

  // Arrival pattern: a leading burst (page load), then sparse activity
  // across the session lifetime. ~35% of follow-up requests arrive
  // back-to-back with the previous one, producing the §3.2.5 coalescing
  // opportunities; the rest spread out, leaving the session mostly idle
  // (Fig. 1(b)).
  Duration t = rng.uniform(0.02, 0.3);
  const Duration mean_gap = spec.duration / static_cast<double>(txns + 1);
  spec.transactions.clear();
  spec.transactions.reserve(static_cast<std::size_t>(txns));
  for (int i = 0; i < txns; ++i) {
    TransactionSpec txn;
    txn.at = t;
    txn.response_bytes = sample_response_size(spec.endpoint, rng);
    // HTTP/2 occasionally issues a high-priority request that preempts.
    txn.priority = (spec.version == HttpVersion::kHttp2 && rng.bernoulli(0.08)) ? 0 : 16;
    spec.transactions.push_back(txn);
    const bool back_to_back = rng.bernoulli(0.35);
    t += back_to_back ? rng.exponential(0.004) : rng.exponential(mean_gap);
  }
  // Sessions end at/after the last response; keep the drawn duration if
  // longer (idle tail).
  spec.duration = std::max(spec.duration, t + 0.1);
}

}  // namespace fbedge
