// The synthetic global serving world: PoPs, ASes, prefixes, user groups,
// routes, and the temporal condition processes that drive them.
//
// This substitutes for the production environment the paper measures
// (repro_why: "needs production CDN traffic"). Per-continent parameters
// are calibrated so the *shape* of the paper's results holds: median
// MinRTT ~39 ms globally (AF 58 / AS 51 / SA 40 / others <= ~25), non-HD
// client shares of AF 36% / AS 24% / SA 27%, mostly-diurnal destination
// congestion, and rare routing opportunity (mostly continuous, MinRTT-only).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agg/user_group.h"
#include "routing/route.h"
#include "tcp/fluid_model.h"
#include "util/geo.h"
#include "util/rng.h"
#include "workload/cartographer.h"

namespace fbedge {

/// A point of presence.
struct PopInfo {
  PopId id{};
  Continent continent{Continent::kNorthAmerica};
  std::string name;
};

/// One egress route's static profile and congestion behaviour.
struct RouteProfile {
  Route route;  // BGP attributes (prefix, AS path, relationship)
  /// Latency this route adds on top of the group's base RTT.
  Duration rtt_offset{0};
  double base_loss{0.0005};
  /// Per-flow achievable rate through this route when uncongested.
  BitsPerSecond capacity{200 * kMbps};
  /// Peering/transit link that congests at the destination's peak hours
  /// (route-specific, so an alternate can bypass it -> opportunity).
  bool diurnal_congestion{false};
  Duration peak_extra_delay{0};
  double peak_extra_loss{0};
};

/// A transient failure/maintenance episode affecting a group.
struct Episode {
  int start_window{0};
  int end_window{0};  // exclusive
  /// Route it affects; -1 = destination-side (all routes).
  int route_index{-1};
  Duration extra_delay{0};
  double extra_loss{0};
};

/// Everything static about one user group plus its condition processes.
struct UserGroupProfile {
  UserGroupKey key;
  Continent continent{Continent::kNorthAmerica};
  Asn asn{};
  /// Local-time offset used for the diurnal phase.
  double tz_offset_hours{0};
  /// Geographic location of the client population (Cartographer input).
  GeoPoint location;
  /// Great-circle distance to the serving PoP.
  double pop_distance_km{0};
  /// Served from a PoP on another continent (§2.1's ~10% of traffic).
  bool remote_served{false};
  /// Propagation RTT between the serving PoP and this group.
  Duration base_rtt{0.03};
  /// Mean per-round jitter (exponential).
  Duration jitter_mean{0.001};
  /// Fraction of clients whose access link cannot sustain HD goodput.
  double non_hd_fraction{0.15};
  /// Mean session arrivals per 15-minute window.
  double sessions_per_window{50};
  /// Relative traffic weight (used when reporting per-continent shares).
  double weight{1.0};

  /// Destination-side diurnal congestion (shared bottleneck: affects every
  /// route, so rerouting cannot help -> degradation without opportunity).
  bool dest_diurnal{false};
  Duration dest_peak_delay{0};
  double dest_peak_loss{0};

  std::vector<Episode> episodes;
  /// Policy-ranked routes; index 0 is preferred (§6.1).
  std::vector<RouteProfile> routes;
};

struct World {
  std::vector<PopInfo> pops;
  std::vector<UserGroupProfile> groups;
};

/// Knobs for world construction.
struct WorldConfig {
  std::uint64_t seed{42};
  int groups_per_continent{40};
  /// Fraction of groups with destination-side diurnal congestion.
  double dest_diurnal_fraction{0.18};
  /// Fraction of groups whose preferred route is continuously worse than an
  /// alternate (the paper's "continuous opportunity", ~1-2% of traffic) —
  /// on top of the structurally faster prepended private peers some groups
  /// have (see make_routes).
  double continuous_opportunity_fraction{0.02};
  /// Fraction of groups with a route-level diurnal congestion (peering link
  /// congestion an alternate can bypass).
  double route_diurnal_fraction{0.04};
  /// Fraction of groups with random episodic events.
  double episodic_fraction{0.25};
  int days{10};
};

/// Builds a reproducible world from the config.
World build_world(const WorldConfig& config);

/// Instantaneous path conditions for `group` via route `route_index` at
/// absolute time `t`, for a client with access rate `client_rate`.
/// `rng` supplies the per-session jitter of the RTT draw.
PathConditions path_conditions(const UserGroupProfile& group, int route_index, SimTime t,
                               BitsPerSecond client_rate);

/// Whether `t` falls in the group's local peak hours (19:00-23:00).
bool in_peak_hours(const UserGroupProfile& group, SimTime t);

/// Draws a client access rate for one session of this group: non-HD
/// clients get 0.3-2.2 Mbps, HD-capable clients a heavy-tailed broadband
/// rate (median ~12 Mbps).
BitsPerSecond draw_client_rate(const UserGroupProfile& group, Rng& rng);

}  // namespace fbedge
