// Cartographer-style ingress mapping (§2.1).
//
// Cartographer steers client traffic to PoPs via DNS and URL rewriting,
// using performance measurements to pick the ingress location. The paper
// reports the resulting geography: half of all traffic is served within
// 500 km of its PoP, 90% within 2500 km and in the same continent, and
// the ~10% served cross-continent is dominated by European PoPs serving
// Asia (4.8% of traffic) and Africa (2.1%) — regions with sparse local
// PoP coverage in 2019.
//
// This module gives PoPs and user groups spherical coordinates, maps each
// group to a serving PoP (nearest-first with a modeled shortage of local
// capacity in under-provisioned regions), and reports the distance
// distribution so the published checkpoints can be verified.
#pragma once

#include <vector>

#include "util/geo.h"
#include "util/rng.h"
#include "util/units.h"

namespace fbedge {

/// A point on the sphere (degrees).
struct GeoPoint {
  double lat{0};
  double lon{0};
};

/// Great-circle distance in kilometres (haversine).
double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// One-way propagation delay for a great-circle fibre path: distance
/// inflated ~1.7x for routing indirection, at ~2e5 km/s in glass.
Duration propagation_delay(double distance_km);

/// A PoP site the mapper can direct traffic to.
struct PopSite {
  int index{0};
  Continent continent{Continent::kNorthAmerica};
  GeoPoint location;
};

/// The mapping decision for one user group.
struct IngressAssignment {
  int pop_index{0};
  double distance_km{0};
  bool cross_continent{false};
};

struct CartographerConfig {
  /// Probability that a client in an under-served region (AF/AS) cannot be
  /// served locally (capacity/coverage shortfall) and is mapped to a PoP
  /// on the overflow continent instead.
  double africa_remote_fraction{0.30};
  double asia_remote_fraction{0.14};
  /// Where overflow traffic lands; Europe in the paper's 2019 topology.
  Continent overflow_continent{Continent::kEurope};
  std::uint64_t seed{1};
};

/// Maps user-group locations onto PoP sites.
class Cartographer {
 public:
  Cartographer(std::vector<PopSite> pops, CartographerConfig config);

  /// Chooses the serving PoP for a client population at `where` in
  /// `continent`, rolling the overflow dice internally.
  IngressAssignment assign(const GeoPoint& where, Continent continent);

  /// Deterministic variants: map to the nearest in-continent PoP, or to
  /// the nearest PoP on the overflow continent. Callers that stratify the
  /// overflow decision themselves (e.g. the world builder, which wants
  /// exact traffic fractions) use these.
  IngressAssignment assign_local(const GeoPoint& where, Continent continent);
  IngressAssignment assign_overflow(const GeoPoint& where);

  const std::vector<PopSite>& pops() const { return pops_; }

 private:
  int nearest_pop(const GeoPoint& where, Continent continent, bool same_continent,
                  double* distance_out) const;

  std::vector<PopSite> pops_;
  CartographerConfig config_;
  Rng rng_;
};

/// The 12 default PoP sites (two metros per continent) with real-world
/// coordinates, matching the world builder's PoP layout.
std::vector<PopSite> default_pop_sites();

/// Representative population anchors per continent (used to scatter
/// synthetic user groups geographically).
GeoPoint continent_anchor(Continent c);

}  // namespace fbedge
