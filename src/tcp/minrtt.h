// Windowed minimum RTT estimator (§3.1).
//
// Mirrors the Linux kernel's windowed min filter: MinRTT is the minimum RTT
// sample observed over a sliding window (5 minutes in Facebook's
// deployment). Because most HTTP sessions terminate within the window
// (§2.3), recording the value at session termination effectively captures
// the session-lifetime minimum — an upper bound on propagation delay.
#pragma once

#include <deque>
#include <limits>

#include "util/units.h"

namespace fbedge {

/// Sliding-window minimum filter over RTT samples.
class MinRttEstimator {
 public:
  /// `window`: how long a sample remains eligible (kernel default-alike 5 min).
  explicit MinRttEstimator(Duration window = 5.0 * kMinute) : window_(window) {}

  /// Records an RTT sample taken at time `now`.
  void add(Duration rtt, SimTime now) {
    // Drop samples that can never be the minimum again.
    while (!samples_.empty() && samples_.back().rtt >= rtt) samples_.pop_back();
    samples_.push_back({now, rtt});
    expire(now);
  }

  /// Current windowed minimum as of `now`; +inf if no valid sample.
  Duration get(SimTime now) {
    expire(now);
    return samples_.empty() ? std::numeric_limits<Duration>::infinity()
                            : samples_.front().rtt;
  }

  /// Minimum over the entire lifetime (ignores the window).
  Duration lifetime_min() const { return lifetime_min_; }

  bool has_sample() const { return lifetime_min_ < std::numeric_limits<Duration>::infinity(); }

 private:
  struct Sample {
    SimTime at;
    Duration rtt;
  };

  void expire(SimTime now) {
    while (!samples_.empty() && samples_.front().at < now - window_) samples_.pop_front();
    if (!samples_.empty()) lifetime_min_ = std::min(lifetime_min_, samples_.front().rtt);
  }

  Duration window_;
  std::deque<Sample> samples_;
  Duration lifetime_min_{std::numeric_limits<Duration>::infinity()};
};

}  // namespace fbedge
