#include "tcp/tcp.h"

#include <algorithm>
#include <memory>

#include "util/expect.h"

namespace fbedge {

// ---------------------------------------------------------------------------
// TcpSender
// ---------------------------------------------------------------------------

TcpSender::TcpSender(Simulator& sim, TcpConfig config, SendPacketFn send)
    : sim_(sim),
      config_(config),
      send_(std::move(send)),
      cwnd_(config.initial_cwnd * static_cast<double>(config.mss)),
      ssthresh_(config.initial_ssthresh * static_cast<double>(config.mss)),
      rtt_(config.rto_min, config.rto_initial),
      minrtt_(config.minrtt_window) {}

void TcpSender::write(Bytes size, TransferDoneFn done) {
  FBEDGE_EXPECT(size > 0, "empty TCP write");
  PendingWrite w;
  w.start = write_end_;
  w.end = write_end_ + size;
  const Bytes rem = size % config_.mss;
  w.last_packet_bytes = rem == 0 ? config_.mss : rem;
  w.done = std::move(done);
  w.retransmits_at_start = total_retransmits_;
  write_end_ = w.end;
  writes_.push_back(std::move(w));
  try_send();
}

void TcpSender::try_send() {
  blocked_on_cwnd_ = false;
  const bool bbr = config_.congestion_control == CongestionControl::kBbr;
  const double window =
      bbr ? static_cast<double>(bbr_cwnd()) : cwnd_;
  while (next_seq_ < write_end_) {
    const Bytes flight = next_seq_ - snd_una_;
    if (static_cast<double>(flight + config_.mss) > window + 0.5) {
      blocked_on_cwnd_ = true;
      break;
    }
    // BBR paces segments at gain * estimated bottleneck bandwidth instead
    // of bursting the whole window.
    if (bbr) {
      const double rate = bbr_pacing_rate();
      if (rate > 0 && sim_.now() + 1e-12 < next_send_time_) {
        if (!pacing_timer_) {
          pacing_timer_ = sim_.schedule(next_send_time_ - sim_.now(), [this] {
            pacing_timer_.reset();
            try_send();
          });
        }
        break;
      }
    }
    const Bytes chunk = std::min<Bytes>(config_.mss, write_end_ - next_seq_);
    // After go-back-N the send cursor rewinds below data already handed to
    // the network once; those sends are retransmissions (Karn's rule).
    send_segment(next_seq_, next_seq_ + chunk,
                 /*retransmit=*/next_seq_ < highest_sent_);
    next_seq_ += chunk;
    if (bbr) {
      const double rate = bbr_pacing_rate();
      if (rate > 0) {
        next_send_time_ =
            std::max(next_send_time_, sim_.now()) + to_bits(chunk) / rate;
      }
    }
  }
  if (!segments_.empty() && !rto_timer_) arm_rto();
}

void TcpSender::send_segment(std::int64_t start, std::int64_t end, bool retransmit) {
  // Record write metadata when a write's first byte hits the NIC.
  for (auto& w : writes_) {
    if (!w.first_byte_recorded && start <= w.start && w.start < end) {
      w.first_byte_recorded = true;
      w.report.first_byte_sent = sim_.now();
      w.report.wnic = static_cast<Bytes>(cwnd_);
    }
  }
  Packet p;
  p.seq = start;
  p.payload = end - start;
  p.sent_at = sim_.now();
  p.retransmit = retransmit;
  if (retransmit) ++total_retransmits_;
  highest_sent_ = std::max(highest_sent_, end);
  segments_.push_back({start, end, sim_.now(), retransmit, delivered_});
  send_(p);
}

void TcpSender::arm_rto() {
  if (rto_timer_) sim_.cancel(*rto_timer_);
  rto_timer_ = sim_.schedule(rtt_.rto(), [this] { on_rto(); });
}

void TcpSender::on_rto() {
  rto_timer_.reset();
  if (snd_una_ == write_end_) return;  // everything delivered; stale timer
  ++timeouts_;
  rtt_.on_timeout();
  if (config_.congestion_control != CongestionControl::kBbr) {
    on_congestion_event();
    const Bytes flight = next_seq_ - snd_una_;
    ssthresh_ = std::max(static_cast<double>(flight) / 2.0,
                         2.0 * static_cast<double>(config_.mss));
    cwnd_ = static_cast<double>(config_.mss);
  }
  in_recovery_ = false;
  dup_acks_ = 0;
  // Go-back-N: rewind and resend from the first unacked byte.
  segments_.clear();
  next_seq_ = snd_una_;
  const Bytes chunk = std::min<Bytes>(config_.mss, write_end_ - next_seq_);
  send_segment(next_seq_, next_seq_ + chunk, /*retransmit=*/true);
  next_seq_ += chunk;
  arm_rto();
}

void TcpSender::enter_fast_recovery() {
  if (config_.congestion_control != CongestionControl::kBbr) {
    on_congestion_event();
    const Bytes flight = next_seq_ - snd_una_;
    const double beta =
        config_.congestion_control == CongestionControl::kCubic ? 0.7 : 0.5;
    ssthresh_ = std::max(static_cast<double>(flight) * beta,
                         2.0 * static_cast<double>(config_.mss));
    cwnd_ = ssthresh_ + 3.0 * static_cast<double>(config_.mss);
  }
  in_recovery_ = true;
  recovery_end_ = next_seq_;
  // Retransmit the presumed-lost segment at snd_una_.
  if (snd_una_ < write_end_) {
    const Bytes chunk = std::min<Bytes>(config_.mss, write_end_ - snd_una_);
    send_segment(snd_una_, snd_una_ + chunk, /*retransmit=*/true);
  }
}

void TcpSender::grow_cwnd(Bytes bytes_acked, bool was_cwnd_limited) {
  // Footnote 3: grow only when cwnd-limited; growth by bytes ACKed.
  if (!was_cwnd_limited) return;
  const double mss = static_cast<double>(config_.mss);
  if (cwnd_ < ssthresh_) {
    cwnd_ += static_cast<double>(bytes_acked);  // slow start (ABC)
    cwnd_ = std::min(cwnd_, ssthresh_ + static_cast<double>(bytes_acked));
    return;
  }
  if (config_.congestion_control == CongestionControl::kReno) {
    cwnd_ += mss * static_cast<double>(bytes_acked) / cwnd_;
    return;
  }
  // CUBIC (RFC 8312): W(t) = C*(t - K)^3 + w_max, K = cbrt(w_max*(1-b)/C).
  constexpr double kC = 0.4;
  constexpr double kBeta = 0.7;
  if (cubic_epoch_start_ < 0) {
    cubic_epoch_start_ = sim_.now();
    if (cubic_w_max_pkts_ <= 0) cubic_w_max_pkts_ = cwnd_ / mss;
  }
  const double t = sim_.now() - cubic_epoch_start_;
  const double k = std::cbrt(cubic_w_max_pkts_ * (1.0 - kBeta) / kC);
  const double target_pkts = kC * std::pow(t - k, 3.0) + cubic_w_max_pkts_;
  const double cwnd_pkts_now = cwnd_ / mss;
  if (target_pkts > cwnd_pkts_now) {
    // Approach the curve at most one segment per segment ACKed.
    const double step = std::min(target_pkts - cwnd_pkts_now,
                                 static_cast<double>(bytes_acked) / mss);
    cwnd_ += step * mss;
  } else {
    // At/above the curve: grow slowly (TCP-friendliness floor).
    cwnd_ += 0.01 * mss * static_cast<double>(bytes_acked) / cwnd_;
  }
}

void TcpSender::on_congestion_event() {
  const double mss = static_cast<double>(config_.mss);
  cubic_w_max_pkts_ = cwnd_ / mss;
  cubic_epoch_start_ = -1;  // curve restarts on the next avoidance ACK
}

void TcpSender::hystart_round_check(Duration rtt_sample) {
  if (!config_.hystart || config_.congestion_control != CongestionControl::kCubic ||
      !in_slow_start()) {
    return;
  }
  if (hystart_round_min_ <= 0 || rtt_sample < hystart_round_min_) {
    hystart_round_min_ = rtt_sample;
  }
  ++hystart_samples_;
  if (snd_una_ < hystart_round_end_) return;
  // Round boundary: compare this round's floor against the previous one.
  if (hystart_last_round_min_ > 0 && hystart_samples_ >= 3) {
    const Duration eta = std::clamp(hystart_last_round_min_ / 8.0, 0.002, 0.016);
    if (hystart_round_min_ >= hystart_last_round_min_ + eta) {
      ssthresh_ = cwnd_;  // delay increase: leave slow start (hybrid exit)
    }
  }
  hystart_last_round_min_ = hystart_round_min_;
  hystart_round_min_ = 0;
  hystart_samples_ = 0;
  hystart_round_end_ = next_seq_;
}

void TcpSender::complete_writes() {
  while (!writes_.empty()) {
    auto& w = writes_.front();
    const std::int64_t second_last_threshold = w.end - w.last_packet_bytes;
    if (!w.second_last_recorded && snd_una_ >= second_last_threshold) {
      w.second_last_recorded = true;
      w.report.second_to_last_acked = sim_.now();
    }
    if (snd_una_ < w.end) break;
    w.report.bytes = w.end - w.start;
    w.report.last_packet_bytes = w.last_packet_bytes;
    w.report.last_byte_acked = sim_.now();
    if (w.end == w.start + w.last_packet_bytes) {
      // Single-packet write: the "second to last" ACK is the final ACK.
      w.report.second_to_last_acked = sim_.now();
    }
    w.report.retransmits = total_retransmits_ - w.retransmits_at_start;
    w.report.min_rtt = minrtt_.get(sim_.now());
    auto done = std::move(w.done);
    auto report = w.report;
    writes_.pop_front();
    if (done) done(report);
  }
  // Also stamp the second-to-last ACK time for the (still incomplete) head.
  if (!writes_.empty()) {
    auto& w = writes_.front();
    const std::int64_t second_last_threshold = w.end - w.last_packet_bytes;
    if (!w.second_last_recorded && snd_una_ >= second_last_threshold) {
      w.second_last_recorded = true;
      w.report.second_to_last_acked = sim_.now();
    }
  }
}

void TcpSender::on_ack(const Packet& ack) {
  FBEDGE_EXPECT(ack.is_ack, "data packet delivered to sender");
  if (ack.echo >= 0) {
    // Handshake ping reply: RTT sample only, no sequence-space effects.
    const Duration sample = sim_.now() - ack.echo;
    rtt_.add_sample(sample);
    minrtt_.add(sample, sim_.now());
    return;
  }
  if (ack.ack > snd_una_) {
    const Bytes bytes_acked = ack.ack - snd_una_;
    const Bytes flight_before = next_seq_ - snd_una_;
    // A connection is cwnd-limited in slow start if more than half the cwnd
    // was in flight; afterwards, if sending was blocked on cwnd (footnote 3).
    const bool was_limited = in_slow_start()
                                 ? static_cast<double>(flight_before) > cwnd_ / 2.0
                                 : blocked_on_cwnd_;
    snd_una_ = ack.ack;
    dup_acks_ = 0;

    delivered_ += bytes_acked;

    // RTT sample from the newest fully-acked, never-retransmitted segment
    // (Karn's rule); the same segment yields BBR's delivery-rate sample.
    SimTime best_sent = -1;
    double rate_sample = 0;
    while (!segments_.empty() && segments_.front().end <= snd_una_) {
      const auto& seg = segments_.front();
      if (!seg.retransmitted && seg.sent_at >= best_sent) {
        best_sent = seg.sent_at;
        const Duration elapsed = sim_.now() - seg.sent_at;
        if (elapsed > 1e-12) {
          rate_sample = to_bits(delivered_ - seg.delivered_at_send) / elapsed;
        }
      }
      segments_.pop_front();
    }
    if (best_sent >= 0) {
      const Duration sample = sim_.now() - best_sent;
      rtt_.add_sample(sample);
      minrtt_.add(sample, sim_.now());
      hystart_round_check(sample);
    }

    const bool bbr = config_.congestion_control == CongestionControl::kBbr;
    if (bbr && rate_sample > 0) bbr_on_ack(bytes_acked, rate_sample);

    if (in_recovery_ && snd_una_ >= recovery_end_) {
      in_recovery_ = false;
      if (!bbr) cwnd_ = ssthresh_;  // deflate (loss-based CC only)
    }
    if (!in_recovery_ && !bbr) grow_cwnd(bytes_acked, was_limited);

    complete_writes();

    if (segments_.empty()) {
      if (rto_timer_) {
        sim_.cancel(*rto_timer_);
        rto_timer_.reset();
      }
    } else {
      arm_rto();
    }
    try_send();
    return;
  }

  // Duplicate ACK.
  if (snd_una_ < write_end_) {
    ++dup_acks_;
    if (in_recovery_) {
      cwnd_ += static_cast<double>(config_.mss);  // inflation
      try_send();
    } else if (dup_acks_ == 3) {
      enter_fast_recovery();
    }
  }
}

// ---------------------------------------------------------------------------
// BBR (simplified: STARTUP / DRAIN / PROBE_BW; no PROBE_RTT because the
// windowed MinRTT filter already refreshes within the session lifetimes
// this model simulates).
// ---------------------------------------------------------------------------

namespace {
constexpr double kBbrStartupGain = 2.885;  // 2/ln2: doubles delivery per RTT
constexpr double kBbrCycleGains[8] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};
}  // namespace

double TcpSender::bbr_pacing_rate() const {
  if (bbr_btl_bw_ <= 0) return 0;  // unpaced until the first bw estimate
  double gain = 1.0;
  switch (bbr_mode_) {
    case BbrMode::kStartup: gain = kBbrStartupGain; break;
    case BbrMode::kDrain: gain = 1.0 / kBbrStartupGain; break;
    case BbrMode::kProbeBw: gain = kBbrCycleGains[bbr_cycle_index_]; break;
  }
  return gain * bbr_btl_bw_;
}

Bytes TcpSender::bbr_cwnd() const {
  const double mss = static_cast<double>(config_.mss);
  Duration rtprop = minrtt_.lifetime_min();
  if (bbr_btl_bw_ <= 0 || !std::isfinite(rtprop)) {
    return static_cast<Bytes>(config_.initial_cwnd * mss);
  }
  const double bdp_bytes = bbr_btl_bw_ * rtprop / 8.0;
  const double gain = bbr_mode_ == BbrMode::kStartup ? kBbrStartupGain : 2.0;
  return static_cast<Bytes>(std::max(4.0 * mss, gain * bdp_bytes));
}

void TcpSender::bbr_on_ack(Bytes /*bytes_acked*/, double rate_sample) {
  const SimTime now = sim_.now();

  // Windowed-max bottleneck bandwidth filter (monotonic deque).
  const Duration window = std::max(2.0, 10.0 * rtt_.srtt());
  while (!bbr_bw_samples_.empty() && bbr_bw_samples_.back().second <= rate_sample) {
    bbr_bw_samples_.pop_back();
  }
  bbr_bw_samples_.emplace_back(now, rate_sample);
  while (!bbr_bw_samples_.empty() && bbr_bw_samples_.front().first < now - window) {
    bbr_bw_samples_.pop_front();
  }
  bbr_btl_bw_ = bbr_bw_samples_.front().second;

  const bool round_done = snd_una_ >= bbr_round_end_;
  if (round_done) bbr_round_end_ = next_seq_;

  const Duration rtprop =
      std::isfinite(minrtt_.lifetime_min()) ? minrtt_.lifetime_min() : rtt_.srtt();
  switch (bbr_mode_) {
    case BbrMode::kStartup:
      // Leave startup when bandwidth stops growing 25% per round for three
      // consecutive rounds (the pipe is full).
      if (round_done) {
        if (bbr_btl_bw_ >= bbr_full_bw_ * 1.25) {
          bbr_full_bw_ = bbr_btl_bw_;
          bbr_full_bw_rounds_ = 0;
        } else if (++bbr_full_bw_rounds_ >= 3) {
          bbr_mode_ = BbrMode::kDrain;
        }
      }
      break;
    case BbrMode::kDrain: {
      const double bdp_bytes = bbr_btl_bw_ * rtprop / 8.0;
      if (static_cast<double>(bytes_in_flight()) <= bdp_bytes) {
        bbr_mode_ = BbrMode::kProbeBw;
        bbr_cycle_index_ = 0;
        bbr_cycle_start_ = now;
      }
      break;
    }
    case BbrMode::kProbeBw:
      if (now - bbr_cycle_start_ > rtprop) {
        bbr_cycle_index_ = (bbr_cycle_index_ + 1) % 8;
        bbr_cycle_start_ = now;
      }
      break;
  }
}

// ---------------------------------------------------------------------------
// TcpReceiver
// ---------------------------------------------------------------------------

TcpReceiver::TcpReceiver(Simulator& sim, TcpConfig config, SendPacketFn send)
    : sim_(sim), config_(config), send_(std::move(send)) {}

void TcpReceiver::on_data(const Packet& data) {
  FBEDGE_EXPECT(!data.is_ack, "ACK delivered to receiver data path");
  if (data.payload == 0) {
    // Handshake ping: reply immediately, echoing the send time.
    Packet pong;
    pong.is_ack = true;
    pong.ack = rcv_nxt_;
    pong.echo = data.sent_at;
    pong.sent_at = sim_.now();
    send_(pong);
    return;
  }
  bytes_received_ += data.payload;
  const std::int64_t start = data.seq;
  const std::int64_t end = data.seq + data.payload;

  if (start > rcv_nxt_) {
    // Out of order: buffer the interval and send an immediate dup ACK.
    out_of_order_.emplace_back(start, end);
    send_ack();
    return;
  }
  if (end <= rcv_nxt_) {
    // Full duplicate (retransmission already covered): ACK immediately.
    send_ack();
    return;
  }

  const std::int64_t before = rcv_nxt_;
  rcv_nxt_ = end;
  merge_out_of_order();
  if (on_delivered_) on_delivered_(rcv_nxt_ - before);
  ++unacked_packets_;

  const bool force = !config_.delayed_acks || unacked_packets_ >= 2 || !out_of_order_.empty();
  if (force) {
    send_ack();
  } else if (!delack_timer_) {
    delack_timer_ = sim_.schedule(config_.delayed_ack_timeout, [this] {
      delack_timer_.reset();
      send_ack();
    });
  }
}

void TcpReceiver::merge_out_of_order() {
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (auto it = out_of_order_.begin(); it != out_of_order_.end(); ++it) {
      if (it->first <= rcv_nxt_) {
        rcv_nxt_ = std::max(rcv_nxt_, it->second);
        out_of_order_.erase(it);
        advanced = true;
        break;
      }
    }
  }
}

void TcpReceiver::send_ack() {
  if (delack_timer_) {
    sim_.cancel(*delack_timer_);
    delack_timer_.reset();
  }
  unacked_packets_ = 0;
  Packet ack;
  ack.is_ack = true;
  ack.ack = rcv_nxt_;
  ack.payload = 0;
  ack.sent_at = sim_.now();
  send_(ack);
}

// ---------------------------------------------------------------------------
// TcpConnection
// ---------------------------------------------------------------------------

TcpConnection::TcpConnection(Simulator& sim, TcpConfig tcp, LinkConfig forward,
                             LinkConfig reverse, std::uint64_t seed)
    : sim_(sim) {
  // Wiring: sender --forward--> receiver --reverse--> sender.
  forward_ = std::make_unique<Link>(
      sim, forward, [this](const Packet& p) { receiver_->on_data(p); }, seed * 2 + 1);
  reverse_ = std::make_unique<Link>(
      sim, reverse, [this](const Packet& p) { sender_->on_ack(p); }, seed * 2 + 2);
  sender_ = std::make_unique<TcpSender>(sim, tcp,
                                        [this](const Packet& p) { forward_->send(p); });
  receiver_ = std::make_unique<TcpReceiver>(sim, tcp,
                                            [this](const Packet& p) { reverse_->send(p); });
}

void TcpConnection::handshake() {
  // The ping's send time rides in sent_at; the receiver echoes it back in
  // `echo` and the sender turns it into an RTT sample. The exchange goes
  // through the same links as data, so it sees the path's delay/loss.
  Packet ping;
  ping.payload = 0;
  ping.sent_at = sim_.now();
  forward_->send(ping);
}

}  // namespace fbedge
