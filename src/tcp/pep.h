// Split-TCP performance-enhancing proxy (PEP) substrate (§2.2.1).
//
// PEPs are common in satellite and cellular networks: a middlebox
// terminates the client's TCP connection and opens its own connection to
// the server, optimizing each segment independently. Under a PEP,
// *server-side* passive measurements reflect the server<->PEP segment, not
// the end-to-end path — they underestimate latency and can overestimate
// goodput relative to what the user experiences. The paper accepts this
// because Facebook can only optimize up to the PEP anyway (and notes QUIC
// removes the issue entirely).
//
// This class wires two independent TcpConnections in series with a relay
// buffer, letting tests and examples quantify the measurement skew.
#pragma once

#include <memory>

#include "tcp/tcp.h"

namespace fbedge {

/// server ==(wan links)== PEP ==(lan/last-mile links)== client
class SplitTcpPep {
 public:
  /// `wan_*` configure the server<->PEP segment, `lastmile_*` the
  /// PEP<->client segment (each pair is forward data / reverse ACK).
  SplitTcpPep(Simulator& sim, TcpConfig tcp, LinkConfig wan_forward,
              LinkConfig wan_reverse, LinkConfig lastmile_forward,
              LinkConfig lastmile_reverse, std::uint64_t seed = 1);

  /// The server writes into this sender; its TransferReports are what the
  /// load-balancer instrumentation would capture.
  TcpSender& server_sender() { return wan_->sender(); }
  TcpConnection& wan() { return *wan_; }
  TcpConnection& last_mile() { return *lastmile_; }

  /// Bytes that actually reached the client, and when the last one did.
  Bytes client_bytes() const { return client_bytes_; }
  SimTime client_last_delivery() const { return client_last_delivery_; }

  /// Bytes buffered inside the proxy (received from the server, not yet
  /// written toward the client).
  Bytes proxy_buffered() const { return relayed_in_ - relayed_out_; }

 private:
  void relay();

  Simulator& sim_;
  std::unique_ptr<TcpConnection> wan_;
  std::unique_ptr<TcpConnection> lastmile_;
  Bytes relayed_in_{0};
  Bytes relayed_out_{0};
  Bytes client_bytes_{0};
  SimTime client_last_delivery_{0};
};

}  // namespace fbedge
