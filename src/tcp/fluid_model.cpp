#include "tcp/fluid_model.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace fbedge {

BitsPerSecond mathis_rate(Bytes mss, Duration rtt, double loss_rate) {
  if (loss_rate <= 0) return std::numeric_limits<double>::infinity();
  return to_bits(mss) / (rtt * std::sqrt(2.0 * loss_rate / 3.0));
}

FluidTransfer FluidTcpConnection::transfer(Bytes size, SimTime start,
                                           const PathConditions& path) {
  FBEDGE_EXPECT(size > 0, "empty fluid transfer");
  FBEDGE_EXPECT(path.min_rtt > 0 && path.bottleneck > 0, "invalid path conditions");

  // Slow-start-after-idle: a long-idle connection loses its inflated cwnd,
  // which is why Wstart must be modeled from ideal growth rather than read
  // from Wnic alone (§3.2.2).
  if (config_.idle_restart && last_activity_ > 0 &&
      start - last_activity_ > config_.idle_restart_after) {
    cwnd_pkts_ = std::min(cwnd_pkts_, config_.initial_cwnd);
    ssthresh_pkts_ = 1e9;
  }

  const double mss_d = static_cast<double>(config_.mss);
  const std::int64_t packets_total = (size + config_.mss - 1) / config_.mss;
  const Bytes last_pkt =
      size - (packets_total - 1) * config_.mss;  // in (0, mss]

  FluidTransfer out;
  out.bytes = size;
  out.last_packet_bytes = last_pkt;
  out.wnic = static_cast<Bytes>(cwnd_pkts_ * mss_d);

  const double loss = std::min(path.loss_rate, 0.5);
  const BitsPerSecond sustainable =
      std::min(path.bottleneck, mathis_rate(config_.mss, path.min_rtt, loss));
  const double bdp_pkts =
      std::max(1.0, sustainable * path.min_rtt / to_bits(config_.mss));
  const Duration pkt_time = to_bits(config_.mss) / path.bottleneck;

  auto draw_rtt = [&]() {
    return path.min_rtt + (path.jitter > 0 ? rng_.exponential(path.jitter) : 0.0);
  };

  const std::int64_t second_last_target = packets_total - 1;  // packets acked
  Duration t = 0;
  Duration t_second_last = -1;
  Duration t_last = -1;
  std::int64_t acked = 0;
  double cwnd = cwnd_pkts_;
  int rounds = 0;
  constexpr int kMaxRounds = 200;

  while (acked < packets_total) {
    const Duration rtt_r = draw_rtt();
    if (rounds == 0) out.observed_rtt = rtt_r;

    if (cwnd >= bdp_pkts || rounds >= kMaxRounds) {
      // Rate-limited drain: remaining packets delivered evenly at the
      // sustainable rate; ACK of the k-th remaining packet arrives one RTT
      // after its serialization completes.
      const Duration spkt = to_bits(config_.mss) / sustainable;
      if (t_second_last < 0 && second_last_target > acked) {
        t_second_last = t + static_cast<double>(second_last_target - acked) * spkt + rtt_r;
      }
      t_last = t + static_cast<double>(packets_total - acked) * spkt + rtt_r;
      acked = packets_total;
      break;
    }

    ++rounds;
    const std::int64_t s =
        std::min<std::int64_t>(static_cast<std::int64_t>(cwnd), packets_total - acked);
    FBEDGE_EXPECT(s >= 1, "fluid round sends nothing");

    const double p_round = loss > 0 ? 1.0 - std::pow(1.0 - loss, static_cast<double>(s)) : 0.0;
    const bool lost = p_round > 0 && rng_.bernoulli(p_round);

    if (lost) {
      // One segment lost: the cumulative ACK stalls at it, fast retransmit
      // repairs it one extra round later, and the cwnd halves.
      ++out.loss_events;
      acked += s - 1;
      t += rtt_r + draw_rtt();  // the round + a recovery round
      cwnd = std::max(cwnd / 2.0, 1.0);
      ssthresh_pkts_ = cwnd;
      continue;
    }

    // ACK of the j-th packet of this round (1-based) arrives at
    // t + j*pkt_time + rtt (bottleneck serialization spaces deliveries).
    if (t_second_last < 0 && acked + s >= second_last_target && second_last_target > acked) {
      t_second_last =
          t + static_cast<double>(second_last_target - acked) * pkt_time + rtt_r;
    }
    if (acked + s >= packets_total) {
      t_last = t + static_cast<double>(packets_total - acked) * pkt_time + rtt_r;
    }
    acked += s;
    t += rtt_r;

    // Window growth, driven by packets ACKed this round.
    if (cwnd < ssthresh_pkts_) {
      cwnd = std::min(cwnd + static_cast<double>(s), 2.0 * cwnd);
    } else {
      cwnd += 1.0;  // one MSS per RTT in congestion avoidance
    }
  }

  FBEDGE_EXPECT(t_last >= 0, "fluid transfer never completed");
  if (packets_total == 1 || t_second_last < 0) t_second_last = t_last;

  out.full_duration = t_last;
  out.adjusted_duration = t_second_last;
  cwnd_pkts_ = std::min(cwnd, 2.0 * bdp_pkts);
  last_activity_ = start + out.full_duration;
  return out;
}

}  // namespace fbedge
