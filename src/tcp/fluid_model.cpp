#include "tcp/fluid_model.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace fbedge {

BitsPerSecond mathis_rate(Bytes mss, Duration rtt, double loss_rate) {
  if (loss_rate <= 0) return std::numeric_limits<double>::infinity();
  return to_bits(mss) / (rtt * std::sqrt(2.0 * loss_rate / 3.0));
}

FluidTransfer FluidTcpConnection::transfer(Bytes size, SimTime start,
                                           const PathConditions& path) {
  FluidTrialCache cache;
  const FluidTransfer out = transfer_candidate(size, start, path, cache);
  commit(cache);
  return out;
}

FluidTransfer FluidTcpConnection::transfer_candidate(Bytes size, SimTime start,
                                                     const PathConditions& path,
                                                     FluidTrialCache& cache) const {
  FBEDGE_EXPECT(size > 0, "empty fluid transfer");
  FBEDGE_EXPECT(path.min_rtt > 0 && path.bottleneck > 0, "invalid path conditions");

  const double mss_d = static_cast<double>(config_.mss);

  if (cache.fresh) {
    cache.fresh = false;
    double cwnd0 = cwnd_pkts_;
    double ssthresh0 = ssthresh_pkts_;
    // Slow-start-after-idle: a long-idle connection loses its inflated cwnd,
    // which is why Wstart must be modeled from ideal growth rather than read
    // from Wnic alone (§3.2.2).
    if (config_.idle_restart && last_activity_ > 0 &&
        start - last_activity_ > config_.idle_restart_after) {
      cwnd0 = std::min(cwnd0, config_.initial_cwnd);
      ssthresh0 = 1e9;
    }
    cache.cwnd = cwnd0;
    cache.ssthresh = ssthresh0;
    cache.wnic = static_cast<Bytes>(cwnd0 * mss_d);
    cache.rng = rng_;

    cache.loss = std::min(path.loss_rate, 0.5);
    // mathis_rate returns +inf for loss <= 0, where min() picks the
    // bottleneck anyway; branching skips the sqrt without changing the
    // value.
    cache.sustainable =
        cache.loss > 0
            ? std::min(path.bottleneck,
                       mathis_rate(config_.mss, path.min_rtt, cache.loss))
            : path.bottleneck;
    cache.bdp_pkts =
        std::max(1.0, cache.sustainable * path.min_rtt / to_bits(config_.mss));
    cache.pkt_time = to_bits(config_.mss) / path.bottleneck;
    // (1-p)^s via exp(s*log(1-p)): one log per path (taken lazily at the
    // first round that needs it) instead of a pow per round; s = 1 and
    // s = 2 have exact closed forms and skip even that.
    cache.q_keep = 1.0 - cache.loss;
    cache.log_keep_ready = false;
  }

  // Division by a compile-time constant compiles to a multiply; the default
  // MSS covers essentially every connection, so give the compiler that
  // constant. Identical integer arithmetic either way.
  std::int64_t packets_total;
  if (config_.mss == 1440) {
    packets_total = (size + 1439) / 1440;
  } else {
    packets_total = (size + config_.mss - 1) / config_.mss;
  }
  const Bytes last_pkt =
      size - (packets_total - 1) * config_.mss;  // in (0, mss]

  FluidTransfer out;
  out.bytes = size;
  out.last_packet_bytes = last_pkt;
  out.wnic = cache.wnic;
  out.observed_rtt = cache.observed_rtt;
  out.loss_events = cache.loss_events;

  const double loss = cache.loss;
  const BitsPerSecond sustainable = cache.sustainable;
  const double bdp_pkts = cache.bdp_pkts;
  const Duration pkt_time = cache.pkt_time;
  const double q_keep = cache.q_keep;

  Rng rng = cache.rng;
  auto draw_rtt = [&]() {
    return path.min_rtt + (path.jitter > 0 ? rng.exponential(path.jitter) : 0.0);
  };

  const std::int64_t second_last_target = packets_total - 1;  // packets acked
  Duration t = cache.t;
  Duration t_second_last = -1;
  Duration t_last = -1;
  std::int64_t acked = cache.acked;
  double cwnd = cache.cwnd;
  double ssthresh = cache.ssthresh;
  int rounds = cache.rounds;
  constexpr int kMaxRounds = 200;

  while (acked < packets_total) {
    // A round whose window neither touches the transfer tail nor drains is
    // size-independent: it runs identically (same draws, same arithmetic)
    // for every candidate size >= this one, so after executing it we fold
    // it into the checkpoint and the next candidate resumes past it.
    const bool common = rounds < kMaxRounds && cwnd < bdp_pkts &&
                        acked + static_cast<std::int64_t>(cwnd) < second_last_target;
    const Duration rtt_r = draw_rtt();
    if (rounds == 0) out.observed_rtt = rtt_r;

    if (cwnd >= bdp_pkts || rounds >= kMaxRounds) {
      // Rate-limited drain: remaining packets delivered evenly at the
      // sustainable rate; ACK of the k-th remaining packet arrives one RTT
      // after its serialization completes.
      const Duration spkt = to_bits(config_.mss) / sustainable;
      if (t_second_last < 0 && second_last_target > acked) {
        t_second_last = t + static_cast<double>(second_last_target - acked) * spkt + rtt_r;
      }
      t_last = t + static_cast<double>(packets_total - acked) * spkt + rtt_r;
      acked = packets_total;
      break;
    }

    ++rounds;
    const std::int64_t s =
        std::min<std::int64_t>(static_cast<std::int64_t>(cwnd), packets_total - acked);
    FBEDGE_EXPECT(s >= 1, "fluid round sends nothing");

    double p_round = 0.0;
    if (loss > 0) {
      if (s == 1) {
        p_round = 1.0 - q_keep;  // == 1 - pow(1-p, 1)
      } else if (s == 2) {
        p_round = 1.0 - q_keep * q_keep;  // == 1 - pow(1-p, 2)
      } else {
        if (!cache.log_keep_ready) {
          cache.log_keep = std::log(q_keep);
          cache.log_keep_ready = true;
        }
        p_round = 1.0 - std::exp(static_cast<double>(s) * cache.log_keep);
      }
    }
    const bool lost = p_round > 0 && rng.bernoulli(p_round);

    if (lost) {
      // One segment lost: the cumulative ACK stalls at it, fast retransmit
      // repairs it one extra round later, and the cwnd halves.
      ++out.loss_events;
      acked += s - 1;
      t += rtt_r + draw_rtt();  // the round + a recovery round
      cwnd = std::max(cwnd / 2.0, 1.0);
      ssthresh = cwnd;
    } else {
      // ACK of the j-th packet of this round (1-based) arrives at
      // t + j*pkt_time + rtt (bottleneck serialization spaces deliveries).
      if (t_second_last < 0 && acked + s >= second_last_target &&
          second_last_target > acked) {
        t_second_last =
            t + static_cast<double>(second_last_target - acked) * pkt_time + rtt_r;
      }
      if (acked + s >= packets_total) {
        t_last = t + static_cast<double>(packets_total - acked) * pkt_time + rtt_r;
      }
      acked += s;
      t += rtt_r;

      // Window growth, driven by packets ACKed this round.
      if (cwnd < ssthresh) {
        cwnd = std::min(cwnd + static_cast<double>(s), 2.0 * cwnd);
      } else {
        cwnd += 1.0;  // one MSS per RTT in congestion avoidance
      }
    }

    if (common) {
      cache.t = t;
      cache.acked = acked;
      cache.cwnd = cwnd;
      cache.ssthresh = ssthresh;
      cache.rounds = rounds;
      cache.loss_events = out.loss_events;
      cache.observed_rtt = out.observed_rtt;
      cache.rng = rng;
    }
  }

  FBEDGE_EXPECT(t_last >= 0, "fluid transfer never completed");
  if (packets_total == 1 || t_second_last < 0) t_second_last = t_last;

  out.full_duration = t_last;
  out.adjusted_duration = t_second_last;
  cache.end_cwnd = std::min(cwnd, 2.0 * bdp_pkts);
  cache.end_ssthresh = ssthresh;
  cache.end_rng = rng;
  cache.end_activity = start + out.full_duration;
  return out;
}

void FluidTcpConnection::commit(const FluidTrialCache& cache) {
  FBEDGE_EXPECT(!cache.fresh, "commit without a simulated candidate");
  cwnd_pkts_ = cache.end_cwnd;
  ssthresh_pkts_ = cache.end_ssthresh;
  rng_ = cache.end_rng;
  last_activity_ = cache.end_activity;
}

}  // namespace fbedge
