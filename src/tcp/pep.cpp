#include "tcp/pep.h"

namespace fbedge {

SplitTcpPep::SplitTcpPep(Simulator& sim, TcpConfig tcp, LinkConfig wan_forward,
                         LinkConfig wan_reverse, LinkConfig lastmile_forward,
                         LinkConfig lastmile_reverse, std::uint64_t seed)
    : sim_(sim) {
  wan_ = std::make_unique<TcpConnection>(sim, tcp, wan_forward, wan_reverse, seed * 7 + 1);
  lastmile_ = std::make_unique<TcpConnection>(sim, tcp, lastmile_forward,
                                              lastmile_reverse, seed * 7 + 2);

  // Server -> PEP deliveries land in the relay buffer and are immediately
  // re-written on the PEP -> client connection.
  wan_->receiver().set_on_delivered([this](Bytes n) {
    relayed_in_ += n;
    relay();
  });
  // Client-side deliveries complete the end-to-end picture.
  lastmile_->receiver().set_on_delivered([this](Bytes n) {
    client_bytes_ += n;
    client_last_delivery_ = sim_.now();
  });
}

void SplitTcpPep::relay() {
  const Bytes pending = relayed_in_ - relayed_out_;
  if (pending <= 0) return;
  relayed_out_ += pending;
  lastmile_->sender().write(pending, nullptr);
}

}  // namespace fbedge
