// Packet-level TCP model: a Reno-style sender and a receiver with delayed
// ACKs, connected through netsim Links.
//
// Fidelity targets the quantities the paper's methodology consumes:
//   - slow start doubles the cwnd per RTT when cwnd-limited (footnote 3),
//     growth driven by bytes ACKed (Linux ABC), not ACK count;
//   - delayed ACKs (2-packet / timeout) — the effect §3.2.5 corrects for;
//   - loss recovery via fast retransmit (3 dup ACKs) and RTO, so that loss
//     degrades achieved goodput the way the estimator expects;
//   - per-transfer reports exposing Wnic, first-byte-write time, and the
//     ACK times of the last and second-to-last packets.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "netsim/link.h"
#include "netsim/simulator.h"
#include "tcp/minrtt.h"
#include "tcp/rtt_estimator.h"
#include "util/units.h"

namespace fbedge {

/// Congestion-control algorithm for the sender.
enum class CongestionControl : std::uint8_t {
  kReno,   // AIMD: +1 MSS per RTT in avoidance, halve on loss
  kCubic,  // RFC 8312 window curve, beta 0.7, optional HyStart
  kBbr,    // model-based: paced at the estimated bottleneck bandwidth,
           // cwnd capped at 2x BDP, loss does not shrink the window
           // (simplified: STARTUP/DRAIN/PROBE_BW, no PROBE_RTT)
};

/// Tunables for the TCP model.
struct TcpConfig {
  /// Payload bytes per segment.
  Bytes mss{1440};
  /// Initial congestion window in segments (Linux default 10).
  double initial_cwnd{10};
  /// Initial slow-start threshold in segments (effectively unbounded).
  double initial_ssthresh{1e9};
  Duration rto_min{0.2};
  Duration rto_initial{1.0};
  /// Delayed-ACK behaviour at the receiver.
  bool delayed_acks{true};
  Duration delayed_ack_timeout{0.04};
  /// MinRTT filter window (§3.1; Facebook uses 5 minutes).
  Duration minrtt_window{5.0 * kMinute};
  CongestionControl congestion_control{CongestionControl::kReno};
  /// HyStart delay-increase detection (§3.2.3 mentions CUBIC's hybrid slow
  /// start exiting early as a performance-degrading event the goodput
  /// model must tolerate). Only meaningful with kCubic.
  bool hystart{false};
};

/// Timings and TCP state for one completed application write ("response").
struct TransferReport {
  Bytes bytes{0};
  Bytes last_packet_bytes{0};
  /// cwnd (bytes) when the first payload byte was written to the NIC — the
  /// paper's Wnic.
  Bytes wnic{0};
  SimTime first_byte_sent{0};
  /// Arrival time of the ACK covering the second-to-last packet (§3.2.5
  /// delayed-ACK correction); equals last_byte_acked for 1-packet writes.
  SimTime second_to_last_acked{0};
  SimTime last_byte_acked{0};
  std::uint64_t retransmits{0};
  /// MinRTT (windowed) at completion time.
  Duration min_rtt{0};

  /// §3.2.5-adjusted transfer duration (first NIC write -> ACK of the
  /// second-to-last packet).
  Duration adjusted_duration() const { return second_to_last_acked - first_byte_sent; }
  Duration full_duration() const { return last_byte_acked - first_byte_sent; }
  /// §3.2.5-adjusted byte count (total minus the final packet).
  Bytes adjusted_bytes() const { return bytes - last_packet_bytes; }
};

/// Reno-style TCP sender. Application data is write()n as byte counts; the
/// sender reports per-write timings through a completion callback.
class TcpSender {
 public:
  using SendPacketFn = std::function<void(const Packet&)>;
  using TransferDoneFn = std::function<void(const TransferReport&)>;

  TcpSender(Simulator& sim, TcpConfig config, SendPacketFn send);

  /// Queues `size` bytes for transmission; `done` fires when the final byte
  /// is cumulatively ACKed. Writes are delivered strictly in order.
  void write(Bytes size, TransferDoneFn done);

  /// Delivers a (cumulative) ACK from the network.
  void on_ack(const Packet& ack);

  // --- introspection -------------------------------------------------------
  Bytes cwnd() const { return static_cast<Bytes>(cwnd_); }
  double cwnd_packets() const { return cwnd_ / static_cast<double>(config_.mss); }
  Bytes bytes_in_flight() const { return next_seq_ - snd_una_; }
  bool idle() const { return snd_una_ == write_end_ && next_seq_ == write_end_; }
  std::uint64_t total_retransmits() const { return total_retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  const MinRttEstimator& min_rtt() const { return minrtt_; }
  MinRttEstimator& min_rtt() { return minrtt_; }
  Duration srtt() const { return rtt_.srtt(); }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }

 private:
  struct Segment {
    std::int64_t start;
    std::int64_t end;
    SimTime sent_at;
    bool retransmitted;
    /// Cumulative delivered bytes when this segment left (BBR delivery-rate
    /// sampling: rate = delivered-delta / time-delta).
    Bytes delivered_at_send{0};
  };

  struct PendingWrite {
    std::int64_t start;
    std::int64_t end;
    Bytes last_packet_bytes;
    TransferDoneFn done;
    TransferReport report;
    bool first_byte_recorded{false};
    bool second_last_recorded{false};
    std::uint64_t retransmits_at_start{0};
  };

  void try_send();
  void send_segment(std::int64_t start, std::int64_t end, bool retransmit);
  void arm_rto();
  void on_rto();
  void enter_fast_recovery();
  void grow_cwnd(Bytes bytes_acked, bool was_cwnd_limited);
  void complete_writes();
  void on_congestion_event();
  void hystart_round_check(Duration rtt_sample);

  Simulator& sim_;
  TcpConfig config_;
  SendPacketFn send_;

  std::int64_t snd_una_{0};
  std::int64_t next_seq_{0};
  std::int64_t write_end_{0};
  /// Highest sequence ever handed to the network; anything re-sent below
  /// this is a retransmission (Karn's rule needs this across go-back-N).
  std::int64_t highest_sent_{0};

  double cwnd_;      // bytes
  double ssthresh_;  // bytes
  int dup_acks_{0};
  bool in_recovery_{false};
  std::int64_t recovery_end_{0};
  bool blocked_on_cwnd_{false};

  std::deque<Segment> segments_;       // unacked segments, ordered
  std::deque<PendingWrite> writes_;    // incomplete writes, ordered

  RttEstimator rtt_;
  MinRttEstimator minrtt_;
  std::optional<std::uint64_t> rto_timer_;
  std::uint64_t total_retransmits_{0};
  std::uint64_t timeouts_{0};

  // CUBIC state (RFC 8312): the window curve is anchored at the size the
  // window had at the last congestion event (w_max) and the event's time.
  double cubic_w_max_pkts_{0};
  SimTime cubic_epoch_start_{-1};

  // HyStart delay-increase detection: per-round minimum RTTs.
  std::int64_t hystart_round_end_{0};
  Duration hystart_round_min_{0};
  Duration hystart_last_round_min_{0};
  int hystart_samples_{0};

  // BBR state.
  enum class BbrMode : std::uint8_t { kStartup, kDrain, kProbeBw };
  void bbr_on_ack(Bytes bytes_acked, double rate_sample);
  double bbr_pacing_rate() const;  // bits/s; 0 = unpaced
  Bytes bbr_cwnd() const;
  BbrMode bbr_mode_{BbrMode::kStartup};
  /// Windowed-max bottleneck bandwidth estimate (bits/s).
  std::deque<std::pair<SimTime, double>> bbr_bw_samples_;
  double bbr_btl_bw_{0};
  Bytes delivered_{0};
  double bbr_full_bw_{0};
  int bbr_full_bw_rounds_{0};
  std::int64_t bbr_round_end_{0};
  int bbr_cycle_index_{0};
  SimTime bbr_cycle_start_{0};
  SimTime next_send_time_{0};
  std::optional<std::uint64_t> pacing_timer_;
};

/// TCP receiver: cumulative ACKs, out-of-order tracking, delayed ACKs.
class TcpReceiver {
 public:
  using SendPacketFn = std::function<void(const Packet&)>;
  using DeliveredFn = std::function<void(Bytes newly_contiguous)>;

  TcpReceiver(Simulator& sim, TcpConfig config, SendPacketFn send);

  /// Delivers a data packet from the network.
  void on_data(const Packet& data);

  /// Registers a callback fired whenever in-order delivery advances — the
  /// hook a receiving application (or a split-TCP proxy relaying bytes
  /// onward) consumes data through.
  void set_on_delivered(DeliveredFn fn) { on_delivered_ = std::move(fn); }

  std::int64_t rcv_nxt() const { return rcv_nxt_; }
  Bytes bytes_received() const { return bytes_received_; }

 private:
  void send_ack();
  void merge_out_of_order();

  Simulator& sim_;
  TcpConfig config_;
  SendPacketFn send_;

  std::int64_t rcv_nxt_{0};
  Bytes bytes_received_{0};
  std::vector<std::pair<std::int64_t, std::int64_t>> out_of_order_;
  int unacked_packets_{0};
  std::optional<std::uint64_t> delack_timer_;
  DeliveredFn on_delivered_;
};

/// A sender/receiver pair wired through a forward (data) and reverse (ACK)
/// link. The forward link is typically the bottleneck under test.
class TcpConnection {
 public:
  TcpConnection(Simulator& sim, TcpConfig tcp, LinkConfig forward, LinkConfig reverse,
                std::uint64_t seed = 1);

  /// Models the connection handshake: a header-only packet exchange whose
  /// RTT seeds the MinRTT filter and RTO estimator — as the SYN/SYN-ACK
  /// (and TLS round-trips) do in production. Without this, the first RTT
  /// samples come from full-size data packets whose serialization at a
  /// slow bottleneck inflates MinRTT (violating footnote 5's assumption
  /// that MinRTT reflects header transmission only).
  void handshake();

  TcpSender& sender() { return *sender_; }
  TcpReceiver& receiver() { return *receiver_; }
  Link& forward_link() { return *forward_; }
  Link& reverse_link() { return *reverse_; }

 private:
  Simulator& sim_;
  std::unique_ptr<Link> forward_;
  std::unique_ptr<Link> reverse_;
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiver> receiver_;
};

}  // namespace fbedge
