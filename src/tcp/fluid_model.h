// Analytic ("fluid") TCP transfer-time model.
//
// The packet-level simulator in tcp.h is faithful but costs ~1 event per
// packet — far too slow to synthesize a 10-day, PoP-wide dataset. The fluid
// model computes per-transaction transfer timings in O(slow-start rounds):
//
//   - slow start doubles the cwnd each round until it covers the path's
//     sustainable rate (the min of the bottleneck's available bandwidth and
//     a Mathis-style loss cap ~ MSS/(RTT*sqrt(p)) [Padhye et al., cited as
//     [50] in the paper]);
//   - per-round loss events (P = 1-(1-p)^packets) halve the cwnd and add a
//     recovery round;
//   - remaining bytes then drain at the sustainable rate;
//   - per-round jitter adds to each round's RTT.
//
// The model produces exactly the observables the load-balancer sampler
// captures: Wnic, first-byte-to-second-to-last-ACK duration, byte counts,
// and MinRTT — so the goodput estimator runs unchanged on fluid-generated
// traffic. The tests cross-validate the fluid model against the
// packet-level simulator on overlapping configurations.
#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/units.h"

namespace fbedge {

/// Path conditions seen by one connection at one instant.
struct PathConditions {
  /// Round-trip propagation (+ any standing queue) delay.
  Duration min_rtt{0.05};
  /// Available bandwidth at the bottleneck.
  BitsPerSecond bottleneck{10 * kMbps};
  /// Per-packet loss probability.
  double loss_rate{0};
  /// Mean extra per-round delay (exponentially distributed).
  Duration jitter{0};
};

/// Timings for one fluid-modeled response transfer.
struct FluidTransfer {
  Bytes bytes{0};
  Bytes last_packet_bytes{0};
  Bytes wnic{0};
  /// First NIC write -> ACK covering the second-to-last packet (§3.2.5).
  Duration adjusted_duration{0};
  /// First NIC write -> ACK covering the last byte.
  Duration full_duration{0};
  /// RTT actually experienced on the first round (the MinRTT sample).
  Duration observed_rtt{0};
  std::uint64_t loss_events{0};

  Bytes adjusted_bytes() const { return bytes - last_packet_bytes; }
};

/// Resumable trial state for coalescing candidate transfers that share the
/// connection state, start time, and path but grow in size (the generator's
/// join loop). Slow-start rounds where the window neither reaches the
/// transfer tail nor drains play out identically for every candidate size,
/// so they are folded into this checkpoint once and each re-trial replays
/// only the size-dependent suffix. All fields are copied verbatim — no
/// re-derivation — which keeps a resumed candidate bitwise-identical to a
/// from-scratch simulation.
struct FluidTrialCache {
  bool fresh{true};
  // Loop state after the last round proven independent of candidate size.
  Duration t{0};
  std::int64_t acked{0};
  double cwnd{0};
  double ssthresh{0};
  int rounds{0};
  std::uint64_t loss_events{0};
  Duration observed_rtt{0};
  Bytes wnic{0};
  Rng rng;
  // Path-derived invariants, identical for every candidate (they depend on
  // the path and config only); computed once on the first candidate.
  double loss{0};
  double q_keep{1};
  double log_keep{0};
  bool log_keep_ready{false};
  BitsPerSecond sustainable{0};
  double bdp_pkts{0};
  Duration pkt_time{0};
  // Connection end-state of the most recent candidate, applied by commit().
  double end_cwnd{0};
  double end_ssthresh{0};
  SimTime end_activity{0};
  Rng end_rng;
};

/// Connection-scoped fluid TCP state: the cwnd persists across transactions
/// exactly as a real connection's would, which is what makes later
/// transactions testable for higher goodputs (§3.2.2).
class FluidTcpConnection {
 public:
  struct Config {
    Bytes mss{1440};
    double initial_cwnd{10};
    /// After this much idle time the cwnd decays back toward the initial
    /// window (Linux slow-start-after-idle).
    Duration idle_restart_after{1.0};
    bool idle_restart{true};
  };

  FluidTcpConnection(Config config, std::uint64_t seed)
      : config_(config), rng_(seed), cwnd_pkts_(config.initial_cwnd) {}

  /// Models the transfer of a `size`-byte response starting at `start`
  /// under `path` conditions. Mutates connection state (cwnd, clock).
  FluidTransfer transfer(Bytes size, SimTime start, const PathConditions& path);

  /// As transfer(), but const: simulates one candidate size against `cache`,
  /// advancing the shared size-independent prefix. The cache may only be
  /// reused across candidates with identical start/path and non-decreasing
  /// size; call commit() to apply the final candidate to the connection.
  FluidTransfer transfer_candidate(Bytes size, SimTime start,
                                   const PathConditions& path,
                                   FluidTrialCache& cache) const;

  /// Applies the end-state of `cache`'s most recent candidate (cwnd,
  /// ssthresh, RNG position, activity clock) to this connection.
  void commit(const FluidTrialCache& cache);

  double cwnd_packets() const { return cwnd_pkts_; }
  SimTime last_activity() const { return last_activity_; }

 private:
  Config config_;
  Rng rng_;
  double cwnd_pkts_;
  double ssthresh_pkts_{1e9};
  SimTime last_activity_{0};
};

/// Steady-state loss-limited TCP rate (Mathis et al. / PFTK simplification):
/// rate = MSS * 8 / (RTT * sqrt(2p/3)). Returns +inf for p <= 0.
BitsPerSecond mathis_rate(Bytes mss, Duration rtt, double loss_rate);

}  // namespace fbedge
