// Smoothed RTT / RTO estimation per RFC 6298.
#pragma once

#include <algorithm>

#include "util/units.h"

namespace fbedge {

/// srtt / rttvar / RTO state machine (RFC 6298 constants).
class RttEstimator {
 public:
  explicit RttEstimator(Duration rto_min = 0.2, Duration rto_initial = 1.0)
      : rto_min_(rto_min), rto_(rto_initial) {}

  void add_sample(Duration rtt) {
    if (!has_sample_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2.0;
      has_sample_ = true;
    } else {
      rttvar_ = (1 - kBeta) * rttvar_ + kBeta * std::abs(srtt_ - rtt);
      srtt_ = (1 - kAlpha) * srtt_ + kAlpha * rtt;
    }
    rto_ = std::max(rto_min_, srtt_ + 4.0 * rttvar_);
    backoff_ = 1;
  }

  /// Exponential backoff after a retransmission timeout.
  void on_timeout() { backoff_ = std::min(backoff_ * 2, 64); }

  Duration srtt() const { return srtt_; }
  Duration rttvar() const { return rttvar_; }
  Duration rto() const { return rto_ * backoff_; }
  bool has_sample() const { return has_sample_; }

 private:
  static constexpr double kAlpha = 1.0 / 8.0;
  static constexpr double kBeta = 1.0 / 4.0;

  Duration rto_min_;
  Duration srtt_{0};
  Duration rttvar_{0};
  Duration rto_;
  int backoff_{1};
  bool has_sample_{false};
};

}  // namespace fbedge
