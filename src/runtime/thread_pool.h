// Work-stealing thread pool for the sharded measurement pipeline.
//
// Tasks are identified by index (one task per user group). A parallel_for
// seeds each worker's bounded deque with one contiguous index range from a
// ShardPlan; owners nibble indices off the front of their own queue, and
// idle workers steal the back half of a victim's range. Queues therefore
// hold O(log n) ranges, never O(n) tasks.
//
// Failure model: tasks must not throw — the library is exception-free and
// fail-fast (FBEDGE_EXPECT aborts on precondition violations). A task that
// escapes with an exception is treated as a precondition violation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/run_stats.h"
#include "runtime/shard_plan.h"

namespace fbedge {

/// Resolves a requested thread count: values >= 1 pass through, 0 (the
/// default in RuntimeOptions) means hardware concurrency.
int resolve_threads(int requested);

/// Bounded retry for failable tasks (fault-tolerant pipeline runs).
struct RetryPolicy {
  /// Total attempts per task (first run + retries); must be >= 1.
  int max_attempts{3};
  /// Sleep before retry k is backoff_seconds * 2^(k-1); 0 disables sleeping
  /// (tests and deterministic chaos sweeps).
  double backoff_seconds{0};
};

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the thread calling parallel_for always
  /// participates as shard 0, so a 1-thread pool runs inline with zero
  /// threading overhead.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  using Task = std::function<void(std::size_t)>;

  /// A task that also learns which worker runs it. `worker` is in
  /// [0, threads()) and is stable for the duration of one fn invocation —
  /// the handle for per-worker scratch arenas (each worker owns slot
  /// `worker` exclusively while inside the task).
  using WorkerTask = std::function<void(int worker, std::size_t index)>;

  /// Runs fn(i) for every i covered by `plan`, distributing plan shards
  /// round-robin over the pool's workers, and blocks until all tasks have
  /// finished. Execution order is unspecified; determinism is the
  /// reducer's job (merge per-index results in index order).
  RunStats parallel_for(const ShardPlan& plan, const Task& fn);

  /// As parallel_for, but the task receives the executing worker's id, so
  /// callers can route each index to a per-worker scratch slot without
  /// thread_local state.
  RunStats parallel_for_workers(const ShardPlan& plan, const WorkerTask& fn);

  /// Convenience: balanced plan with one shard per thread.
  RunStats parallel_for(std::size_t n, const Task& fn) {
    return parallel_for(ShardPlan::make(n, threads_), fn);
  }

  /// A task that may fail transiently: returns true on success. `attempt`
  /// counts from 0; the task must be deterministic in (index, attempt) for
  /// the pipeline's reproducibility guarantee to hold.
  using FailableTask = std::function<bool(std::size_t index, int attempt)>;

  /// As parallel_for, but each failed task is retried inline on its owning
  /// worker (with exponential backoff per `policy`) up to
  /// policy.max_attempts total attempts. Indices whose every attempt failed
  /// are flagged in `*failed` (resized to plan.size(); 1 = lost); the
  /// returned stats carry the abort/retry counters in `faults`.
  RunStats parallel_for_failable(const ShardPlan& plan, const FailableTask& fn,
                                 const RetryPolicy& policy,
                                 std::vector<std::uint8_t>* failed = nullptr);

 private:
  /// One worker's bounded run queue of index ranges.
  struct Queue {
    std::mutex mutex;
    std::deque<ShardRange> ranges;
  };

  void worker_loop(int worker);
  void run_job(int worker, const WorkerTask& fn);
  bool pop_local(int worker, std::size_t* index);
  bool steal(int thief, std::size_t* index);

  int threads_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<ShardStats> job_stats_;

  std::mutex job_mutex_;
  std::condition_variable job_cv_;   // workers wait here for a new job
  std::condition_variable done_cv_;  // parallel_for waits here for drain
  const WorkerTask* job_fn_{nullptr};
  std::uint64_t job_generation_{0};
  int workers_remaining_{0};  // participants still inside the current job
  bool stopping_{false};
};

}  // namespace fbedge
