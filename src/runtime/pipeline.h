// Sharded map-reduce over the measurement pipeline, with deterministic
// merge.
//
// The workload -> sampler -> goodput -> agg pipeline shares no state
// between user groups until aggregation, and each group's sessions come
// from an Rng stream derived from (seed, group id) alone. So the parallel
// schedule is: map every group to a partial result on the pool (any
// thread, any order), then fold the partials IN GROUP-ID ORDER. The fold
// order is what makes results byte-identical for every thread count,
// including 1 — reducers only ever see the same sequence of merges.
//
// World *building* stays single-threaded (src/workload/world.cpp is
// calibration- and draw-order-sensitive); only the per-group measurement
// work is sharded.
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/run_stats.h"
#include "runtime/shard_plan.h"
#include "runtime/thread_pool.h"
#include "workload/world.h"

namespace fbedge {

/// Execution knobs threaded through the analysis runners and benches.
struct RuntimeOptions {
  /// Worker threads; 0 means hardware concurrency.
  int threads{0};

  static RuntimeOptions sequential() { return RuntimeOptions{1}; }
};

/// Maps fn(i) over [0, n), returning the results indexed by i. The result
/// type must be default-constructible and movable; each slot is written by
/// exactly one task.
template <typename Fn>
auto parallel_map(std::size_t n, const RuntimeOptions& options, Fn&& fn,
                  RunStats* stats = nullptr) {
  using Partial = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<Partial> partials(n);
  ThreadPool pool(resolve_threads(options.threads));
  RunStats rs = pool.parallel_for(
      ShardPlan::make(n, pool.threads()),
      [&](std::size_t i) { partials[i] = fn(i); });
  if (stats) stats->accumulate(rs);
  return partials;
}

/// As parallel_map, but each task also receives a reference to a per-worker
/// Scratch object (one per pool thread, default-constructed). A worker owns
/// its scratch slot exclusively while inside a task, so the scratch can hold
/// reusable arenas (SessionBatch, coalesced-txn buffers, ...) that persist
/// across all the groups that worker processes — per-group allocations
/// happen only while an arena is still growing toward its high-water mark.
/// Determinism: fn must fully overwrite/clear whatever scratch state it
/// reads, so a task's result is independent of which worker (and which
/// scratch history) ran it; results are still merged by index.
template <typename Scratch, typename Fn>
auto parallel_map_scratch(std::size_t n, const RuntimeOptions& options, Fn&& fn,
                          RunStats* stats = nullptr) {
  using Partial = std::decay_t<std::invoke_result_t<Fn&, Scratch&, std::size_t>>;
  std::vector<Partial> partials(n);
  ThreadPool pool(resolve_threads(options.threads));
  std::vector<Scratch> scratch(static_cast<std::size_t>(pool.threads()));
  RunStats rs = pool.parallel_for_workers(
      ShardPlan::make(n, pool.threads()),
      [&](int worker, std::size_t i) {
        partials[i] = fn(scratch[static_cast<std::size_t>(worker)], i);
      });
  if (stats) stats->accumulate(rs);
  return partials;
}

/// The canonical sharded pipeline shape: one partial per user group,
/// folded into `init` in group-id order. `per_group(group, index)` must
/// not touch shared mutable state; `fold(acc, partial, index)` runs on the
/// calling thread only.
template <typename Result, typename PerGroup, typename Fold>
Result shard_map_reduce(const World& world, const RuntimeOptions& options,
                        Result init, PerGroup&& per_group, Fold&& fold,
                        RunStats* stats = nullptr) {
  auto partials = parallel_map(
      world.groups.size(), options,
      [&](std::size_t g) { return per_group(world.groups[g], g); }, stats);
  for (std::size_t g = 0; g < partials.size(); ++g) {
    fold(init, std::move(partials[g]), g);
  }
  return init;
}

/// shard_map_reduce with per-worker scratch arenas: `per_group(scratch,
/// group, index)` runs on the pool with a Scratch owned by the executing
/// worker (see parallel_map_scratch for the reuse/determinism contract);
/// the fold still runs on the calling thread in group-id order.
template <typename Scratch, typename Result, typename PerGroup, typename Fold>
Result shard_map_reduce_scratch(const World& world, const RuntimeOptions& options,
                                Result init, PerGroup&& per_group, Fold&& fold,
                                RunStats* stats = nullptr) {
  auto partials = parallel_map_scratch<Scratch>(
      world.groups.size(), options,
      [&](Scratch& scratch, std::size_t g) {
        return per_group(scratch, world.groups[g], g);
      },
      stats);
  for (std::size_t g = 0; g < partials.size(); ++g) {
    fold(init, std::move(partials[g]), g);
  }
  return init;
}

/// Fault-tolerant variant of shard_map_reduce for runs under fault
/// injection. `per_group(group, index, attempt)` returns nullopt to signal
/// a transient failure; the pool retries per `retry`, and groups that
/// exhaust every attempt are skipped deterministically — the fold still
/// runs in group-id order over the survivors, so the result is identical
/// for any thread count as long as per_group is deterministic in
/// (index, attempt). `on_lost(acc, index)` is called (in group-id order)
/// for each lost group so the reducer can report the gap.
template <typename Result, typename PerGroup, typename Fold, typename OnLost>
Result shard_map_reduce_failable(const World& world, const RuntimeOptions& options,
                                 const RetryPolicy& retry, Result init,
                                 PerGroup&& per_group, Fold&& fold, OnLost&& on_lost,
                                 RunStats* stats = nullptr) {
  using Partial = typename std::decay_t<
      std::invoke_result_t<PerGroup&, const UserGroupProfile&, std::size_t,
                           int>>::value_type;
  const std::size_t n = world.groups.size();
  std::vector<Partial> partials(n);
  std::vector<std::uint8_t> failed;
  ThreadPool pool(resolve_threads(options.threads));
  RunStats rs = pool.parallel_for_failable(
      ShardPlan::make(n, pool.threads()),
      [&](std::size_t g, int attempt) {
        auto part = per_group(world.groups[g], g, attempt);
        if (!part) return false;
        partials[g] = std::move(*part);
        return true;
      },
      retry, &failed);
  if (stats) stats->accumulate(rs);
  for (std::size_t g = 0; g < n; ++g) {
    if (g < failed.size() && failed[g]) {
      on_lost(init, g);
      continue;
    }
    fold(init, std::move(partials[g]), g);
  }
  return init;
}

}  // namespace fbedge
