#include "runtime/thread_pool.h"

#include <atomic>
#include <chrono>

#include "runtime/alloc_counter.h"
#include "util/expect.h"
#include "util/simd.h"

namespace fbedge {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) : threads_(threads) {
  FBEDGE_EXPECT(threads >= 1, "thread pool needs at least one thread");
  queues_.reserve(static_cast<std::size_t>(threads_));
  for (int w = 0; w < threads_; ++w) queues_.push_back(std::make_unique<Queue>());
  job_stats_.resize(static_cast<std::size_t>(threads_));
  // The calling thread is worker 0; spawn the rest.
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(job_mutex_);
    stopping_ = true;
  }
  job_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::pop_local(int worker, std::size_t* index) {
  Queue& q = *queues_[static_cast<std::size_t>(worker)];
  std::lock_guard<std::mutex> lk(q.mutex);
  if (q.ranges.empty()) return false;
  ShardRange& front = q.ranges.front();
  *index = front.begin++;
  if (front.empty()) q.ranges.pop_front();
  return true;
}

bool ThreadPool::steal(int thief, std::size_t* index) {
  for (int offset = 1; offset < threads_; ++offset) {
    const int victim = (thief + offset) % threads_;
    ShardRange taken{};
    {
      Queue& q = *queues_[static_cast<std::size_t>(victim)];
      std::lock_guard<std::mutex> lk(q.mutex);
      if (q.ranges.empty()) continue;
      ShardRange& back = q.ranges.back();
      if (back.size() > 1) {
        // Take the upper half; the victim keeps the lower half.
        const std::size_t mid = back.begin + back.size() / 2;
        taken = {mid, back.end};
        back.end = mid;
      } else {
        taken = back;
        q.ranges.pop_back();
      }
    }
    *index = taken.begin++;
    if (!taken.empty()) {
      Queue& own = *queues_[static_cast<std::size_t>(thief)];
      std::lock_guard<std::mutex> lk(own.mutex);
      own.ranges.push_back(taken);
    }
    return true;
  }
  return false;
}

void ThreadPool::run_job(int worker, const WorkerTask& fn) {
  ShardStats& st = job_stats_[static_cast<std::size_t>(worker)];
  for (;;) {
    std::size_t index = 0;
    bool stolen = false;
    if (!pop_local(worker, &index)) {
      if (!steal(worker, &index)) break;
      stolen = true;
    }
    const auto start = Clock::now();
    try {
      fn(worker, index);
    } catch (...) {
      FBEDGE_EXPECT(false, "pipeline task threw; tasks must fail fast instead");
    }
    st.busy_seconds += seconds_since(start);
    ++st.tasks;
    if (stolen) ++st.steals;
    // Feed the sampled-RSS watermark at task boundaries (every 8th task per
    // worker): a /proc read costs microseconds against tasks that run for
    // milliseconds to seconds, and the watermark then reflects RSS *during*
    // the run, not just wherever the run happened to end.
    if ((st.tasks & 7u) == 0) rss_sample();
  }
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(job_mutex_);
  for (;;) {
    job_cv_.wait(lk, [&] { return stopping_ || job_generation_ != seen; });
    if (stopping_) return;
    seen = job_generation_;
    const WorkerTask* fn = job_fn_;
    lk.unlock();
    run_job(worker, *fn);
    lk.lock();
    if (--workers_remaining_ == 0) done_cv_.notify_all();
  }
}

RunStats ThreadPool::parallel_for(const ShardPlan& plan, const Task& fn) {
  return parallel_for_workers(plan,
                              [&fn](int, std::size_t i) { fn(i); });
}

RunStats ThreadPool::parallel_for_workers(const ShardPlan& plan, const WorkerTask& fn) {
  RunStats rs;
  rs.threads = threads_;
  rs.simd_avx2 = simd::avx2_active() ? 1 : 0;
  rs.shards.resize(static_cast<std::size_t>(threads_));
  if (plan.size() == 0) return rs;

  const AllocCounters alloc_start = alloc_counters_now();
  const auto wall_start = Clock::now();
  {
    std::lock_guard<std::mutex> lk(job_mutex_);
    // All workers are parked in job_cv_.wait here (the previous job only
    // finished once every participant left run_job), so seeding is safe.
    job_stats_.assign(static_cast<std::size_t>(threads_), ShardStats{});
    for (int s = 0; s < plan.shard_count(); ++s) {
      const ShardRange r = plan.shard(s);
      if (r.empty()) continue;
      queues_[static_cast<std::size_t>(s % threads_)]->ranges.push_back(r);
    }
    job_fn_ = &fn;
    workers_remaining_ = threads_;
    ++job_generation_;
  }
  job_cv_.notify_all();

  run_job(0, fn);  // the caller is worker 0

  {
    std::unique_lock<std::mutex> lk(job_mutex_);
    if (--workers_remaining_ > 0) {
      done_cv_.wait(lk, [&] { return workers_remaining_ == 0; });
    }
  }

  rs.wall_seconds = seconds_since(wall_start);
  const AllocCounters alloc_end = alloc_counters_now();
  rs.alloc_count = alloc_end.count - alloc_start.count;
  rs.alloc_bytes = alloc_end.bytes - alloc_start.bytes;
  rs.rss_sampled_peak_bytes = rss_sample();
  rs.shards = job_stats_;
  for (const auto& st : rs.shards) {
    rs.tasks += st.tasks;
    rs.steals += st.steals;
    rs.cpu_seconds += st.busy_seconds;
  }
  return rs;
}

RunStats ThreadPool::parallel_for_failable(const ShardPlan& plan,
                                           const FailableTask& fn,
                                           const RetryPolicy& policy,
                                           std::vector<std::uint8_t>* failed) {
  FBEDGE_EXPECT(policy.max_attempts >= 1, "retry policy needs at least one attempt");
  if (failed) failed->assign(plan.size(), 0);
  std::atomic<std::uint64_t> aborts{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> lost{0};
  // The retry loop runs inline on whichever worker popped the index, so
  // each `failed` slot is written by exactly one thread and the pool's
  // join provides the ordering for the caller's reads.
  const Task wrapper = [&](std::size_t i) {
    for (int attempt = 0;; ++attempt) {
      if (fn(i, attempt)) return;
      aborts.fetch_add(1, std::memory_order_relaxed);
      if (attempt + 1 >= policy.max_attempts) {
        lost.fetch_add(1, std::memory_order_relaxed);
        if (failed) (*failed)[i] = 1;
        return;
      }
      retries.fetch_add(1, std::memory_order_relaxed);
      if (policy.backoff_seconds > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            policy.backoff_seconds * static_cast<double>(1u << attempt)));
      }
    }
  };
  RunStats rs = parallel_for(plan, wrapper);
  rs.faults.task_aborts = aborts.load();
  rs.faults.task_retries = retries.load();
  rs.faults.lost_groups = lost.load();
  return rs;
}

}  // namespace fbedge
