// Process-wide heap-allocation accounting for the benches.
//
// The tentpole claim of the batching work is "zero per-session allocations
// at steady state" — a claim that regresses silently unless it is measured
// on every bench run. This header exposes cumulative allocation counters
// fed by replacement global operator new/delete (alloc_counter.cpp); the
// benches snapshot them around the measured phase and report the delta as
// `runtime_alloc_count` in --json output, next to wall time.
//
// Counting is thread-local (one relaxed-atomic flush per thread exit plus
// on-demand aggregation), so the instrumented hot path pays two
// thread-local increments per allocation — noise next to the allocation
// itself. Numbers are for observability, not for the byte-identity
// contract: nothing on the measurement output path reads them.
#pragma once

#include <cstdint>

namespace fbedge {

/// Cumulative process totals since start.
struct AllocCounters {
  std::uint64_t count{0};  // operator-new calls
  std::uint64_t bytes{0};  // bytes requested
};

/// Snapshot of the process-wide allocation totals (all threads, including
/// ones that have exited). Two snapshots bracket a phase; subtract.
AllocCounters alloc_counters_now();

/// Current resident set size in bytes (/proc/self/statm); 0 if unreadable.
/// Unlike getrusage's monotone ru_maxrss this goes *down* when memory is
/// returned to the kernel, so periodic samples of it distinguish "flat
/// working set" from "grew once, never shrank".
std::uint64_t current_rss_bytes();

/// Samples current_rss_bytes() into a process-wide monotone watermark and
/// returns the updated watermark. Call sites sprinkle this through
/// long-running loops (thread-pool tasks, stream window seals) so the
/// watermark tracks the RSS actually observed *during* a run — the
/// measurable form of the streaming pipeline's flat-memory claim.
std::uint64_t rss_sample();

/// The watermark as of the last rss_sample() call (no new sample taken).
std::uint64_t rss_sampled_peak();

}  // namespace fbedge
