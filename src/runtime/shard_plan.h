// Partitioning of a group-indexed workload into shards.
//
// The measurement pipeline is embarrassingly parallel at user-group
// granularity: groups share no mutable state until aggregation, and every
// group draws from its own Rng stream derived from (seed, group id) — see
// entity_stream() in util/rng.h and DatasetGenerator::generate_group. A
// ShardPlan assigns each shard a contiguous block of group indices; a
// work-stealing pool rebalances at run time, and the reducer merges
// per-group results in group-id order so output is independent of both the
// shard count and the steal schedule.
#pragma once

#include <cstddef>
#include <vector>

#include "util/expect.h"

namespace fbedge {

/// Half-open index range [begin, end).
struct ShardRange {
  std::size_t begin{0};
  std::size_t end{0};

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// A balanced block partition of [0, size) into K contiguous shards.
/// Blocks (rather than round-robin) keep each shard's groups adjacent,
/// which preserves locality of the per-group world data.
class ShardPlan {
 public:
  /// Partitions `num_items` items into `shards` blocks whose sizes differ
  /// by at most one. Shards may be empty when num_items < shards.
  static ShardPlan make(std::size_t num_items, int shards) {
    FBEDGE_EXPECT(shards >= 1, "shard plan needs at least one shard");
    ShardPlan plan;
    plan.num_items_ = num_items;
    plan.ranges_.reserve(static_cast<std::size_t>(shards));
    const std::size_t k = static_cast<std::size_t>(shards);
    const std::size_t base = num_items / k;
    const std::size_t extra = num_items % k;
    std::size_t at = 0;
    for (std::size_t s = 0; s < k; ++s) {
      const std::size_t len = base + (s < extra ? 1 : 0);
      plan.ranges_.push_back({at, at + len});
      at += len;
    }
    return plan;
  }

  int shard_count() const { return static_cast<int>(ranges_.size()); }
  std::size_t size() const { return num_items_; }

  const ShardRange& shard(int s) const {
    FBEDGE_EXPECT(s >= 0 && s < shard_count(), "shard index out of range");
    return ranges_[static_cast<std::size_t>(s)];
  }

 private:
  std::size_t num_items_{0};
  std::vector<ShardRange> ranges_;
};

}  // namespace fbedge
