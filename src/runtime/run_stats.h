// Execution observability for sharded pipeline runs.
//
// Every parallel_for reports where the work actually went: how many tasks
// each shard executed, how many of those were stolen from another shard's
// queue, and how busy each worker was relative to the run's wall time.
// Bench binaries print this (to stderr, so measurement output stays
// byte-identical across thread counts) to prove shard utilization.
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

namespace fbedge {

/// Counters for one worker/shard of a parallel run.
struct ShardStats {
  std::uint64_t tasks{0};
  std::uint64_t steals{0};
  double busy_seconds{0};
};

/// Aggregate counters for one parallel_for (or a whole bench run when
/// accumulated across phases).
struct RunStats {
  int threads{0};
  std::uint64_t tasks{0};
  std::uint64_t steals{0};
  double wall_seconds{0};
  double cpu_seconds{0};  // sum of per-worker busy time
  std::vector<ShardStats> shards;

  /// Fraction of the available thread-seconds spent executing tasks.
  double utilization() const {
    return threads > 0 && wall_seconds > 0
               ? cpu_seconds / (wall_seconds * threads)
               : 0.0;
  }

  /// Folds another run's counters in (multi-phase benches); wall times add,
  /// shard vectors add element-wise.
  void accumulate(const RunStats& other) {
    threads = std::max(threads, other.threads);
    tasks += other.tasks;
    steals += other.steals;
    wall_seconds += other.wall_seconds;
    cpu_seconds += other.cpu_seconds;
    if (shards.size() < other.shards.size()) shards.resize(other.shards.size());
    for (std::size_t s = 0; s < other.shards.size(); ++s) {
      shards[s].tasks += other.shards[s].tasks;
      shards[s].steals += other.shards[s].steals;
      shards[s].busy_seconds += other.shards[s].busy_seconds;
    }
  }

  /// Human-readable dump. Defaults to stderr so stdout (the measurement
  /// output) is independent of thread count and machine speed.
  void print(const char* label, std::FILE* out = stderr) const {
    std::fprintf(out,
                 "[runtime] %s: threads=%d tasks=%llu steals=%llu "
                 "wall=%.3fs cpu=%.3fs util=%.1f%%\n",
                 label, threads, static_cast<unsigned long long>(tasks),
                 static_cast<unsigned long long>(steals), wall_seconds,
                 cpu_seconds, 100.0 * utilization());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      std::fprintf(out, "[runtime]   shard %zu: tasks=%llu steals=%llu busy=%.3fs\n",
                   s, static_cast<unsigned long long>(shards[s].tasks),
                   static_cast<unsigned long long>(shards[s].steals),
                   shards[s].busy_seconds);
    }
  }
};

}  // namespace fbedge
