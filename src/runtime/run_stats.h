// Execution observability for sharded pipeline runs.
//
// Every parallel_for reports where the work actually went: how many tasks
// each shard executed, how many of those were stolen from another shard's
// queue, and how busy each worker was relative to the run's wall time.
// Bench binaries print this (to stderr, so measurement output stays
// byte-identical across thread counts) to prove shard utilization.
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

namespace fbedge {

/// Counters for one worker/shard of a parallel run.
struct ShardStats {
  std::uint64_t tasks{0};
  std::uint64_t steals{0};
  double busy_seconds{0};
};

/// Per-fault-type counters for a run under fault injection (src/faultsim/).
/// Lives here — not in faultsim — because the runtime and analysis layers
/// carry these counters through RunStats without depending on the fault
/// plan itself. All counters stay zero when no faults are injected.
struct FaultCounters {
  // Sampler-layer injections.
  std::uint64_t truncated_records{0};  // records cut mid-line at the sampler
  std::uint64_t corrupt_records{0};    // records with mutated fields
  std::uint64_t rejected_records{0};   // faulted records dropped by validation
  std::uint64_t duplicated_samples{0};
  std::uint64_t skewed_samples{0};     // ACK-clock skew vs the NIC clock
  std::uint64_t thinned_groups{0};     // groups with most sessions dropped
  std::uint64_t thinned_sessions{0};
  std::uint64_t pop_outage_groups{0};  // groups silenced by a PoP outage
  // Aggregation-layer injections.
  std::uint64_t dropped_windows{0};    // 15-minute windows lost post-agg
  // Stream-layer injections (src/stream/): delivery-order faults on the
  // micro-batch transport between the source and the window machines.
  std::uint64_t stream_late_batches{0};       // micro-batches held back
  std::uint64_t stream_duplicate_batches{0};  // micro-batches delivered twice
  /// Degraded artifact of stream lateness: rows that arrived after their
  /// window sealed and were dropped by the window machine.
  std::uint64_t stream_dropped_rows{0};
  // Runtime-layer injections.
  std::uint64_t task_aborts{0};   // failed shard-task attempts
  std::uint64_t task_retries{0};  // re-executions after an abort
  std::uint64_t lost_groups{0};   // groups that exhausted every attempt
  // Distrib-layer injections (src/distrib/): worker processes killed by the
  // kWorkerCrash site before publishing anything.
  std::uint64_t worker_crashes{0};   // injected worker-process deaths
  std::uint64_t worker_retries{0};   // re-spawns after a crashed attempt
  std::uint64_t degraded_shards{0};  // shards that exhausted every attempt
                                     // (reduced via cold ingest instead)
  // Scenario-pack perturbations (src/scenario/): one count per (group,
  // delta) application, so tests can recount every injected perturbation
  // exactly from the pack alone.
  std::uint64_t scenario_drained_groups{0};    // PoP-drain reroute episodes
  std::uint64_t scenario_depref_groups{0};     // groups with routes demoted
  std::uint64_t scenario_flash_groups{0};      // flash-crowd load multipliers
  std::uint64_t scenario_cable_cut_groups{0};  // continent-pair RTT episodes
  // Incremental sweep decisions (analysis/sweep.h): per scenario of a
  // sweep, groups spliced from the baseline artifact because they lie
  // outside the scenario's affected_groups() footprint vs. groups
  // re-ingested under the perturbed world. reused + recomputed sums to
  // (scenario count) x (group count); both stay zero outside sweeps and in
  // faulted runs (which bypass reuse in both directions).
  std::uint64_t scenario_groups_reused{0};
  std::uint64_t scenario_groups_recomputed{0};

  bool any() const {
    return truncated_records || corrupt_records || rejected_records ||
           duplicated_samples || skewed_samples || thinned_groups ||
           thinned_sessions || pop_outage_groups || dropped_windows ||
           stream_late_batches || stream_duplicate_batches ||
           stream_dropped_rows || task_aborts || task_retries || lost_groups ||
           worker_crashes || worker_retries || degraded_shards ||
           scenario_drained_groups || scenario_depref_groups ||
           scenario_flash_groups || scenario_cable_cut_groups ||
           scenario_groups_reused || scenario_groups_recomputed;
  }

  void accumulate(const FaultCounters& other) {
    truncated_records += other.truncated_records;
    corrupt_records += other.corrupt_records;
    rejected_records += other.rejected_records;
    duplicated_samples += other.duplicated_samples;
    skewed_samples += other.skewed_samples;
    thinned_groups += other.thinned_groups;
    thinned_sessions += other.thinned_sessions;
    pop_outage_groups += other.pop_outage_groups;
    dropped_windows += other.dropped_windows;
    stream_late_batches += other.stream_late_batches;
    stream_duplicate_batches += other.stream_duplicate_batches;
    stream_dropped_rows += other.stream_dropped_rows;
    task_aborts += other.task_aborts;
    task_retries += other.task_retries;
    lost_groups += other.lost_groups;
    worker_crashes += other.worker_crashes;
    worker_retries += other.worker_retries;
    degraded_shards += other.degraded_shards;
    scenario_drained_groups += other.scenario_drained_groups;
    scenario_depref_groups += other.scenario_depref_groups;
    scenario_flash_groups += other.scenario_flash_groups;
    scenario_cable_cut_groups += other.scenario_cable_cut_groups;
    scenario_groups_reused += other.scenario_groups_reused;
    scenario_groups_recomputed += other.scenario_groups_recomputed;
  }
};

/// Aggregate counters for one parallel_for (or a whole bench run when
/// accumulated across phases).
struct RunStats {
  int threads{0};
  std::uint64_t tasks{0};
  std::uint64_t steals{0};
  double wall_seconds{0};
  double cpu_seconds{0};  // sum of per-worker busy time
  /// Heap allocations during the run (all threads; runtime/alloc_counter.h).
  /// The batching work's "zero per-session allocations" claim is checked
  /// against these: at steady state they scale with windows, not sessions.
  std::uint64_t alloc_count{0};
  std::uint64_t alloc_bytes{0};
  /// Sampled-RSS high-water mark (runtime/alloc_counter.h rss_sample()):
  /// the largest *current* RSS observed at the sampling points the run
  /// actually passed through (task boundaries, stream window seals). This
  /// is the single RSS counter every bench reports (`runtime_rss_peak` in
  /// --json) and the number the streaming monitor's and the shard
  /// coordinator's flat-memory claims are judged by.
  std::uint64_t rss_sampled_peak_bytes{0};
  /// Streaming-monitor observability (src/stream/); all zero for runs that
  /// never touch the stream pipeline.
  std::uint64_t stream_windows_sealed{0};
  std::uint64_t stream_watermark_advances{0};
  /// Peak simultaneously-open windows across all group machines (max, not
  /// sum): the streaming memory model in one number.
  std::uint64_t stream_open_windows_peak{0};
  /// Ingest-artifact cache observability (analysis/ingest_cache.h): groups
  /// served from a cached artifact vs. groups that had to cold-ingest.
  /// Both stay zero when no cache directory is configured.
  std::uint64_t cache_hits{0};
  std::uint64_t cache_misses{0};
  /// Wall time spent reading/validating and writing cache artifacts.
  double cache_load_seconds{0};
  double cache_save_seconds{0};
  /// Multi-process shard-coordinator observability (src/distrib/): worker
  /// subprocesses launched (including re-spawns), worker attempts that
  /// exited nonzero (or were signal-killed), and the largest peak RSS any
  /// single worker process reported (ru_maxrss). All zero for in-process
  /// runs.
  std::uint64_t workers_spawned{0};
  std::uint64_t worker_failures{0};
  std::uint64_t worker_rss_peak_bytes{0};
  /// Which columnar-kernel path the run dispatched to (util/simd.h):
  /// 1 = AVX2, 0 = scalar reference, -1 = unknown (stats assembled outside
  /// the sharded runtime). Carried through so benches and --verbose can
  /// prove a run did not silently fall back to scalar.
  int simd_avx2{-1};
  std::vector<ShardStats> shards;
  FaultCounters faults;

  /// Fraction of the available thread-seconds spent executing tasks.
  double utilization() const {
    return threads > 0 && wall_seconds > 0
               ? cpu_seconds / (wall_seconds * threads)
               : 0.0;
  }

  /// Folds another run's counters in (multi-phase benches); wall times add,
  /// shard vectors add element-wise.
  void accumulate(const RunStats& other) {
    threads = std::max(threads, other.threads);
    tasks += other.tasks;
    steals += other.steals;
    wall_seconds += other.wall_seconds;
    cpu_seconds += other.cpu_seconds;
    alloc_count += other.alloc_count;
    alloc_bytes += other.alloc_bytes;
    if (other.rss_sampled_peak_bytes > rss_sampled_peak_bytes) {
      rss_sampled_peak_bytes = other.rss_sampled_peak_bytes;
    }
    stream_windows_sealed += other.stream_windows_sealed;
    stream_watermark_advances += other.stream_watermark_advances;
    if (other.stream_open_windows_peak > stream_open_windows_peak) {
      stream_open_windows_peak = other.stream_open_windows_peak;
    }
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_load_seconds += other.cache_load_seconds;
    cache_save_seconds += other.cache_save_seconds;
    workers_spawned += other.workers_spawned;
    worker_failures += other.worker_failures;
    if (other.worker_rss_peak_bytes > worker_rss_peak_bytes) {
      worker_rss_peak_bytes = other.worker_rss_peak_bytes;
    }
    if (other.simd_avx2 >= 0) simd_avx2 = other.simd_avx2;
    faults.accumulate(other.faults);
    if (shards.size() < other.shards.size()) shards.resize(other.shards.size());
    for (std::size_t s = 0; s < other.shards.size(); ++s) {
      shards[s].tasks += other.shards[s].tasks;
      shards[s].steals += other.shards[s].steals;
      shards[s].busy_seconds += other.shards[s].busy_seconds;
    }
  }

  /// Human-readable dump. Defaults to stderr so stdout (the measurement
  /// output) is independent of thread count and machine speed.
  void print(const char* label, std::FILE* out = stderr) const {
    std::fprintf(out,
                 "[runtime] %s: threads=%d tasks=%llu steals=%llu "
                 "wall=%.3fs cpu=%.3fs util=%.1f%% allocs=%llu "
                 "alloc_mb=%.1f rss_peak_mb=%.1f simd=%s\n",
                 label, threads, static_cast<unsigned long long>(tasks),
                 static_cast<unsigned long long>(steals), wall_seconds,
                 cpu_seconds, 100.0 * utilization(),
                 static_cast<unsigned long long>(alloc_count),
                 static_cast<double>(alloc_bytes) / (1024.0 * 1024.0),
                 static_cast<double>(rss_sampled_peak_bytes) / (1024.0 * 1024.0),
                 simd_avx2 == 1 ? "avx2" : simd_avx2 == 0 ? "scalar" : "unknown");
    if (stream_windows_sealed > 0 || stream_watermark_advances > 0) {
      std::fprintf(out,
                   "[runtime]   stream: sealed=%llu watermark_advances=%llu "
                   "open_windows_peak=%llu\n",
                   static_cast<unsigned long long>(stream_windows_sealed),
                   static_cast<unsigned long long>(stream_watermark_advances),
                   static_cast<unsigned long long>(stream_open_windows_peak));
    }
    if (cache_hits > 0 || cache_misses > 0) {
      std::fprintf(out,
                   "[runtime]   cache: hits=%llu misses=%llu load=%.3fs save=%.3fs\n",
                   static_cast<unsigned long long>(cache_hits),
                   static_cast<unsigned long long>(cache_misses),
                   cache_load_seconds, cache_save_seconds);
    }
    if (workers_spawned > 0) {
      std::fprintf(out,
                   "[runtime]   workers: spawned=%llu failures=%llu "
                   "worker_rss_peak_mb=%.1f\n",
                   static_cast<unsigned long long>(workers_spawned),
                   static_cast<unsigned long long>(worker_failures),
                   static_cast<double>(worker_rss_peak_bytes) / (1024.0 * 1024.0));
    }
    for (std::size_t s = 0; s < shards.size(); ++s) {
      std::fprintf(out, "[runtime]   shard %zu: tasks=%llu steals=%llu busy=%.3fs\n",
                   s, static_cast<unsigned long long>(shards[s].tasks),
                   static_cast<unsigned long long>(shards[s].steals),
                   shards[s].busy_seconds);
    }
    if (faults.any()) {
      std::fprintf(
          out,
          "[runtime]   faults: trunc=%llu corrupt=%llu rejected=%llu dup=%llu "
          "skew=%llu thin_groups=%llu thin_sessions=%llu pop_out=%llu "
          "dropped_windows=%llu stream_late=%llu stream_dup=%llu "
          "stream_dropped_rows=%llu aborts=%llu retries=%llu lost_groups=%llu\n",
          static_cast<unsigned long long>(faults.truncated_records),
          static_cast<unsigned long long>(faults.corrupt_records),
          static_cast<unsigned long long>(faults.rejected_records),
          static_cast<unsigned long long>(faults.duplicated_samples),
          static_cast<unsigned long long>(faults.skewed_samples),
          static_cast<unsigned long long>(faults.thinned_groups),
          static_cast<unsigned long long>(faults.thinned_sessions),
          static_cast<unsigned long long>(faults.pop_outage_groups),
          static_cast<unsigned long long>(faults.dropped_windows),
          static_cast<unsigned long long>(faults.stream_late_batches),
          static_cast<unsigned long long>(faults.stream_duplicate_batches),
          static_cast<unsigned long long>(faults.stream_dropped_rows),
          static_cast<unsigned long long>(faults.task_aborts),
          static_cast<unsigned long long>(faults.task_retries),
          static_cast<unsigned long long>(faults.lost_groups));
    }
    if (faults.worker_crashes || faults.worker_retries || faults.degraded_shards) {
      std::fprintf(
          out,
          "[runtime]   worker faults: crashes=%llu retries=%llu "
          "degraded_shards=%llu\n",
          static_cast<unsigned long long>(faults.worker_crashes),
          static_cast<unsigned long long>(faults.worker_retries),
          static_cast<unsigned long long>(faults.degraded_shards));
    }
    if (faults.scenario_drained_groups || faults.scenario_depref_groups ||
        faults.scenario_flash_groups || faults.scenario_cable_cut_groups) {
      std::fprintf(
          out,
          "[runtime]   scenario: drained=%llu depref=%llu flash=%llu "
          "cable_cut=%llu\n",
          static_cast<unsigned long long>(faults.scenario_drained_groups),
          static_cast<unsigned long long>(faults.scenario_depref_groups),
          static_cast<unsigned long long>(faults.scenario_flash_groups),
          static_cast<unsigned long long>(faults.scenario_cable_cut_groups));
    }
    if (faults.scenario_groups_reused || faults.scenario_groups_recomputed) {
      std::fprintf(
          out, "[runtime]   sweep: groups_reused=%llu groups_recomputed=%llu\n",
          static_cast<unsigned long long>(faults.scenario_groups_reused),
          static_cast<unsigned long long>(faults.scenario_groups_recomputed));
    }
  }
};

}  // namespace fbedge
