#include "runtime/alloc_counter.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

namespace fbedge {

namespace {

// Totals from threads that have already flushed (exited), plus the live
// remainder gathered on demand. Relaxed ordering is fine: readers only want
// an eventually-consistent phase delta, never synchronization.
std::atomic<std::uint64_t> g_flushed_count{0};
std::atomic<std::uint64_t> g_flushed_bytes{0};

// One registry node per thread ever created. Nodes are malloc'd and NEVER
// freed: the registry is a lock-free singly linked list traversed without
// synchronization, so node addresses must stay valid — and unique — for the
// life of the process. (An earlier revision kept the node inside the
// thread_local object itself; glibc reuses an exited thread's static TLS
// block for the next thread it creates, so a recycled address got pushed
// onto the list a second time and closed it into a cycle, hanging every
// traversal. Heap nodes that are never freed cannot be recycled.) The leak
// is bounded: one 32-byte node per thread over the whole process lifetime.
struct AllocNode {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> bytes{0};
  AllocNode* next{nullptr};
};

std::atomic<AllocNode*> g_nodes{nullptr};

/// Flushes the thread's tally into the global totals at thread exit. The
/// node stays linked (unlinking would race with traversal) but contributes
/// zero from then on.
struct TlsHandle {
  AllocNode* node{nullptr};
  ~TlsHandle() {
    if (node == nullptr) return;
    g_flushed_count.fetch_add(node->count.exchange(0, std::memory_order_relaxed),
                              std::memory_order_relaxed);
    g_flushed_bytes.fetch_add(node->bytes.exchange(0, std::memory_order_relaxed),
                              std::memory_order_relaxed);
    // A post-destruction allocation on this thread (late TLS destructors
    // calling new) registers a fresh node rather than resurrecting this one.
    node = nullptr;
  }
};

AllocNode* tls_node() {
  thread_local TlsHandle handle;
  if (handle.node == nullptr) {
    // Plain malloc, not operator new: the counted operators call back into
    // this function, and the node itself must not be counted (or recursed
    // on). Zero-initialization covers count/bytes/next before the node
    // becomes reachable via the CAS publish below.
    void* raw = std::malloc(sizeof(AllocNode));
    if (raw == nullptr) std::abort();
    AllocNode* node = new (raw) AllocNode();
    AllocNode* head = g_nodes.load(std::memory_order_relaxed);
    do {
      node->next = head;
    } while (!g_nodes.compare_exchange_weak(head, node, std::memory_order_release,
                                            std::memory_order_relaxed));
    handle.node = node;
  }
  return handle.node;
}

void* counted_alloc(std::size_t size) {
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) std::abort();  // exception-free library: fail fast on OOM
  AllocNode* node = tls_node();
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->bytes.fetch_add(size, std::memory_order_relaxed);
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  // aligned_alloc requires size % align == 0; round up.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded ? rounded : align);
  if (p == nullptr) std::abort();
  AllocNode* node = tls_node();
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->bytes.fetch_add(size, std::memory_order_relaxed);
  return p;
}

}  // namespace

AllocCounters alloc_counters_now() {
  AllocCounters total;
  total.count = g_flushed_count.load(std::memory_order_relaxed);
  total.bytes = g_flushed_bytes.load(std::memory_order_relaxed);
  for (AllocNode* node = g_nodes.load(std::memory_order_acquire); node != nullptr;
       node = node->next) {
    // Relaxed reads of other threads' live tallies: the caller only needs
    // phase-delta accuracy around a pool run, not a synchronized snapshot.
    total.count += node->count.load(std::memory_order_relaxed);
    total.bytes += node->bytes.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {

/// Sampled-RSS watermark (rss_sample / rss_sampled_peak). Relaxed: readers
/// only want an eventually-consistent high-water mark.
std::atomic<std::uint64_t> g_rss_watermark{0};

}  // namespace

std::uint64_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long long pages_total = 0;
  unsigned long long pages_resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &pages_total, &pages_resident);
  std::fclose(f);
  if (got != 2) return 0;
  static const long page_size = sysconf(_SC_PAGESIZE);
  return static_cast<std::uint64_t>(pages_resident) *
         static_cast<std::uint64_t>(page_size > 0 ? page_size : 4096);
}

std::uint64_t rss_sample() {
  const std::uint64_t cur = current_rss_bytes();
  std::uint64_t prev = g_rss_watermark.load(std::memory_order_relaxed);
  while (cur > prev && !g_rss_watermark.compare_exchange_weak(
                           prev, cur, std::memory_order_relaxed)) {
  }
  return prev > cur ? prev : cur;
}

std::uint64_t rss_sampled_peak() {
  return g_rss_watermark.load(std::memory_order_relaxed);
}

}  // namespace fbedge

// Replacement global allocation functions. Defined in the same TU as
// alloc_counters_now() so any binary that reports the counters is
// guaranteed to pull in the counted operators from the static library.
void* operator new(std::size_t size) { return fbedge::counted_alloc(size); }
void* operator new[](std::size_t size) { return fbedge::counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return fbedge::counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return fbedge::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return fbedge::counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return fbedge::counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return fbedge::counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return fbedge::counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
