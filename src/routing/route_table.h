// Per-PoP routing table: longest-prefix-match from a client address to the
// policy-ranked route set serving it — the FIB-shaped view a load balancer
// consults when stamping samples with egress-route metadata (§2.2.2).
#pragma once

#include <vector>

#include "routing/policy.h"
#include "routing/prefix_trie.h"

namespace fbedge {

/// The policy-ranked routes available for one destination prefix.
struct RankedRoutes {
  /// Index 0 is the preferred route (§6.1 tiebreakers), the rest are
  /// alternates in policy order.
  std::vector<Route> routes;

  const Route* preferred() const { return routes.empty() ? nullptr : &routes.front(); }
  int alternates() const { return std::max(0, static_cast<int>(routes.size()) - 1); }
};

/// Longest-prefix-match table of ranked route sets.
class RouteTable {
 public:
  /// Installs (or replaces) the route set for the routes' shared prefix.
  /// Routes are ranked by policy on insertion; they must all carry the
  /// same prefix.
  void install(std::vector<Route> routes) {
    if (routes.empty()) return;
    const IpPrefix prefix = routes.front().prefix;
    RankedRoutes ranked;
    ranked.routes = RoutingPolicy::rank(std::move(routes));
    trie_.insert(prefix, std::move(ranked));
  }

  /// Route set serving `client_ip`, or nullptr if no covering prefix.
  const RankedRoutes* lookup(std::uint32_t client_ip) const {
    return trie_.lookup(client_ip);
  }

  /// Exact-prefix access (e.g. for withdrawals / updates in tests).
  const RankedRoutes* find(const IpPrefix& prefix) const { return trie_.find(prefix); }

  std::size_t size() const { return trie_.size(); }

 private:
  PrefixTrie<RankedRoutes> trie_;
};

}  // namespace fbedge
