// Facebook's static egress routing policy (§6.1).
//
// When a PoP knows multiple routes to a user, it decides among them with
// four ordered tiebreakers:
//   1. prefer the longest matching prefix,
//   2. prefer peer routes over transit,
//   3. prefer shorter AS paths,
//   4. prefer routes via a private interconnect (PNI) over public exchanges.
#pragma once

#include <vector>

#include "routing/route.h"

namespace fbedge {

/// Reason a route won a pairwise comparison (for Table 2's "Longer" column).
enum class DecisionReason : std::uint8_t {
  kEqual,
  kLongerPrefix,
  kPeerOverTransit,
  kShorterAsPath,
  kPrivateOverPublic,
};

class RoutingPolicy {
 public:
  /// Returns <0 if `a` is preferred over `b`, >0 if `b` over `a`, 0 if tied.
  /// `reason`, when non-null, receives the deciding tiebreaker.
  static int compare(const Route& a, const Route& b, DecisionReason* reason = nullptr);

  /// Sorts routes from most to least preferred (stable; ties keep input
  /// order). Index 0 is the *preferred* route; the rest are alternates in
  /// policy order.
  static std::vector<Route> rank(std::vector<Route> routes);

  /// True iff `a` beats `b` purely on AS-path length (used for Table 2's
  /// breakdown of why alternates lost).
  static bool lost_on_as_path(const Route& preferred, const Route& alternate);
};

}  // namespace fbedge
