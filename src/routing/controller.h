// Egress traffic controller dynamics (§2.2.3, §6.2.2).
//
// Edge Fabric shifts traffic off an interconnection that is at risk of
// congesting. §6.2.2 warns what happens if a controller instead chases
// performance naively: "a traffic engineering system that simply shifts
// traffic onto the best performing alternate route may cause congestion
// and risk oscillations. An active system would need to gradually shift
// traffic, continuously monitor, and guarantee convergence."
//
// This module models that control loop at the granularity the paper
// reasons about: per-interval route utilizations, a congestion-delay
// response, measurement noise, and four shift policies — static BGP,
// greedy performance-chasing, damped performance-aware, and Edge Fabric's
// overload-protection. The bench and tests quantify oscillation vs
// convergence.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace fbedge {

/// One egress route's static properties for the controller model.
struct ControlledRoute {
  /// Usable capacity toward the destination.
  BitsPerSecond capacity{100 * kMbps};
  /// Propagation RTT when uncongested.
  Duration base_rtt{0.040};
};

enum class ShiftPolicy : std::uint8_t {
  /// Never move traffic: BGP-preferred carries everything (the baseline
  /// whose near-optimality §6 establishes).
  kStatic,
  /// Each interval, move *all* traffic to the best-measured route.
  kGreedyPerformance,
  /// Move at most `max_step` of total traffic per interval toward the
  /// best-measured route, with a switching hysteresis.
  kDampedPerformance,
  /// Edge Fabric: keep traffic on the preferred route, detouring just
  /// enough to hold utilization below the overload threshold.
  kOverloadProtection,
};

struct ControllerConfig {
  ShiftPolicy policy{ShiftPolicy::kOverloadProtection};
  /// Utilization above which a route is considered at risk (Edge Fabric
  /// drains above ~95%).
  double overload_threshold{0.95};
  /// Damped policy: max fraction of total demand moved per interval.
  double max_step{0.10};
  /// Damped policy: required measured improvement before moving (the
  /// §3.4-style threshold; suppresses noise chasing).
  Duration hysteresis{0.005};
  /// Std-dev of per-interval latency measurement noise.
  Duration measurement_noise{0.002};
  std::uint64_t seed{1};
};

/// Outcome of one control interval.
struct ControlStep {
  /// Traffic share per route (sums to 1).
  std::vector<double> shares;
  /// Measured (noisy) latency per route.
  std::vector<Duration> measured_rtt;
  /// True latency experienced by the traffic-weighted average flow.
  Duration weighted_rtt{0};
  /// Any route above the overload threshold this interval.
  bool overloaded{false};
};

/// Discrete-time egress control loop over a fixed route set.
class EgressController {
 public:
  EgressController(std::vector<ControlledRoute> routes, ControllerConfig config);

  /// Advances one interval with the given aggregate demand; returns the
  /// post-decision state. Route 0 starts with all traffic.
  ControlStep step(BitsPerSecond demand);

  /// Number of intervals in which the majority route changed.
  int majority_flips() const { return majority_flips_; }
  /// Intervals with any route overloaded.
  int overloaded_intervals() const { return overloaded_intervals_; }
  int intervals() const { return intervals_; }
  const std::vector<double>& shares() const { return shares_; }

  /// Congestion-response model: latency a route exhibits at utilization u
  /// (standing queue grows steeply past the knee; hard-capped beyond 1).
  static Duration congested_rtt(const ControlledRoute& route, double utilization);

 private:
  int best_route(const std::vector<Duration>& measured) const;

  std::vector<ControlledRoute> routes_;
  ControllerConfig config_;
  std::vector<double> shares_;
  Rng rng_;
  int last_majority_{0};
  int majority_flips_{0};
  int overloaded_intervals_{0};
  int intervals_{0};
};

}  // namespace fbedge
