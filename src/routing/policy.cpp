#include "routing/policy.h"

#include <algorithm>

namespace fbedge {

int RoutingPolicy::compare(const Route& a, const Route& b, DecisionReason* reason) {
  auto decide = [&](int result, DecisionReason r) {
    if (reason) *reason = r;
    return result;
  };

  // 1. Longest matching prefix.
  if (a.prefix.length != b.prefix.length) {
    return decide(a.prefix.length > b.prefix.length ? -1 : 1, DecisionReason::kLongerPrefix);
  }
  // 2. Prefer peer routes over transit.
  if (is_peer(a.relationship) != is_peer(b.relationship)) {
    return decide(is_peer(a.relationship) ? -1 : 1, DecisionReason::kPeerOverTransit);
  }
  // 3. Prefer shorter AS paths (prepending counts).
  if (a.as_path_length() != b.as_path_length()) {
    return decide(a.as_path_length() < b.as_path_length() ? -1 : 1,
                  DecisionReason::kShorterAsPath);
  }
  // 4. Prefer private interconnects over public exchanges.
  if (a.relationship != b.relationship) {
    const bool a_private = a.relationship == Relationship::kPrivatePeer;
    const bool b_private = b.relationship == Relationship::kPrivatePeer;
    if (a_private != b_private) {
      return decide(a_private ? -1 : 1, DecisionReason::kPrivateOverPublic);
    }
  }
  return decide(0, DecisionReason::kEqual);
}

std::vector<Route> RoutingPolicy::rank(std::vector<Route> routes) {
  std::stable_sort(routes.begin(), routes.end(),
                   [](const Route& a, const Route& b) { return compare(a, b) < 0; });
  return routes;
}

bool RoutingPolicy::lost_on_as_path(const Route& preferred, const Route& alternate) {
  DecisionReason reason = DecisionReason::kEqual;
  const int cmp = compare(preferred, alternate, &reason);
  return cmp < 0 && reason == DecisionReason::kShorterAsPath;
}

}  // namespace fbedge
