#include "routing/controller.h"

#include <algorithm>
#include <numeric>

#include "util/expect.h"

namespace fbedge {

EgressController::EgressController(std::vector<ControlledRoute> routes,
                                   ControllerConfig config)
    : routes_(std::move(routes)), config_(config), rng_(config.seed) {
  FBEDGE_EXPECT(routes_.size() >= 2, "controller needs at least two routes");
  shares_.assign(routes_.size(), 0.0);
  shares_[0] = 1.0;  // BGP-preferred carries everything initially
}

Duration EgressController::congested_rtt(const ControlledRoute& route,
                                         double utilization) {
  // Below the knee the standing queue is negligible (§3.1's smooth
  // backbone-arrivals argument); past it, queueing delay grows steeply and
  // saturates at a bufferbloat-ish cap.
  constexpr double kKnee = 0.90;
  if (utilization <= kKnee) return route.base_rtt;
  const double excess = std::min(utilization, 1.5) - kKnee;
  return route.base_rtt + excess * excess * 2.0;  // +72 ms at u=1.08, capped
}

int EgressController::best_route(const std::vector<Duration>& measured) const {
  return static_cast<int>(std::min_element(measured.begin(), measured.end()) -
                          measured.begin());
}

ControlStep EgressController::step(BitsPerSecond demand) {
  const std::size_t n = routes_.size();
  ControlStep out;
  out.shares = shares_;
  out.measured_rtt.resize(n);

  // Measure the *current* assignment.
  std::vector<double> utilization(n);
  for (std::size_t i = 0; i < n; ++i) {
    utilization[i] = demand * shares_[i] / routes_[i].capacity;
    const Duration true_rtt = congested_rtt(routes_[i], utilization[i]);
    out.measured_rtt[i] =
        std::max(0.001, true_rtt + rng_.normal(0.0, config_.measurement_noise));
    out.weighted_rtt += shares_[i] * true_rtt;
    if (utilization[i] > config_.overload_threshold) out.overloaded = true;
  }
  if (out.overloaded) ++overloaded_intervals_;

  // Decide the next assignment.
  std::vector<double> next = shares_;
  switch (config_.policy) {
    case ShiftPolicy::kStatic:
      break;

    case ShiftPolicy::kGreedyPerformance: {
      // Chase the best measurement with everything.
      std::fill(next.begin(), next.end(), 0.0);
      next[static_cast<std::size_t>(best_route(out.measured_rtt))] = 1.0;
      break;
    }

    case ShiftPolicy::kDampedPerformance: {
      const int best = best_route(out.measured_rtt);
      // Move a bounded slice from the worst in-use route toward the best,
      // only when the measured gap clears the hysteresis threshold.
      int worst = -1;
      for (std::size_t i = 0; i < n; ++i) {
        if (shares_[i] <= 1e-9) continue;
        if (worst < 0 ||
            out.measured_rtt[i] > out.measured_rtt[static_cast<std::size_t>(worst)]) {
          worst = static_cast<int>(i);
        }
      }
      if (worst >= 0 && worst != best &&
          out.measured_rtt[static_cast<std::size_t>(worst)] -
                  out.measured_rtt[static_cast<std::size_t>(best)] >
              config_.hysteresis) {
        const double moved =
            std::min(config_.max_step, next[static_cast<std::size_t>(worst)]);
        next[static_cast<std::size_t>(worst)] -= moved;
        next[static_cast<std::size_t>(best)] += moved;
      }
      break;
    }

    case ShiftPolicy::kOverloadProtection: {
      // Edge Fabric: detour the minimum traffic needed to bring every
      // overloaded route back under the threshold, preferring earlier
      // (more-preferred) spill targets; pull traffic *back* to more
      // preferred routes when they have headroom.
      // First, return traffic to the most preferred routes greedily.
      std::fill(next.begin(), next.end(), 0.0);
      double remaining = 1.0;
      for (std::size_t i = 0; i < n && remaining > 1e-12; ++i) {
        const double cap_share =
            config_.overload_threshold * routes_[i].capacity / std::max(demand, 1.0);
        const double take = std::min(remaining, cap_share);
        next[i] = take;
        remaining -= take;
      }
      // Demand beyond all thresholds lands on the last (transit) route.
      next[n - 1] += remaining;
      break;
    }
  }

  shares_ = std::move(next);

  // Oscillation accounting: which route carries the plurality now?
  const int majority = static_cast<int>(
      std::max_element(shares_.begin(), shares_.end()) - shares_.begin());
  if (intervals_ > 0 && majority != last_majority_) ++majority_flips_;
  last_majority_ = majority;
  ++intervals_;
  return out;
}

}  // namespace fbedge
