// Binary trie keyed by IPv4 prefixes with longest-prefix-match lookup —
// the FIB-shaped substrate under route selection.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "routing/route.h"

namespace fbedge {

/// Maps IpPrefix -> T with longest-prefix-match semantics.
template <typename T>
class PrefixTrie {
 public:
  /// Inserts or replaces the value at `prefix`.
  void insert(const IpPrefix& prefix, T value) {
    Node* node = &root_;
    for (int bit = 0; bit < prefix.length; ++bit) {
      const int b = (prefix.addr >> (31 - bit)) & 1;
      if (!node->child[b]) node->child[b] = std::make_unique<Node>();
      node = node->child[b].get();
    }
    node->value = std::move(value);
    size_ += node->value ? 0 : 0;  // recomputed below
    recount();
  }

  /// Most-specific value covering `ip`, or nullptr.
  const T* lookup(std::uint32_t ip) const {
    const Node* node = &root_;
    const T* best = node->value ? &*node->value : nullptr;
    for (int bit = 0; bit < 32 && node; ++bit) {
      const int b = (ip >> (31 - bit)) & 1;
      node = node->child[b].get();
      if (node && node->value) best = &*node->value;
    }
    return best;
  }

  /// Exact-match value at `prefix`, or nullptr.
  const T* find(const IpPrefix& prefix) const {
    const Node* node = &root_;
    for (int bit = 0; bit < prefix.length && node; ++bit) {
      const int b = (prefix.addr >> (31 - bit)) & 1;
      node = node->child[b].get();
    }
    return node && node->value ? &*node->value : nullptr;
  }

  T* find(const IpPrefix& prefix) {
    return const_cast<T*>(static_cast<const PrefixTrie*>(this)->find(prefix));
  }

  std::size_t size() const { return size_; }

  /// Visits every (prefix, value) pair in prefix order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(root_, 0, 0, fn);
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  template <typename Fn>
  static void visit(const Node& node, std::uint32_t addr, int depth, Fn& fn) {
    if (node.value) fn(IpPrefix{addr, depth}, *node.value);
    if (node.child[0]) visit(*node.child[0], addr, depth + 1, fn);
    if (node.child[1]) visit(*node.child[1], addr | (1u << (31 - depth)), depth + 1, fn);
  }

  void recount() {
    size_ = 0;
    for_each([this](const IpPrefix&, const T&) { ++size_; });
  }

  Node root_;
  std::size_t size_{0};
};

}  // namespace fbedge
