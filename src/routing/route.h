// BGP route representation at a PoP's edge (§6.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"
#include "util/units.h"

namespace fbedge {

/// An IPv4 prefix (address in host byte order, mask length 0-32).
struct IpPrefix {
  std::uint32_t addr{0};
  int length{0};

  /// True if `ip` falls inside this prefix.
  bool contains(std::uint32_t ip) const {
    if (length == 0) return true;
    const std::uint32_t mask = length >= 32 ? 0xffffffffu : ~((1u << (32 - length)) - 1);
    return (ip & mask) == (addr & mask);
  }

  friend bool operator==(const IpPrefix& a, const IpPrefix& b) {
    return a.addr == b.addr && a.length == b.length;
  }

  std::string to_string() const {
    return std::to_string((addr >> 24) & 0xff) + "." + std::to_string((addr >> 16) & 0xff) +
           "." + std::to_string((addr >> 8) & 0xff) + "." + std::to_string(addr & 0xff) +
           "/" + std::to_string(length);
  }
};

/// Interconnection type of the next hop (§6.1, Table 2). Private
/// interconnects (PNIs) allow capacity monitoring and are preferred over
/// public exchange (IXP) peers; both peer types are preferred over transit.
enum class Relationship : std::uint8_t {
  kPrivatePeer = 0,  // PNI
  kPublicPeer,       // IXP
  kTransit,
};

constexpr const char* to_string(Relationship r) {
  switch (r) {
    case Relationship::kPrivatePeer: return "Private";
    case Relationship::kPublicPeer: return "Public";
    case Relationship::kTransit: return "Transit";
  }
  return "?";
}

constexpr bool is_peer(Relationship r) { return r != Relationship::kTransit; }

/// One egress route learned at a PoP.
struct Route {
  IpPrefix prefix;
  std::vector<std::uint32_t> as_path;  // may contain prepending (repeats)
  Relationship relationship{Relationship::kTransit};

  /// AS-path length including prepending, the BGP tiebreaker input.
  int as_path_length() const { return static_cast<int>(as_path.size()); }

  /// Number of prepended (repeated) hops: path length minus unique-AS count
  /// of consecutive runs.
  int prepend_count() const {
    int prepends = 0;
    for (std::size_t i = 1; i < as_path.size(); ++i) {
      if (as_path[i] == as_path[i - 1]) ++prepends;
    }
    return prepends;
  }

  bool is_prepended() const { return prepend_count() > 0; }
};

}  // namespace fbedge
