// Window rollups: merging 15-minute aggregations into coarser spans.
//
// Production telemetry keeps fine windows hot and rolls them into hourly/
// daily sketches for retention — the mergeability of t-digests (footnote
// 11) is what makes this cheap and loss-bounded. Rollups also serve the
// analyzers when a single 15-minute window is too thin for §3.4.1
// validity: four merged windows quadruple the sample count.
#pragma once

#include <cstdint>

#include "agg/aggregation.h"

namespace fbedge {

/// Merges every `factor` consecutive windows of a group's series into one
/// coarser window (indexes divided by `factor`). Route cells merge
/// sketch-to-sketch; counts and traffic add.
class WindowRollup {
 public:
  /// `min_sessions` is a §3.4.1-style validity floor: source cells with
  /// fewer sessions are considered too thin to carry signal and are skipped
  /// (and counted) rather than merged. The default of 0 rolls everything,
  /// preserving the historical behavior.
  explicit WindowRollup(int factor, int min_sessions = 0)
      : factor_(factor), min_sessions_(min_sessions) {}

  /// Rolls one route cell into the coarse store (no validity gate; the
  /// caller has already decided this cell counts).
  void add(int window, int route_index, const RouteWindowAgg& agg);

  /// Rolls a whole series, skipping empty and under-`min_sessions` cells.
  void add_series(const GroupSeries& series);

  /// The rolled-up windows (coarse index -> WindowAgg).
  const WindowMap& windows() const { return coarse_; }

  int factor() const { return factor_; }
  int min_sessions() const { return min_sessions_; }
  /// Non-empty cells skipped by add_series for being under min_sessions.
  std::uint64_t skipped_thin_cells() const { return skipped_thin_cells_; }

 private:
  int factor_;
  int min_sessions_;
  std::uint64_t skipped_thin_cells_{0};
  WindowMap coarse_;
};

/// Merges `src` into `dst` (sketches merge; counts and traffic add).
void merge_route_aggs(RouteWindowAgg& dst, const RouteWindowAgg& src);

}  // namespace fbedge
