// Window rollups: merging 15-minute aggregations into coarser spans.
//
// Production telemetry keeps fine windows hot and rolls them into hourly/
// daily sketches for retention — the mergeability of t-digests (footnote
// 11) is what makes this cheap and loss-bounded. Rollups also serve the
// analyzers when a single 15-minute window is too thin for §3.4.1
// validity: four merged windows quadruple the sample count.
#pragma once

#include "agg/aggregation.h"

namespace fbedge {

/// Merges every `factor` consecutive windows of a group's series into one
/// coarser window (indexes divided by `factor`). Route cells merge
/// sketch-to-sketch; counts and traffic add.
class WindowRollup {
 public:
  explicit WindowRollup(int factor) : factor_(factor) {}

  /// Rolls one route cell into the coarse store.
  void add(int window, int route_index, const RouteWindowAgg& agg);

  /// Rolls a whole series.
  void add_series(const GroupSeries& series);

  /// The rolled-up windows (coarse index -> WindowAgg).
  const WindowMap& windows() const { return coarse_; }

  int factor() const { return factor_; }

 private:
  int factor_;
  WindowMap coarse_;
};

/// Merges `src` into `dst` (sketches merge; counts and traffic add).
void merge_route_aggs(RouteWindowAgg& dst, const RouteWindowAgg& src);

}  // namespace fbedge
