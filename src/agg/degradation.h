// Performance-degradation analysis over time (§3.4, §5).
//
// For each user group, baseline performance is the 10th percentile of the
// per-window MinRTT_P50 series of the preferred route (90th percentile for
// HDratio_P50) — i.e. the group at its best. Each window is then compared
// against the baseline window with a difference-of-medians CI; the window
// is degraded at threshold X when the CI lower bound exceeds X.
#pragma once

#include <vector>

#include "agg/comparison.h"

namespace fbedge {

/// Degradation verdicts for one window of one user group.
struct DegradationWindow {
  int window{0};
  /// Preferred-route traffic in this window (Table 1 weighting).
  Bytes traffic{0};
  /// current - baseline MinRTT_P50 (positive = slower than baseline).
  Comparison rtt;
  /// baseline - current HDratio_P50 (positive = worse than baseline).
  Comparison hd;
};

struct DegradationResult {
  std::vector<DegradationWindow> windows;
  /// Window indices whose aggregations serve as the baselines.
  int baseline_rtt_window{-1};
  int baseline_hd_window{-1};
  Duration baseline_minrtt_p50{0};
  double baseline_hdratio_p50{0};
};

/// Reusable buffers for analyze_degradation_into: cleared (never shrunk)
/// per call, so a per-worker instance makes the degradation pass
/// allocation-free once warm.
struct DegradationScratch {
  /// Baseline-candidate (metric, window) pairs.
  std::vector<std::pair<double, int>> values;
};

/// Analyzes the preferred route (index 0) of one group's series.
/// Windows without preferred-route data are skipped. Requires at least
/// `config.min_samples` in the baseline window; otherwise every comparison
/// is invalid.
DegradationResult analyze_degradation(const GroupSeries& series,
                                      const ComparisonConfig& config);

/// As analyze_degradation, but reusing `scratch` and overwriting `out`
/// in place (out.windows is cleared, not reallocated). Produces bitwise
/// identical results to the allocating overload.
void analyze_degradation_into(const GroupSeries& series, const ComparisonConfig& config,
                              DegradationScratch& scratch, DegradationResult& out);

/// The per-window degradation comparison: `pref` (the preferred-route cell
/// of one window) against the chosen baseline cells. Overwrites `out`; a
/// null baseline leaves the corresponding Comparison kMissing. Shared by
/// the retrospective analyzer above, the online DegradationMonitor, and the
/// streaming verdict path (agg/window_verdict.h) — one implementation, so
/// batch and stream verdicts cannot drift.
void evaluate_degradation_window(int window, const RouteWindowAgg& pref,
                                 const RouteWindowAgg* base_rtt,
                                 const RouteWindowAgg* base_hd,
                                 const ComparisonConfig& config,
                                 DegradationWindow& out);

}  // namespace fbedge
