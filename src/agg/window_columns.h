// Columnar per-window view of one group's series for the classifier passes.
//
// The Table 1 temporal classification evaluates 11 different predicates
// over the same GroupSeries (4 degradation-RTT, 4 degradation-HD, 2
// opportunity-RTT, 1 opportunity-HD thresholds). Each pass needs only the
// window id, whether the window carried traffic, and the window's total
// traffic — but the AoS walk recomputed total_traffic() (a sum over route
// cells) and re-touched every WindowAgg's digests for each pass. Building
// these three columns once per group lets all 11 passes stream flat arrays.
//
// All three columns are exact copies/integer sums of series state, so the
// switch cannot perturb any downstream float: byte-identity is structural.
#pragma once

#include <cstdint>
#include <vector>

#include "agg/aggregation.h"

namespace fbedge {

struct WindowColumns {
  std::vector<int> window;
  std::vector<std::uint8_t> has_traffic;
  std::vector<Bytes> total_traffic;

  std::size_t size() const { return window.size(); }

  /// Rebuilds the columns from `series` (clears first; capacity reused
  /// across groups when the instance lives in per-worker scratch).
  void build(const GroupSeries& series) {
    window.clear();
    has_traffic.clear();
    total_traffic.clear();
    window.reserve(series.windows.size());
    has_traffic.reserve(series.windows.size());
    total_traffic.reserve(series.windows.size());
    for (const auto& [w, agg] : series.windows) {
      const Bytes traffic = agg.total_traffic();
      window.push_back(w);
      has_traffic.push_back(traffic > 0 ? 1 : 0);
      total_traffic.push_back(traffic);
    }
  }
};

}  // namespace fbedge
