#include "agg/opportunity.h"

#include <cmath>

namespace fbedge {

std::vector<OpportunityWindow> analyze_opportunity(const GroupSeries& series,
                                                   const ComparisonConfig& config) {
  std::vector<OpportunityWindow> out;
  analyze_opportunity_into(series, config, out);
  return out;
}

void analyze_opportunity_into(const GroupSeries& series, const ComparisonConfig& config,
                              std::vector<OpportunityWindow>& out) {
  out.clear();
  for (const auto& [w, agg] : series.windows) {
    OpportunityWindow ow;
    if (evaluate_opportunity_window(w, agg, config, ow)) out.push_back(std::move(ow));
  }
}

bool evaluate_opportunity_window(int window, const WindowAgg& agg,
                                 const ComparisonConfig& config,
                                 OpportunityWindow& out) {
  const RouteWindowAgg* pref = agg.route(0);
  if (!pref || agg.routes.size() < 2) return false;

  out = OpportunityWindow{};
  out.window = window;
  out.traffic = agg.total_traffic();

  // Best alternates by point estimate, per metric.
  int best_rtt = -1;
  int best_hd = -1;
  for (int i = 1; i < static_cast<int>(agg.routes.size()); ++i) {
    const RouteWindowAgg& alt = agg.routes[static_cast<std::size_t>(i)];
    if (alt.sessions() >= config.min_samples &&
        (best_rtt < 0 || alt.minrtt_p50() < agg.routes[best_rtt].minrtt_p50())) {
      best_rtt = i;
    }
    if (alt.hd_sessions() >= config.min_samples &&
        (best_hd < 0 ||
         alt.hdratio_p50() > agg.routes[best_hd].hdratio_p50())) {
      best_hd = i;
    }
  }

  if (best_rtt >= 0) {
    const RouteWindowAgg& alt = agg.routes[static_cast<std::size_t>(best_rtt)];
    out.rtt = compare_minrtt(*pref, alt, config);  // positive = alt faster
    out.rtt_alternate = best_rtt;
    out.rtt_alternate_hd = compare_hdratio(alt, *pref, config);
  }
  if (best_hd >= 0) {
    const RouteWindowAgg& alt = agg.routes[static_cast<std::size_t>(best_hd)];
    out.hd = compare_hdratio(alt, *pref, config);  // positive = alt better
    out.hd_alternate = best_hd;
  }
  return true;
}

}  // namespace fbedge
