#include "agg/window_verdict.h"

#include <algorithm>
#include <cmath>

namespace fbedge {

void RollingBaseline::push(int window, const RouteWindowAgg& agg) {
  history_.push_back({window, agg});
  while (static_cast<int>(history_.size()) > config_.history_windows) {
    history_.pop_front();
  }
}

const RouteWindowAgg* RollingBaseline::baseline_entry(bool use_hd) const {
  values_.clear();
  for (const auto& entry : history_) {
    if (use_hd) {
      if (entry.agg.hd_sessions() < config_.min_samples) continue;
      values_.emplace_back(-entry.agg.hdratio_p50(), entry.window);  // p90 via negation
    } else {
      if (entry.agg.sessions() < config_.min_samples) continue;
      values_.emplace_back(entry.agg.minrtt_p50(), entry.window);
    }
  }
  if (static_cast<int>(values_.size()) < config_.min_history) return nullptr;
  std::sort(values_.begin(), values_.end());
  const auto pos = static_cast<std::size_t>(std::llround(
      config_.baseline_quantile * static_cast<double>(values_.size() - 1)));
  const int picked = values_[pos].second;
  for (const auto& entry : history_) {
    if (entry.window == picked) return &entry.agg;
  }
  return nullptr;  // unreachable: picked came from the history
}

void evaluate_window_verdict(int window, const WindowAgg& agg,
                             RollingBaseline& baseline,
                             const ComparisonConfig& config, WindowVerdict& out) {
  out.window = window;
  const RouteWindowAgg* pref = agg.route(0);
  const bool has_pref = pref != nullptr && pref->sessions() > 0;
  if (has_pref) {
    evaluate_degradation_window(window, *pref, baseline.baseline_rtt(),
                                baseline.baseline_hd(), config, out.degr);
  } else {
    // No preferred-route signal: the monitor skips the window (it would
    // dilute the baseline pool), but alternates can still carry opportunity
    // data below.
    out.degr = DegradationWindow{};
    out.degr.window = window;
  }
  out.has_opp = evaluate_opportunity_window(window, agg, config, out.opp);
  if (!out.has_opp) {
    out.opp = OpportunityWindow{};
    out.opp.window = window;
  }
  if (has_pref) baseline.push(window, *pref);
}

namespace {

void hash_comparison(const Comparison& c, Fnv64& h) {
  h.u8(static_cast<std::uint8_t>(c.validity));
  h.f64(c.diff.estimate);
  h.f64(c.diff.lower);
  h.f64(c.diff.upper);
}

}  // namespace

void hash_window_verdict(const WindowVerdict& v, Fnv64& h) {
  h.u32(static_cast<std::uint32_t>(v.window));
  h.i64(v.degr.traffic);
  hash_comparison(v.degr.rtt, h);
  hash_comparison(v.degr.hd, h);
  h.u8(v.has_opp ? 1 : 0);
  if (v.has_opp) {
    h.i64(v.opp.traffic);
    h.u32(static_cast<std::uint32_t>(v.opp.rtt_alternate));
    hash_comparison(v.opp.rtt, h);
    hash_comparison(v.opp.rtt_alternate_hd, h);
    h.u32(static_cast<std::uint32_t>(v.opp.hd_alternate));
    hash_comparison(v.opp.hd, h);
  }
}

}  // namespace fbedge
