#include "agg/series_io.h"

namespace fbedge {
namespace {

// Smallest possible encoded size of one route cell: sessions + traffic
// (8+8), two Welford triples (2*24), two empty t-digest headers (2*48).
// Used to bound count fields against the bytes actually remaining, so a
// corrupt length can never trigger an absurd allocation.
constexpr std::size_t kMinCellBytes = 8 + 8 + 2 * 24 + 2 * 48;
constexpr std::size_t kMinWindowBytes = 8 + 4 + kMinCellBytes;

}  // namespace

std::size_t group_series_saved_size(const GroupSeries& series) {
  std::size_t total = 1 + 8;  // continent tag + window count
  for (const auto& [window, agg] : series.windows) {
    (void)window;
    total += 8 + 4;  // window id + route count
    for (const RouteWindowAgg& cell : agg.routes) total += cell.saved_size();
  }
  return total;
}

void save_group_series(const GroupSeries& series, ByteWriter& w) {
  // Sizing first compresses every sketch, so the save loop below never
  // re-compresses, and the reserve turns ~N per-byte growth steps into a
  // single allocation for the whole artifact.
  w.reserve(group_series_saved_size(series));
  w.u8(static_cast<std::uint8_t>(series.continent));
  w.u64(series.windows.size());
  for (const auto& [window, agg] : series.windows) {
    w.i64(window);
    w.u32(static_cast<std::uint32_t>(agg.routes.size()));
    for (const RouteWindowAgg& cell : agg.routes) cell.save(w);
  }
}

bool load_group_series(ByteReader& r, GroupSeries& series, RouteAggPool* pool) {
  if (pool != nullptr) {
    pool->recycle(series);
  } else {
    series.windows.clear();
  }
  const std::uint8_t continent = r.u8();
  const std::uint64_t window_count = r.u64();
  if (!r.ok() || continent >= static_cast<std::uint8_t>(kNumContinents) ||
      window_count > r.remaining() / kMinWindowBytes + 1) {
    r.fail();
    return false;
  }
  series.continent = static_cast<Continent>(continent);
  int prev_window = 0;
  for (std::uint64_t wi = 0; wi < window_count; ++wi) {
    const std::int64_t window = r.i64();
    const std::uint32_t route_count = r.u32();
    if (!r.ok() || route_count > r.remaining() / kMinCellBytes + 1 ||
        (wi > 0 && window <= prev_window)) {
      // Windows must arrive strictly ascending — that is what keeps
      // WindowMap's in-order append path O(1) and iteration sorted.
      break;
    }
    prev_window = static_cast<int>(window);
    WindowAgg& agg = series.windows[static_cast<int>(window)];
    bool cells_ok = true;
    for (std::uint32_t ri = 0; ri < route_count; ++ri) {
      RouteWindowAgg& cell = pool != nullptr
                                 ? agg.route_pooled(static_cast<int>(ri), *pool)
                                 : agg.route(static_cast<int>(ri));
      if (!cell.load(r)) {
        cells_ok = false;
        break;
      }
    }
    if (!cells_ok) break;
  }
  if (!r.ok() || series.windows.size() != window_count) {
    r.fail();
    if (pool != nullptr) {
      pool->recycle(series);
    } else {
      series.windows.clear();
    }
    return false;
  }
  return true;
}

}  // namespace fbedge
