// Opportunity for performance-aware routing (§3.4, §6.2).
//
// Within an aggregation (user group x window), the preferred route is
// compared against the best-performing alternate route. There is an
// opportunity when the CI lower bound of the improvement clears a
// threshold. HDratio is the richer signal, so MinRTT opportunities only
// count when the alternate's HDratio is statistically equal or better
// than the preferred route's.
#pragma once

#include <vector>

#include "agg/comparison.h"

namespace fbedge {

/// Route comparison verdicts for one window of one user group.
struct OpportunityWindow {
  int window{0};
  /// Traffic across all routes in the window (opportunity applies to all
  /// traffic that would be shifted).
  Bytes traffic{0};

  /// preferred - best_alternate MinRTT_P50 (positive = alternate faster).
  Comparison rtt;
  /// Index of the alternate used for the MinRTT comparison (-1 if none).
  int rtt_alternate{-1};
  /// HDratio guard for the MinRTT opportunity: alternate - preferred over
  /// the same alternate route (negative upper bound = alternate worse).
  Comparison rtt_alternate_hd;

  /// best_alternate - preferred HDratio_P50 (positive = alternate better).
  Comparison hd;
  int hd_alternate{-1};

  /// MinRTT improvable by more than `threshold`, with the HDratio guard:
  /// no statistical evidence that the alternate's HDratio is worse.
  bool rtt_opportunity(Duration threshold) const {
    if (!rtt.exceeds(threshold)) return false;
    const bool hd_worse = rtt_alternate_hd.valid() && rtt_alternate_hd.diff.upper < 0;
    return !hd_worse;
  }

  bool hd_opportunity(double threshold) const { return hd.exceeds(threshold); }

  /// Valid for analysis: at least the MinRTT or HDratio comparison met the
  /// §3.4.1 requirements.
  bool valid() const { return rtt.valid() || hd.valid(); }
};

/// Compares preferred (route 0) vs ranked alternates for every window of a
/// group that has at least two measured routes.
std::vector<OpportunityWindow> analyze_opportunity(const GroupSeries& series,
                                                   const ComparisonConfig& config);

/// As analyze_opportunity, but refilling `out` in place (cleared, not
/// reallocated) — bitwise identical results to the allocating overload.
void analyze_opportunity_into(const GroupSeries& series, const ComparisonConfig& config,
                              std::vector<OpportunityWindow>& out);

/// The per-window comparison body: preferred (route 0) vs the best-ranked
/// alternates of one window's aggregation. Returns false (leaving `out`
/// untouched) when the window has no preferred route or fewer than two
/// measured routes. Shared by the batch analyzer above and the streaming
/// verdict path (agg/window_verdict.h) — one implementation, so batch and
/// stream verdicts cannot drift.
bool evaluate_opportunity_window(int window, const WindowAgg& agg,
                                 const ComparisonConfig& config,
                                 OpportunityWindow& out);

}  // namespace fbedge
