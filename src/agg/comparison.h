// Statistically controlled comparison of aggregations (§3.4, §3.4.1).
//
// Comparisons only count when they are precise enough to support
// conclusions: both sides need >= 30 samples, and the confidence interval
// of the difference of medians must be "tight" (< 10 ms for MinRTT_P50,
// < 0.1 for HDratio_P50). An event (degradation / opportunity) is declared
// only when the *lower bound* of the CI clears the configured threshold.
#pragma once

#include <optional>

#include "agg/aggregation.h"
#include "stats/median_ci.h"

namespace fbedge {

struct ComparisonConfig {
  double alpha{0.95};
  int min_samples{30};
  /// Maximum CI width for a MinRTT_P50 comparison to be valid.
  Duration max_ci_width_rtt{10 * kMillisecond};
  /// Maximum CI width for an HDratio_P50 comparison to be valid.
  double max_ci_width_hd{0.1};
};

enum class Validity : std::uint8_t {
  kValid,
  kTooFewSamples,
  kCiTooWide,
  kMissing,
};

/// One validated difference-of-medians comparison.
struct Comparison {
  Validity validity{Validity::kMissing};
  /// Difference CI; the caller defines the direction (e.g. current -
  /// baseline for MinRTT degradation).
  ConfidenceInterval diff;

  bool valid() const { return validity == Validity::kValid; }

  /// Event test: the difference exceeds `threshold` with confidence —
  /// i.e. the CI lower bound is above it.
  bool exceeds(double threshold) const { return valid() && diff.lower > threshold; }
};

/// MinRTT_P50 difference a - b (positive = a has higher/worse MinRTT).
Comparison compare_minrtt(const RouteWindowAgg& a, const RouteWindowAgg& b,
                          const ComparisonConfig& config);

/// HDratio_P50 difference a - b (positive = a has higher/better HDratio).
Comparison compare_hdratio(const RouteWindowAgg& a, const RouteWindowAgg& b,
                           const ComparisonConfig& config);

/// Mean-based variants (footnote 10 ablation): difference of means with a
/// normal-approximation CI from the Welford accumulators. Subject to the
/// skew effects §3.3 aggregates to percentiles to avoid.
Comparison compare_minrtt_mean(const RouteWindowAgg& a, const RouteWindowAgg& b,
                               const ComparisonConfig& config);
Comparison compare_hdratio_mean(const RouteWindowAgg& a, const RouteWindowAgg& b,
                                const ComparisonConfig& config);

}  // namespace fbedge
