// Online degradation monitoring.
//
// analyze_degradation() is retrospective: it picks the baseline from the
// full 10-day series. A production alerting pipeline cannot wait for the
// study to end — it maintains a rolling baseline from the best recent
// windows and tests each *closed* window against it as soon as the window
// completes (the design footnote 11 sketches: t-digests in a streaming
// analytics framework). This monitor implements that loop.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "agg/comparison.h"
#include "agg/window_verdict.h"

namespace fbedge {

/// Emitted whenever a closed window shows statistically confident
/// degradation versus the rolling baseline.
struct DegradationEvent {
  int window{0};
  /// current - baseline MinRTT_P50 (positive = slower), if RTT-triggered.
  std::optional<ConfidenceInterval> rtt;
  /// baseline - current HDratio_P50 (positive = worse), if HD-triggered.
  std::optional<ConfidenceInterval> hd;
};

struct MonitorConfig {
  ComparisonConfig comparison;
  Duration rtt_threshold{0.005};
  double hd_threshold{0.05};
  /// Number of recent windows the rolling baseline is drawn from.
  int history_windows{96};
  /// Baseline pick: the window at this quantile of recent MinRTT_P50
  /// (1 - quantile for HDratio_P50), mirroring §3.4's p10/p90 choice.
  double baseline_quantile{0.10};
  /// Windows needed before alerts fire (baseline warm-up).
  int min_history{8};
};

/// Feed one aggregated window at a time via on_window_closed(); alerts are
/// delivered through the callback.
class DegradationMonitor {
 public:
  using AlertFn = std::function<void(const DegradationEvent&)>;

  explicit DegradationMonitor(MonitorConfig config, AlertFn alert)
      : config_(config),
        alert_(std::move(alert)),
        baseline_(RollingBaseline::Config{config.history_windows,
                                          config.baseline_quantile,
                                          config.min_history,
                                          config.comparison.min_samples}) {}

  /// Processes a completed (user group x window) aggregation for the
  /// monitored route. The aggregation is copied into the rolling history.
  /// The comparison itself is the shared evaluate_degradation_window, so a
  /// monitor alert and a streaming-pipeline verdict for the same window are
  /// the same computation.
  void on_window_closed(int window, const RouteWindowAgg& agg);

  /// Windows currently in the baseline history.
  int history_size() const { return baseline_.history_size(); }

  /// Session-less windows rejected by on_window_closed.
  std::uint64_t skipped_empty() const { return skipped_empty_; }

  /// The current rolling baselines (nullopt during warm-up).
  std::optional<Duration> baseline_minrtt() const;
  std::optional<double> baseline_hdratio() const;

 private:
  MonitorConfig config_;
  AlertFn alert_;
  RollingBaseline baseline_;
  std::uint64_t skipped_empty_{0};
};

}  // namespace fbedge
