// Binary serialization of GroupSeries — the per-group ingest artifact.
//
// A saved series round-trips bitwise: every quantile, mean, count, and
// traffic total read from the loaded series matches the original to the
// last bit, so analysis on a deserialized artifact is byte-identical to
// analysis on the freshly ingested one (analysis/ingest_cache.h relies on
// this). Doubles travel as raw IEEE-754 bit patterns via util/binio.h.
#pragma once

#include <cstddef>
#include <cstdint>

#include "agg/aggregation.h"
#include "util/binio.h"

namespace fbedge {

/// Format epoch for ingest artifacts. BUMP POLICY: any change that can
/// alter the bytes an ingest run produces — the serialization layout
/// below, RouteWindowAgg/TDigest/Welford state, the generator, sampler,
/// goodput evaluation, coalescing, or windowing — REQUIRES incrementing
/// this constant, so stale artifacts from older builds are rejected and
/// silently re-ingested instead of yielding wrong results. The constant
/// lives here, next to the serializer, so layout edits and epoch bumps
/// land in the same diff.
inline constexpr std::uint32_t kIngestArtifactEpoch = 1;

/// Exact number of bytes save_group_series() will append for `series`.
/// Compresses every cell's sketches along the way — work save() repeats as
/// a no-op — so computing the size first costs nothing beyond the walk.
std::size_t group_series_saved_size(const GroupSeries& series);

/// Appends `series` (continent + every window's route cells) to `w`,
/// reserving the output buffer from the precomputed encoded size so the
/// whole artifact lands in one allocation.
void save_group_series(const GroupSeries& series, ByteWriter& w);

/// Rebuilds `series` from `r`. The series is emptied first (recycling its
/// cells into `pool` when one is given, and drawing replacement cells from
/// it, so warm loads into a pooled series allocate almost nothing).
/// Returns false on truncated or structurally invalid input, leaving
/// `series` empty and `r` failed; never crashes on corrupt bytes.
bool load_group_series(ByteReader& r, GroupSeries& series, RouteAggPool* pool = nullptr);

}  // namespace fbedge
