#include "agg/degradation.h"

#include <algorithm>
#include <cmath>

#include "stats/quantiles.h"

namespace fbedge {

namespace {

/// Picks the window whose metric value is nearest the requested quantile of
/// the per-window series (only windows meeting the sample minimum count).
/// `values` is caller-provided scratch (cleared here, capacity kept).
int baseline_window(const GroupSeries& series, bool use_hd, double q, int min_samples,
                    std::vector<std::pair<double, int>>& values) {
  values.clear();
  for (const auto& [w, agg] : series.windows) {
    const RouteWindowAgg* pref = agg.route(0);
    if (!pref) continue;
    if (use_hd) {
      if (pref->hd_sessions() < min_samples) continue;
      values.emplace_back(pref->hdratio_p50(), w);
    } else {
      if (pref->sessions() < min_samples) continue;
      values.emplace_back(pref->minrtt_p50(), w);
    }
  }
  if (values.empty()) return -1;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  return values[static_cast<std::size_t>(std::llround(pos))].second;
}

}  // namespace

DegradationResult analyze_degradation(const GroupSeries& series,
                                      const ComparisonConfig& config) {
  DegradationScratch scratch;
  DegradationResult out;
  analyze_degradation_into(series, config, scratch, out);
  return out;
}

void analyze_degradation_into(const GroupSeries& series, const ComparisonConfig& config,
                              DegradationScratch& scratch, DegradationResult& out) {
  out.windows.clear();
  out.baseline_minrtt_p50 = 0;
  out.baseline_hdratio_p50 = 0;
  // Baseline: best observed performance at stable quantiles (p10 RTT, p90 HD).
  out.baseline_rtt_window = baseline_window(series, /*use_hd=*/false, 0.10,
                                            config.min_samples, scratch.values);
  out.baseline_hd_window = baseline_window(series, /*use_hd=*/true, 0.90,
                                           config.min_samples, scratch.values);

  const RouteWindowAgg* base_rtt = nullptr;
  const RouteWindowAgg* base_hd = nullptr;
  if (out.baseline_rtt_window >= 0) {
    base_rtt = series.windows.at(out.baseline_rtt_window).route(0);
    out.baseline_minrtt_p50 = base_rtt->minrtt_p50();
  }
  if (out.baseline_hd_window >= 0) {
    base_hd = series.windows.at(out.baseline_hd_window).route(0);
    out.baseline_hdratio_p50 = base_hd->hdratio_p50();
  }

  for (const auto& [w, agg] : series.windows) {
    const RouteWindowAgg* pref = agg.route(0);
    if (!pref || pref->sessions() == 0) continue;
    DegradationWindow dw;
    evaluate_degradation_window(w, *pref, base_rtt, base_hd, config, dw);
    out.windows.push_back(std::move(dw));
  }
}

void evaluate_degradation_window(int window, const RouteWindowAgg& pref,
                                 const RouteWindowAgg* base_rtt,
                                 const RouteWindowAgg* base_hd,
                                 const ComparisonConfig& config,
                                 DegradationWindow& out) {
  out = DegradationWindow{};
  out.window = window;
  out.traffic = pref.traffic();
  if (base_rtt) out.rtt = compare_minrtt(pref, *base_rtt, config);
  if (base_hd) {
    // Degradation direction: baseline - current (HD drops when degraded).
    out.hd = compare_hdratio(*base_hd, pref, config);
  }
}

}  // namespace fbedge
