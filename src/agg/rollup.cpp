#include "agg/rollup.h"

#include "util/expect.h"

namespace fbedge {

void merge_route_aggs(RouteWindowAgg& dst, const RouteWindowAgg& src) {
  dst.merge(src);
}

void WindowRollup::add(int window, int route_index, const RouteWindowAgg& agg) {
  FBEDGE_EXPECT(factor_ >= 1, "rollup factor must be >= 1");
  coarse_[window / factor_].route(route_index).merge(agg);
}

void WindowRollup::add_series(const GroupSeries& series) {
  for (const auto& [window, agg] : series.windows) {
    for (int r = 0; r < static_cast<int>(agg.routes.size()); ++r) {
      const RouteWindowAgg& cell = agg.routes[static_cast<std::size_t>(r)];
      if (cell.sessions() == 0) continue;
      if (cell.sessions() < min_sessions_) {
        ++skipped_thin_cells_;
        continue;
      }
      add(window, r, cell);
    }
  }
}

}  // namespace fbedge
