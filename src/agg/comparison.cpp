#include "agg/comparison.h"

#include <cmath>

namespace fbedge {

namespace {

Comparison compare_digests(const TDigest& a, const TDigest& b, int min_samples,
                           double max_width, double alpha) {
  Comparison out;
  if (static_cast<int>(a.count()) < min_samples ||
      static_cast<int>(b.count()) < min_samples) {
    out.validity = Validity::kTooFewSamples;
    return out;
  }
  out.diff = median_difference_interval(a, b, alpha);
  out.validity = out.diff.width() <= max_width ? Validity::kValid : Validity::kCiTooWide;
  return out;
}

}  // namespace

Comparison compare_minrtt(const RouteWindowAgg& a, const RouteWindowAgg& b,
                          const ComparisonConfig& config) {
  return compare_digests(a.minrtt_digest(), b.minrtt_digest(), config.min_samples,
                         config.max_ci_width_rtt, config.alpha);
}

Comparison compare_hdratio(const RouteWindowAgg& a, const RouteWindowAgg& b,
                           const ComparisonConfig& config) {
  return compare_digests(a.hdratio_digest(), b.hdratio_digest(), config.min_samples,
                         config.max_ci_width_hd, config.alpha);
}

namespace {

Comparison compare_means(const Welford& a, const Welford& b, int min_samples,
                         double max_width, double alpha) {
  Comparison out;
  if (static_cast<int>(a.count()) < min_samples ||
      static_cast<int>(b.count()) < min_samples) {
    out.validity = Validity::kTooFewSamples;
    return out;
  }
  const double z = normal_quantile(0.5 + alpha / 2.0);
  const double se = std::sqrt(a.variance() / static_cast<double>(a.count()) +
                              b.variance() / static_cast<double>(b.count()));
  out.diff.estimate = a.mean() - b.mean();
  out.diff.lower = out.diff.estimate - z * se;
  out.diff.upper = out.diff.estimate + z * se;
  out.validity = out.diff.width() <= max_width ? Validity::kValid : Validity::kCiTooWide;
  return out;
}

}  // namespace

Comparison compare_minrtt_mean(const RouteWindowAgg& a, const RouteWindowAgg& b,
                               const ComparisonConfig& config) {
  return compare_means(a.minrtt_mean(), b.minrtt_mean(), config.min_samples,
                       config.max_ci_width_rtt, config.alpha);
}

Comparison compare_hdratio_mean(const RouteWindowAgg& a, const RouteWindowAgg& b,
                                const ComparisonConfig& config) {
  return compare_means(a.hdratio_mean(), b.hdratio_mean(), config.min_samples,
                       config.max_ci_width_hd, config.alpha);
}

}  // namespace fbedge
