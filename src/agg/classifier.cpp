#include "agg/classifier.h"

#include <algorithm>
#include <cstdint>

#include "agg/user_group.h"

namespace fbedge {

Classification classify_temporal(const std::vector<WindowObservation>& windows,
                                 const ClassifierConfig& config) {
  Classification out;

  // A group with no observations at all (every window dropped or silenced)
  // or a degenerate study span has zero coverage by definition; exclude it
  // up front rather than divide by total_windows below.
  if (config.total_windows <= 0 || windows.empty()) {
    out.cls = TemporalClass::kExcluded;
    return out;
  }

  int traffic_windows = 0;
  // One packed (slot-of-day, day) key per event window. The former
  // map<int, set<int>> cost two red-black-tree inserts per event on the
  // classifier hot path (11 passes per group); sort + run-count over a flat
  // vector gives the same distinct-day counts. The classification itself is
  // categorical, so the rewrite cannot change any output.
  std::vector<std::uint64_t> slot_day;

  for (const auto& w : windows) {
    if (w.has_traffic) {
      ++traffic_windows;
      out.total_traffic += w.traffic;
    }
    if (w.valid) ++out.valid_windows;
    if (w.event) {
      ++out.event_windows;
      out.event_traffic += w.traffic;
      const auto slot = static_cast<std::uint64_t>(
          window_slot_of_day(w.window, config.windows_per_day));
      const auto day = static_cast<std::uint32_t>(
          window_day(w.window, config.windows_per_day));
      slot_day.push_back((slot << 32) | day);
    }
  }

  const double coverage =
      static_cast<double>(traffic_windows) / static_cast<double>(config.total_windows);
  if (coverage < config.min_coverage) {
    out.cls = TemporalClass::kExcluded;
    return out;
  }

  if (out.event_windows == 0) {
    out.cls = TemporalClass::kUneventful;
    return out;
  }

  if (out.valid_windows > 0 &&
      static_cast<double>(out.event_windows) >=
          config.continuous_fraction * static_cast<double>(out.valid_windows)) {
    out.cls = TemporalClass::kContinuous;
    return out;
  }

  // Diurnal: some fixed slot-of-day has events on >= diurnal_days distinct
  // days. Sorting groups each slot's keys together; counting value changes
  // within a slot's run counts its distinct days (duplicates are adjacent).
  std::sort(slot_day.begin(), slot_day.end());
  for (std::size_t i = 0; i < slot_day.size();) {
    const std::uint64_t slot = slot_day[i] >> 32;
    int distinct_days = 0;
    std::uint64_t prev = ~slot_day[i];
    for (; i < slot_day.size() && (slot_day[i] >> 32) == slot; ++i) {
      if (slot_day[i] != prev) {
        ++distinct_days;
        prev = slot_day[i];
      }
    }
    if (distinct_days >= config.diurnal_days) {
      out.cls = TemporalClass::kDiurnal;
      return out;
    }
  }

  out.cls = TemporalClass::kEpisodic;
  return out;
}

}  // namespace fbedge
