#include "agg/classifier.h"

#include <map>
#include <set>

#include "agg/user_group.h"

namespace fbedge {

Classification classify_temporal(const std::vector<WindowObservation>& windows,
                                 const ClassifierConfig& config) {
  Classification out;

  // A group with no observations at all (every window dropped or silenced)
  // or a degenerate study span has zero coverage by definition; exclude it
  // up front rather than divide by total_windows below.
  if (config.total_windows <= 0 || windows.empty()) {
    out.cls = TemporalClass::kExcluded;
    return out;
  }

  int traffic_windows = 0;
  // slot-of-day -> set of days with an event in that slot.
  std::map<int, std::set<int>> slot_event_days;

  for (const auto& w : windows) {
    if (w.has_traffic) {
      ++traffic_windows;
      out.total_traffic += w.traffic;
    }
    if (w.valid) ++out.valid_windows;
    if (w.event) {
      ++out.event_windows;
      out.event_traffic += w.traffic;
      slot_event_days[window_slot_of_day(w.window, config.windows_per_day)].insert(
          window_day(w.window, config.windows_per_day));
    }
  }

  const double coverage =
      static_cast<double>(traffic_windows) / static_cast<double>(config.total_windows);
  if (coverage < config.min_coverage) {
    out.cls = TemporalClass::kExcluded;
    return out;
  }

  if (out.event_windows == 0) {
    out.cls = TemporalClass::kUneventful;
    return out;
  }

  if (out.valid_windows > 0 &&
      static_cast<double>(out.event_windows) >=
          config.continuous_fraction * static_cast<double>(out.valid_windows)) {
    out.cls = TemporalClass::kContinuous;
    return out;
  }

  for (const auto& [slot, days] : slot_event_days) {
    if (static_cast<int>(days.size()) >= config.diurnal_days) {
      out.cls = TemporalClass::kDiurnal;
      return out;
    }
  }

  out.cls = TemporalClass::kEpisodic;
  return out;
}

}  // namespace fbedge
