// Per-(user group, window, route) measurement aggregation (§3.3).
//
// For each aggregation we keep t-digest sketches of per-session MinRTT and
// HDratio (as a streaming production system would, footnote 11), the
// session count, and the traffic volume used to weight results. Medians
// (MinRTTP50 / HDratioP50) are read from the sketches; confidence intervals
// come from stats/median_ci.h.
#pragma once

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "agg/user_group.h"
#include "stats/median_ci.h"
#include "stats/tdigest.h"
#include "stats/welford.h"
#include "util/binio.h"
#include "util/expect.h"
#include "util/units.h"

namespace fbedge {

/// Sketches for one (user group, window, route) cell.
class RouteWindowAgg {
 public:
  RouteWindowAgg() : minrtt_(100), hdratio_(100) {}

  /// Adds one session's metrics. `hdratio` is nullopt when no transaction
  /// could test for the target goodput (§3.2.4) — such sessions still
  /// contribute MinRTT and traffic volume.
  void add_session(Duration min_rtt, std::optional<double> hdratio, Bytes traffic) {
    minrtt_.add(min_rtt);
    minrtt_mean_.add(min_rtt);
    if (hdratio) {
      hdratio_.add(*hdratio);
      hdratio_mean_.add(*hdratio);
    }
    traffic_bytes_ += traffic;
    ++sessions_;
  }

  /// Median MinRTT across sessions (MinRTT_P50). NaN if empty.
  Duration minrtt_p50() const { return minrtt_.quantile(0.5); }
  /// Median HDratio across HD-testable sessions (HDratio_P50). NaN if none.
  double hdratio_p50() const { return hdratio_.quantile(0.5); }

  /// Mean-based aggregates (the paper's footnote-10 ablation: comparing
  /// average HDratio across aggregations gives qualitatively similar
  /// results to medians, but is exposed to tail-RTT skew and the bimodal
  /// HDratio distribution).
  const Welford& minrtt_mean() const { return minrtt_mean_; }
  const Welford& hdratio_mean() const { return hdratio_mean_; }

  int sessions() const { return sessions_; }
  int hd_sessions() const { return static_cast<int>(hdratio_.count()); }
  Bytes traffic() const { return traffic_bytes_; }

  const TDigest& minrtt_digest() const { return minrtt_; }
  const TDigest& hdratio_digest() const { return hdratio_; }

  /// Merges another cell into this one (sketches merge loss-bounded;
  /// counts and traffic add) — the primitive behind window rollups.
  void merge(const RouteWindowAgg& other) {
    minrtt_.merge(other.minrtt_);
    hdratio_.merge(other.hdratio_);
    minrtt_mean_.merge(other.minrtt_mean_);
    hdratio_mean_.merge(other.hdratio_mean_);
    traffic_bytes_ += other.traffic_bytes_;
    sessions_ += other.sessions_;
  }

  /// Returns the cell to its empty state while keeping the sketches' heap
  /// buffers — the pooled-reuse primitive (see RouteAggPool).
  void reset() {
    minrtt_.reset();
    hdratio_.reset();
    minrtt_mean_ = Welford{};
    hdratio_mean_ = Welford{};
    traffic_bytes_ = 0;
    sessions_ = 0;
  }

  /// Bitwise serialization of the cell (counts, traffic, both Welford
  /// accumulators, both sketches). load() into any cell — fresh, reset, or
  /// pooled — reconstructs state whose every query matches save()'s source
  /// bit-for-bit.
  void save(ByteWriter& w) const {
    w.i64(static_cast<std::int64_t>(sessions_));
    w.i64(traffic_bytes_);
    for (const Welford* m : {&minrtt_mean_, &hdratio_mean_}) {
      w.u64(m->count());
      w.f64(m->mean());
      w.f64(m->m2());
    }
    minrtt_.save(w);
    hdratio_.save(w);
  }

  /// Exact number of bytes the next save() will append (compresses the
  /// sketches, which save() does anyway) — lets serializers size output
  /// buffers before writing.
  std::size_t saved_size() const {
    return 8 + 8 + 2 * 24 + minrtt_.saved_size() + hdratio_.saved_size();
  }

  bool load(ByteReader& r) {
    const std::int64_t sessions = r.i64();
    traffic_bytes_ = r.i64();
    Welford means[2];
    for (Welford& m : means) {
      const std::uint64_t n = r.u64();
      const double mean = r.f64();
      const double m2 = r.f64();
      m = Welford::from_raw(n, mean, m2);
    }
    minrtt_mean_ = means[0];
    hdratio_mean_ = means[1];
    if (!minrtt_.load(r) || !hdratio_.load(r) || !r.ok()) return false;
    sessions_ = static_cast<int>(sessions);
    return true;
  }

 private:
  TDigest minrtt_;
  TDigest hdratio_;
  Welford minrtt_mean_;
  Welford hdratio_mean_;
  Bytes traffic_bytes_{0};
  int sessions_{0};
};

/// All routes measured for one (user group, window): index 0 is the
/// policy-preferred route, 1..k the ranked alternates (§2.2.3).
class RouteAggPool;

struct WindowAgg {
  std::vector<RouteWindowAgg> routes;

  RouteWindowAgg& route(int index) {
    if (static_cast<int>(routes.size()) <= index) routes.resize(index + 1);
    return routes[static_cast<std::size_t>(index)];
  }

  /// Like route(), but grows via the pool so reused digests keep their
  /// heap buffers (defined after RouteAggPool below).
  RouteWindowAgg& route_pooled(int index, RouteAggPool& pool);

  const RouteWindowAgg* route(int index) const {
    if (index < 0 || index >= static_cast<int>(routes.size())) return nullptr;
    return &routes[static_cast<std::size_t>(index)];
  }

  /// Traffic across all routes in this window.
  Bytes total_traffic() const {
    Bytes total = 0;
    for (const auto& r : routes) total += r.traffic();
    return total;
  }
};

/// Sorted flat map from window index to WindowAgg, replacing the former
/// `std::map<int, WindowAgg>`: windows arrive (almost always) in time
/// order, so inserts are amortized O(1) appends, lookups are a binary
/// search over a contiguous vector, and iteration — the aggregation hot
/// path — is a linear scan with no pointer chasing. Iteration yields
/// (window, agg) pairs in ascending window order, exactly like the map.
class WindowMap {
 public:
  using value_type = std::pair<int, WindowAgg>;
  using iterator = std::vector<value_type>::iterator;
  using const_iterator = std::vector<value_type>::const_iterator;

  /// Returns the aggregation for `w`, inserting an empty one if missing.
  WindowAgg& operator[](int w) {
    if (!entries_.empty() && entries_.back().first == w) {
      return entries_.back().second;  // repeated access to the open window
    }
    if (entries_.empty() || entries_.back().first < w) {
      return entries_.emplace_back(w, WindowAgg{}).second;  // in-order append
    }
    const auto it = lower_bound(w);
    if (it != entries_.end() && it->first == w) return it->second;
    return entries_.emplace(it, w, WindowAgg{})->second;
  }

  /// Returns the aggregation for `w`; the window must be present.
  WindowAgg& at(int w) {
    const auto it = lower_bound(w);
    FBEDGE_EXPECT(it != entries_.end() && it->first == w, "window not present");
    return it->second;
  }
  const WindowAgg& at(int w) const {
    const auto it = lower_bound(w);
    FBEDGE_EXPECT(it != entries_.end() && it->first == w, "window not present");
    return it->second;
  }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  /// Drops all windows; the entry vector keeps its capacity so a reused
  /// map re-fills without reallocating the spine.
  void clear() { entries_.clear(); }

  /// Removes every window for which `pred(window, agg)` is true; returns
  /// how many were removed. Remaining windows keep their ascending order.
  template <typename Pred>
  std::size_t remove_if(Pred&& pred) {
    const auto it = std::remove_if(
        entries_.begin(), entries_.end(),
        [&](const value_type& e) { return pred(e.first, e.second); });
    const auto removed = static_cast<std::size_t>(entries_.end() - it);
    entries_.erase(it, entries_.end());
    return removed;
  }

 private:
  iterator lower_bound(int w) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), w,
        [](const value_type& e, int key) { return e.first < key; });
  }
  const_iterator lower_bound(int w) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), w,
        [](const value_type& e, int key) { return e.first < key; });
  }

  std::vector<value_type> entries_;
};

/// Time series of windows for one user group, plus static group metadata.
struct GroupSeries {
  Continent continent{Continent::kNorthAmerica};
  /// window index -> aggregation (sparse; groups can be idle off-hours).
  WindowMap windows;

  Bytes total_traffic() const {
    Bytes total = 0;
    for (const auto& [w, agg] : windows) total += agg.total_traffic();
    return total;
  }
};

/// Free-list of RouteWindowAgg cells. A cell's dominant cost is the heap
/// buffers inside its two t-digests; recycling cells between groups keeps
/// those buffers warm, so steady-state ingest of a new group allocates
/// (almost) nothing. Pooled cells are reset() on the way in, and a reset
/// cell is behaviorally bit-identical to a fresh one, so pooling cannot
/// change any analysis output.
class RouteAggPool {
 public:
  /// Takes a cell from the pool (empty state, warm buffers), or constructs
  /// a fresh one when the pool is dry.
  RouteWindowAgg get() {
    if (free_.empty()) return RouteWindowAgg{};
    RouteWindowAgg cell = std::move(free_.back());
    free_.pop_back();
    return cell;
  }

  /// Resets `cell` and stores it for reuse.
  void put(RouteWindowAgg&& cell) {
    cell.reset();
    free_.push_back(std::move(cell));
  }

  /// Moves every route cell of `series` into the pool and empties the
  /// series, leaving it ready to ingest the next group. Routes are
  /// truncated (not just reset) so a reused series never reports stale
  /// `routes.size()` to the analysis passes.
  void recycle(GroupSeries& series);

  std::size_t size() const { return free_.size(); }

 private:
  std::vector<RouteWindowAgg> free_;
};

inline RouteWindowAgg& WindowAgg::route_pooled(int index, RouteAggPool& pool) {
  while (static_cast<int>(routes.size()) <= index) routes.push_back(pool.get());
  return routes[static_cast<std::size_t>(index)];
}

inline void RouteAggPool::recycle(GroupSeries& series) {
  for (auto& [w, agg] : series.windows) {
    for (auto& cell : agg.routes) put(std::move(cell));
    agg.routes.clear();
  }
  series.windows.clear();
}

/// The dataset-wide aggregation store fed by the measurement pipeline.
class AggregationStore {
 public:
  /// Adds one session's metrics to its aggregation cell.
  void add_session(const UserGroupKey& key, Continent continent, SimTime at,
                   int route_index, Duration min_rtt, std::optional<double> hdratio,
                   Bytes traffic) {
    auto& series = groups_[key];
    series.continent = continent;
    series.windows[window_index(at)].route(route_index).add_session(min_rtt, hdratio,
                                                                    traffic);
  }

  const std::unordered_map<UserGroupKey, GroupSeries, UserGroupKeyHash>& groups() const {
    return groups_;
  }

  /// Mutable access for deserialization (ingest-artifact cache): returns
  /// the series for `key`, creating an empty one if missing.
  GroupSeries& series_for(const UserGroupKey& key) { return groups_[key]; }

  std::size_t group_count() const { return groups_.size(); }

 private:
  std::unordered_map<UserGroupKey, GroupSeries, UserGroupKeyHash> groups_;
};

}  // namespace fbedge
