#include "agg/monitor.h"

#include "agg/degradation.h"

namespace fbedge {

std::optional<Duration> DegradationMonitor::baseline_minrtt() const {
  const RouteWindowAgg* base = baseline_.baseline_rtt();
  if (!base) return std::nullopt;
  return base->minrtt_p50();
}

std::optional<double> DegradationMonitor::baseline_hdratio() const {
  const RouteWindowAgg* base = baseline_.baseline_hd();
  if (!base) return std::nullopt;
  return base->hdratio_p50();
}

void DegradationMonitor::on_window_closed(int window, const RouteWindowAgg& agg) {
  // A window with no sessions (PoP outage, dropped window) carries no
  // signal: comparing its NaN medians would never fire, but letting it
  // into the history would dilute the baseline pool. Skip and count it.
  if (agg.sessions() == 0) {
    ++skipped_empty_;
    return;
  }
  DegradationWindow dw;
  evaluate_degradation_window(window, agg, baseline_.baseline_rtt(),
                              baseline_.baseline_hd(), config_.comparison, dw);
  DegradationEvent event;
  event.window = window;
  bool fire = false;
  if (dw.rtt.exceeds(config_.rtt_threshold)) {
    event.rtt = dw.rtt.diff;
    fire = true;
  }
  if (dw.hd.exceeds(config_.hd_threshold)) {
    event.hd = dw.hd.diff;
    fire = true;
  }
  if (fire && alert_) alert_(event);

  // Degraded windows still enter history: with a long enough history the
  // baseline quantile keeps selecting healthy windows, and a persistent
  // shift eventually *becomes* the baseline (matching §3.4's per-group
  // baseline semantics).
  baseline_.push(window, agg);
}

}  // namespace fbedge
