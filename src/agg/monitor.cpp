#include "agg/monitor.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace fbedge {

const DegradationMonitor::HistoryEntry* DegradationMonitor::baseline_entry(
    bool use_hd) const {
  std::vector<std::pair<double, const HistoryEntry*>> values;
  values.reserve(history_.size());
  for (const auto& entry : history_) {
    if (use_hd) {
      if (entry.agg.hd_sessions() < config_.comparison.min_samples) continue;
      values.emplace_back(-entry.agg.hdratio_p50(), &entry);  // p90 via negation
    } else {
      if (entry.agg.sessions() < config_.comparison.min_samples) continue;
      values.emplace_back(entry.agg.minrtt_p50(), &entry);
    }
  }
  if (static_cast<int>(values.size()) < config_.min_history) return nullptr;
  std::sort(values.begin(), values.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const auto pos = static_cast<std::size_t>(std::llround(
      config_.baseline_quantile * static_cast<double>(values.size() - 1)));
  return values[pos].second;
}

std::optional<Duration> DegradationMonitor::baseline_minrtt() const {
  const auto* entry = baseline_entry(false);
  if (!entry) return std::nullopt;
  return entry->agg.minrtt_p50();
}

std::optional<double> DegradationMonitor::baseline_hdratio() const {
  const auto* entry = baseline_entry(true);
  if (!entry) return std::nullopt;
  return entry->agg.hdratio_p50();
}

void DegradationMonitor::on_window_closed(int window, const RouteWindowAgg& agg) {
  // A window with no sessions (PoP outage, dropped window) carries no
  // signal: comparing its NaN medians would never fire, but letting it
  // into the history would dilute the baseline pool. Skip and count it.
  if (agg.sessions() == 0) {
    ++skipped_empty_;
    return;
  }
  DegradationEvent event;
  event.window = window;
  bool fire = false;

  if (const auto* base = baseline_entry(false)) {
    const Comparison cmp = compare_minrtt(agg, base->agg, config_.comparison);
    if (cmp.exceeds(config_.rtt_threshold)) {
      event.rtt = cmp.diff;
      fire = true;
    }
  }
  if (const auto* base = baseline_entry(true)) {
    const Comparison cmp = compare_hdratio(base->agg, agg, config_.comparison);
    if (cmp.exceeds(config_.hd_threshold)) {
      event.hd = cmp.diff;
      fire = true;
    }
  }
  if (fire && alert_) alert_(event);

  // Degraded windows still enter history: with a long enough history the
  // baseline quantile keeps selecting healthy windows, and a persistent
  // shift eventually *becomes* the baseline (matching §3.4's per-group
  // baseline semantics).
  history_.push_back({window, agg});
  while (static_cast<int>(history_.size()) > config_.history_windows) {
    history_.pop_front();
  }
}

}  // namespace fbedge
