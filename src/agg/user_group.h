// User groups and time windows (§3.3).
//
// A user group aggregates users likely to share performance: same serving
// PoP, same client BGP prefix (which fixes the AS and the available egress
// routes), and same client country (network address space only loosely
// correlates with location — the paper's Fig. 5 shows a /16 serving both
// California and Hawaii whose prefix-level median MinRTT oscillates with
// the two populations' peak hours). Measurements are grouped into 15-minute
// windows to balance visibility into brief events against sample counts.
#pragma once

#include <cstdint>
#include <functional>

#include "routing/route.h"
#include "util/geo.h"
#include "util/ids.h"
#include "util/units.h"

namespace fbedge {

/// Aggregation key: (PoP, BGP prefix, country).
struct UserGroupKey {
  PopId pop{};
  IpPrefix prefix;
  CountryId country{};

  friend bool operator==(const UserGroupKey& a, const UserGroupKey& b) {
    return a.pop == b.pop && a.prefix == b.prefix && a.country == b.country;
  }
};

struct UserGroupKeyHash {
  std::size_t operator()(const UserGroupKey& k) const noexcept {
    std::uint64_t h = hash_mix(k.pop.value);
    h = hash_combine(h, k.prefix.addr);
    h = hash_combine(h, static_cast<std::uint64_t>(k.prefix.length));
    h = hash_combine(h, k.country.value);
    return static_cast<std::size_t>(h);
  }
};

/// The paper's aggregation window.
constexpr Duration kWindowLength = 15.0 * kMinute;

/// Index of the window containing absolute time `t`.
constexpr int window_index(SimTime t) { return static_cast<int>(t / kWindowLength); }

/// Slot-of-day of a window (for diurnal detection): 0..95 with 15-min
/// windows.
constexpr int window_slot_of_day(int window, int windows_per_day = 96) {
  return window % windows_per_day;
}

constexpr int window_day(int window, int windows_per_day = 96) {
  return window / windows_per_day;
}

}  // namespace fbedge
