// Temporal behavior classification (§3.4.2).
//
// User groups are classified by when their degradation/opportunity events
// occur, checking the class conditions in order:
//   uneventful  - no valid window has an event
//   continuous  - events in >= 75% of valid windows (persistent)
//   diurnal     - some fixed 15-minute slot-of-day has an event on >= 5
//                 distinct days
//   episodic    - everything else with at least one event
// Groups with traffic in fewer than 60% of windows are excluded: sporadic
// traffic (off-hours business networks, Cartographer re-mapping) leaves no
// representative view of the group's behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace fbedge {

enum class TemporalClass : std::uint8_t {
  kExcluded = 0,
  kUneventful,
  kContinuous,
  kDiurnal,
  kEpisodic,
};

constexpr const char* to_string(TemporalClass c) {
  switch (c) {
    case TemporalClass::kExcluded: return "Excluded";
    case TemporalClass::kUneventful: return "Uneventful";
    case TemporalClass::kContinuous: return "Continuous";
    case TemporalClass::kDiurnal: return "Diurnal";
    case TemporalClass::kEpisodic: return "Episodic";
  }
  return "?";
}

/// One window's inputs to the classifier.
struct WindowObservation {
  int window{0};
  /// The aggregation had traffic (regardless of statistical validity).
  bool has_traffic{false};
  /// The comparison met the §3.4.1 validity requirements.
  bool valid{false};
  /// Degradation / opportunity event at the threshold under study.
  bool event{false};
  /// Traffic delivered in this window (for Table 1's impacted-traffic
  /// weighting).
  Bytes traffic{0};
};

struct ClassifierConfig {
  /// Total windows in the study span (10 days of 15-min windows by default).
  int total_windows{10 * 96};
  int windows_per_day{96};
  /// Minimum fraction of windows with traffic for classification.
  double min_coverage{0.6};
  /// Event fraction (of valid windows) for the continuous class.
  double continuous_fraction{0.75};
  /// Days a fixed slot must repeat an event for the diurnal class.
  int diurnal_days{5};
};

struct Classification {
  TemporalClass cls{TemporalClass::kExcluded};
  /// Traffic over all observed windows.
  Bytes total_traffic{0};
  /// Traffic in windows where the event was active.
  Bytes event_traffic{0};
  int valid_windows{0};
  int event_windows{0};
};

/// Classifies one user group's window series at one event threshold.
Classification classify_temporal(const std::vector<WindowObservation>& windows,
                                 const ClassifierConfig& config);

}  // namespace fbedge
