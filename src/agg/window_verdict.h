// The shared per-window §3.4 verdict step.
//
// Degradation and opportunity verdicts for one sealed (user group, window)
// aggregation used to live twice: once in the batch analyzers
// (degradation.cpp / opportunity.cpp walking a finished GroupSeries) and
// once, re-derived, in the online DegradationMonitor. This header factors
// the per-window logic into single implementations — the batch analyzers,
// the monitor, and the streaming pipeline (src/stream/) all call the same
// functions, so batch/stream equivalence is structural, not coincidental.
//
// RollingBaseline is the streaming counterpart of the retrospective
// full-series baseline pick: the window at the configured quantile of the
// last N closed windows' MinRTT_P50 (1 - quantile for HDratio_P50),
// mirroring §3.4's p10/p90 choice without waiting for the study to end.
#pragma once

#include <deque>
#include <vector>

#include "agg/degradation.h"
#include "agg/opportunity.h"
#include "util/binio.h"

namespace fbedge {

struct RollingBaselineConfig {
  /// Number of recent windows the baseline is drawn from.
  int history_windows{96};
  /// Baseline pick: the window at this quantile of recent MinRTT_P50
  /// (1 - quantile for HDratio_P50).
  double baseline_quantile{0.10};
  /// Windows needed before a baseline exists (warm-up).
  int min_history{8};
  /// Sample floor for a window to be a baseline candidate (wired from
  /// ComparisonConfig::min_samples by the callers).
  int min_samples{30};
};

/// Rolling per-group baseline over recently closed windows. Push every
/// non-empty preferred-route cell as its window seals (in window order);
/// the baseline accessors return the quantile pick, or nullptr during
/// warm-up. Reusable across groups via clear().
class RollingBaseline {
 public:
  using Config = RollingBaselineConfig;

  explicit RollingBaseline(Config config = {}) : config_(config) {}

  /// Appends one closed window's preferred-route cell (copied) and evicts
  /// beyond the history horizon. Call in ascending window order.
  void push(int window, const RouteWindowAgg& agg);

  /// The current baseline cells; nullptr until enough qualifying history.
  const RouteWindowAgg* baseline_rtt() const { return baseline_entry(false); }
  const RouteWindowAgg* baseline_hd() const { return baseline_entry(true); }

  int history_size() const { return static_cast<int>(history_.size()); }
  const Config& config() const { return config_; }

  /// Drops all history (capacity of the entry deque is left to the
  /// allocator); per-group reuse in worker scratch.
  void clear() { history_.clear(); }

 private:
  struct HistoryEntry {
    int window;
    RouteWindowAgg agg;
  };

  const RouteWindowAgg* baseline_entry(bool use_hd) const;

  Config config_;
  std::deque<HistoryEntry> history_;
  /// Sort scratch for the quantile pick ((metric, window) pairs — the
  /// window tie-break makes the pick a well-defined total order).
  mutable std::vector<std::pair<double, int>> values_;
};

/// Alert thresholds for flagging a verdict (defaults match the paper's
/// headline 5 ms / 0.05 event definitions and MonitorConfig).
struct VerdictPolicy {
  Duration degradation_rtt{0.005};
  double degradation_hd{0.05};
  Duration opportunity_rtt{0.005};
  double opportunity_hd{0.05};
};

/// Everything §3.4 concludes about one sealed (group, window) aggregation:
/// the degradation comparison against the group's rolling baseline plus the
/// window-local preferred-vs-alternate opportunity comparison.
struct WindowVerdict {
  int window{0};
  /// vs rolling baseline; Comparisons stay kMissing when the preferred
  /// route is absent/empty or the baseline is still warming up.
  DegradationWindow degr;
  /// Preferred-vs-best-alternate; meaningful only when has_opp.
  OpportunityWindow opp;
  /// The window had a preferred route and at least two measured routes.
  bool has_opp{false};
};

/// Evaluates one sealed window against `baseline` and its own alternates,
/// then folds the preferred cell into the baseline history. This is THE
/// shared verdict step: DegradationMonitor, the batch replay and the
/// streaming window machine all converge here.
void evaluate_window_verdict(int window, const WindowAgg& agg,
                             RollingBaseline& baseline,
                             const ComparisonConfig& config, WindowVerdict& out);

/// Folds a verdict's canonical byte encoding into `h` (window id, traffic,
/// every Comparison's validity and raw CI bits). Two verdict streams hash
/// equal iff they are bitwise identical — the O(1)-memory equivalence
/// witness used by fbedge_monitor and the stream tests.
void hash_window_verdict(const WindowVerdict& v, Fnv64& h);

}  // namespace fbedge
