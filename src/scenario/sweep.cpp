// Footprint resolution for the incremental scenario-sweep engine.
#include "scenario/sweep.h"

#include <algorithm>
#include <tuple>

#include "util/binio.h"
#include "util/expect.h"

namespace fbedge {

namespace {

const PopInfo* find_pop(const World& world, const std::string& name) {
  for (const auto& pop : world.pops) {
    if (pop.name == name) return &pop;
  }
  return nullptr;
}

Continent pop_continent(const World& world, PopId id) {
  for (const auto& pop : world.pops) {
    if (pop.id == id) return pop.continent;
  }
  FBEDGE_EXPECT(false, "group served by a PoP the world does not know");
  return Continent::kNorthAmerica;
}

/// Whether the canonical depref sequence changes this group's route
/// ranking. Mirrors scenario.cpp's depref_group permutation on a cheap
/// (demotable?, front-asn) tag vector: the permutation depends only on
/// each route's relationship and first AS hop, so simulating on tags is
/// bitwise-faithful to simulating on the full RouteProfile vector.
bool depref_changes_group(const UserGroupProfile& group,
                          const std::vector<DepreferDelta>& deprefs) {
  if (deprefs.empty() || group.routes.size() < 2) {
    // 0- and 1-route groups admit no reordering; apply_scenario's
    // permutation is always the identity for them.
    return false;
  }
  struct Tag {
    bool transit_with_path;
    std::uint32_t front_asn;
  };
  std::vector<Tag> tags;
  tags.reserve(group.routes.size());
  for (const auto& r : group.routes) {
    tags.push_back({r.route.relationship == Relationship::kTransit &&
                        !r.route.as_path.empty(),
                    r.route.as_path.empty() ? 0u : r.route.as_path.front()});
  }
  for (const auto& d : deprefs) {
    if (!d.all_continents && group.continent != d.continent) continue;
    const auto demoted = [&](const Tag& t) {
      return t.transit_with_path && t.front_asn == d.asn;
    };
    // Stable partition index map, exactly as depref_group builds it.
    int next = 0;
    bool changed = false;
    std::vector<int> new_index(tags.size());
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (!demoted(tags[i])) new_index[i] = next++;
    }
    for (std::size_t i = 0; i < tags.size(); ++i) {
      if (demoted(tags[i])) new_index[i] = next++;
      if (new_index[i] != static_cast<int>(i)) changed = true;
    }
    // The first delta that permutes anything marks the group affected;
    // later deltas cannot un-touch it.
    if (changed) return true;
    // Identity permutation: the next delta sees the same order, so no
    // tag shuffle is needed before continuing.
  }
  return false;
}

}  // namespace

ScenarioFootprint scenario_footprint(const World& world,
                                     const ScenarioPack& pack) {
  ScenarioFootprint fp;
  if (pack.empty()) return fp;
  validate_scenario(world, pack);
  for (const auto& d : pack.drains) {
    fp.drain_pops.push_back(find_pop(world, d.pop)->id);
  }
  fp.depref_routes = pack.deprefs;
  // apply_scenario's canonical within-type order (scenario.cpp
  // sort_canonical): membership simulation must walk the same sequence.
  std::stable_sort(fp.depref_routes.begin(), fp.depref_routes.end(),
                   [](const DepreferDelta& x, const DepreferDelta& y) {
                     return std::tie(x.asn, x.all_continents, x.continent) <
                            std::tie(y.asn, y.all_continents, y.continent);
                   });
  for (const auto& d : pack.flash_crowds) {
    fp.flash_countries.push_back(d.country);
  }
  for (const auto& d : pack.cable_cuts) {
    fp.cut_paths.emplace_back(std::min(d.a, d.b), std::max(d.a, d.b));
  }
  return fp;
}

bool footprint_covers_group(const World& world, const ScenarioFootprint& fp,
                            const UserGroupProfile& group) {
  for (const PopId pop : fp.drain_pops) {
    if (group.key.pop == pop) return true;
  }
  for (const std::uint32_t country : fp.flash_countries) {
    if (group.key.country.value == country) return true;
  }
  if (!fp.cut_paths.empty() && group.remote_served) {
    const Continent serving = pop_continent(world, group.key.pop);
    const Continent lo = std::min(group.continent, serving);
    const Continent hi = std::max(group.continent, serving);
    for (const auto& [a, b] : fp.cut_paths) {
      if (a == lo && b == hi) return true;
    }
  }
  return depref_changes_group(group, fp.depref_routes);
}

std::vector<std::size_t> affected_groups(const World& world,
                                         const ScenarioPack& pack) {
  std::vector<std::size_t> out;
  if (pack.empty()) return out;
  const ScenarioFootprint fp = scenario_footprint(world, pack);
  for (std::size_t g = 0; g < world.groups.size(); ++g) {
    if (footprint_covers_group(world, fp, world.groups[g])) out.push_back(g);
  }
  return out;
}

std::uint64_t scenario_pack_hash(const ScenarioPack& pack) {
  const std::string canon = serialize_scenario(pack);
  Fnv64 h;
  h.u64(pack.seed);
  h.u64(canon.size());
  h.bytes(canon.data(), canon.size());
  return h.value();
}

}  // namespace fbedge
