// Declarative what-if scenarios over the synthetic world (§3.4 / §6 as
// decision tools).
//
// A ScenarioPack names a composite operational question — "drain EU-pop1
// during peak", "depref transit AS3356", "flash-crowd country 300 by 10x",
// "cut the EU–AF submarine cable for a day" — as a list of typed deltas
// parsed from a small key=value-sections config (scenario_config.cpp).
// apply_scenario() materializes the pack against a *copy* of a built world:
// the calibrated world builder and its RNG draw order are never touched,
// so a perturbed world differs from baseline exactly where the pack says
// and nowhere else.
//
// Determinism contract (the faultsim rule, CLAUDE.md):
//   * Every per-group perturbation magnitude is a pure function of
//     (pack.seed, scenario site, group key, delta identity), drawn from a
//     fresh entity_stream — never from sequential state. The helpers below
//     (drain_reroute_rtt, ...) are the *only* randomness in this module and
//     are exported so tests can recount every injection exactly.
//   * Deltas are applied in a canonical order (depref, then drain, then
//     cable-cut, then flash; sorted by content within each type), so two
//     configs listing the same deltas in any order produce bitwise-equal
//     worlds — episode vectors sum extra delays in vector order, and
//     doubles care about addition order.
//   * An empty pack applies nothing: run_edge_analysis with a default
//     ScenarioPack takes exactly the scenario-free code path and its output
//     is byte-identical to a build without this module, at any --threads.
//
// Layering: util < ... < workload < runtime < faultsim < scenario <
// stream < analysis. scenario composes workload state using the faultsim
// site salts; analysis wires packs into the pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faultsim/fault_plan.h"
#include "runtime/run_stats.h"
#include "util/geo.h"
#include "util/rng.h"
#include "workload/world.h"

namespace fbedge {

/// Drain one PoP over a window range: traffic it serves is rerouted to a
/// farther PoP for the duration, modelled as a destination-side episode
/// (extra RTT drawn per group from [reroute_rtt_min, reroute_rtt_max],
/// plus reroute-path loss) on every group the PoP serves.
struct DrainDelta {
  std::string pop;  // PoP name, e.g. "EU-pop1" (see PopInfo::name)
  int start_window{0};
  int end_window{0};  // exclusive, in 15-minute windows
  Duration reroute_rtt_min{0.020};
  Duration reroute_rtt_max{0.045};
  double reroute_loss{0.001};
};

/// Deprefer a transit provider: every transit route whose first AS-path
/// hop is `asn` is moved (stable order) behind the group's other routes,
/// changing which route is policy-preferred for the whole run. Structural
/// — no randomness — and scoped to one continent unless all_continents.
struct DepreferDelta {
  std::uint32_t asn{0};
  bool all_continents{true};
  Continent continent{Continent::kEurope};
};

/// Flash-crowd one country: session arrivals multiplied by `multiplier`
/// (with a per-group jitter factor in [1-jitter, 1+jitter]), optionally
/// with a destination-side congestion episode while the crowd lasts.
struct FlashCrowdDelta {
  std::uint32_t country{0};  // CountryId::value
  double multiplier{1.0};
  double jitter{0.0};  // relative, in [0, 1)
  int start_window{-1};  // congestion episode; -1 = no episode
  int end_window{-1};
  Duration congestion_delay{0};
  double congestion_loss{0};
};

/// Submarine-cable cut between two continents: every remote-served group
/// whose (client continent, serving-PoP continent) pair matches — in
/// either direction — takes a restoration-detour episode of roughly
/// `extra_rtt` (per-group stretch factor in [0.85, 1.15]) plus loss.
struct CableCutDelta {
  Continent a{Continent::kEurope};
  Continent b{Continent::kAfrica};
  Duration extra_rtt{0.080};
  double extra_loss{0};
  int start_window{0};
  int end_window{0};  // exclusive
};

/// One named what-if question: a composition of typed deltas.
struct ScenarioPack {
  std::string name;
  /// Seeds every per-group magnitude draw; independent of the dataset seed
  /// so the same scenario can be replayed against different traffic.
  std::uint64_t seed{0};
  std::vector<DrainDelta> drains;
  std::vector<DepreferDelta> deprefs;
  std::vector<FlashCrowdDelta> flash_crowds;
  std::vector<CableCutDelta> cable_cuts;

  bool empty() const {
    return drains.empty() && deprefs.empty() && flash_crowds.empty() &&
           cable_cuts.empty();
  }
};

// ---- pure per-group perturbation draws (the faultsim rule) ----------------
// Exported so tests recount every injected magnitude outside the pipeline.
// The entity key mixes the group with the delta's identifying content, so
// two deltas of the same type draw decorrelated streams and the draw is
// independent of config order, iteration order, and thread count.

/// Entity key of (group, drain delta).
inline std::uint64_t drain_entity_key(std::uint64_t group_key,
                                      const DrainDelta& d) {
  std::uint64_t h = hash_combine(group_key,
                                 static_cast<std::uint64_t>(d.start_window));
  h = hash_combine(h, static_cast<std::uint64_t>(d.end_window));
  return h;
}

/// Extra RTT a drained group pays on the reroute path.
inline Duration drain_reroute_rtt(std::uint64_t seed, const DrainDelta& d,
                                  std::uint64_t group_key) {
  Rng s = entity_stream(seed ^ faultsite::kScenarioDrain,
                        drain_entity_key(group_key, d));
  return s.uniform(d.reroute_rtt_min, d.reroute_rtt_max);
}

/// Entity key of (group, flash delta).
inline std::uint64_t flash_entity_key(std::uint64_t group_key,
                                      const FlashCrowdDelta& d) {
  return hash_combine(group_key, static_cast<std::uint64_t>(d.country));
}

/// Load factor a flash-crowded group's arrivals are multiplied by.
inline double flash_session_multiplier(std::uint64_t seed,
                                       const FlashCrowdDelta& d,
                                       std::uint64_t group_key) {
  if (d.jitter <= 0) return d.multiplier;
  Rng s = entity_stream(seed ^ faultsite::kScenarioFlash,
                        flash_entity_key(group_key, d));
  return d.multiplier * (1.0 + d.jitter * (2.0 * s.uniform() - 1.0));
}

/// Entity key of (group, cable-cut delta).
inline std::uint64_t cable_cut_entity_key(std::uint64_t group_key,
                                          const CableCutDelta& d) {
  const auto lo = static_cast<std::uint64_t>(d.a < d.b ? d.a : d.b);
  const auto hi = static_cast<std::uint64_t>(d.a < d.b ? d.b : d.a);
  return hash_combine(group_key, hash_combine(lo, hi));
}

/// Per-group detour stretch on the post-cut restoration path.
inline double cable_cut_stretch(std::uint64_t seed, const CableCutDelta& d,
                                std::uint64_t group_key) {
  Rng s = entity_stream(seed ^ faultsite::kScenarioCableCut,
                        cable_cut_entity_key(group_key, d));
  return s.uniform(0.85, 1.15);
}

// ---- config format (scenario_config.cpp) ----------------------------------

struct ScenarioParseResult {
  bool ok{false};
  std::string error;  // "line N: ..." when !ok
  ScenarioPack pack;
};

/// Parses the key=value-sections scenario format ('#' comments; sections
/// [scenario], [drain], [depref], [flash_crowd], [cable_cut], repeatable).
/// Syntax and vocabulary problems (unknown section/key, bad number,
/// unknown continent code) are reported as errors, never aborts; semantic
/// bounds are enforced later by apply_scenario via FBEDGE_EXPECT.
ScenarioParseResult parse_scenario(const std::string& text);

/// Canonical text form; parse_scenario(serialize_scenario(p)) reproduces p.
std::string serialize_scenario(const ScenarioPack& pack);

// ---- application -----------------------------------------------------------

/// Fail-fast semantic bounds check (FBEDGE_EXPECT): window ranges ordered
/// and non-negative, durations non-negative, multiplier > 0, jitter in
/// [0, 1), loss rates in [0, 1], ASN nonzero, distinct cable-cut
/// continents, drain PoP names and flash-crowd countries resolvable
/// against `world`.
void validate_scenario(const World& world, const ScenarioPack& pack);

/// Returns a copy of `world` with the pack's deltas applied in canonical
/// order (see file header), counting every (group, delta) application into
/// `counters` (scenario_* fields). An empty pack returns an identical
/// copy and counts nothing.
World apply_scenario(const World& world, const ScenarioPack& pack,
                     FaultCounters* counters = nullptr);

}  // namespace fbedge
