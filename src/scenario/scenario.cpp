// ScenarioPack application: canonical-order composition of world deltas.
#include "scenario/scenario.h"

#include <algorithm>
#include <tuple>

#include "util/expect.h"

namespace fbedge {

namespace {

const PopInfo* find_pop(const World& world, const std::string& name) {
  for (const auto& pop : world.pops) {
    if (pop.name == name) return &pop;
  }
  return nullptr;
}

Continent pop_continent(const World& world, PopId id) {
  for (const auto& pop : world.pops) {
    if (pop.id == id) return pop.continent;
  }
  FBEDGE_EXPECT(false, "group served by a PoP the world does not know");
  return Continent::kNorthAmerica;
}

bool cut_matches(const CableCutDelta& d, Continent client, Continent serving) {
  return (client == d.a && serving == d.b) || (client == d.b && serving == d.a);
}

// Canonical within-type orderings: the applied schedule is a function of
// the delta *content*, never of config order (double addition in episode
// vectors cares about order, so this is what makes composition bitwise
// order-invariant).
void sort_canonical(ScenarioPack& pack) {
  std::stable_sort(pack.deprefs.begin(), pack.deprefs.end(),
                   [](const DepreferDelta& x, const DepreferDelta& y) {
                     return std::tie(x.asn, x.all_continents, x.continent) <
                            std::tie(y.asn, y.all_continents, y.continent);
                   });
  std::stable_sort(pack.drains.begin(), pack.drains.end(),
                   [](const DrainDelta& x, const DrainDelta& y) {
                     return std::tie(x.pop, x.start_window, x.end_window,
                                     x.reroute_rtt_min, x.reroute_rtt_max,
                                     x.reroute_loss) <
                            std::tie(y.pop, y.start_window, y.end_window,
                                     y.reroute_rtt_min, y.reroute_rtt_max,
                                     y.reroute_loss);
                   });
  std::stable_sort(
      pack.cable_cuts.begin(), pack.cable_cuts.end(),
      [](const CableCutDelta& x, const CableCutDelta& y) {
        const auto key = [](const CableCutDelta& d) {
          return std::tuple(std::min(d.a, d.b), std::max(d.a, d.b),
                            d.start_window, d.end_window, d.extra_rtt,
                            d.extra_loss);
        };
        return key(x) < key(y);
      });
  std::stable_sort(pack.flash_crowds.begin(), pack.flash_crowds.end(),
                   [](const FlashCrowdDelta& x, const FlashCrowdDelta& y) {
                     return std::tie(x.country, x.multiplier, x.jitter,
                                     x.start_window, x.end_window,
                                     x.congestion_delay, x.congestion_loss) <
                            std::tie(y.country, y.multiplier, y.jitter,
                                     y.start_window, y.end_window,
                                     y.congestion_delay, y.congestion_loss);
                   });
}

/// Stable-moves the delta's transit routes behind every other route.
/// Returns true when the route order actually changed; episode route
/// indices (physical-route events) are remapped through the permutation.
bool depref_group(UserGroupProfile& group, const DepreferDelta& delta) {
  if (!delta.all_continents && group.continent != delta.continent) return false;
  const auto demoted = [&](const RouteProfile& r) {
    return r.route.relationship == Relationship::kTransit &&
           !r.route.as_path.empty() && r.route.as_path.front() == delta.asn;
  };
  std::vector<int> new_index(group.routes.size());
  int next = 0;
  for (std::size_t i = 0; i < group.routes.size(); ++i) {
    if (!demoted(group.routes[i])) new_index[i] = next++;
  }
  bool changed = false;
  for (std::size_t i = 0; i < group.routes.size(); ++i) {
    if (demoted(group.routes[i])) new_index[i] = next++;
    if (new_index[i] != static_cast<int>(i)) changed = true;
  }
  if (!changed) return false;
  std::vector<RouteProfile> reordered(group.routes.size());
  for (std::size_t i = 0; i < group.routes.size(); ++i) {
    reordered[static_cast<std::size_t>(new_index[i])] =
        std::move(group.routes[i]);
  }
  group.routes = std::move(reordered);
  for (auto& ep : group.episodes) {
    if (ep.route_index >= 0 &&
        ep.route_index < static_cast<int>(new_index.size())) {
      ep.route_index = new_index[static_cast<std::size_t>(ep.route_index)];
    }
  }
  return true;
}

}  // namespace

void validate_scenario(const World& world, const ScenarioPack& pack) {
  for (const auto& d : pack.drains) {
    FBEDGE_EXPECT(find_pop(world, d.pop) != nullptr,
                  "drain: unknown PoP name");
    FBEDGE_EXPECT(d.start_window >= 0, "drain: negative start_window");
    FBEDGE_EXPECT(d.end_window > d.start_window, "drain: empty window range");
    FBEDGE_EXPECT(d.reroute_rtt_min >= 0, "drain: negative reroute RTT");
    FBEDGE_EXPECT(d.reroute_rtt_max >= d.reroute_rtt_min,
                  "drain: reroute RTT range inverted");
    FBEDGE_EXPECT(d.reroute_loss >= 0 && d.reroute_loss <= 1,
                  "drain: reroute_loss outside [0, 1]");
  }
  for (const auto& d : pack.deprefs) {
    FBEDGE_EXPECT(d.asn != 0, "depref: zero ASN");
  }
  for (const auto& d : pack.flash_crowds) {
    FBEDGE_EXPECT(d.country / 100 < static_cast<std::uint32_t>(kNumContinents),
                  "flash_crowd: unknown country key");
    FBEDGE_EXPECT(d.multiplier > 0, "flash_crowd: multiplier must be > 0");
    FBEDGE_EXPECT(d.jitter >= 0 && d.jitter < 1,
                  "flash_crowd: jitter outside [0, 1)");
    FBEDGE_EXPECT(d.congestion_delay >= 0,
                  "flash_crowd: negative congestion_delay");
    FBEDGE_EXPECT(d.congestion_loss >= 0 && d.congestion_loss <= 1,
                  "flash_crowd: congestion_loss outside [0, 1]");
    FBEDGE_EXPECT((d.start_window < 0) == (d.end_window < 0),
                  "flash_crowd: half-open congestion window");
    if (d.start_window >= 0) {
      FBEDGE_EXPECT(d.end_window > d.start_window,
                    "flash_crowd: empty congestion window");
    }
  }
  for (const auto& d : pack.cable_cuts) {
    FBEDGE_EXPECT(d.a != d.b, "cable_cut: identical continents");
    FBEDGE_EXPECT(d.extra_rtt >= 0, "cable_cut: negative extra_rtt");
    FBEDGE_EXPECT(d.extra_loss >= 0 && d.extra_loss <= 1,
                  "cable_cut: extra_loss outside [0, 1]");
    FBEDGE_EXPECT(d.start_window >= 0, "cable_cut: negative start_window");
    FBEDGE_EXPECT(d.end_window > d.start_window,
                  "cable_cut: empty window range");
  }
}

World apply_scenario(const World& world, const ScenarioPack& pack,
                     FaultCounters* counters) {
  World out = world;
  if (pack.empty()) return out;
  validate_scenario(world, pack);

  ScenarioPack canon = pack;
  sort_canonical(canon);

  FaultCounters local;
  FaultCounters& c = counters ? *counters : local;

  // 1. Depref first: it permutes route indices, and the remaining delta
  // types only append route_index=-1 (destination-side) episodes, which a
  // permutation cannot invalidate.
  for (const auto& d : canon.deprefs) {
    for (auto& group : out.groups) {
      if (depref_group(group, d)) ++c.scenario_depref_groups;
    }
  }

  // 2. PoP drains: reroute episode on every group the PoP serves.
  for (const auto& d : canon.drains) {
    const PopInfo* pop = find_pop(out, d.pop);
    for (auto& group : out.groups) {
      if (!(group.key.pop == pop->id)) continue;
      Episode ep;
      ep.start_window = d.start_window;
      ep.end_window = d.end_window;
      ep.route_index = -1;
      ep.extra_delay =
          drain_reroute_rtt(pack.seed, d, group_fault_key(group.key));
      ep.extra_loss = d.reroute_loss;
      group.episodes.push_back(ep);
      ++c.scenario_drained_groups;
    }
  }

  // 3. Cable cuts: detour episode on matching remote-served groups.
  for (const auto& d : canon.cable_cuts) {
    for (auto& group : out.groups) {
      if (!group.remote_served) continue;
      if (!cut_matches(d, group.continent, pop_continent(out, group.key.pop))) {
        continue;
      }
      Episode ep;
      ep.start_window = d.start_window;
      ep.end_window = d.end_window;
      ep.route_index = -1;
      ep.extra_delay =
          d.extra_rtt *
          cable_cut_stretch(pack.seed, d, group_fault_key(group.key));
      ep.extra_loss = d.extra_loss;
      group.episodes.push_back(ep);
      ++c.scenario_cable_cut_groups;
    }
  }

  // 4. Flash crowds: arrival-rate multiplier (and optional congestion).
  for (const auto& d : canon.flash_crowds) {
    for (auto& group : out.groups) {
      if (group.key.country.value != d.country) continue;
      group.sessions_per_window *=
          flash_session_multiplier(pack.seed, d, group_fault_key(group.key));
      if (d.start_window >= 0 &&
          (d.congestion_delay > 0 || d.congestion_loss > 0)) {
        Episode ep;
        ep.start_window = d.start_window;
        ep.end_window = d.end_window;
        ep.route_index = -1;
        ep.extra_delay = d.congestion_delay;
        ep.extra_loss = d.congestion_loss;
        group.episodes.push_back(ep);
      }
      ++c.scenario_flash_groups;
    }
  }

  return out;
}

}  // namespace fbedge
