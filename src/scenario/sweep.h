// Affected-group footprints: which groups a ScenarioPack can touch.
//
// Every scenario delta is a pure perturbation of the groups matching a
// small topology predicate — a drain touches the groups one PoP serves, a
// depref the groups whose route ranking actually changes, a flash crowd
// one country's groups, a cable cut the remote-served groups crossing one
// continent pair. Per-group ingest is itself a pure function of the group
// profile (the generator seeds every group's stream from the group key
// alone), so a group outside a pack's footprint produces a bitwise-
// identical ingest artifact under the perturbed world. That is the fact
// the incremental sweep engine (analysis/sweep.h) is built on: re-ingest
// only affected_groups(), splice the baseline artifact for everyone else,
// and the result is byte-identical to an independent full run.
//
// The footprint is computed against the *baseline* world. This is exact,
// not just conservative: apply_scenario's canonical order (depref, drain,
// cable-cut, flash) never changes a matching attribute before it is
// matched — depref permutes routes but preserves the route multiset and
// every group attribute; drains/cuts only append episodes; flash only
// scales arrivals — so the baseline predicates see exactly what apply
// sees. tests/scenario_test.cpp pins both directions (outside groups
// bitwise-identical, at least one inside group differing per delta kind),
// and the faultsim recount extension ties the set to the scenario_*
// apply counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "scenario/scenario.h"
#include "workload/world.h"

namespace fbedge {

/// The affected-key footprint of one pack: per delta kind, the topology
/// keys it can reach. Kept as keys (not group ids) so callers can reason
/// about what a pack touches without a world; affected_groups() maps the
/// footprint through the world's group -> (PoP, route, country, path)
/// attributes to a concrete group-id set.
struct ScenarioFootprint {
  /// Drains resolve to serving-PoP ids (every group the PoP serves).
  std::vector<PopId> drain_pops;
  /// Deprefs keep their (asn, continent-scope) route keys; whether a
  /// specific group is affected additionally depends on whether demoting
  /// those transit routes changes its ranking at all (exact, per group).
  std::vector<DepreferDelta> depref_routes;
  /// Flash crowds resolve to country keys.
  std::vector<std::uint32_t> flash_countries;
  /// Cable cuts resolve to unordered continent path keys (lo, hi).
  std::vector<std::pair<Continent, Continent>> cut_paths;

  bool empty() const {
    return drain_pops.empty() && depref_routes.empty() &&
           flash_countries.empty() && cut_paths.empty();
  }
};

/// Resolves a pack's deltas to their affected-key footprint against
/// `world` (fail-fast on packs validate_scenario would reject). Depref
/// keys are listed in apply_scenario's canonical order so per-group
/// membership simulation matches the applied permutation sequence.
ScenarioFootprint scenario_footprint(const World& world,
                                     const ScenarioPack& pack);

/// Whether `group` falls inside the footprint — i.e. whether
/// apply_scenario would touch it (append an episode, permute its routes,
/// or scale its arrivals). Pure in (world, footprint, group).
bool footprint_covers_group(const World& world, const ScenarioFootprint& fp,
                            const UserGroupProfile& group);

/// Ascending group ids apply_scenario(world, pack) would touch: exactly
/// the groups whose ingest may differ under the perturbed world. Empty
/// pack -> empty set.
std::vector<std::size_t> affected_groups(const World& world,
                                         const ScenarioPack& pack);

/// Content identity of a pack (FNV-1a over its canonical serialized form
/// plus the seed): two packs hash equal iff they describe the same
/// scenario. Sweep artifacts are keyed by ingest content-hash x this, so
/// per-scenario artifacts from different packs can never collide.
std::uint64_t scenario_pack_hash(const ScenarioPack& pack);

}  // namespace fbedge
