// Scenario config format: '#' comments plus key = value lines grouped
// under [section] headers. Sections [drain], [depref], [flash_crowd], and
// [cable_cut] are repeatable (one delta each); [scenario] holds the pack
// name and seed. No new dependencies — the same hand-rolled style as the
// tool flag parsing. Durations are given in milliseconds via *_ms keys and
// stored as seconds.
#include <cctype>
#include <cstdlib>
#include <optional>
#include <string_view>

#include "scenario/scenario.h"

namespace fbedge {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<double> parse_number(std::string_view v) {
  const std::string text(v);
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double x = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return x;
}

std::optional<std::int64_t> parse_int(std::string_view v) {
  const std::string text(v);
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const long long x = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return x;
}

std::optional<Continent> continent_from_code(std::string_view code) {
  for (const Continent c : kAllContinents) {
    if (code == to_code(c)) return c;
  }
  return std::nullopt;
}

enum class Section { kNone, kScenario, kDrain, kDepref, kFlash, kCableCut };

struct Parser {
  ScenarioPack pack;
  Section section{Section::kNone};
  DrainDelta drain;
  DepreferDelta depref;
  FlashCrowdDelta flash;
  CableCutDelta cut;
  std::string error;
  int line_no{0};

  bool fail(const std::string& what) {
    error = "line " + std::to_string(line_no) + ": " + what;
    return false;
  }

  void close_section() {
    switch (section) {
      case Section::kDrain: pack.drains.push_back(drain); break;
      case Section::kDepref: pack.deprefs.push_back(depref); break;
      case Section::kFlash: pack.flash_crowds.push_back(flash); break;
      case Section::kCableCut: pack.cable_cuts.push_back(cut); break;
      case Section::kScenario:
      case Section::kNone: break;
    }
  }

  bool open_section(std::string_view name) {
    close_section();
    if (name == "scenario") {
      section = Section::kScenario;
    } else if (name == "drain") {
      section = Section::kDrain;
      drain = DrainDelta{};
    } else if (name == "depref") {
      section = Section::kDepref;
      depref = DepreferDelta{};
    } else if (name == "flash_crowd") {
      section = Section::kFlash;
      flash = FlashCrowdDelta{};
    } else if (name == "cable_cut") {
      section = Section::kCableCut;
      cut = CableCutDelta{};
    } else {
      return fail("unknown section [" + std::string(name) + "]");
    }
    return true;
  }

  bool number(std::string_view value, double& out) {
    const auto x = parse_number(value);
    if (!x) return fail("bad number '" + std::string(value) + "'");
    out = *x;
    return true;
  }

  bool millis(std::string_view value, Duration& out) {
    double ms = 0;
    if (!number(value, ms)) return false;
    out = ms * 1e-3;
    return true;
  }

  bool integer(std::string_view value, int& out) {
    const auto x = parse_int(value);
    if (!x) return fail("bad integer '" + std::string(value) + "'");
    out = static_cast<int>(*x);
    return true;
  }

  bool keyval(std::string_view key, std::string_view value) {
    switch (section) {
      case Section::kNone:
        return fail("key '" + std::string(key) + "' outside any section");
      case Section::kScenario:
        if (key == "name") {
          pack.name = std::string(value);
          return true;
        }
        if (key == "seed") {
          const auto x = parse_int(value);
          if (!x || *x < 0) {
            return fail("bad seed '" + std::string(value) + "'");
          }
          pack.seed = static_cast<std::uint64_t>(*x);
          return true;
        }
        break;
      case Section::kDrain:
        if (key == "pop") {
          drain.pop = std::string(value);
          return true;
        }
        if (key == "start_window") return integer(value, drain.start_window);
        if (key == "end_window") return integer(value, drain.end_window);
        if (key == "reroute_rtt_min_ms") {
          return millis(value, drain.reroute_rtt_min);
        }
        if (key == "reroute_rtt_max_ms") {
          return millis(value, drain.reroute_rtt_max);
        }
        if (key == "reroute_loss") return number(value, drain.reroute_loss);
        break;
      case Section::kDepref:
        if (key == "asn") {
          const auto x = parse_int(value);
          if (!x || *x < 0) return fail("bad asn '" + std::string(value) + "'");
          depref.asn = static_cast<std::uint32_t>(*x);
          return true;
        }
        if (key == "continent") {
          if (value == "all") {
            depref.all_continents = true;
            return true;
          }
          const auto c = continent_from_code(value);
          if (!c) {
            return fail("unknown continent code '" + std::string(value) + "'");
          }
          depref.all_continents = false;
          depref.continent = *c;
          return true;
        }
        break;
      case Section::kFlash:
        if (key == "country") {
          const auto x = parse_int(value);
          if (!x || *x < 0) {
            return fail("bad country '" + std::string(value) + "'");
          }
          flash.country = static_cast<std::uint32_t>(*x);
          return true;
        }
        if (key == "multiplier") return number(value, flash.multiplier);
        if (key == "jitter") return number(value, flash.jitter);
        if (key == "start_window") return integer(value, flash.start_window);
        if (key == "end_window") return integer(value, flash.end_window);
        if (key == "congestion_delay_ms") {
          return millis(value, flash.congestion_delay);
        }
        if (key == "congestion_loss") {
          return number(value, flash.congestion_loss);
        }
        break;
      case Section::kCableCut:
        if (key == "continents") {
          // "EU-AF": an unordered continent pair.
          const auto dash = value.find('-');
          if (dash == std::string_view::npos) {
            return fail("continents must look like 'EU-AF'");
          }
          const auto a = continent_from_code(trim(value.substr(0, dash)));
          const auto b = continent_from_code(trim(value.substr(dash + 1)));
          if (!a || !b) {
            return fail("unknown continent code in '" + std::string(value) +
                        "'");
          }
          cut.a = *a;
          cut.b = *b;
          return true;
        }
        if (key == "extra_rtt_ms") return millis(value, cut.extra_rtt);
        if (key == "extra_loss") return number(value, cut.extra_loss);
        if (key == "start_window") return integer(value, cut.start_window);
        if (key == "end_window") return integer(value, cut.end_window);
        break;
    }
    return fail("unknown key '" + std::string(key) + "'");
  }
};

}  // namespace

ScenarioParseResult parse_scenario(const std::string& text) {
  ScenarioParseResult result;
  Parser p;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t len =
        (eol == std::string::npos ? text.size() : eol) - pos;
    std::string_view line = trim(std::string_view(text).substr(pos, len));
    ++p.line_no;
    pos = (eol == std::string::npos) ? text.size() + 1 : eol + 1;

    if (line.empty() || line.front() == '#') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        p.fail("unterminated section header");
        break;
      }
      if (!p.open_section(trim(line.substr(1, line.size() - 2)))) break;
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      p.fail("expected 'key = value'");
      break;
    }
    if (!p.keyval(trim(line.substr(0, eq)), trim(line.substr(eq + 1)))) break;
  }
  if (!p.error.empty()) {
    result.error = p.error;
    return result;
  }
  p.close_section();
  result.ok = true;
  result.pack = std::move(p.pack);
  return result;
}

std::string serialize_scenario(const ScenarioPack& pack) {
  std::string out;
  char buf[64];
  const auto num = [&](const char* key, double v) {
    std::snprintf(buf, sizeof buf, "%s = %.17g\n", key, v);
    out += buf;
  };
  const auto integer = [&](const char* key, long long v) {
    std::snprintf(buf, sizeof buf, "%s = %lld\n", key, v);
    out += buf;
  };
  out += "[scenario]\n";
  out += "name = " + pack.name + "\n";
  integer("seed", static_cast<long long>(pack.seed));
  for (const auto& d : pack.drains) {
    out += "\n[drain]\n";
    out += "pop = " + d.pop + "\n";
    integer("start_window", d.start_window);
    integer("end_window", d.end_window);
    num("reroute_rtt_min_ms", d.reroute_rtt_min * 1e3);
    num("reroute_rtt_max_ms", d.reroute_rtt_max * 1e3);
    num("reroute_loss", d.reroute_loss);
  }
  for (const auto& d : pack.deprefs) {
    out += "\n[depref]\n";
    integer("asn", d.asn);
    out += "continent = ";
    out += d.all_continents ? "all" : std::string(to_code(d.continent));
    out += "\n";
  }
  for (const auto& d : pack.flash_crowds) {
    out += "\n[flash_crowd]\n";
    integer("country", d.country);
    num("multiplier", d.multiplier);
    num("jitter", d.jitter);
    if (d.start_window >= 0) {
      integer("start_window", d.start_window);
      integer("end_window", d.end_window);
    }
    num("congestion_delay_ms", d.congestion_delay * 1e3);
    num("congestion_loss", d.congestion_loss);
  }
  for (const auto& d : pack.cable_cuts) {
    out += "\n[cable_cut]\n";
    out += "continents = ";
    out += std::string(to_code(d.a)) + "-" + std::string(to_code(d.b)) + "\n";
    num("extra_rtt_ms", d.extra_rtt * 1e3);
    num("extra_loss", d.extra_loss);
    integer("start_window", d.start_window);
    integer("end_window", d.end_window);
  }
  return out;
}

}  // namespace fbedge
