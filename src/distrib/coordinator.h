// Multi-process shard coordinator: 100x scale over the ingest-artifact
// cache.
//
// The group space is partitioned into ShardPlan's contiguous ascending
// blocks, one per worker. Each worker — an OS process by default, an
// in-process call in tests — ingests its block, streams the per-group
// blobs into a shard ingest artifact (bounded memory: one chunk of groups
// at a time, via ingest_range_to_blobs + IngestArtifactWriter), publishes
// the artifact atomically, and only then writes its shard manifest. The
// coordinator retries crashed workers up to the fault plan's attempt
// budget, then reduces shard by shard in shard order: load one shard's
// artifact, fold its groups through EdgeReducer, drop the artifact, move
// on. Because shards are ascending blocks and EdgeReducer folds partials
// in ascending group order, the finished result is byte-identical to a
// single-process run_edge_analysis over the same world — for any worker
// count, any worker thread count, and any reduce thread count.
//
// Failure policy mirrors the ingest cache: a shard whose worker exhausted
// every attempt (or whose manifest/artifact fails validation) is reduced
// via cold ingest in the coordinator instead — slower, never wrong. The
// loss is counted (FaultCounters::degraded_shards), never silent.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/edge_analysis.h"
#include "distrib/subprocess.h"

namespace fbedge {

/// Exit status a worker uses for an injected kWorkerCrash death, distinct
/// from real I/O failure (1) and exec failure (127) so logs stay readable.
/// The coordinator attributes crashes by recomputing worker_crash_decision,
/// not by trusting exit codes.
inline constexpr int kWorkerCrashExit = 43;

/// Identity of one worker attempt: shard `shard` of a `workers`-way
/// partition of the world's groups, attempt number `attempt`.
struct WorkerSpec {
  int shard{0};
  int workers{1};
  int attempt{0};
  std::string cache_dir;
};

/// The worker body (also run directly by fbedge_scale's hidden worker
/// mode). Checks the injected-crash decision FIRST — before touching the
/// cache directory — so a crashed attempt can never publish a partial
/// artifact or manifest. Otherwise: if a valid manifest + artifact for
/// this shard already exist, returns 0 immediately (idempotent re-spawn);
/// else ingests the shard's group range, streams it into the shard
/// artifact, publishes it, then publishes the manifest. Returns 0 on
/// success, kWorkerCrashExit on injected crash, 1 on I/O failure.
int run_shard_worker(const World& world, const DatasetConfig& config,
                     GoodputConfig goodput, const WorkerSpec& spec,
                     const FaultPlan& faults = {},
                     const RuntimeOptions& runtime = RuntimeOptions::sequential(),
                     RunStats* stats = nullptr);

/// Outcome of one shard's spawn-retry loop (run_worker_fleet).
struct FleetShardOutcome {
  bool published{false};
  std::uint64_t spawned{0};
  std::uint64_t failures{0};
  std::uint64_t crashes{0};
  std::uint64_t retries{0};
  std::uint64_t rss_peak{0};
};

/// The shared spawn phase: runs `shards` independent retry loops in
/// parallel (one slot per shard; a slot blocks while its worker attempt
/// runs), each retrying up to the fault plan's worker_max_attempts.
/// `launch(shard, attempt)` runs one attempt and blocks until it exits;
/// status 0 marks the shard published. Injected crashes are attributed by
/// recomputing worker_crash_decision — never by trusting an exit code a
/// real bug could collide with. Outcomes come back in shard order, so
/// folding them is independent of completion order. Both the scale
/// coordinator and the scenario-sweep fleet (sweep_fleet.h) run their
/// workers through this loop.
std::vector<FleetShardOutcome> run_worker_fleet(
    int shards, const FaultPlan& faults,
    const std::function<WorkerExit(int shard, int attempt)>& launch);

/// Coordinator knobs.
struct ScaleOptions {
  /// Worker count = shard count. 1 still exercises the full
  /// spawn/manifest/reduce machinery.
  int workers{1};
  /// Threads inside each worker's ingest.
  int worker_threads{1};
  /// Shared artifact + manifest directory. Required.
  std::string cache_dir;
  /// Threads for the coordinator's reduce (and any cold-ingest fallback).
  RuntimeOptions reduce_runtime = RuntimeOptions::sequential();
  /// Fault plan; worker_crash_rate / worker_max_attempts drive the
  /// spawn-retry loop. Sampler/agg rates must stay zero (the shared cache
  /// must never hold faulted series; fbedge_scale enforces this at the CLI).
  FaultPlan faults;
  /// Launches one worker attempt and blocks until it exits (the tool wires
  /// this to spawn_worker on its own binary in worker mode). Null = run the
  /// worker in-process, which tests use to exercise coordinator logic
  /// without a binary path.
  std::function<WorkerExit(int shard, int attempt)> launcher;
};

/// Runs the partition/spawn/retry/reduce sequence described above and
/// returns the finished analysis. Worker attempts are launched in
/// parallel (one slot per worker); all spawn-phase counters — crashes,
/// retries, degraded shards, processes spawned, per-worker peak RSS — are
/// folded in shard order into `stats` and the result's FaultCounters.
EdgeAnalysisResult run_scale_analysis(
    const World& world, const DatasetConfig& config,
    const AnalysisThresholds& thresholds = {},
    const ComparisonConfig& comparison = {}, GoodputConfig goodput = {},
    const ScaleOptions& options = {}, RunStats* stats = nullptr);

}  // namespace fbedge
