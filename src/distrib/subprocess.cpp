#include "distrib/subprocess.h"

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

namespace fbedge {

WorkerExit spawn_worker(const std::vector<std::string>& argv) {
  WorkerExit result;
  if (argv.empty()) return result;
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);

  // fork+exec, not posix_spawn: glibc's posix_spawn shares the parent mm
  // (CLONE_VM) until exec, so the child's ru_maxrss inherits the
  // coordinator's RSS *high-water* mark; fork resets the child's
  // accounting to the parent's current RSS instead. Either way the
  // reported worker peak has the coordinator's resident size as a floor —
  // one reason the coordinator itself must stay flat (streamed reduce).
  const pid_t pid = ::fork();
  if (pid < 0) return result;
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    ::_exit(127);  // exec failed; nothing else is safe in the child
  }

  int status = 0;
  struct rusage usage{};
  if (::wait4(pid, &status, 0, &usage) != pid) return result;
  result.spawned = true;
  // ru_maxrss is in kilobytes on Linux.
  result.max_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss) * 1024ULL;
  if (WIFEXITED(status)) {
    result.status = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.status = 128 + WTERMSIG(status);
  } else {
    result.status = 127;
  }
  return result;
}

std::string self_executable_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
  return argv0 != nullptr ? std::string(argv0) : std::string();
}

}  // namespace fbedge
