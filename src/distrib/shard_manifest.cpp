#include "distrib/shard_manifest.h"

#include <atomic>
#include <cstdio>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "util/binio.h"
#include "util/rng.h"

namespace fbedge {
namespace {

constexpr char kMagic[8] = {'F', 'B', 'E', 'S', 'H', 'A', 'R', 'D'};

std::string encode_payload(const ShardManifest& m) {
  ByteWriter w;
  w.u64(m.base_key);
  w.u32(m.shard_index);
  w.u32(m.worker_count);
  w.u64(m.group_begin);
  w.u64(m.group_end);
  w.u64(m.artifact_key);
  return w.take();
}

}  // namespace

std::uint64_t shard_artifact_key(std::uint64_t base_key,
                                 std::size_t group_begin,
                                 std::size_t group_end) {
  return hash_combine(base_key,
                      hash_combine(static_cast<std::uint64_t>(group_begin),
                                   static_cast<std::uint64_t>(group_end)));
}

std::string shard_manifest_path(const std::string& dir, std::uint64_t base_key,
                                int shard, int workers) {
  char name[64];
  std::snprintf(name, sizeof(name), "shard-%016llx-%04dof%04d.fbeshard",
                static_cast<unsigned long long>(base_key), shard, workers);
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path.push_back('/');
  path += name;
  return path;
}

bool write_shard_manifest(const std::string& path, const ShardManifest& manifest) {
  const std::size_t slash = path.rfind('/');
  if (slash != std::string::npos && slash > 0) {
    ::mkdir(path.substr(0, slash).c_str(), 0777);  // EEXIST is fine
  }

  // Same unique-temp discipline as IngestArtifactWriter: pid separates
  // racing processes, the sequence number racing writers in one process.
  static std::atomic<std::uint64_t> sequence{0};
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    sequence.fetch_add(1, std::memory_order_relaxed)));
  const std::string tmp = path + suffix;

  const std::string record =
      frame_record(kMagic, kShardManifestEpoch, encode_payload(manifest));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(record.data(), 1, record.size(), f) == record.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool read_shard_manifest(const std::string& path, ShardManifest& manifest) {
  manifest = ShardManifest{};
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  // A manifest is a small fixed-size record; reject anything implausibly
  // large before buffering it (a foreign file at this path, say).
  if (file_size < 0 || file_size > 4096) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  std::string bytes(static_cast<std::size_t>(file_size), '\0');
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) return false;

  std::string payload;
  if (!unframe_record(bytes.data(), bytes.size(), kMagic, kShardManifestEpoch,
                      payload)) {
    return false;
  }
  ByteReader r(payload.data(), payload.size());
  manifest.base_key = r.u64();
  manifest.shard_index = r.u32();
  manifest.worker_count = r.u32();
  manifest.group_begin = r.u64();
  manifest.group_end = r.u64();
  manifest.artifact_key = r.u64();
  if (!r.ok() || r.remaining() != 0) {
    manifest = ShardManifest{};
    return false;
  }
  return true;
}

}  // namespace fbedge
