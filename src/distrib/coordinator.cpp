#include "distrib/coordinator.h"

#include <algorithm>
#include <chrono>

#include "analysis/edge_reduce.h"
#include "analysis/ingest_cache.h"
#include "distrib/shard_manifest.h"
#include "runtime/pipeline.h"
#include "util/expect.h"

namespace fbedge {
namespace {

ShardManifest expected_manifest(std::uint64_t base_key, int shard, int workers,
                                const ShardRange& range) {
  ShardManifest m;
  m.base_key = base_key;
  m.shard_index = static_cast<std::uint32_t>(shard);
  m.worker_count = static_cast<std::uint32_t>(workers);
  m.group_begin = range.begin;
  m.group_end = range.end;
  m.artifact_key = shard_artifact_key(base_key, range.begin, range.end);
  return m;
}

/// True when a valid manifest vouching for exactly `want` exists at `path`.
bool shard_published(const std::string& path, const ShardManifest& want) {
  ShardManifest got;
  return read_shard_manifest(path, got) && got == want;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::vector<FleetShardOutcome> run_worker_fleet(
    int shards, const FaultPlan& faults,
    const std::function<WorkerExit(int shard, int attempt)>& launch) {
  FBEDGE_EXPECT(shards >= 1, "fleet needs at least one shard");
  FBEDGE_EXPECT(static_cast<bool>(launch), "fleet needs a launcher");
  const int max_attempts = std::max(1, faults.worker_max_attempts);
  const RuntimeOptions spawn_runtime{shards};
  return parallel_map(
      static_cast<std::size_t>(shards), spawn_runtime, [&](std::size_t s) {
        FleetShardOutcome out;
        const int shard = static_cast<int>(s);
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
          if (attempt > 0) ++out.retries;
          ++out.spawned;
          const WorkerExit exit = launch(shard, attempt);
          if (exit.max_rss_bytes > out.rss_peak) out.rss_peak = exit.max_rss_bytes;
          if (exit.status == 0) {
            out.published = true;
            break;
          }
          ++out.failures;
          // Attribute the failure to the injected site by recomputing the
          // decision (never by trusting an exit code a real bug could
          // collide with).
          if (worker_crash_decision(faults, shard, attempt)) {
            ++out.crashes;
          }
        }
        return out;
      });
}

int run_shard_worker(const World& world, const DatasetConfig& config,
                     GoodputConfig goodput, const WorkerSpec& spec,
                     const FaultPlan& faults, const RuntimeOptions& runtime,
                     RunStats* stats) {
  FBEDGE_EXPECT(spec.workers >= 1 && spec.shard >= 0 &&
                    spec.shard < spec.workers,
                "worker spec shard out of range");
  FBEDGE_EXPECT(!spec.cache_dir.empty(), "worker needs a cache dir");

  // Injected crash fires before any disk access, so a crashed attempt is
  // indistinguishable from a process that died on arrival: no partial
  // artifact, no manifest, nothing for a reader to trip over.
  if (worker_crash_decision(faults, spec.shard, spec.attempt)) {
    return kWorkerCrashExit;
  }

  const std::uint64_t base_key = ingest_cache_key(world, config, goodput);
  const ShardPlan plan = ShardPlan::make(world.groups.size(), spec.workers);
  const ShardRange range = plan.shard(spec.shard);
  const ShardManifest want =
      expected_manifest(base_key, spec.shard, spec.workers, range);
  const std::string manifest_path =
      shard_manifest_path(spec.cache_dir, base_key, spec.shard, spec.workers);
  const std::string artifact_path =
      ingest_artifact_path(spec.cache_dir, want.artifact_key);

  // Idempotence: a previous attempt (or a concurrent coordinator over the
  // same cache dir) already published this shard. The reader's open() is a
  // full-checksum validation pass in O(chunk) memory — the worker never
  // materializes the artifact it is vouching for.
  if (shard_published(manifest_path, want)) {
    IngestArtifactReader probe;
    if (probe.open(artifact_path, want.artifact_key, range.size())) {
      return 0;
    }
    // Manifest without a readable artifact: fall through and rebuild both.
  }

  IngestArtifactWriter writer;
  if (!writer.open(artifact_path, want.artifact_key, range.size())) return 1;
  bool append_ok = true;
  ingest_range_to_blobs(
      world, config, goodput, range, runtime,
      [&](std::size_t /*group*/, std::string&& blob) {
        if (!writer.append(blob)) append_ok = false;
      },
      stats);
  if (!append_ok || !writer.finish()) return 1;
  // Artifact is live; the manifest is published last so its existence
  // implies a complete artifact.
  if (!write_shard_manifest(manifest_path, want)) return 1;
  return 0;
}

EdgeAnalysisResult run_scale_analysis(const World& world,
                                      const DatasetConfig& config,
                                      const AnalysisThresholds& thresholds,
                                      const ComparisonConfig& comparison,
                                      GoodputConfig goodput,
                                      const ScaleOptions& options,
                                      RunStats* stats) {
  FBEDGE_EXPECT(options.workers >= 1, "scale run needs at least one worker");
  FBEDGE_EXPECT(!options.cache_dir.empty(), "scale run needs a cache dir");
  FBEDGE_EXPECT(!options.faults.sampler_faults() && !options.faults.agg_faults(),
                "scale runs must not inject data faults (shared cache)");

  const std::uint64_t base_key = ingest_cache_key(world, config, goodput);
  const ShardPlan plan = ShardPlan::make(world.groups.size(), options.workers);

  // ---- Spawn phase: the shared per-shard retry loop (run_worker_fleet),
  // launching through options.launcher when set, else running the worker
  // body in-process. Outcomes come back in shard order, so the counters
  // are independent of completion order.
  const auto launch = [&](int shard, int attempt) {
    if (options.launcher) return options.launcher(shard, attempt);
    WorkerSpec spec;
    spec.shard = shard;
    spec.workers = options.workers;
    spec.attempt = attempt;
    spec.cache_dir = options.cache_dir;
    WorkerExit exit;
    exit.spawned = true;
    exit.status = run_shard_worker(world, config, goodput, spec, options.faults,
                                   RuntimeOptions{options.worker_threads});
    return exit;
  };
  const auto outcomes =
      run_worker_fleet(plan.shard_count(), options.faults, launch);

  FaultCounters worker_faults;
  std::uint64_t spawned = 0;
  std::uint64_t failures = 0;
  std::uint64_t rss_peak = 0;
  for (const FleetShardOutcome& out : outcomes) {
    spawned += out.spawned;
    failures += out.failures;
    worker_faults.worker_crashes += out.crashes;
    worker_faults.worker_retries += out.retries;
    if (!out.published) ++worker_faults.degraded_shards;
    rss_peak = std::max(rss_peak, out.rss_peak);
  }

  // ---- Reduce phase: shard by shard in shard order (= ascending group
  // order, since the plan's blocks are contiguous ascending), streaming
  // each shard's artifact in fixed-size chunks so the coordinator's peak
  // RSS is bounded by one chunk of blobs — never a whole shard, which at
  // scale is gigabytes. A shard without a valid manifest + artifact —
  // degraded, raced, or vandalized — serves empty blobs and EdgeReducer
  // cold-ingests its groups: byte-identical output, honest cache_misses.
  // Chunking preserves the reduce_range contract (disjoint ascending
  // sub-ranges), so the fold sequence is unchanged.
  constexpr std::size_t kReduceChunkGroups = 64;
  EdgeReducer reducer(world, config, thresholds, comparison, goodput,
                      options.faults);
  std::vector<std::string> chunk(kReduceChunkGroups);
  for (int s = 0; s < plan.shard_count(); ++s) {
    const ShardRange& range = plan.shard(s);
    if (range.empty()) continue;
    const ShardManifest want =
        expected_manifest(base_key, s, options.workers, range);
    IngestArtifactReader reader;
    const auto open_start = std::chrono::steady_clock::now();
    bool warm =
        shard_published(shard_manifest_path(options.cache_dir, base_key, s,
                                            options.workers),
                        want) &&
        reader.open(ingest_artifact_path(options.cache_dir, want.artifact_key),
                    want.artifact_key, range.size());
    if (stats) stats->cache_load_seconds += seconds_since(open_start);
    for (std::size_t begin = range.begin; begin < range.end;
         begin += kReduceChunkGroups) {
      const ShardRange sub{begin,
                           std::min(range.end, begin + kReduceChunkGroups)};
      std::size_t loaded = 0;
      if (warm) {
        const auto load_start = std::chrono::steady_clock::now();
        for (std::size_t g = sub.begin; g < sub.end; ++g) {
          if (!reader.next(chunk[g - sub.begin])) {
            // Validated at open(), so this means the file changed under
            // us; the groups not yet folded fall back to cold ingest.
            warm = false;
            break;
          }
          ++loaded;
        }
        if (stats) stats->cache_load_seconds += seconds_since(load_start);
      }
      const auto blob = [&](std::size_t group) -> GroupBlobRef {
        const std::size_t i = group - sub.begin;
        if (i >= loaded) return GroupBlobRef{};
        return GroupBlobRef{chunk[i].data(), chunk[i].size()};
      };
      reducer.reduce_range(sub, blob, options.reduce_runtime, stats);
    }
  }

  if (stats) {
    stats->cache_hits += reducer.blob_groups();
    stats->cache_misses += world.groups.size() - reducer.blob_groups();
    stats->workers_spawned += spawned;
    stats->worker_failures += failures;
    stats->worker_rss_peak_bytes =
        std::max(stats->worker_rss_peak_bytes, rss_peak);
    stats->faults.accumulate(worker_faults);
  }
  EdgeAnalysisResult result = reducer.finish();
  result.faults.accumulate(worker_faults);
  return result;
}

}  // namespace fbedge
