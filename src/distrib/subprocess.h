// Minimal worker-process launcher: fork + execv + wait4.
//
// The coordinator runs shard workers as real OS processes so each worker's
// address space — and therefore its peak RSS — is genuinely independent of
// the others and of the coordinator, which is the property the "flat
// per-worker memory at 100x scale" claim is measured by (ru_maxrss of the
// child, reported by wait4, not a sampled in-process estimate).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fbedge {

/// Outcome of one worker attempt.
struct WorkerExit {
  /// fork/exec succeeded and the child was reaped. False means the launch
  /// itself failed (status is then 127).
  bool spawned{false};
  /// Child exit code; signal deaths map to 128 + signal number so every
  /// abnormal end is a distinct nonzero status.
  int status{127};
  /// Child peak RSS (ru_maxrss) in bytes.
  std::uint64_t max_rss_bytes{0};
};

/// Runs `argv` (argv[0] = executable path) to completion and reaps it.
/// Blocking; safe to call concurrently from multiple threads.
WorkerExit spawn_worker(const std::vector<std::string>& argv);

/// Path of the current executable (/proc/self/exe), for self re-invocation
/// in worker mode; falls back to `argv0` when the link cannot be read.
std::string self_executable_path(const char* argv0);

}  // namespace fbedge
