#include "distrib/sweep_fleet.h"

#include <algorithm>
#include <chrono>

#include "analysis/edge_reduce.h"
#include "analysis/ingest_cache.h"
#include "distrib/shard_manifest.h"
#include "util/binio.h"
#include "util/expect.h"

namespace fbedge {
namespace {

// Domain-separates sweep shard artifacts from plain scale shards sharing a
// cache dir (both ultimately key off ingest_cache_key).
constexpr std::uint64_t kSweepKeySalt = 0x5357454550464c54ULL;  // "SWEEPFLT"

ShardManifest sweep_manifest(std::uint64_t base_key, int shard, int workers,
                             const ShardRange& slice) {
  ShardManifest m;
  m.base_key = base_key;
  m.shard_index = static_cast<std::uint32_t>(shard);
  m.worker_count = static_cast<std::uint32_t>(workers);
  // Slice indices into the affected list, not global group ids: the list
  // is a pure function of (world, pack), so indices identify the work just
  // as precisely and keep the manifest format unchanged.
  m.group_begin = slice.begin;
  m.group_end = slice.end;
  m.artifact_key = shard_artifact_key(base_key, slice.begin, slice.end);
  return m;
}

bool sweep_shard_published(const std::string& path, const ShardManifest& want) {
  ShardManifest got;
  return read_shard_manifest(path, got) && got == want;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::uint64_t sweep_base_key(const World& perturbed, const DatasetConfig& config,
                             const GoodputConfig& goodput,
                             const ScenarioPack& pack) {
  Fnv64 h;
  h.u64(kSweepKeySalt);
  h.u64(ingest_cache_key(perturbed, config, goodput));
  h.u64(scenario_pack_hash(pack));
  return h.value();
}

int run_sweep_worker(const World& world, const DatasetConfig& config,
                     GoodputConfig goodput, const ScenarioPack& pack,
                     const SweepWorkerSpec& spec, const FaultPlan& faults,
                     const RuntimeOptions& runtime, RunStats* stats) {
  FBEDGE_EXPECT(spec.workers >= 1 && spec.shard >= 0 &&
                    spec.shard < spec.workers,
                "sweep worker spec shard out of range");
  FBEDGE_EXPECT(!spec.cache_dir.empty(), "sweep worker needs a cache dir");

  // Injected crash fires before any disk access (same protocol as
  // run_shard_worker): a crashed attempt can never publish anything.
  if (worker_crash_decision(faults, spec.shard, spec.attempt)) {
    return kWorkerCrashExit;
  }

  const World perturbed = apply_scenario(world, pack);
  const std::vector<std::size_t> affected = affected_groups(world, pack);
  const std::uint64_t base_key = sweep_base_key(perturbed, config, goodput, pack);
  const ShardPlan plan =
      ShardPlan::make(affected.size(), spec.workers);
  const ShardRange slice = plan.shard(spec.shard);
  const ShardManifest want =
      sweep_manifest(base_key, spec.shard, spec.workers, slice);
  const std::string manifest_path =
      shard_manifest_path(spec.cache_dir, base_key, spec.shard, spec.workers);
  const std::string artifact_path =
      ingest_artifact_path(spec.cache_dir, want.artifact_key);

  // Idempotent re-spawn: a previous attempt already published this slice.
  if (sweep_shard_published(manifest_path, want)) {
    IngestArtifactReader probe;
    if (probe.open(artifact_path, want.artifact_key, slice.size())) {
      return 0;
    }
    // Manifest without a readable artifact: rebuild both.
  }

  const std::vector<std::size_t> slice_groups(
      affected.begin() + static_cast<std::ptrdiff_t>(slice.begin),
      affected.begin() + static_cast<std::ptrdiff_t>(slice.end));
  IngestArtifactWriter writer;
  if (!writer.open(artifact_path, want.artifact_key, slice.size())) return 1;
  bool append_ok = true;
  ingest_groups_to_blobs(
      perturbed, config, goodput, slice_groups, runtime,
      [&](std::size_t /*group*/, std::string&& blob) {
        if (!writer.append(blob)) append_ok = false;
      },
      stats);
  if (!append_ok || !writer.finish()) return 1;
  // Artifact is live; the manifest is published last so its existence
  // implies a complete artifact.
  if (!write_shard_manifest(manifest_path, want)) return 1;
  return 0;
}

SweepOutcome run_sweep_analysis(const World& world, const DatasetConfig& config,
                                const AnalysisThresholds& thresholds,
                                const ComparisonConfig& comparison,
                                GoodputConfig goodput,
                                const std::vector<ScenarioPack>& packs,
                                const SweepFleetOptions& options,
                                RunStats* stats) {
  FBEDGE_EXPECT(options.workers >= 1, "sweep fleet needs at least one worker");
  FBEDGE_EXPECT(!options.cache_dir.empty(), "sweep fleet needs a cache dir");
  FBEDGE_EXPECT(!options.faults.sampler_faults() && !options.faults.agg_faults() &&
                    !options.faults.stream_faults() &&
                    !options.faults.runtime_faults(),
                "sweep fleets must not inject data faults (shared cache)");

  // The crash plan drives only the fleet retry loop; run_scenario_sweep
  // gets a clean plan so worker crashes never degrade the sweep to
  // independent full runs — the fleet's own retry/degrade handles them.
  const SweepAffectedBlobFn affected_blobs =
      [&](std::size_t scenario, const ScenarioPack& pack, const World& perturbed,
          const std::vector<std::size_t>& affected,
          std::vector<std::string>& blobs) {
        if (affected.empty()) return false;
        const std::uint64_t base_key =
            sweep_base_key(perturbed, config, goodput, pack);
        const ShardPlan plan = ShardPlan::make(affected.size(), options.workers);

        const auto launch = [&](int shard, int attempt) {
          if (options.launcher) {
            return options.launcher(static_cast<int>(scenario), shard, attempt);
          }
          SweepWorkerSpec spec;
          spec.shard = shard;
          spec.workers = options.workers;
          spec.attempt = attempt;
          spec.cache_dir = options.cache_dir;
          WorkerExit exit;
          exit.spawned = true;
          exit.status =
              run_sweep_worker(world, config, goodput, pack, spec,
                               options.faults,
                               RuntimeOptions{options.worker_threads});
          return exit;
        };
        const auto outcomes =
            run_worker_fleet(plan.shard_count(), options.faults, launch);

        // Collect slice artifacts in shard order. A shard that never
        // published — or whose artifact fails validation or streams short —
        // leaves its blobs empty; those groups cold-ingest in-process.
        blobs.assign(affected.size(), std::string());
        for (int s = 0; s < plan.shard_count(); ++s) {
          const ShardRange& slice = plan.shard(s);
          if (slice.empty()) continue;
          const ShardManifest want =
              sweep_manifest(base_key, s, options.workers, slice);
          const auto load_start = std::chrono::steady_clock::now();
          IngestArtifactReader reader;
          const bool warm =
              outcomes[static_cast<std::size_t>(s)].published &&
              sweep_shard_published(
                  shard_manifest_path(options.cache_dir, base_key, s,
                                      options.workers),
                  want) &&
              reader.open(
                  ingest_artifact_path(options.cache_dir, want.artifact_key),
                  want.artifact_key, slice.size());
          if (warm) {
            for (std::size_t i = slice.begin; i < slice.end; ++i) {
              if (!reader.next(blobs[i])) {
                blobs[i].clear();
                break;  // remaining slice blobs stay empty -> cold ingest
              }
            }
          }
          if (stats) stats->cache_load_seconds += seconds_since(load_start);
        }

        if (stats) {
          for (const FleetShardOutcome& out : outcomes) {
            stats->workers_spawned += out.spawned;
            stats->worker_failures += out.failures;
            stats->faults.worker_crashes += out.crashes;
            stats->faults.worker_retries += out.retries;
            if (!out.published) ++stats->faults.degraded_shards;
            stats->worker_rss_peak_bytes =
                std::max(stats->worker_rss_peak_bytes, out.rss_peak);
          }
        }
        return true;
      };

  IngestCacheOptions cache;
  cache.dir = options.cache_dir;
  return run_scenario_sweep(world, config, thresholds, comparison, goodput,
                            packs, options.reduce_runtime, stats, FaultPlan{},
                            cache, affected_blobs);
}

}  // namespace fbedge
