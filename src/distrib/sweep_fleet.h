// Fleet-backed scenario sweeps: the affected-group ingest of each sweep
// scenario farmed out to shard workers.
//
// run_scenario_sweep (analysis/sweep.h) re-ingests only a scenario's
// affected groups and splices everything else from the baseline artifact.
// That affected ingest is the sweep's remaining cost, and it parallelizes
// exactly like the full-world ingest the scale coordinator distributes —
// so run_sweep_analysis() wires a SweepAffectedBlobFn that spawns one
// worker fleet per scenario through the shared run_worker_fleet retry
// loop (coordinator.h):
//
//   * The fleet's base key is the content hash of what the workers will
//     actually ingest — ingest_cache_key(perturbed world) — combined with
//     scenario_pack_hash(pack), so no two scenarios (nor a sweep and a
//     plain scale run over the same cache dir) ever collide.
//   * A sweep shard's work is a slice of the ascending affected-group
//     *list* (usually non-contiguous group ids), partitioned by ShardPlan
//     over the list length. Manifests record slice indices as their group
//     range, and artifacts are keyed by shard_artifact_key(base, slice) —
//     the same completion-marker protocol as scale shards.
//   * A worker (run_sweep_worker, also fbedge_whatif's hidden
//     --sweep-worker mode) checks the injected-crash decision first, then
//     probes for an already-published shard (idempotent re-spawn), then
//     streams its slice through ingest_groups_to_blobs into an
//     IngestArtifactWriter and publishes the manifest last.
//   * A shard that exhausts its attempt budget (or whose artifact fails
//     validation) hands back empty blobs; run_scenario_sweep cold-ingests
//     those groups in-process — byte-identical output, counted in
//     degraded_shards, never silent.
//
// Only worker faults may be injected here (the shared cache must never
// hold faulted series), and they never bypass splicing: run_sweep_analysis
// passes a clean plan into run_scenario_sweep and keeps the crash plan for
// the fleet loop alone.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/sweep.h"
#include "distrib/coordinator.h"

namespace fbedge {

/// Identity of one sweep-worker attempt: shard `shard` of a `workers`-way
/// partition of one scenario's affected-group list.
struct SweepWorkerSpec {
  int shard{0};
  int workers{1};
  int attempt{0};
  std::string cache_dir;
};

/// Base key of one scenario's shard artifacts: content hash of the
/// perturbed world the workers ingest x the scenario pack hash.
std::uint64_t sweep_base_key(const World& perturbed, const DatasetConfig& config,
                             const GoodputConfig& goodput,
                             const ScenarioPack& pack);

/// The sweep-worker body. `world` is the *baseline* world; the worker
/// re-derives the perturbed world and affected list from `pack` (both are
/// pure functions, so every attempt and the coordinator agree bit-for-bit
/// on the work). Returns 0 on success, kWorkerCrashExit on injected
/// crash, 1 on I/O failure.
int run_sweep_worker(const World& world, const DatasetConfig& config,
                     GoodputConfig goodput, const ScenarioPack& pack,
                     const SweepWorkerSpec& spec, const FaultPlan& faults = {},
                     const RuntimeOptions& runtime = RuntimeOptions::sequential(),
                     RunStats* stats = nullptr);

/// Fleet knobs (one fleet per scenario; the baseline ingest stays
/// in-process, warmed by the ingest-artifact cache like any other run).
struct SweepFleetOptions {
  /// Workers (= shards) per scenario fleet.
  int workers{1};
  /// Threads inside each worker's ingest.
  int worker_threads{1};
  /// Shared artifact + manifest directory. Required; also used as the
  /// sweep's ingest cache dir for the baseline.
  std::string cache_dir;
  /// Threads for the splice-reduce (and any cold-ingest fallback).
  RuntimeOptions reduce_runtime = RuntimeOptions::sequential();
  /// Fault plan for the fleet's spawn-retry loop. Only worker faults may
  /// be set; data faults are rejected (shared cache).
  FaultPlan faults;
  /// Launches one worker attempt for `scenario` and blocks until it exits
  /// (fbedge_whatif wires this to spawn_worker on itself in --sweep-worker
  /// mode). Null = run the worker in-process.
  std::function<WorkerExit(int scenario, int shard, int attempt)> launcher;
};

/// run_scenario_sweep with each scenario's affected ingest distributed
/// over a worker fleet. Output contract is inherited unchanged: baseline
/// and every scenario result are byte-identical to independent
/// run_edge_analysis calls, for any worker count, worker thread count,
/// and reduce thread count. Spawn-phase counters (crashes, retries,
/// degraded shards, spawned, RSS peak) fold into `stats` in scenario ×
/// shard order.
SweepOutcome run_sweep_analysis(
    const World& world, const DatasetConfig& config,
    const AnalysisThresholds& thresholds = {},
    const ComparisonConfig& comparison = {}, GoodputConfig goodput = {},
    const std::vector<ScenarioPack>& packs = {},
    const SweepFleetOptions& options = {}, RunStats* stats = nullptr);

}  // namespace fbedge
