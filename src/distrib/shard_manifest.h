// Shard manifests: the completion markers of the multi-process coordinator.
//
// A shard worker streams its group range into an ingest artifact
// (analysis/ingest_cache.h) under a shard-specific key, then — only after
// the artifact has been atomically published — writes a manifest recording
// exactly what it produced: which base run (ingest_cache_key of the whole
// world), which shard of how many workers, which contiguous group range,
// and the artifact key the blobs live under. The coordinator treats a
// valid, matching manifest as "this shard's artifact is complete"; a
// missing, truncated, foreign-epoch, or checksum-failing manifest reads as
// "not done" and the shard is reduced via cold ingest instead — the same
// silent-fallback policy as a stale ingest artifact, so a half-written
// cache directory can slow a run down but never corrupt or kill it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fbedge {

/// Manifest format epoch; bump when the payload layout changes. Files
/// carrying a foreign epoch are rejected exactly like stale artifacts.
inline constexpr std::uint32_t kShardManifestEpoch = 1;

/// One shard's completion record. All fields are validated against the
/// coordinator's expectation — a manifest from a different base run, shard
/// layout, or group range never vouches for an artifact.
struct ShardManifest {
  std::uint64_t base_key{0};      // ingest_cache_key of the full run
  std::uint32_t shard_index{0};   // this shard, in [0, worker_count)
  std::uint32_t worker_count{0};  // shards in the partition
  std::uint64_t group_begin{0};   // half-open global group range
  std::uint64_t group_end{0};
  std::uint64_t artifact_key{0};  // key of the shard's ingest artifact

  friend bool operator==(const ShardManifest&, const ShardManifest&) = default;
};

/// Key of a shard's ingest artifact: the base run key combined with the
/// shard's group range, so artifacts from different partitions of the same
/// run (or the single-process whole-run artifact) can never collide.
std::uint64_t shard_artifact_key(std::uint64_t base_key,
                                 std::size_t group_begin,
                                 std::size_t group_end);

/// Manifest file path inside `dir` for (base run, shard, worker count).
std::string shard_manifest_path(const std::string& dir, std::uint64_t base_key,
                                int shard, int workers);

/// Atomically writes a manifest (framed record, temp file + rename — the
/// same unique-temp scheme as IngestArtifactWriter, so racing writers each
/// stream into a private file). Returns false on I/O failure.
bool write_shard_manifest(const std::string& path, const ShardManifest& manifest);

/// Loads and validates a manifest. Returns false — leaving `manifest`
/// zeroed — on a missing file, wrong magic, foreign epoch, truncation,
/// trailing garbage, or checksum failure.
bool read_shard_manifest(const std::string& path, ShardManifest& manifest);

}  // namespace fbedge
