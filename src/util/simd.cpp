#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/expect.h"

namespace fbedge::simd {

namespace {

// Resolved lazily, then latched: 0 = unresolved, else Path + 1.
std::atomic<int> g_path{0};
std::atomic<const char*> g_source{"auto"};

Path resolve_from_env() {
  const char* env = std::getenv("FBEDGE_SIMD");
  const char* mode = (env && *env) ? env : "auto";
  if (std::strcmp(mode, "off") == 0 || std::strcmp(mode, "scalar") == 0) {
    g_source.store("off", std::memory_order_relaxed);
    return Path::kScalar;
  }
  if (std::strcmp(mode, "avx2") == 0) {
    // A forced path that cannot run must fail loudly: the CI scalar-rot
    // guard relies on FBEDGE_SIMD=avx2 never meaning "maybe scalar".
    FBEDGE_EXPECT(compiled_avx2(), "FBEDGE_SIMD=avx2 but this build has no AVX2 kernels");
    FBEDGE_EXPECT(cpu_supports_avx2(), "FBEDGE_SIMD=avx2 but the CPU lacks AVX2");
    g_source.store("avx2", std::memory_order_relaxed);
    return Path::kAvx2;
  }
  FBEDGE_EXPECT(std::strcmp(mode, "auto") == 0,
                "FBEDGE_SIMD must be auto, off, or avx2");
  g_source.store("auto", std::memory_order_relaxed);
  return compiled_avx2() && cpu_supports_avx2() ? Path::kAvx2 : Path::kScalar;
}

}  // namespace

bool compiled_avx2() {
#if FBEDGE_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Path active_path() {
  int p = g_path.load(std::memory_order_acquire);
  if (p == 0) {
    const Path resolved = resolve_from_env();
    p = static_cast<int>(resolved) + 1;
    int expected = 0;
    // First resolver wins; concurrent resolvers computed the same value
    // (the environment does not change mid-process).
    if (!g_path.compare_exchange_strong(expected, p, std::memory_order_acq_rel)) {
      p = expected;
    }
  }
  return static_cast<Path>(p - 1);
}

void force_path(Path path) {
  if (path == Path::kAvx2) {
    FBEDGE_EXPECT(compiled_avx2() && cpu_supports_avx2(),
                  "force_path(kAvx2) on a host without AVX2");
  }
  g_path.store(static_cast<int>(path) + 1, std::memory_order_release);
  g_source.store("forced", std::memory_order_relaxed);
}

bool avx2_batch_active(std::size_t work_items, std::size_t min_items) {
  if (!avx2_active()) return false;
  // Only the heuristic `auto` mode respects the size gate; an explicit
  // FBEDGE_SIMD=avx2 or a forced test path means "run the AVX2 kernel,
  // period" — the differential tests and the CI rot guard depend on it.
  if (std::strcmp(dispatch_source(), "auto") == 0) return work_items >= min_items;
  return true;
}

const char* path_name(Path path) {
  return path == Path::kAvx2 ? "avx2" : "scalar";
}

const char* dispatch_source() {
  active_path();  // make sure resolution ran
  return g_source.load(std::memory_order_relaxed);
}

}  // namespace fbedge::simd
