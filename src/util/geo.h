// Geographic vocabulary for the synthetic world and per-continent reporting.
#pragma once

#include <array>
#include <string_view>

namespace fbedge {

/// Continents as reported in the paper's per-continent breakdowns.
enum class Continent : std::uint8_t {
  kAfrica = 0,
  kAsia,
  kEurope,
  kNorthAmerica,
  kOceania,
  kSouthAmerica,
};

constexpr int kNumContinents = 6;

constexpr std::array<Continent, kNumContinents> kAllContinents = {
    Continent::kAfrica,        Continent::kAsia,    Continent::kEurope,
    Continent::kNorthAmerica,  Continent::kOceania, Continent::kSouthAmerica,
};

/// Two-letter code used in the paper's tables (AF, AS, EU, NA, OC, SA).
constexpr std::string_view to_code(Continent c) {
  switch (c) {
    case Continent::kAfrica: return "AF";
    case Continent::kAsia: return "AS";
    case Continent::kEurope: return "EU";
    case Continent::kNorthAmerica: return "NA";
    case Continent::kOceania: return "OC";
    case Continent::kSouthAmerica: return "SA";
  }
  return "??";
}

constexpr std::string_view to_name(Continent c) {
  switch (c) {
    case Continent::kAfrica: return "Africa";
    case Continent::kAsia: return "Asia";
    case Continent::kEurope: return "Europe";
    case Continent::kNorthAmerica: return "North America";
    case Continent::kOceania: return "Oceania";
    case Continent::kSouthAmerica: return "South America";
  }
  return "Unknown";
}

}  // namespace fbedge
