// Bitwise-exact little-endian binary encoding for cache artifacts.
//
// Every multi-byte value is written byte-by-byte in little-endian order, so
// artifacts are portable across hosts regardless of native endianness, and
// doubles travel as their raw IEEE-754 bit patterns — NaN payloads, ±inf,
// and negative zero round-trip bit-for-bit (never through text formatting).
// ByteReader never throws and never reads out of bounds: any overrun or
// failed validation latches `ok() == false` and subsequent reads return
// zeros, so corrupt artifacts degrade into a rejected load, not a crash.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

namespace fbedge {

/// FNV-1a 64-bit running hash; doubles as the artifact checksum and the
/// cache-key content hash (util layer so every module can key artifacts).
class Fnv64 {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u32(std::uint32_t v) {
    unsigned char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 4);
  }
  void u64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 8);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_{0xcbf29ce484222325ULL};
};

/// Append-only little-endian encoder into an owned byte string.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
    out_.append(b, 4);
  }
  void u64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
    out_.append(b, 8);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Raw IEEE-754 bits; bitwise round-trip for every payload incl. NaNs.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void bytes(const void* data, std::size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }

  /// Pre-grows the buffer for `n` further bytes beyond what is already
  /// written, so a caller that knows its encoded size pays one allocation
  /// instead of the string's geometric growth path.
  void reserve(std::size_t n) { out_.reserve(out_.size() + n); }

  const std::string& data() const { return out_; }
  std::size_t size() const { return out_.size(); }
  /// Clears content but keeps capacity (serialization scratch reuse).
  void clear() { out_.clear(); }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t n)
      : data_(static_cast<const unsigned char*>(data)), size_(n) {}

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }
  std::uint32_t u32() {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  /// Advances past `n` bytes (latching failure if fewer remain).
  void skip(std::size_t n) {
    if (ensure(n)) pos_ += n;
  }

  /// Marks the stream failed (validation found an inconsistency).
  void fail() { ok_ = false; }
  bool ok() const { return ok_; }
  std::size_t remaining() const { return ok_ ? size_ - pos_ : 0; }
  std::size_t position() const { return pos_; }

 private:
  bool ensure(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_{0};
  bool ok_{true};
};

// ---------------------------------------------------------------------------
// Framed records: the shared envelope for small on-disk metadata files
// (shard manifests, and any future sidecar record). Layout:
//
//   magic[8] | epoch u32 | payload_size u64 | payload bytes | fnv64 checksum
//
// where the trailing checksum covers every byte before it. Rejection
// semantics mirror stale ingest artifacts: wrong magic, foreign epoch,
// truncation, trailing garbage, or a flipped bit anywhere all read as "no
// record here" — callers fall back as if the file were absent.
// ---------------------------------------------------------------------------

/// Encodes `payload` inside a framed envelope. `magic` must be exactly 8
/// bytes (not NUL-terminated).
inline std::string frame_record(const char magic[8], std::uint32_t epoch,
                                const std::string& payload) {
  ByteWriter w;
  w.reserve(8 + 4 + 8 + payload.size() + 8);
  w.bytes(magic, 8);
  w.u32(epoch);
  w.u64(payload.size());
  w.bytes(payload.data(), payload.size());
  Fnv64 sum;
  sum.bytes(w.data().data(), w.size());
  w.u64(sum.value());
  return w.take();
}

/// Validates a framed envelope and extracts its payload. Returns false —
/// leaving `payload` empty — on wrong magic, epoch mismatch, truncation,
/// size/trailer inconsistency, or checksum failure. Never reads out of
/// bounds on corrupt input.
inline bool unframe_record(const void* data, std::size_t n, const char magic[8],
                           std::uint32_t epoch, std::string& payload) {
  payload.clear();
  constexpr std::size_t kEnvelope = 8 + 4 + 8 + 8;
  if (n < kEnvelope) return false;
  const char* bytes = static_cast<const char*>(data);
  const std::size_t body = n - 8;
  Fnv64 sum;
  sum.bytes(bytes, body);
  ByteReader tail(bytes + body, 8);
  if (tail.u64() != sum.value()) return false;
  ByteReader r(bytes, body);
  char got[8];
  for (char& c : got) c = static_cast<char>(r.u8());
  if (std::memcmp(got, magic, 8) != 0) return false;
  if (r.u32() != epoch) return false;
  const std::uint64_t size = r.u64();
  if (!r.ok() || size != r.remaining()) return false;
  payload.assign(bytes + r.position(), static_cast<std::size_t>(size));
  return true;
}

}  // namespace fbedge
