// Runtime SIMD dispatch for the columnar hot kernels.
//
// The pipeline's hot kernels (goodput/hdratio batched evaluation, sampler
// coalescing, stats/tdigest compress, stream window bucketing) each exist
// in two implementations: a scalar reference — the always-built, pinned
// definition of the output — and an AVX2 variant compiled in a separate
// translation unit with `-mavx2 -ffp-contract=off`. Which one runs is a
// pure process-wide decision made here, once:
//
//   FBEDGE_SIMD=auto   (default) AVX2 iff the build has it and the CPU
//                      reports it; scalar otherwise.
//   FBEDGE_SIMD=off    scalar everywhere (the reference path).
//   FBEDGE_SIMD=avx2   AVX2, fail-fast if the build or CPU cannot — a
//                      forced path silently falling back to scalar is
//                      exactly the rot the CI matrix exists to prevent.
//
// The bitwise contract (see DESIGN.md "SIMD layer"): a vectorized kernel
// must produce byte-identical output to its scalar reference for every
// input. Lanes hold *independent* work items (rows/sessions); doubles are
// only ever combined in the same fixed order as the scalar code, divergent
// lanes are masked or compacted rather than reordered, and the AVX2 TUs
// are compiled with FP contraction off so no FMA changes a rounding. Tests
// (tests/simd_kernels_test.cpp) pin scalar vs AVX2 bitwise-equal per
// kernel; CI pins whole-bench byte identity between FBEDGE_SIMD=off and
// FBEDGE_SIMD=avx2.
#pragma once

#include <cstddef>

namespace fbedge::simd {

enum class Path { kScalar = 0, kAvx2 = 1 };

/// True when this binary contains the AVX2 kernel TUs (x86-64 build with a
/// compiler that accepts -mavx2).
bool compiled_avx2();

/// True when the CPU this process runs on reports AVX2.
bool cpu_supports_avx2();

/// The dispatched path, resolved once per process from FBEDGE_SIMD and the
/// CPU (see file comment). Thread-safe; stable for the process lifetime
/// unless a test overrides it via force_path().
Path active_path();

inline bool avx2_active() { return active_path() == Path::kAvx2; }

/// Per-call batch-size gate for kernels whose AVX2 setup cost can exceed
/// the lane win. Under `auto` dispatch the AVX2 variant is taken only when
/// the call carries at least `min_items` work items; an explicit
/// FBEDGE_SIMD=avx2 or force_path(kAvx2) always takes it (the CI rot guard
/// and the differential tests must still reach the kernel regardless of
/// batch size). Always false when AVX2 is inactive.
bool avx2_batch_active(std::size_t work_items, std::size_t min_items);

/// Coalesce threshold: benchmarked on micro_hotpath, the AVX2 coalesce
/// kernel trails scalar at every measured batch size (1-256 rows x 1-64
/// writes; gather/mask setup dominates the short per-row write lists), so
/// `auto` never selects it. Forced dispatch still exercises the kernel.
inline constexpr std::size_t kCoalesceAvx2MinWrites =
    static_cast<std::size_t>(-1);

/// Test hook: overrides the resolved path for the rest of the process (the
/// differential tests run both kernels side by side through the public
/// dispatching entry points). Forcing kAvx2 fails fast when unavailable.
void force_path(Path path);

const char* path_name(Path path);
inline const char* active_path_name() { return path_name(active_path()); }

/// How the active path was chosen, for --verbose / RunStats reporting:
/// "auto", "off", "avx2" (the FBEDGE_SIMD value), or "forced" after
/// force_path().
const char* dispatch_source();

}  // namespace fbedge::simd
