// Strong-ish unit helpers used throughout fbedge.
//
// The simulator and the goodput model both work in SI units: seconds for
// time, bytes for sizes, bits-per-second for rates. These helpers make the
// conversions explicit at call sites and keep magic constants out of the
// model code.
#pragma once

#include <cstdint>

namespace fbedge {

/// Simulation time in seconds since the start of the run.
using SimTime = double;

/// A duration in seconds.
using Duration = double;

/// A data rate in bits per second.
using BitsPerSecond = double;

/// A byte count. Signed on purpose: intermediate model arithmetic
/// (e.g. "bytes remaining after n slow-start rounds") can go negative and
/// must not silently wrap.
using Bytes = std::int64_t;

constexpr BitsPerSecond kKbps = 1e3;
constexpr BitsPerSecond kMbps = 1e6;
constexpr BitsPerSecond kGbps = 1e9;

constexpr Duration kMillisecond = 1e-3;
constexpr Duration kMicrosecond = 1e-6;
constexpr Duration kSecond = 1.0;
constexpr Duration kMinute = 60.0;
constexpr Duration kHour = 3600.0;
constexpr Duration kDay = 86400.0;

constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * 1024;

/// Converts a byte count to bits.
constexpr double to_bits(Bytes bytes) { return static_cast<double>(bytes) * 8.0; }

/// Time to serialize `bytes` onto a link of `rate` bits/s.
constexpr Duration transmission_time(Bytes bytes, BitsPerSecond rate) {
  return to_bits(bytes) / rate;
}

/// Goodput in bits/s for `bytes` delivered over `elapsed` seconds.
constexpr BitsPerSecond goodput_bps(Bytes bytes, Duration elapsed) {
  return to_bits(bytes) / elapsed;
}

constexpr Duration ms(double v) { return v * kMillisecond; }
constexpr double to_ms(Duration d) { return d / kMillisecond; }
constexpr BitsPerSecond mbps(double v) { return v * kMbps; }
constexpr double to_mbps(BitsPerSecond r) { return r / kMbps; }

}  // namespace fbedge
