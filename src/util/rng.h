// Deterministic, fast random number generation for workload synthesis.
//
// All randomness in fbedge flows through Rng so that every experiment is
// reproducible from a single seed. The engine is xoshiro256++, which is far
// faster than std::mt19937_64 and has excellent statistical quality for
// simulation workloads.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

#include "util/ids.h"

namespace fbedge {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(uniform() * static_cast<double>(hi - lo + 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (no cached spare; simplicity over speed).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal with given parameters of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Exponential with the given mean (not rate).
  double exponential(double mean) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -mean * std::log(u);
  }

  /// Pareto with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Derives an independent child generator; use to give each entity
  /// (session, prefix, window) its own stream without correlation.
  Rng fork() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Derives the deterministic Rng stream for entity `key` of an experiment
/// seeded with `seed`. The stream depends on (seed, key) only — never on
/// which shard or thread processes the entity, or in what order — which is
/// what lets the sharded runtime replay any entity's randomness exactly.
/// DatasetGenerator uses this per user group; the sharded pipeline relies
/// on it for thread-count-independent results.
inline Rng entity_stream(std::uint64_t seed, std::uint64_t key) {
  return Rng(hash_mix(seed ^ key));
}

}  // namespace fbedge
