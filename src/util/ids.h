// Identifier types shared across modules.
//
// Plain integer typedefs would allow silently passing a PoP id where an AS
// number is expected; the tagged wrapper below keeps ids distinct at zero
// runtime cost.
#pragma once

#include <cstdint>
#include <functional>

namespace fbedge {

/// Strongly-typed integral id. `Tag` is a phantom type.
template <typename Tag, typename Rep = std::uint32_t>
struct Id {
  Rep value{0};

  constexpr Id() = default;
  constexpr explicit Id(Rep v) : value(v) {}

  friend constexpr bool operator==(Id a, Id b) { return a.value == b.value; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value != b.value; }
  friend constexpr bool operator<(Id a, Id b) { return a.value < b.value; }
};

struct PopTag {};
struct AsnTag {};
struct SessionTag {};
struct CountryTag {};

/// A Facebook-style point of presence.
using PopId = Id<PopTag>;
/// An autonomous system number.
using Asn = Id<AsnTag>;
/// An HTTP session identifier (unique within a dataset).
using SessionId = Id<SessionTag, std::uint64_t>;
/// ISO-like numeric country code (internal to the synthetic world).
using CountryId = Id<CountryTag>;

/// Mixes a 64-bit value; used to build composite hash keys.
constexpr std::uint64_t hash_mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines a hash value into a seed (boost::hash_combine style, 64-bit).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (hash_mix(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace fbedge

namespace std {
template <typename Tag, typename Rep>
struct hash<fbedge::Id<Tag, Rep>> {
  size_t operator()(fbedge::Id<Tag, Rep> id) const noexcept {
    return static_cast<size_t>(fbedge::hash_mix(static_cast<std::uint64_t>(id.value)));
  }
};
}  // namespace std
