// Lightweight precondition checking.
//
// The library is used both in tests (where violations should abort loudly)
// and in long dataset-generation runs (where we still prefer fail-fast over
// silent corruption). FBEDGE_EXPECT is always on; it is not assert().
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fbedge::detail {
[[noreturn]] inline void expect_failed(const char* expr, const char* file, int line,
                                       const char* msg) {
  std::fprintf(stderr, "fbedge: precondition failed: %s at %s:%d%s%s\n", expr, file, line,
               msg && *msg ? ": " : "", msg ? msg : "");
  std::abort();
}
}  // namespace fbedge::detail

#define FBEDGE_EXPECT(cond, msg)                                                  \
  do {                                                                            \
    if (!(cond)) ::fbedge::detail::expect_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)
