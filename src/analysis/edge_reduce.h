// Artifact-driven reduce: the analysis half of run_edge_analysis as a
// standalone, resumable fold.
//
// run_edge_analysis couples three things: ingesting every group's sessions,
// (de)serializing per-group series through the ingest-artifact cache, and
// folding per-group analysis partials into the final figures/tables. The
// multi-process shard coordinator (src/distrib/) needs those pieces
// separately — workers run ingest for a group range and persist blobs, the
// coordinator loads blobs shard by shard and folds. EdgeReducer is that
// fold: feed it contiguous, ascending group ranges (each with a
// blob-provider), then finish(). Because every partial is merged in
// group-id order regardless of how the ranges were produced — one process
// or many, any thread count per range — the finished result is
// byte-identical to a single-process run_edge_analysis over the same
// world. run_edge_analysis itself is rebuilt on top of this class (one
// reduce_range over [0, n)), so the two paths cannot drift.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/edge_analysis.h"
#include "runtime/shard_plan.h"

namespace fbedge {

/// Borrowed view of one group's serialized GroupSeries (agg/series_io.h
/// format, exactly one group's blob — not a whole artifact file). An empty
/// ref means "no blob; cold-ingest this group".
struct GroupBlobRef {
  const char* data{nullptr};
  std::size_t size{0};

  bool empty() const { return data == nullptr || size == 0; }
};

/// Incremental group-id-order fold of per-group analysis partials.
///
/// Contract: reduce_range() calls must cover disjoint ranges in ascending
/// order (the coordinator's shards are contiguous ascending blocks, so
/// iterating shards in shard order satisfies this). Within a range the
/// reducer parallelizes the per-group work across `runtime.threads` and
/// folds partials in ascending group order, so the merge sequence seen by
/// the accumulator — and therefore every bit of finish()'s result — is
/// independent of both the range partitioning and the thread count.
class EdgeReducer {
 public:
  /// `faults` drives the sampler/aggregation injection sites of any
  /// cold-ingest fallback (zeroed plan = fault-free path, byte-identical
  /// to a build without faultsim). Runtime-layer faults (task aborts) are
  /// not handled here — run_edge_analysis keeps its failable path.
  EdgeReducer(const World& world, const DatasetConfig& config,
              const AnalysisThresholds& thresholds,
              const ComparisonConfig& comparison, GoodputConfig goodput,
              const FaultPlan& faults = {});
  ~EdgeReducer();

  EdgeReducer(const EdgeReducer&) = delete;
  EdgeReducer& operator=(const EdgeReducer&) = delete;

  /// Returns the blob for a group, or an empty ref to force cold ingest.
  /// Called from pool workers; must be pure per group.
  using BlobFn = std::function<GroupBlobRef(std::size_t group)>;
  /// Receives the serialized series of a cold-ingested group. Called from
  /// pool workers, exactly once per group; distinct groups may be saved
  /// concurrently, so the sink must tolerate that (indexing a per-group
  /// slot suffices).
  using SaveFn = std::function<void(std::size_t group, std::string&& blob)>;

  /// Analyzes groups [range.begin, range.end) and folds their partials
  /// into the running total. Groups whose blob is empty or fails
  /// structural validation are cold-ingested (identical output either
  /// way — serialization round-trips bitwise). `save`, when non-null, is
  /// invoked for every cold-ingested group.
  void reduce_range(const ShardRange& range, const BlobFn& blob,
                    const RuntimeOptions& runtime, RunStats* stats = nullptr,
                    const SaveFn* save = nullptr);

  /// Groups analyzed from a provided blob so far (the cache-hit count).
  std::uint64_t blob_groups() const;

  /// Normalizes and returns the final result. The reducer is spent
  /// afterwards (the accumulator has been moved out).
  EdgeAnalysisResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The ingest half for one shard: generates sessions for groups
/// [range.begin, range.end), serializes each group's series, and hands the
/// blobs to `sink` in ascending group order on the calling thread. Work is
/// chunked (`chunk_groups` per parallel batch) so at most one chunk of
/// blobs is in memory at a time — per-process RSS stays flat in the range
/// size, which is what lets a shard worker process thousands of groups in
/// a small footprint. Ingest is fault-free (the distributed cache must
/// never hold faulted series).
void ingest_range_to_blobs(
    const World& world, const DatasetConfig& config, GoodputConfig goodput,
    const ShardRange& range, const RuntimeOptions& runtime,
    const std::function<void(std::size_t group, std::string&& blob)>& sink,
    RunStats* stats = nullptr, std::size_t chunk_groups = 64);

/// Group-list variant of ingest_range_to_blobs for the scenario-sweep
/// workers: a sweep shard's work is a slice of the (usually
/// non-contiguous) ascending affected-group list, not a contiguous range.
/// Ingests exactly `groups` in list order, handing each blob to `sink`
/// with its global group id; same chunked memory model as the range
/// variant. Per-group ingest is seeded from the group key alone, so the
/// blobs are identical to what a whole-world ingest would produce for
/// those groups.
void ingest_groups_to_blobs(
    const World& world, const DatasetConfig& config, GoodputConfig goodput,
    const std::vector<std::size_t>& groups, const RuntimeOptions& runtime,
    const std::function<void(std::size_t group, std::string&& blob)>& sink,
    RunStats* stats = nullptr, std::size_t chunk_groups = 64);

}  // namespace fbedge
