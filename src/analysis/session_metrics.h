// Per-session metric extraction: the glue between the sampler records and
// the aggregation layer (§3).
#pragma once

#include <optional>

#include "goodput/hdratio.h"
#include "sampler/coalescer.h"
#include "sampler/record.h"

namespace fbedge {

/// The metrics one sampled session contributes to its aggregation.
struct SessionMetrics {
  Duration min_rtt{0};
  /// HDratio; nullopt when no transaction could test for the target (§3.2.4).
  std::optional<double> hdratio;
  /// Naive (uncorrected Btotal/Ttotal) HDratio for the §4 ablation.
  std::optional<double> hdratio_naive;
  Bytes traffic{0};
  int txns_tested{0};
  int txns_eligible{0};
};

/// Runs coalescing (§3.2.5) and the goodput methodology (§3.2) over one
/// session sample. `scratch` is a caller-owned coalescing buffer reused
/// across sessions so the per-session allocation disappears.
inline SessionMetrics compute_session_metrics(const SessionSample& sample,
                                              CoalescedSession& scratch,
                                              GoodputConfig config = {}) {
  SessionMetrics m;
  m.min_rtt = sample.min_rtt;
  m.traffic = sample.total_bytes;

  coalesce_session_into(sample.writes, sample.min_rtt, scratch);
  m.txns_eligible = static_cast<int>(scratch.txns.size());

  HdEvaluator eval(config);
  for (const auto& txn : scratch.txns) eval.evaluate(txn);
  const SessionHd& hd = eval.result();
  m.txns_tested = hd.tested;
  m.hdratio = hd.hdratio();
  m.hdratio_naive = hd.hdratio_naive();
  return m;
}

/// Convenience overload with a per-call coalescing buffer.
inline SessionMetrics compute_session_metrics(const SessionSample& sample,
                                              GoodputConfig config = {}) {
  CoalescedSession scratch;
  return compute_session_metrics(sample, scratch, config);
}

}  // namespace fbedge
