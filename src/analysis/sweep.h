// Incremental scenario-sweep engine: K scenarios for the cost of one
// baseline ingest plus only the perturbed groups.
//
// fbedge_whatif's per-scenario cost used to be a full re-ingest: apply the
// pack to a copied world, regenerate every group's sessions, re-analyze.
// But scenario deltas are pure seed x site x key perturbations of the
// groups matching a small topology footprint (scenario/sweep.h), and
// per-group ingest is seeded from the group key alone — groups outside
// affected_groups(world, pack) produce bitwise-identical series under the
// perturbed world. run_scenario_sweep() exploits that:
//
//   1. Ingest the baseline once, through the PR 5 ingest-artifact cache
//      when a cache dir is configured (warm baseline runs skip ingest
//      entirely), retaining every group's serialized blob.
//   2. Per scenario: re-ingest only the affected groups under the
//      perturbed world; every other group is spliced from the baseline
//      blob. The EdgeReducer folds partials in ascending group-id order
//      either way, so the spliced result is byte-identical to an
//      independent run_edge_analysis of the same pack at any --threads —
//      the sweep-equivalence CI job and the verdict-hash differentials in
//      tests pin this exactly.
//
// Every splice decision is counted (FaultCounters::scenario_groups_reused
// / scenario_groups_recomputed, recountable as |groups| - |affected| and
// |affected|). Faulted plans bypass reuse in both directions: a fault
// plan with any injection site enabled degrades the sweep to independent
// full runs (faulted series must never be spliced, and reused clean
// series would silently disable the injection under test), and the reuse
// counters stay zero.
//
// The affected-group ingest can be farmed out to a worker fleet: the
// distrib coordinator (src/distrib/sweep_fleet.h) passes a
// SweepAffectedBlobFn that spawns one shard fleet per scenario and feeds
// the resulting blobs back; a shard that degrades hands back empty blobs
// and those groups cold-ingest in-process — byte-identical output, just
// slower, mirroring run_scale_analysis's degrade policy.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "analysis/edge_analysis.h"
#include "scenario/scenario.h"
#include "scenario/sweep.h"

namespace fbedge {

/// One scenario's slice of a sweep.
struct SweepScenarioResult {
  ScenarioPack pack;
  /// Ascending group ids re-ingested under the perturbed world (empty for
  /// faulted sweeps, which run every group independently).
  std::vector<std::size_t> affected;
  /// Byte-identical to run_edge_analysis(world, ..., pack); faults carry
  /// the applied scenario_* counters plus the sweep reuse decisions.
  EdgeAnalysisResult result;
};

/// Baseline plus every scenario, in pack order.
struct SweepOutcome {
  EdgeAnalysisResult baseline;
  std::vector<SweepScenarioResult> scenarios;
};

/// Optional provider of pre-ingested blobs for one scenario's affected
/// groups (the distrib fleet hook). Called once per scenario with the
/// perturbed world and the ascending affected group ids; on success it
/// fills `blobs` with one serialized GroupSeries per affected group (same
/// order) and returns true. An empty string — or returning false — means
/// "no blob": those groups cold-ingest in-process under the perturbed
/// world, so a degraded or absent provider only costs time, never bytes.
using SweepAffectedBlobFn = std::function<bool(
    std::size_t scenario_index, const ScenarioPack& pack,
    const World& perturbed, const std::vector<std::size_t>& affected,
    std::vector<std::string>& blobs)>;

/// Runs `packs` as an incremental sweep over `world`. Output contract:
/// `baseline` is byte-identical to run_edge_analysis without a pack, and
/// scenarios[k].result to run_edge_analysis with packs[k], for any
/// --threads — whether the baseline came from a warm artifact, a cold
/// cache-enabled run, or an in-memory ingest, and whether affected blobs
/// came from `affected_blobs` or in-process ingest. `faults` enabled
/// degrades to independent full runs (reuse bypassed, counters zero).
SweepOutcome run_scenario_sweep(
    const World& world, const DatasetConfig& config,
    const AnalysisThresholds& thresholds, const ComparisonConfig& comparison,
    GoodputConfig goodput, const std::vector<ScenarioPack>& packs,
    const RuntimeOptions& runtime, RunStats* stats = nullptr,
    const FaultPlan& faults = {}, const IngestCacheOptions& cache = {},
    const SweepAffectedBlobFn& affected_blobs = nullptr);

}  // namespace fbedge
