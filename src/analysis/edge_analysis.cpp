#include "analysis/edge_analysis.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <optional>
#include <string>

#include "analysis/edge_reduce.h"

#include "agg/series_io.h"
#include "agg/window_columns.h"
#include "faultsim/fault_injector.h"
#include "routing/policy.h"
#include "sampler/session_batch.h"

namespace fbedge {

namespace {

/// Raw (unnormalized) Table 1 accumulator plus its normalization totals.
///
/// The key space is tiny and fully enumerable — (4 kinds) x (a handful of
/// thresholds) x (5 classes) x (overall + 6 continents) — so the former
/// `std::map<std::tuple<...>>` is a dense flat array indexed arithmetically:
/// add() on the per-group hot path is two array writes instead of two
/// red-black-tree inserts, and merge() is an elementwise loop. `touched`
/// preserves the map's presence semantics (a cell appears in the normalized
/// output only if some group was classified into it).
struct Table1Accumulator {
  static constexpr int kKinds = 4;
  static constexpr int kMaxThresholds = 8;
  static constexpr int kClasses = 5;  // TemporalClass values
  static constexpr int kScopes = kNumContinents + 1;  // index 0 = overall (-1)
  static constexpr int kCells = kKinds * kMaxThresholds * kClasses * kScopes;
  static constexpr int kDenoms = kKinds * kMaxThresholds * kScopes;

  std::array<Table1Cell, kCells> cells{};
  std::array<bool, kCells> touched{};
  std::array<double, kDenoms> denominators{};

  static int cell_index(AnalysisKind kind, int threshold_idx, TemporalClass cls,
                        int scope) {
    return ((static_cast<int>(kind) * kMaxThresholds + threshold_idx) * kClasses +
            static_cast<int>(cls)) *
               kScopes +
           (scope + 1);
  }
  static int denom_index(AnalysisKind kind, int threshold_idx, int scope) {
    return (static_cast<int>(kind) * kMaxThresholds + threshold_idx) * kScopes +
           (scope + 1);
  }

  void add(AnalysisKind kind, int threshold_idx, const Classification& c,
           int continent) {
    FBEDGE_EXPECT(threshold_idx < kMaxThresholds, "too many Table 1 thresholds");
    if (c.cls == TemporalClass::kExcluded) return;
    for (const int scope : {-1, continent}) {
      auto& cell = cells[static_cast<std::size_t>(cell_index(kind, threshold_idx,
                                                             c.cls, scope))];
      touched[static_cast<std::size_t>(cell_index(kind, threshold_idx, c.cls,
                                                  scope))] = true;
      cell.group_traffic += static_cast<double>(c.total_traffic);
      cell.event_traffic += static_cast<double>(c.event_traffic);
      denominators[static_cast<std::size_t>(denom_index(kind, threshold_idx, scope))] +=
          static_cast<double>(c.total_traffic);
    }
  }

  /// Folds another accumulator in. Elementwise over fixed indices, so every
  /// cell accumulates in the same (group-id) order the ordered-map version
  /// did — the merged sums are bitwise identical for any shard count.
  void merge(const Table1Accumulator& other) {
    for (int i = 0; i < kCells; ++i) {
      cells[static_cast<std::size_t>(i)].group_traffic +=
          other.cells[static_cast<std::size_t>(i)].group_traffic;
      cells[static_cast<std::size_t>(i)].event_traffic +=
          other.cells[static_cast<std::size_t>(i)].event_traffic;
      touched[static_cast<std::size_t>(i)] =
          touched[static_cast<std::size_t>(i)] || other.touched[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < kDenoms; ++i) {
      denominators[static_cast<std::size_t>(i)] +=
          other.denominators[static_cast<std::size_t>(i)];
    }
  }

  void normalize_into(decltype(EdgeAnalysisResult::table1)& out) const {
    // Same enumeration order as the former map's tuple ordering:
    // (kind, threshold, class, scope) with overall (-1) before continents.
    for (int k = 0; k < kKinds; ++k) {
      const auto kind = static_cast<AnalysisKind>(k);
      for (int t = 0; t < kMaxThresholds; ++t) {
        for (int c = 0; c < kClasses; ++c) {
          const auto cls = static_cast<TemporalClass>(c);
          for (int scope = -1; scope < kNumContinents; ++scope) {
            if (!touched[static_cast<std::size_t>(cell_index(kind, t, cls, scope))]) {
              continue;
            }
            const double denom =
                denominators[static_cast<std::size_t>(denom_index(kind, t, scope))];
            if (denom <= 0) continue;
            const auto& cell =
                cells[static_cast<std::size_t>(cell_index(kind, t, cls, scope))];
            Table1Cell normalized;
            normalized.group_traffic = cell.group_traffic / denom;
            normalized.event_traffic = cell.event_traffic / denom;
            out[{kind, t, cls, scope}] = normalized;
          }
        }
      }
    }
  }
};

/// Refills `obs` with classifier inputs for one group + one predicate over
/// windows. The buffer is reused across the 11 per-group classifications,
/// which all stream the same precomputed WindowColumns (window id,
/// has-traffic flag, total traffic) instead of re-walking the WindowAgg
/// cells per pass. `traffic(w, total)` receives the window's total traffic
/// for the opportunity passes' fallback.
template <typename EventFn, typename ValidFn, typename TrafficFn>
void make_observations_into(const WindowColumns& cols,
                            std::vector<WindowObservation>& obs, EventFn event,
                            ValidFn valid, TrafficFn traffic) {
  obs.clear();
  obs.reserve(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const int w = cols.window[i];
    WindowObservation o;
    o.window = w;
    o.has_traffic = cols.has_traffic[i] != 0;
    o.valid = valid(w);
    o.event = o.valid && event(w);
    o.traffic = traffic(w, cols.total_traffic[i]);
    obs.push_back(o);
  }
}

/// Per-worker scratch for analyze_group: every buffer here is cleared (not
/// shrunk) per group/window, so after each arena reaches its high-water
/// mark the whole generate -> coalesce -> HD -> aggregate loop runs without
/// per-session allocations. One instance per pool worker
/// (shard_map_reduce_scratch); results are independent of which worker's
/// scratch served a group because every field is rebuilt before use.
struct EdgeScratch {
  SessionBatch batch;
  CoalescedBatch coalesced;
  std::vector<SessionHd> hd;
  CoalescedSession coalesce_scratch;  // legacy scalar path (fault runs)
  std::vector<WindowObservation> obs;
  WindowColumns cols;
  /// The group's aggregation series, recycled (not reallocated) between
  /// groups: route cells return to `pool` with their t-digest buffers
  /// intact, so steady-state ingest of a new group allocates almost
  /// nothing. A recycled series is behaviorally identical to a fresh one.
  GroupSeries series;
  RouteAggPool pool;
  /// Serialization buffer for the ingest-artifact cache's cold path.
  ByteWriter writer;
  /// Analysis-pass buffers, cleared per group.
  DegradationScratch degr_scratch;
  DegradationResult degr;
  std::vector<OpportunityWindow> opp;
  std::vector<const DegradationWindow*> degr_by_window;
  std::vector<const OpportunityWindow*> opp_by_window;
};

/// Most-preferred alternate (lowest index > 0) with the given relationship;
/// -1 if none. Routes are policy-ranked, so the first hit is the most
/// preferred (§6.3).
int first_alternate_of(const UserGroupProfile& group, Relationship rel) {
  for (int i = 1; i < static_cast<int>(group.routes.size()); ++i) {
    if (group.routes[static_cast<std::size_t>(i)].route.relationship == rel) return i;
  }
  return -1;
}

/// Everything one user group contributes to the sweep, before the final
/// normalizations. The sharded runtime produces one of these per group and
/// merges them in group-id order; the CDF fields and the raw table sums
/// live in an EdgeAnalysisResult whose scalar outputs stay zero until
/// normalization.
struct EdgePartial {
  EdgeAnalysisResult res;  // CDFs + raw table2 traffic sums
  Table1Accumulator table1;

  double degr_valid_rtt_traffic{0};
  double degr_valid_hd_traffic{0};
  double preferred_traffic_total{0};
  double opp_valid_rtt_traffic{0};
  double opp_valid_hd_traffic{0};
  double within3_traffic{0};
  double within0025_traffic{0};
  double improvable_rtt_traffic{0};
  double improvable_hd_traffic{0};

  void merge(const EdgePartial& other) {
    res.degr_rtt.merge(other.res.degr_rtt);
    res.degr_rtt_lower.merge(other.res.degr_rtt_lower);
    res.degr_rtt_upper.merge(other.res.degr_rtt_upper);
    res.degr_hd.merge(other.res.degr_hd);
    res.degr_hd_lower.merge(other.res.degr_hd_lower);
    res.degr_hd_upper.merge(other.res.degr_hd_upper);
    res.opp_rtt.merge(other.res.opp_rtt);
    res.opp_rtt_lower.merge(other.res.opp_rtt_lower);
    res.opp_rtt_upper.merge(other.res.opp_rtt_upper);
    res.opp_hd.merge(other.res.opp_hd);
    res.opp_hd_lower.merge(other.res.opp_hd_lower);
    res.opp_hd_upper.merge(other.res.opp_hd_upper);
    res.fig10_peer_vs_transit.merge(other.res.fig10_peer_vs_transit);
    res.fig10_transit_vs_transit.merge(other.res.fig10_transit_vs_transit);
    res.fig10_private_vs_public.merge(other.res.fig10_private_vs_public);
    for (const auto& [pair, row] : other.res.table2_rtt) {
      auto& mine = res.table2_rtt[pair];
      mine.absolute += row.absolute;
      mine.longer += row.longer;
      mine.prepended += row.prepended;
    }
    for (const auto& [pair, row] : other.res.table2_hd) {
      auto& mine = res.table2_hd[pair];
      mine.absolute += row.absolute;
      mine.longer += row.longer;
      mine.prepended += row.prepended;
    }
    res.total_traffic += other.res.total_traffic;
    res.groups_analyzed += other.res.groups_analyzed;
    res.sessions_analyzed += other.res.sessions_analyzed;
    res.faults.accumulate(other.res.faults);
    table1.merge(other.table1);

    degr_valid_rtt_traffic += other.degr_valid_rtt_traffic;
    degr_valid_hd_traffic += other.degr_valid_hd_traffic;
    preferred_traffic_total += other.preferred_traffic_total;
    opp_valid_rtt_traffic += other.opp_valid_rtt_traffic;
    opp_valid_hd_traffic += other.opp_valid_hd_traffic;
    within3_traffic += other.within3_traffic;
    within0025_traffic += other.within0025_traffic;
    improvable_rtt_traffic += other.improvable_rtt_traffic;
    improvable_hd_traffic += other.improvable_hd_traffic;
  }
};

/// The ingest half of the pipeline: simulates this group's sampled
/// sessions and folds them into `scratch.series` (recycled through
/// `scratch.pool` first). This is the expensive, cacheable stage — its
/// product is a pure function of (world, config, goodput, faults), and on
/// fault-free runs it is exactly what the ingest-artifact cache persists.
void ingest_group(EdgeScratch& scratch, const DatasetGenerator& generator,
                  const UserGroupProfile& group, const GoodputConfig& goodput,
                  const FaultPlan& faults, FaultCounters& fault_counters) {
  GroupSeries& series = scratch.series;
  scratch.pool.recycle(series);
  series.continent = group.continent;
  if (!faults.sampler_faults()) {
    // Batched columnar path: one window of sessions at a time through
    // coalesce -> HD -> aggregate, all in per-worker arenas. Rows arrive in
    // the same order generate_group emits sessions and carry bit-identical
    // values (same simulation template, same RNG stream), and the window
    // index is still computed per row from established_at — a session's
    // start is drawn in [window_start, window_start + kWindowLength], so
    // trusting the nominal window id would mis-bin a draw that lands
    // exactly on the upper boundary.
    generator.generate_group_batched(
        group, scratch.batch, [&](int, const SessionBatch& b) {
          // Hosting-provider rows (the §2.2.4 keep_for_analysis filter) are
          // skipped before coalescing ever sees them.
          coalesce_batch(b, b.hosting.data(), scratch.coalesced);
          const std::size_t rows = b.size();
          scratch.hd.resize(rows);
          evaluate_hd_batch(scratch.coalesced.txns.data(),
                            scratch.coalesced.offset.data(),
                            scratch.coalesced.count.data(), rows, scratch.hd.data(),
                            goodput);
          for (std::size_t i = 0; i < rows; ++i) {
            if (b.hosting[i] != 0) continue;
            series.windows[window_index(b.established_at[i])]
                .route_pooled(b.route_index[i], scratch.pool)
                .add_session(b.min_rtt[i], scratch.hd[i].hdratio(), b.total_bytes[i]);
          }
        });
  } else {
    // The fault stage sits where the load balancer hands records to the
    // analytics tier; records that fail semantic validation after a fault
    // never reach metric extraction. Fault injection mutates individual
    // records (truncation, duplication, skew), so this path keeps the
    // scalar per-session representation.
    const auto ingest = [&](const SessionSample& s) {
      if (!SessionSampler::keep_for_analysis(s.client)) return;
      const SessionMetrics m =
          compute_session_metrics(s, scratch.coalesce_scratch, goodput);
      series.windows[window_index(s.established_at)]
          .route(s.route_index)
          .add_session(m.min_rtt, m.hdratio, m.traffic);
    };
    SamplerFaultStage stage(faults, group.key);
    generator.generate_group(
        group, [&](const SessionSample& s) { stage.apply(s, ingest); });
    fault_counters.accumulate(stage.counters());
  }
  if (faults.agg_faults()) {
    AggFaultStage(faults).apply(series, group_fault_key(group.key), fault_counters);
  }
}

/// The analysis half: everything downstream of the per-group series —
/// degradation, opportunity, temporal classification, Tables 1-2, Fig. 10.
/// Consumes `series` read-only, so it runs identically on a freshly
/// ingested series and on one deserialized from the artifact cache.
void analyze_series_into(EdgeScratch& scratch, const GroupSeries& series,
                         const UserGroupProfile& group,
                         const AnalysisThresholds& thresholds,
                         const ComparisonConfig& comparison,
                         const ClassifierConfig& classifier_config,
                         EdgePartial& part) {
  EdgeAnalysisResult& out = part.res;
  if (series.windows.empty()) return;
  out.total_traffic += static_cast<double>(series.total_traffic());
  for (const auto& [w, agg] : series.windows) {
    if (const RouteWindowAgg* pref = agg.route(0)) {
      part.preferred_traffic_total += static_cast<double>(pref->traffic());
    }
    for (const RouteWindowAgg& cell : agg.routes) {
      out.sessions_analyzed += static_cast<std::uint64_t>(cell.sessions());
    }
  }
  ++out.groups_analyzed;
  const int continent = static_cast<int>(group.continent);

  // Window indexes are dense small ints (< days * 96), so the per-window
  // degradation/opportunity lookups are flat pointer vectors instead of
  // hash maps; lookup on the classification path is one indexed load.
  const int total_windows = classifier_config.total_windows;
  const auto window_slot = [total_windows](auto& vec, int w) -> auto& {
    if (w >= static_cast<int>(vec.size())) {
      vec.resize(static_cast<std::size_t>(std::max(w + 1, total_windows)), nullptr);
    }
    return vec[static_cast<std::size_t>(w)];
  };
  const auto window_at = [](const auto& vec, int w) {
    return (w >= 0 && w < static_cast<int>(vec.size()))
               ? vec[static_cast<std::size_t>(w)]
               : nullptr;
  };

  // ---- degradation (§5, Fig. 8) ------------------------------------------
  analyze_degradation_into(series, comparison, scratch.degr_scratch, scratch.degr);
  const DegradationResult& degr = scratch.degr;
  std::vector<const DegradationWindow*>& degr_by_window = scratch.degr_by_window;
  degr_by_window.clear();
  for (const auto& dw : degr.windows) {
    window_slot(degr_by_window, dw.window) = &dw;
    const double weight = std::max<double>(1, static_cast<double>(dw.traffic));
    if (dw.rtt.valid()) {
      part.degr_valid_rtt_traffic += static_cast<double>(dw.traffic);
      out.degr_rtt.add(dw.rtt.diff.estimate, weight);
      out.degr_rtt_lower.add(dw.rtt.diff.lower, weight);
      out.degr_rtt_upper.add(dw.rtt.diff.upper, weight);
    }
    if (dw.hd.valid()) {
      part.degr_valid_hd_traffic += static_cast<double>(dw.traffic);
      out.degr_hd.add(dw.hd.diff.estimate, weight);
      out.degr_hd_lower.add(dw.hd.diff.lower, weight);
      out.degr_hd_upper.add(dw.hd.diff.upper, weight);
    }
  }

  // ---- opportunity (§6, Fig. 9) ------------------------------------------
  analyze_opportunity_into(series, comparison, scratch.opp);
  const std::vector<OpportunityWindow>& opp = scratch.opp;
  std::vector<const OpportunityWindow*>& opp_by_window = scratch.opp_by_window;
  opp_by_window.clear();
  for (const auto& ow : opp) {
    window_slot(opp_by_window, ow.window) = &ow;
    const double weight = std::max<double>(1, static_cast<double>(ow.traffic));
    if (ow.rtt.valid()) {
      part.opp_valid_rtt_traffic += static_cast<double>(ow.traffic);
      out.opp_rtt.add(ow.rtt.diff.estimate, weight);
      out.opp_rtt_lower.add(ow.rtt.diff.lower, weight);
      out.opp_rtt_upper.add(ow.rtt.diff.upper, weight);
      // Preferred within 3 ms of optimal: the alternate is at most 3 ms
      // faster (diff = preferred - alternate).
      if (ow.rtt.diff.estimate <= 0.003) {
        part.within3_traffic += static_cast<double>(ow.traffic);
      }
      if (ow.rtt_opportunity(thresholds.opportunity_rtt.front())) {
        part.improvable_rtt_traffic += static_cast<double>(ow.traffic);
      }
    }
    if (ow.hd.valid()) {
      part.opp_valid_hd_traffic += static_cast<double>(ow.traffic);
      out.opp_hd.add(ow.hd.diff.estimate, weight);
      out.opp_hd_lower.add(ow.hd.diff.lower, weight);
      out.opp_hd_upper.add(ow.hd.diff.upper, weight);
      if (ow.hd.diff.estimate <= 0.025) {
        part.within0025_traffic += static_cast<double>(ow.traffic);
      }
      if (ow.hd_opportunity(thresholds.opportunity_hd.front())) {
        part.improvable_hd_traffic += static_cast<double>(ow.traffic);
      }
    }
  }

  // ---- Table 1: temporal classification at every threshold ---------------
  scratch.cols.build(series);  // streamed by all 11 classifications
  for (std::size_t t = 0; t < thresholds.degradation_rtt.size(); ++t) {
    const Duration th = thresholds.degradation_rtt[t];
    make_observations_into(
        scratch.cols, scratch.obs,
        [&](int w) { return window_at(degr_by_window, w)->rtt.exceeds(th); },
        [&](int w) {
          const DegradationWindow* dw = window_at(degr_by_window, w);
          return dw != nullptr && dw->rtt.valid();
        },
        [&](int w, Bytes) {
          const DegradationWindow* dw = window_at(degr_by_window, w);
          return dw != nullptr ? dw->traffic : Bytes{0};
        });
    part.table1.add(AnalysisKind::kDegradationRtt, static_cast<int>(t),
                    classify_temporal(scratch.obs, classifier_config), continent);
  }
  for (std::size_t t = 0; t < thresholds.degradation_hd.size(); ++t) {
    const double th = thresholds.degradation_hd[t];
    make_observations_into(
        scratch.cols, scratch.obs,
        [&](int w) { return window_at(degr_by_window, w)->hd.exceeds(th); },
        [&](int w) {
          const DegradationWindow* dw = window_at(degr_by_window, w);
          return dw != nullptr && dw->hd.valid();
        },
        [&](int w, Bytes) {
          const DegradationWindow* dw = window_at(degr_by_window, w);
          return dw != nullptr ? dw->traffic : Bytes{0};
        });
    part.table1.add(AnalysisKind::kDegradationHd, static_cast<int>(t),
                    classify_temporal(scratch.obs, classifier_config), continent);
  }
  for (std::size_t t = 0; t < thresholds.opportunity_rtt.size(); ++t) {
    const Duration th = thresholds.opportunity_rtt[t];
    make_observations_into(
        scratch.cols, scratch.obs,
        [&](int w) { return window_at(opp_by_window, w)->rtt_opportunity(th); },
        [&](int w) {
          const OpportunityWindow* ow = window_at(opp_by_window, w);
          return ow != nullptr && ow->rtt.valid();
        },
        [&](int w, Bytes total) {
          const OpportunityWindow* ow = window_at(opp_by_window, w);
          return ow != nullptr ? ow->traffic : total;
        });
    part.table1.add(AnalysisKind::kOpportunityRtt, static_cast<int>(t),
                    classify_temporal(scratch.obs, classifier_config), continent);
  }
  for (std::size_t t = 0; t < thresholds.opportunity_hd.size(); ++t) {
    const double th = thresholds.opportunity_hd[t];
    make_observations_into(
        scratch.cols, scratch.obs,
        [&](int w) { return window_at(opp_by_window, w)->hd_opportunity(th); },
        [&](int w) {
          const OpportunityWindow* ow = window_at(opp_by_window, w);
          return ow != nullptr && ow->hd.valid();
        },
        [&](int w, Bytes total) {
          const OpportunityWindow* ow = window_at(opp_by_window, w);
          return ow != nullptr ? ow->traffic : total;
        });
    part.table1.add(AnalysisKind::kOpportunityHd, static_cast<int>(t),
                    classify_temporal(scratch.obs, classifier_config), continent);
  }

  // ---- Table 2: opportunity by relationship pair -------------------------
  const Route& preferred_route = group.routes.front().route;
  for (const auto& ow : opp) {
    if (ow.rtt_alternate > 0 &&
        ow.rtt_opportunity(thresholds.opportunity_rtt.front())) {
      const Route& alt = group.routes[static_cast<std::size_t>(ow.rtt_alternate)].route;
      auto& row = out.table2_rtt[{preferred_route.relationship, alt.relationship}];
      const double tr = static_cast<double>(ow.traffic);
      row.absolute += tr;
      if (RoutingPolicy::lost_on_as_path(preferred_route, alt)) row.longer += tr;
      if (alt.prepend_count() > preferred_route.prepend_count()) row.prepended += tr;
    }
    if (ow.hd_alternate > 0 && ow.hd_opportunity(thresholds.opportunity_hd.front())) {
      const Route& alt = group.routes[static_cast<std::size_t>(ow.hd_alternate)].route;
      auto& row = out.table2_hd[{preferred_route.relationship, alt.relationship}];
      const double tr = static_cast<double>(ow.traffic);
      row.absolute += tr;
      if (RoutingPolicy::lost_on_as_path(preferred_route, alt)) row.longer += tr;
      if (alt.prepend_count() > preferred_route.prepend_count()) row.prepended += tr;
    }
  }

  // ---- Fig. 10: relationship-type comparisons ----------------------------
  struct RelComparison {
    WeightedCdf* cdf;
    bool applies;
    int alt_index;
  };
  const bool pref_is_peer = is_peer(preferred_route.relationship);
  const int alt_transit = first_alternate_of(group, Relationship::kTransit);
  const int alt_public = first_alternate_of(group, Relationship::kPublicPeer);
  const RelComparison comparisons[] = {
      {&out.fig10_peer_vs_transit, pref_is_peer && alt_transit > 0, alt_transit},
      {&out.fig10_transit_vs_transit,
       preferred_route.relationship == Relationship::kTransit && alt_transit > 0,
       alt_transit},
      {&out.fig10_private_vs_public,
       preferred_route.relationship == Relationship::kPrivatePeer && alt_public > 0,
       alt_public},
  };
  for (const auto& rc : comparisons) {
    if (!rc.applies) continue;
    for (const auto& [w, agg] : series.windows) {
      const RouteWindowAgg* pref = agg.route(0);
      const RouteWindowAgg* alt = agg.route(rc.alt_index);
      if (!pref || !alt) continue;
      const Comparison cmp = compare_minrtt(*pref, *alt, comparison);
      if (!cmp.valid()) continue;
      rc.cdf->add(cmp.diff.estimate,
                  std::max<double>(1, static_cast<double>(agg.total_traffic())));
    }
  }
}

EdgePartial analyze_group(EdgeScratch& scratch, const DatasetGenerator& generator,
                          const UserGroupProfile& group,
                          const AnalysisThresholds& thresholds,
                          const ComparisonConfig& comparison,
                          const GoodputConfig& goodput,
                          const ClassifierConfig& classifier_config,
                          const FaultPlan& faults) {
  EdgePartial part;
  ingest_group(scratch, generator, group, goodput, faults, part.res.faults);
  analyze_series_into(scratch, scratch.series, group, thresholds, comparison,
                      classifier_config, part);
  return part;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Classifier knobs derived from the study span (shared by every reduce
/// path so a distributed run classifies exactly like an in-process one).
ClassifierConfig make_classifier_config(const DatasetConfig& config) {
  ClassifierConfig classifier_config;
  classifier_config.total_windows = config.days * 96;
  // Diurnal detection needs the pattern to repeat on multiple days; scale
  // the day requirement to the study span (the paper's 5 of 10 days).
  classifier_config.diurnal_days = std::max(2, (config.days + 1) / 2);
  return classifier_config;
}

/// The final normalizations: raw merged sums -> the fractions the paper
/// reports. One implementation for every reduce path (in-process, failable,
/// artifact-driven), so a distributed run cannot drift from a local one.
EdgeAnalysisResult finalize_edge_result(EdgePartial&& total) {
  EdgeAnalysisResult out = std::move(total.res);

  total.table1.normalize_into(out.table1);
  for (auto* rows : {&out.table2_rtt, &out.table2_hd}) {
    for (auto& [pair, row] : *rows) {
      row.absolute /= std::max(1.0, out.total_traffic);
      // longer/prepended stay relative to the pair's own opportunity below.
    }
  }
  for (auto* rows : {&out.table2_rtt, &out.table2_hd}) {
    for (auto& [pair, row] : *rows) {
      const double abs_traffic = row.absolute * std::max(1.0, out.total_traffic);
      if (abs_traffic > 0) {
        row.longer /= abs_traffic;
        row.prepended /= abs_traffic;
      }
    }
  }

  // Degradation analysis covers preferred-route traffic only (§2.2.3);
  // validity fractions are therefore relative to preferred-route traffic.
  out.degr_valid_traffic_rtt =
      total.degr_valid_rtt_traffic / std::max(1.0, total.preferred_traffic_total);
  out.degr_valid_traffic_hd =
      total.degr_valid_hd_traffic / std::max(1.0, total.preferred_traffic_total);
  out.opp_valid_traffic_rtt =
      total.opp_valid_rtt_traffic / std::max(1.0, out.total_traffic);
  out.opp_valid_traffic_hd =
      total.opp_valid_hd_traffic / std::max(1.0, out.total_traffic);
  out.rtt_within_3ms =
      total.within3_traffic / std::max(1.0, total.opp_valid_rtt_traffic);
  out.hd_within_0025 =
      total.within0025_traffic / std::max(1.0, total.opp_valid_hd_traffic);
  out.rtt_improvable_5ms =
      total.improvable_rtt_traffic / std::max(1.0, total.opp_valid_rtt_traffic);
  out.hd_improvable_005 =
      total.improvable_hd_traffic / std::max(1.0, total.opp_valid_hd_traffic);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// EdgeReducer: the group-id-order fold behind both run_edge_analysis and
// the multi-process coordinator (analysis/edge_reduce.h).
// ---------------------------------------------------------------------------

struct EdgeReducer::Impl {
  const World& world;
  DatasetConfig config;
  AnalysisThresholds thresholds;
  ComparisonConfig comparison;
  GoodputConfig goodput;
  FaultPlan faults;
  ClassifierConfig classifier_config;
  DatasetGenerator generator;
  EdgePartial total;
  std::uint64_t blob_groups{0};

  Impl(const World& world_in, const DatasetConfig& config_in,
       const AnalysisThresholds& thresholds_in,
       const ComparisonConfig& comparison_in, GoodputConfig goodput_in,
       const FaultPlan& faults_in)
      : world(world_in),
        config(config_in),
        thresholds(thresholds_in),
        comparison(comparison_in),
        goodput(goodput_in),
        faults(faults_in),
        classifier_config(make_classifier_config(config_in)),
        generator(world_in, config) {}
};

EdgeReducer::EdgeReducer(const World& world, const DatasetConfig& config,
                         const AnalysisThresholds& thresholds,
                         const ComparisonConfig& comparison,
                         GoodputConfig goodput, const FaultPlan& faults)
    : impl_(std::make_unique<Impl>(world, config, thresholds, comparison,
                                   goodput, faults)) {}

EdgeReducer::~EdgeReducer() = default;

void EdgeReducer::reduce_range(const ShardRange& range, const BlobFn& blob,
                               const RuntimeOptions& runtime, RunStats* stats,
                               const SaveFn* save) {
  Impl& im = *impl_;
  FBEDGE_EXPECT(range.end <= im.world.groups.size(),
                "reduce range exceeds the world's group count");
  const std::size_t n = range.size();
  if (n == 0) return;
  // Per-group flags live in a side vector (each slot written by exactly
  // one task) so blob accounting never introduces cross-thread order
  // dependence.
  std::vector<std::uint8_t> from_blob(n, 0);
  auto partials = parallel_map_scratch<EdgeScratch>(
      n, runtime,
      [&](EdgeScratch& scratch, std::size_t i) {
        const std::size_t g = range.begin + i;
        const UserGroupProfile& group = im.world.groups[g];
        if (blob) {
          const GroupBlobRef b = blob(g);
          if (!b.empty()) {
            ByteReader r(b.data, b.size);
            if (load_group_series(r, scratch.series, &scratch.pool) &&
                r.remaining() == 0) {
              from_blob[i] = 1;
              EdgePartial part;
              analyze_series_into(scratch, scratch.series, group, im.thresholds,
                                  im.comparison, im.classifier_config, part);
              return part;
            }
            // Unusable blob: fall through to cold ingest for this group.
          }
        }
        EdgePartial part;
        ingest_group(scratch, im.generator, group, im.goodput, im.faults,
                     part.res.faults);
        if (save != nullptr && *save) {
          scratch.writer.clear();
          save_group_series(scratch.series, scratch.writer);
          std::string bytes = scratch.writer.data();  // keep writer capacity
          (*save)(g, std::move(bytes));
        }
        analyze_series_into(scratch, scratch.series, group, im.thresholds,
                            im.comparison, im.classifier_config, part);
        return part;
      },
      stats);
  // The determinism rule: fold in ascending group-id order, always.
  for (std::size_t i = 0; i < n; ++i) {
    im.total.merge(partials[i]);
  }
  for (std::size_t i = 0; i < n; ++i) im.blob_groups += from_blob[i];
}

std::uint64_t EdgeReducer::blob_groups() const { return impl_->blob_groups; }

EdgeAnalysisResult EdgeReducer::finish() {
  return finalize_edge_result(std::move(impl_->total));
}

void ingest_range_to_blobs(
    const World& world, const DatasetConfig& config, GoodputConfig goodput,
    const ShardRange& range, const RuntimeOptions& runtime,
    const std::function<void(std::size_t group, std::string&& blob)>& sink,
    RunStats* stats, std::size_t chunk_groups) {
  FBEDGE_EXPECT(range.end <= world.groups.size(),
                "ingest range exceeds the world's group count");
  FBEDGE_EXPECT(chunk_groups >= 1, "ingest chunk must hold at least one group");
  DatasetGenerator generator(world, config);
  const FaultPlan no_faults;
  for (std::size_t at = range.begin; at < range.end; at += chunk_groups) {
    const std::size_t n = std::min(chunk_groups, range.end - at);
    auto blobs = parallel_map_scratch<EdgeScratch>(
        n, runtime,
        [&](EdgeScratch& scratch, std::size_t i) {
          FaultCounters none;
          ingest_group(scratch, generator, world.groups[at + i], goodput,
                       no_faults, none);
          scratch.writer.clear();
          save_group_series(scratch.series, scratch.writer);
          return std::string(scratch.writer.data());
        },
        stats);
    for (std::size_t i = 0; i < n; ++i) sink(at + i, std::move(blobs[i]));
  }
}

void ingest_groups_to_blobs(
    const World& world, const DatasetConfig& config, GoodputConfig goodput,
    const std::vector<std::size_t>& groups, const RuntimeOptions& runtime,
    const std::function<void(std::size_t group, std::string&& blob)>& sink,
    RunStats* stats, std::size_t chunk_groups) {
  FBEDGE_EXPECT(chunk_groups >= 1, "ingest chunk must hold at least one group");
  DatasetGenerator generator(world, config);
  const FaultPlan no_faults;
  for (std::size_t at = 0; at < groups.size(); at += chunk_groups) {
    const std::size_t n = std::min(chunk_groups, groups.size() - at);
    auto blobs = parallel_map_scratch<EdgeScratch>(
        n, runtime,
        [&](EdgeScratch& scratch, std::size_t i) {
          const std::size_t g = groups[at + i];
          FBEDGE_EXPECT(g < world.groups.size(),
                        "ingest group id exceeds the world's group count");
          FaultCounters none;
          ingest_group(scratch, generator, world.groups[g], goodput, no_faults,
                       none);
          scratch.writer.clear();
          save_group_series(scratch.series, scratch.writer);
          return std::string(scratch.writer.data());
        },
        stats);
    for (std::size_t i = 0; i < n; ++i) sink(groups[at + i], std::move(blobs[i]));
  }
}

EdgeAnalysisResult run_edge_analysis(const World& world, const DatasetConfig& config,
                                     const AnalysisThresholds& thresholds,
                                     const ComparisonConfig& comparison,
                                     GoodputConfig goodput,
                                     const RuntimeOptions& runtime,
                                     RunStats* stats, const FaultPlan& faults,
                                     const IngestCacheOptions& cache,
                                     const ScenarioPack& scenario) {
  // Scenario runs recurse with the perturbed world and an empty pack; the
  // scenario-free path below is exactly the pre-scenario code, so an empty
  // pack is byte-identical to a build without the subsystem.
  if (!scenario.empty()) {
    FaultCounters applied;
    const World perturbed = apply_scenario(world, scenario, &applied);
    EdgeAnalysisResult out =
        run_edge_analysis(perturbed, config, thresholds, comparison, goodput,
                          runtime, stats, faults, cache);
    out.faults.accumulate(applied);
    if (stats) stats->faults.accumulate(applied);
    return out;
  }

  // Faulted runs bypass the cache entirely — no read, no write. A faulted
  // series must never be persisted (it would poison fault-free runs), and
  // serving a clean artifact to a faulted run would silently disable the
  // injection under test.
  const bool use_cache = cache.enabled() && !faults.enabled();
  const std::size_t group_count = world.groups.size();
  std::uint64_t cache_key = 0;
  std::string artifact_path;
  IngestArtifact artifact;
  bool warm = false;
  if (use_cache) {
    cache_key = ingest_cache_key(world, config, goodput);
    artifact_path = ingest_artifact_path(cache.dir, cache_key);
    const auto t0 = std::chrono::steady_clock::now();
    warm = read_ingest_artifact(artifact_path, cache_key, group_count, artifact);
    if (stats) stats->cache_load_seconds += seconds_since(t0);
  }

  if (!faults.runtime_faults()) {
    // One EdgeReducer pass over [0, n): per-worker EdgeScratch arenas
    // persist across every group a worker processes, and partials fold in
    // group-id order — the result does not depend on the thread count.
    //
    // Cache plumbing rides the same schedule: on a warm run each group
    // deserializes its blob instead of ingesting (falling back to cold
    // ingest if its blob is structurally invalid); on a cold cache-enabled
    // run each group additionally serializes its series into `blobs[g]`
    // (each slot written by exactly one task). Neither introduces any
    // cross-thread order dependence — warm, cold, and uncached runs stay
    // byte-identical.
    EdgeReducer reducer(world, config, thresholds, comparison, goodput, faults);
    EdgeReducer::BlobFn blob_fn;
    if (warm) {
      blob_fn = [&artifact](std::size_t g) {
        const auto [offset, length] = artifact.blobs[g];
        return GroupBlobRef{artifact.bytes.data() + offset, length};
      };
    }
    std::vector<std::string> blobs;
    EdgeReducer::SaveFn save_fn;
    if (use_cache && !warm) {
      blobs.resize(group_count);
      save_fn = [&blobs](std::size_t g, std::string&& blob) {
        blobs[g] = std::move(blob);
      };
    }
    reducer.reduce_range(ShardRange{0, group_count}, blob_fn, runtime, stats,
                         save_fn ? &save_fn : nullptr);
    if (use_cache && stats) {
      const std::uint64_t hits = reducer.blob_groups();
      stats->cache_hits += hits;
      stats->cache_misses += static_cast<std::uint64_t>(group_count) - hits;
    }
    if (use_cache && !warm) {
      const auto t0 = std::chrono::steady_clock::now();
      write_ingest_artifact(artifact_path, cache_key, blobs);
      if (stats) stats->cache_save_seconds += seconds_since(t0);
    }
    return reducer.finish();
  }

  // Shard tasks can abort; each group gets the plan's attempt budget and
  // is skipped (reported as lost) when every attempt fails. The abort
  // decision is a pure function of (plan, group, attempt), so which
  // groups are lost — and hence the merged result — is identical for any
  // thread count.
  const ClassifierConfig classifier_config = make_classifier_config(config);
  DatasetGenerator generator(world, config);
  RunStats local;
  EdgePartial total = shard_map_reduce_failable(
      world, runtime,
      RetryPolicy{faults.task_max_attempts, faults.task_backoff_seconds},
      EdgePartial{},
      [&](const UserGroupProfile& group, std::size_t,
          int attempt) -> std::optional<EdgePartial> {
        if (task_abort_decision(faults, group_fault_key(group.key), attempt)) {
          return std::nullopt;
        }
        // Fault runs are not perf-critical; a per-attempt scratch keeps
        // the failable path simple.
        EdgeScratch scratch;
        return analyze_group(scratch, generator, group, thresholds, comparison,
                             goodput, classifier_config, faults);
      },
      [](EdgePartial& acc, EdgePartial&& part, std::size_t) { acc.merge(part); },
      [](EdgePartial&, std::size_t) { /* lost group: contributes nothing */ },
      &local);
  total.res.faults.accumulate(local.faults);
  if (stats) stats->accumulate(local);
  return finalize_edge_result(std::move(total));
}

}  // namespace fbedge
