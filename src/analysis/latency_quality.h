// Latency quality-of-experience tiers (§3.1).
//
// The paper anchors its latency interpretation on three rules of thumb:
//   - beyond ~8 Mbps, latency is the primary bottleneck for page loads,
//     so MinRTT drives interactive experience;
//   - an online gaming provider uses 80 ms as the cutoff for good
//     real-time performance;
//   - ITU-T G.114 recommends at most 150 ms one-way (300 ms RTT) for
//     telecommunication; beyond that, experience degrades significantly.
// This module buckets sessions into the tiers those anchors imply.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/units.h"

namespace fbedge {

enum class LatencyTier : std::uint8_t {
  /// <= 40 ms: comfortable for everything, including competitive gaming.
  kRealtime = 0,
  /// <= 80 ms: good for real-time applications (gaming cutoff).
  kInteractive,
  /// <= 300 ms: acceptable for calls per ITU-T G.114; sluggish for games.
  kConversational,
  /// > 300 ms: degraded experience for any interactive use.
  kDegraded,
};

constexpr int kNumLatencyTiers = 4;

constexpr LatencyTier latency_tier(Duration min_rtt) {
  if (min_rtt <= 0.040) return LatencyTier::kRealtime;
  if (min_rtt <= 0.080) return LatencyTier::kInteractive;
  if (min_rtt <= 0.300) return LatencyTier::kConversational;
  return LatencyTier::kDegraded;
}

constexpr std::string_view to_string(LatencyTier t) {
  switch (t) {
    case LatencyTier::kRealtime: return "realtime (<=40ms)";
    case LatencyTier::kInteractive: return "interactive (<=80ms)";
    case LatencyTier::kConversational: return "conversational (<=300ms)";
    case LatencyTier::kDegraded: return "degraded (>300ms)";
  }
  return "?";
}

/// Session-count tallies per tier.
struct LatencyTierTally {
  std::array<std::uint64_t, kNumLatencyTiers> sessions{};

  void add(Duration min_rtt) {
    ++sessions[static_cast<std::size_t>(latency_tier(min_rtt))];
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto n : sessions) sum += n;
    return sum;
  }

  double fraction(LatencyTier t) const {
    const auto sum = total();
    return sum == 0 ? 0.0
                    : static_cast<double>(sessions[static_cast<std::size_t>(t)]) /
                          static_cast<double>(sum);
  }
};

}  // namespace fbedge
