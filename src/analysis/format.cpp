#include "analysis/format.h"

namespace fbedge {

void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

void print_cdf(const std::string& label, const WeightedCdf& cdf, int points,
               double value_scale) {
  if (cdf.empty()) {
    std::printf("%s: (no data)\n", label.c_str());
    return;
  }
  std::printf("%s:\n", label.c_str());
  for (const auto& [value, frac] : cdf.series(points)) {
    std::printf("  %12.4f  %.3f\n", value * value_scale, frac);
  }
}

void print_quantile_summary(const std::string& label, const WeightedCdf& cdf,
                            double value_scale) {
  if (cdf.empty()) {
    std::printf("%-28s (no data)\n", label.c_str());
    return;
  }
  std::printf("%-28s p10=%.3f p25=%.3f p50=%.3f p75=%.3f p90=%.3f\n", label.c_str(),
              cdf.quantile(0.10) * value_scale, cdf.quantile(0.25) * value_scale,
              cdf.quantile(0.50) * value_scale, cdf.quantile(0.75) * value_scale,
              cdf.quantile(0.90) * value_scale);
}

void print_fraction_at(const std::string& label, const WeightedCdf& cdf,
                       const std::vector<double>& xs, double value_scale) {
  if (cdf.empty()) {
    std::printf("%-28s (no data)\n", label.c_str());
    return;
  }
  std::printf("%-28s", label.c_str());
  for (const double x : xs) {
    std::printf(" P(<=%g)=%.3f", x * value_scale, cdf.fraction_at_or_below(x));
  }
  std::printf("\n");
}

void print_table1(const EdgeAnalysisResult& result, AnalysisKind kind,
                  const std::vector<std::string>& threshold_labels) {
  constexpr TemporalClass kClasses[] = {
      TemporalClass::kUneventful, TemporalClass::kContinuous,
      TemporalClass::kDiurnal, TemporalClass::kEpisodic};

  print_header(std::string("Table 1: ") + to_string(kind));
  std::printf("%-12s %-6s", "class", "scope");
  for (const auto& label : threshold_labels) std::printf("  %14s", label.c_str());
  std::printf("\n");

  for (const TemporalClass cls : kClasses) {
    // Overall row then per-continent rows.
    for (int scope = -1; scope < kNumContinents; ++scope) {
      bool any = false;
      for (std::size_t t = 0; t < threshold_labels.size(); ++t) {
        if (result.table1.count({kind, static_cast<int>(t), cls, scope})) any = true;
      }
      if (!any && scope >= 0) continue;
      std::printf("%-12s %-6s", scope == -1 ? to_string(cls) : "",
                  scope == -1 ? "all"
                              : std::string(to_code(static_cast<Continent>(scope))).c_str());
      for (std::size_t t = 0; t < threshold_labels.size(); ++t) {
        const auto it = result.table1.find({kind, static_cast<int>(t), cls, scope});
        if (it == result.table1.end()) {
          std::printf("  %14s", ".000 .000");
        } else {
          std::printf("     %.3f %.3f", it->second.group_traffic,
                      it->second.event_traffic);
        }
      }
      std::printf("\n");
    }
  }
}

}  // namespace fbedge
