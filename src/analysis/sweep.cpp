// Splice-reduce sweep runner: baseline once, per scenario only the
// affected groups, spliced through EdgeReducer in group-id order.
#include "analysis/sweep.h"

#include <chrono>
#include <utility>

#include "analysis/edge_reduce.h"
#include "analysis/ingest_cache.h"
#include "util/expect.h"

namespace fbedge {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SweepOutcome run_scenario_sweep(
    const World& world, const DatasetConfig& config,
    const AnalysisThresholds& thresholds, const ComparisonConfig& comparison,
    GoodputConfig goodput, const std::vector<ScenarioPack>& packs,
    const RuntimeOptions& runtime, RunStats* stats, const FaultPlan& faults,
    const IngestCacheOptions& cache, const SweepAffectedBlobFn& affected_blobs) {
  SweepOutcome out;
  out.scenarios.reserve(packs.size());

  // Faulted sweeps bypass reuse in both directions: faulted series must
  // never be spliced into another scenario, and splicing a clean baseline
  // series into a faulted run would silently disable the injection under
  // test. Each scenario runs as an independent full (faulted) run and the
  // reuse counters stay zero — exactly the cache-bypass policy of
  // run_edge_analysis.
  if (faults.enabled()) {
    out.baseline = run_edge_analysis(world, config, thresholds, comparison,
                                     goodput, runtime, stats, faults, cache);
    for (const ScenarioPack& pack : packs) {
      SweepScenarioResult scen;
      scen.pack = pack;
      scen.result = run_edge_analysis(world, config, thresholds, comparison,
                                      goodput, runtime, stats, faults, cache,
                                      pack);
      out.scenarios.push_back(std::move(scen));
    }
    return out;
  }

  const std::size_t n = world.groups.size();

  // ---- baseline: one ingest, blobs retained for splicing -------------------
  // With a cache dir this is exactly run_edge_analysis's warm/cold logic;
  // without one the blobs only live in memory for the sweep's duration.
  std::uint64_t cache_key = 0;
  std::string artifact_path;
  IngestArtifact artifact;
  bool warm = false;
  if (cache.enabled()) {
    cache_key = ingest_cache_key(world, config, goodput);
    artifact_path = ingest_artifact_path(cache.dir, cache_key);
    const auto t0 = std::chrono::steady_clock::now();
    warm = read_ingest_artifact(artifact_path, cache_key, n, artifact);
    if (stats) stats->cache_load_seconds += seconds_since(t0);
  }
  std::vector<std::string> blobs;
  {
    EdgeReducer reducer(world, config, thresholds, comparison, goodput);
    EdgeReducer::BlobFn blob_fn;
    if (warm) {
      blob_fn = [&artifact](std::size_t g) {
        const auto [offset, length] = artifact.blobs[g];
        return GroupBlobRef{artifact.bytes.data() + offset, length};
      };
    }
    EdgeReducer::SaveFn save_fn;
    if (!warm) {
      blobs.resize(n);
      save_fn = [&blobs](std::size_t g, std::string&& blob) {
        blobs[g] = std::move(blob);
      };
    }
    reducer.reduce_range(ShardRange{0, n}, blob_fn, runtime, stats,
                         save_fn ? &save_fn : nullptr);
    if (cache.enabled() && stats) {
      const std::uint64_t hits = reducer.blob_groups();
      stats->cache_hits += hits;
      stats->cache_misses += static_cast<std::uint64_t>(n) - hits;
    }
    if (cache.enabled() && !warm) {
      const auto t0 = std::chrono::steady_clock::now();
      write_ingest_artifact(artifact_path, cache_key, blobs);
      if (stats) stats->cache_save_seconds += seconds_since(t0);
    }
    out.baseline = reducer.finish();
  }
  // Baseline blob for one group, wherever the baseline came from. A blob
  // that fails structural validation downstream simply cold-ingests —
  // for an unaffected group the perturbed profile is bitwise-equal to
  // baseline, so the fallback is byte-identical too.
  const auto baseline_blob = [&](std::size_t g) -> GroupBlobRef {
    if (warm) {
      const auto [offset, length] = artifact.blobs[g];
      return GroupBlobRef{artifact.bytes.data() + offset, length};
    }
    return GroupBlobRef{blobs[g].data(), blobs[g].size()};
  };

  // ---- per scenario: splice baseline, re-ingest only the footprint ---------
  std::vector<std::size_t> affected_index(n);
  for (std::size_t k = 0; k < packs.size(); ++k) {
    const ScenarioPack& pack = packs[k];
    SweepScenarioResult scen;
    scen.pack = pack;
    FaultCounters applied;
    const World perturbed = apply_scenario(world, pack, &applied);
    scen.affected = affected_groups(world, pack);

    std::vector<std::string> scen_blobs;
    bool have_scen_blobs = false;
    if (affected_blobs && !scen.affected.empty()) {
      have_scen_blobs =
          affected_blobs(k, pack, perturbed, scen.affected, scen_blobs);
      FBEDGE_EXPECT(!have_scen_blobs || scen_blobs.size() == scen.affected.size(),
                    "sweep blob provider must return one blob per affected group");
    }

    affected_index.assign(n, static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < scen.affected.size(); ++i) {
      FBEDGE_EXPECT(scen.affected[i] < n, "affected group id out of range");
      affected_index[scen.affected[i]] = i;
    }

    EdgeReducer reducer(perturbed, config, thresholds, comparison, goodput);
    const EdgeReducer::BlobFn blob_fn = [&](std::size_t g) -> GroupBlobRef {
      const std::size_t ai = affected_index[g];
      if (ai == static_cast<std::size_t>(-1)) return baseline_blob(g);
      if (have_scen_blobs) {
        return GroupBlobRef{scen_blobs[ai].data(), scen_blobs[ai].size()};
      }
      return GroupBlobRef{};  // cold-ingest under the perturbed world
    };
    reducer.reduce_range(ShardRange{0, n}, blob_fn, runtime, stats, nullptr);
    scen.result = reducer.finish();

    // Count the sweep's decisions, exactly recountable from the footprint:
    // every group outside it was spliced, every group inside re-ingested
    // (in-process or by a fleet worker).
    const auto recomputed = static_cast<std::uint64_t>(scen.affected.size());
    const auto reused = static_cast<std::uint64_t>(n) - recomputed;
    scen.result.faults.accumulate(applied);
    scen.result.faults.scenario_groups_reused = reused;
    scen.result.faults.scenario_groups_recomputed = recomputed;
    if (stats) {
      stats->faults.accumulate(applied);
      stats->faults.scenario_groups_reused += reused;
      stats->faults.scenario_groups_recomputed += recomputed;
    }
    out.scenarios.push_back(std::move(scen));
  }
  return out;
}

}  // namespace fbedge
