// Deterministic ingest-artifact cache: generate once, analyze everywhere.
//
// The expensive half of run_edge_analysis is ingest — simulating every
// sampled session of every group and folding it into per-(window, route)
// aggregation cells. That product, the per-group GroupSeries, is a pure
// function of (World, DatasetConfig, GoodputConfig): the analysis knobs
// (thresholds, comparison config, thread count) only consume it. So the
// series is cached as a versioned on-disk artifact keyed by a content hash
// of exactly those inputs plus the format epoch (agg/series_io.h). A warm
// run loads the artifact, skips ingest entirely, and — because
// serialization round-trips bitwise — produces byte-identical output to
// the cold run at any thread count. Five edge benches share one artifact.
//
// Failure policy: the cache can only ever make a run faster, never wrong
// and never dead. A missing, truncated, checksum-failing, wrong-epoch, or
// wrong-key artifact reads as a miss and the run falls back to cold
// ingest; a failed write is reported in counters and otherwise ignored.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "goodput/hdratio.h"
#include "workload/generator.h"
#include "workload/world.h"

namespace fbedge {

/// Cache knobs threaded from the CLI (`--cache-dir`, FBEDGE_CACHE_DIR)
/// into run_edge_analysis. Default (empty dir) disables caching entirely.
struct IngestCacheOptions {
  /// Directory holding artifacts; created on first write. Empty = off.
  std::string dir;

  bool enabled() const { return !dir.empty(); }
};

/// Content hash of everything ingest depends on: the built world (groups,
/// routes, episodes, condition processes), the dataset/sampler config, the
/// goodput target, and the artifact format epoch. Two runs with equal keys
/// produce byte-identical ingest artifacts.
std::uint64_t ingest_cache_key(const World& world, const DatasetConfig& config,
                               const GoodputConfig& goodput);

/// Artifact file path for a key inside `dir`.
std::string ingest_artifact_path(const std::string& dir, std::uint64_t key);

/// A loaded artifact: `bytes` owns the file contents, `blobs` holds each
/// group's serialized GroupSeries as (offset, length) into `bytes`, in
/// group-id order.
struct IngestArtifact {
  std::string bytes;
  std::vector<std::pair<std::size_t, std::size_t>> blobs;
};

/// Pass as `expected_groups` when the blob count is not known up front
/// (tools/fbedge_analyze keys by input-file hash; the count is in the
/// artifact itself).
inline constexpr std::size_t kAnyGroupCount = static_cast<std::size_t>(-1);

/// Loads and validates the artifact at `path`. Returns false — leaving
/// `artifact` empty — unless the file exists, carries the current format
/// epoch, matches `key` and `expected_groups` (kAnyGroupCount accepts any
/// count), and passes its whole-file checksum. Never crashes on corrupt
/// bytes.
bool read_ingest_artifact(const std::string& path, std::uint64_t key,
                          std::size_t expected_groups, IngestArtifact& artifact);

/// Atomically writes an artifact (temp file + rename, so readers never see
/// a partial file) containing one blob per group in group-id order.
/// Returns false on I/O failure (the run simply stays uncached).
bool write_ingest_artifact(const std::string& path, std::uint64_t key,
                           const std::vector<std::string>& blobs);

}  // namespace fbedge
