// Deterministic ingest-artifact cache: generate once, analyze everywhere.
//
// The expensive half of run_edge_analysis is ingest — simulating every
// sampled session of every group and folding it into per-(window, route)
// aggregation cells. That product, the per-group GroupSeries, is a pure
// function of (World, DatasetConfig, GoodputConfig): the analysis knobs
// (thresholds, comparison config, thread count) only consume it. So the
// series is cached as a versioned on-disk artifact keyed by a content hash
// of exactly those inputs plus the format epoch (agg/series_io.h). A warm
// run loads the artifact, skips ingest entirely, and — because
// serialization round-trips bitwise — produces byte-identical output to
// the cold run at any thread count. Five edge benches share one artifact.
//
// Failure policy: the cache can only ever make a run faster, never wrong
// and never dead. A missing, truncated, checksum-failing, wrong-epoch, or
// wrong-key artifact reads as a miss and the run falls back to cold
// ingest; a failed write is reported in counters and otherwise ignored.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "goodput/hdratio.h"
#include "util/binio.h"
#include "workload/generator.h"
#include "workload/world.h"

namespace fbedge {

/// Cache knobs threaded from the CLI (`--cache-dir`, FBEDGE_CACHE_DIR)
/// into run_edge_analysis. Default (empty dir) disables caching entirely.
struct IngestCacheOptions {
  /// Directory holding artifacts; created on first write. Empty = off.
  std::string dir;

  bool enabled() const { return !dir.empty(); }
};

/// Content hash of everything ingest depends on: the built world (groups,
/// routes, episodes, condition processes), the dataset/sampler config, the
/// goodput target, and the artifact format epoch. Two runs with equal keys
/// produce byte-identical ingest artifacts.
std::uint64_t ingest_cache_key(const World& world, const DatasetConfig& config,
                               const GoodputConfig& goodput);

/// Artifact file path for a key inside `dir`.
std::string ingest_artifact_path(const std::string& dir, std::uint64_t key);

/// A loaded artifact: `bytes` owns the file contents, `blobs` holds each
/// group's serialized GroupSeries as (offset, length) into `bytes`, in
/// group-id order.
struct IngestArtifact {
  std::string bytes;
  std::vector<std::pair<std::size_t, std::size_t>> blobs;
};

/// Pass as `expected_groups` when the blob count is not known up front
/// (tools/fbedge_analyze keys by input-file hash; the count is in the
/// artifact itself).
inline constexpr std::size_t kAnyGroupCount = static_cast<std::size_t>(-1);

/// Loads and validates the artifact at `path`. Returns false — leaving
/// `artifact` empty — unless the file exists, carries the current format
/// epoch, matches `key` and `expected_groups` (kAnyGroupCount accepts any
/// count), and passes its whole-file checksum. Never crashes on corrupt
/// bytes.
bool read_ingest_artifact(const std::string& path, std::uint64_t key,
                          std::size_t expected_groups, IngestArtifact& artifact);

/// Atomically writes an artifact (temp file + rename, so readers never see
/// a partial file) containing one blob per group in group-id order.
/// Returns false on I/O failure (the run simply stays uncached).
bool write_ingest_artifact(const std::string& path, std::uint64_t key,
                           const std::vector<std::string>& blobs);

/// Streaming reader for the artifact format: open() validates the header
/// and the whole-file checksum in one bounded-memory pass (no blob is ever
/// resident), then next() yields each group's blob in group-id order into
/// a caller-owned buffer. The reduce-side twin of IngestArtifactWriter:
/// the shard coordinator (src/distrib/) streams artifacts through this so
/// its peak RSS is bounded by a chunk of blobs, never a whole shard —
/// read_ingest_artifact would materialize gigabytes for a big shard.
/// Same failure policy as the bulk reader: anything missing, truncated,
/// corrupt, wrong-epoch, or wrong-key fails open(); a next() that runs
/// into structural inconsistency closes the reader and returns false, and
/// the caller falls back to cold ingest for the groups it didn't get.
///
/// Warm-path amortization: a successful open() memoizes the artifact's
/// validated identity — (device, inode, size, mtime_ns) -> (key, groups) —
/// in a process-wide table, and a later open() of the same unchanged file
/// skips the whole-file checksum pass (which dominated warm loads) while
/// still enforcing the key / group-count checks against the memoized
/// header. Any change to the file (rewrite, truncation, rename-over — all
/// of which move size, inode, or mtime) misses the memo and takes the full
/// validating pass; a failed open is never memoized, so cold and
/// corruption rejection behave exactly as before. In-place corruption
/// within the kernel's mtime granularity is outrun by the atomic
/// temp+rename publish protocol: a published artifact is never modified in
/// place by any writer in this codebase.
class IngestArtifactReader {
 public:
  IngestArtifactReader() = default;
  ~IngestArtifactReader() { close(); }

  IngestArtifactReader(const IngestArtifactReader&) = delete;
  IngestArtifactReader& operator=(const IngestArtifactReader&) = delete;

  /// Validates the artifact at `path` (kAnyGroupCount accepts any count).
  /// On success the reader is positioned at the first blob.
  bool open(const std::string& path, std::uint64_t key,
            std::size_t expected_groups);

  /// Blob count from the validated header (0 when not open).
  std::uint64_t groups() const { return groups_; }

  /// Reads the next blob in group-id order; call at most groups() times.
  bool next(std::string& blob);

  void close();

 private:
  std::FILE* file_{nullptr};
  std::uint64_t groups_{0};
  std::uint64_t remaining_groups_{0};
  std::uint64_t body_remaining_{0};
};

/// Number of full checksum-validation passes IngestArtifactReader::open()
/// has run in this process (memo hits don't count). Tests pin the
/// amortization by diffing this across repeated opens.
std::uint64_t ingest_reader_checksum_passes();

/// Drops every memoized artifact identity (test isolation hook; also
/// called internally to bound the table).
void ingest_reader_memo_clear();

/// Streaming writer for the same artifact format: blobs are appended one at
/// a time (in group-id order) straight to a temp file, so a writer's memory
/// stays bounded by one group's blob no matter how many groups the artifact
/// holds — the property the multi-process shard workers (src/distrib/)
/// rely on for flat per-worker RSS. The temp name embeds the pid plus a
/// process-wide sequence number, so any number of writers racing on the
/// same destination path each stream into a private file and the winner is
/// whichever rename lands last — readers only ever observe complete,
/// checksummed artifacts. finish() publishes atomically; abandoning the
/// writer (destruction without finish) removes the temp file and leaves the
/// destination untouched.
class IngestArtifactWriter {
 public:
  IngestArtifactWriter() = default;
  ~IngestArtifactWriter();

  IngestArtifactWriter(const IngestArtifactWriter&) = delete;
  IngestArtifactWriter& operator=(const IngestArtifactWriter&) = delete;

  /// Starts an artifact for exactly `groups` blobs. Returns false on I/O
  /// failure (writer stays closed).
  bool open(const std::string& path, std::uint64_t key, std::uint64_t groups);

  /// Appends the next group's serialized series. Must be called exactly
  /// `groups` times, in group-id order.
  bool append(const std::string& blob);

  /// Writes the trailing checksum, closes, and atomically renames into
  /// place. Returns false (removing the temp file) on any failure or if
  /// the number of append() calls does not match open()'s group count.
  bool finish();

 private:
  void abandon();

  std::FILE* file_{nullptr};
  std::string path_;
  std::string tmp_;
  std::uint64_t expected_groups_{0};
  std::uint64_t appended_{0};
  Fnv64 checksum_;
  bool failed_{false};
};

}  // namespace fbedge
