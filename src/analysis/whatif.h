// What-if reporting: a deterministic metric block + verdict hash over one
// EdgeAnalysisResult, shared by tools/fbedge_whatif, bench/whatif_scenarios,
// and the scenario test suite so all three agree byte-for-byte on what a
// scenario's answer *is*.
//
// The verdict hash is FNV-1a over every decision-relevant output: headline
// fractions, CDF sizes and fixed quantile probes (bit-exact doubles),
// Table 1 / Table 2 contents, and the fault/scenario counters. Two runs
// with equal hashes answered the what-if identically; golden fixtures pin
// these hashes so calibration or routing changes that silently shift
// what-if answers fail a test instead of drifting.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "analysis/edge_analysis.h"

namespace fbedge {

/// Flattened, deterministically ordered summary of one analysis run.
struct WhatifReport {
  /// Headline metrics in a fixed order (names are stable JSON keys).
  std::vector<std::pair<std::string, double>> metrics;
  std::uint64_t verdict_hash{0};
};

/// Builds the report; pure function of the result contents.
WhatifReport whatif_report(const EdgeAnalysisResult& result);

/// Prints "name = %.10g" per metric plus the verdict hash; byte-identical
/// for equal results at any thread count.
void print_whatif_report(const WhatifReport& report, std::FILE* out = stdout);

/// Prints "delta name = %+.10g" for every metric shared by both reports.
void print_whatif_deltas(const WhatifReport& baseline,
                         const WhatifReport& scenario,
                         std::FILE* out = stdout);

}  // namespace fbedge
