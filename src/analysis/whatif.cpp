#include "analysis/whatif.h"

#include <algorithm>

#include "util/binio.h"

namespace fbedge {

namespace {

// Fixed quantile probes: enough to pin a CDF's shape without hashing every
// point (the point vectors' sizes are hashed, so silent droppage is caught
// regardless).
constexpr double kProbes[] = {0.01, 0.05, 0.10, 0.25, 0.50,
                              0.75, 0.90, 0.95, 0.99};

void hash_cdf(Fnv64& h, const WeightedCdf& cdf) {
  h.u64(cdf.size());
  if (cdf.empty()) return;
  for (const double q : kProbes) h.f64(cdf.quantile(q));
}

double quantile_or_zero(const WeightedCdf& cdf, double q) {
  return cdf.empty() ? 0.0 : cdf.quantile(q);
}

void hash_counters(Fnv64& h, const FaultCounters& c) {
  h.u64(c.truncated_records);
  h.u64(c.corrupt_records);
  h.u64(c.rejected_records);
  h.u64(c.duplicated_samples);
  h.u64(c.skewed_samples);
  h.u64(c.thinned_groups);
  h.u64(c.thinned_sessions);
  h.u64(c.pop_outage_groups);
  h.u64(c.dropped_windows);
  h.u64(c.stream_late_batches);
  h.u64(c.stream_duplicate_batches);
  h.u64(c.stream_dropped_rows);
  h.u64(c.task_aborts);
  h.u64(c.task_retries);
  h.u64(c.lost_groups);
  h.u64(c.scenario_drained_groups);
  h.u64(c.scenario_depref_groups);
  h.u64(c.scenario_flash_groups);
  h.u64(c.scenario_cable_cut_groups);
}

std::uint64_t verdict_hash(const EdgeAnalysisResult& r) {
  Fnv64 h;
  h.i64(r.groups_analyzed);
  h.f64(r.total_traffic);
  h.f64(r.degr_valid_traffic_rtt);
  h.f64(r.degr_valid_traffic_hd);
  h.f64(r.opp_valid_traffic_rtt);
  h.f64(r.opp_valid_traffic_hd);
  h.f64(r.rtt_within_3ms);
  h.f64(r.hd_within_0025);
  h.f64(r.rtt_improvable_5ms);
  h.f64(r.hd_improvable_005);
  for (const WeightedCdf* cdf :
       {&r.degr_rtt, &r.degr_rtt_lower, &r.degr_rtt_upper, &r.degr_hd,
        &r.degr_hd_lower, &r.degr_hd_upper, &r.opp_rtt, &r.opp_rtt_lower,
        &r.opp_rtt_upper, &r.opp_hd, &r.opp_hd_lower, &r.opp_hd_upper,
        &r.fig10_peer_vs_transit, &r.fig10_transit_vs_transit,
        &r.fig10_private_vs_public}) {
    hash_cdf(h, *cdf);
  }
  h.u64(r.table1.size());
  for (const auto& [key, cell] : r.table1) {
    h.u8(static_cast<std::uint8_t>(std::get<0>(key)));
    h.i64(std::get<1>(key));
    h.u8(static_cast<std::uint8_t>(std::get<2>(key)));
    h.i64(std::get<3>(key));
    h.f64(cell.group_traffic);
    h.f64(cell.event_traffic);
  }
  for (const auto* rows : {&r.table2_rtt, &r.table2_hd}) {
    h.u64(rows->size());
    for (const auto& [pair, row] : *rows) {
      h.u8(static_cast<std::uint8_t>(pair.first));
      h.u8(static_cast<std::uint8_t>(pair.second));
      h.f64(row.absolute);
      h.f64(row.longer);
      h.f64(row.prepended);
    }
  }
  hash_counters(h, r.faults);
  return h.value();
}

}  // namespace

WhatifReport whatif_report(const EdgeAnalysisResult& r) {
  WhatifReport rep;
  auto add = [&](const char* name, double value) {
    rep.metrics.emplace_back(name, value);
  };
  add("groups_analyzed", r.groups_analyzed);
  add("total_traffic", r.total_traffic);
  add("degr_valid_traffic_rtt", r.degr_valid_traffic_rtt);
  add("degr_valid_traffic_hd", r.degr_valid_traffic_hd);
  add("opp_valid_traffic_rtt", r.opp_valid_traffic_rtt);
  add("opp_valid_traffic_hd", r.opp_valid_traffic_hd);
  add("rtt_within_3ms", r.rtt_within_3ms);
  add("hd_within_0025", r.hd_within_0025);
  add("rtt_improvable_5ms", r.rtt_improvable_5ms);
  add("hd_improvable_005", r.hd_improvable_005);
  add("degr_rtt_p50_ms", quantile_or_zero(r.degr_rtt, 0.5) * 1e3);
  add("degr_rtt_p90_ms", quantile_or_zero(r.degr_rtt, 0.9) * 1e3);
  add("degr_rtt_p99_ms", quantile_or_zero(r.degr_rtt, 0.99) * 1e3);
  add("degr_hd_p50", quantile_or_zero(r.degr_hd, 0.5));
  add("degr_hd_p90", quantile_or_zero(r.degr_hd, 0.9));
  add("opp_rtt_p50_ms", quantile_or_zero(r.opp_rtt, 0.5) * 1e3);
  add("opp_rtt_p90_ms", quantile_or_zero(r.opp_rtt, 0.9) * 1e3);
  add("opp_rtt_p99_ms", quantile_or_zero(r.opp_rtt, 0.99) * 1e3);
  add("opp_hd_p50", quantile_or_zero(r.opp_hd, 0.5));
  add("opp_hd_p90", quantile_or_zero(r.opp_hd, 0.9));
  rep.verdict_hash = verdict_hash(r);
  return rep;
}

void print_whatif_report(const WhatifReport& report, std::FILE* out) {
  for (const auto& [name, value] : report.metrics) {
    std::fprintf(out, "%s = %.10g\n", name.c_str(), value);
  }
  std::fprintf(out, "verdict_hash = %016llx\n",
               static_cast<unsigned long long>(report.verdict_hash));
}

void print_whatif_deltas(const WhatifReport& baseline,
                         const WhatifReport& scenario, std::FILE* out) {
  const std::size_t n =
      std::min(baseline.metrics.size(), scenario.metrics.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& [name, base] = baseline.metrics[i];
    const double cur = scenario.metrics[i].second;
    std::fprintf(out, "delta %s = %+.10g\n", name.c_str(), cur - base);
  }
}

}  // namespace fbedge
