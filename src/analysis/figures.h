// Experiment runners for the paper's traffic-characterization and global-
// performance figures (Figs. 1-3, 6, 7). Each runner streams the synthetic
// dataset through the measurement pipeline and accumulates the published
// distributions.
#pragma once

#include <array>
#include <cstdint>

#include "analysis/session_metrics.h"
#include "runtime/pipeline.h"
#include "stats/cdf.h"
#include "util/geo.h"
#include "workload/generator.h"

namespace fbedge {

/// Figures 1-3: session duration, busy time, bytes, transaction counts.
struct TrafficCharacterization {
  WeightedCdf duration_all, duration_h1, duration_h2;      // Fig. 1(a), seconds
  WeightedCdf busy_all, busy_h1, busy_h2;                  // Fig. 1(b), percent
  WeightedCdf session_bytes, response_bytes, media_response_bytes;  // Fig. 2
  WeightedCdf txns_all, txns_h1, txns_h2;                  // Fig. 3
  Bytes traffic_total{0};
  /// Traffic on sessions with >= 50 transactions (§2.3: more than half).
  Bytes traffic_sessions_50plus{0};
  std::uint64_t sessions{0};
};

TrafficCharacterization characterize_traffic(const World& world,
                                             const DatasetConfig& config);

/// Figures 6-7 plus the §4 ablations.
struct GlobalPerformance {
  WeightedCdf minrtt_all;  // per-session MinRTT, seconds
  std::array<WeightedCdf, kNumContinents> minrtt_continent;
  WeightedCdf hdratio_all;  // sessions with >= 1 testable transaction
  std::array<WeightedCdf, kNumContinents> hdratio_continent;

  /// D1 ablation: naive Btotal/Ttotal goodput (paper: median 0.69 vs 1.0).
  WeightedCdf hdratio_naive_all;

  /// Fig. 7: HDratio distribution by MinRTT bucket
  /// (0-30 ms, 31-50 ms, 51-80 ms, 81+ ms).
  std::array<WeightedCdf, 4> hdratio_by_rtt;

  std::uint64_t sessions_total{0};
  std::uint64_t sessions_hd_testable{0};
  std::uint64_t filtered_hosting{0};

  static int rtt_bucket(Duration min_rtt) {
    const double ms_value = to_ms(min_rtt);
    if (ms_value <= 30) return 0;
    if (ms_value <= 50) return 1;
    if (ms_value <= 80) return 2;
    return 3;
  }

  /// Folds another group's partial in (sharded-runtime reducer).
  void merge(const GlobalPerformance& other);
};

/// Runs the Fig. 6/7 pipeline over every user group, sharded across
/// `runtime.threads` workers. Per-group partials are merged in group-id
/// order, so the result is byte-identical for any thread count.
GlobalPerformance measure_global_performance(
    const World& world, const DatasetConfig& config, GoodputConfig goodput = {},
    const RuntimeOptions& runtime = RuntimeOptions::sequential(),
    RunStats* stats = nullptr);

}  // namespace fbedge
