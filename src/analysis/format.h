// Plain-text output helpers shared by the bench binaries: every paper
// figure is printed as a CDF series or a table of rows.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/edge_analysis.h"
#include "stats/cdf.h"

namespace fbedge {

/// Prints a section header.
void print_header(const std::string& title);

/// Prints one CDF as "value fraction" rows at `points` quantiles, with a
/// label column.
void print_cdf(const std::string& label, const WeightedCdf& cdf, int points = 20,
               double value_scale = 1.0);

/// Prints several labelled quantiles of a CDF on one line
/// (p10/p25/p50/p75/p90).
void print_quantile_summary(const std::string& label, const WeightedCdf& cdf,
                            double value_scale = 1.0);

/// Prints "fraction of weight <= x" probes.
void print_fraction_at(const std::string& label, const WeightedCdf& cdf,
                       const std::vector<double>& xs, double value_scale = 1.0);

/// Prints one Table 1 block: class x scope rows (overall then per
/// continent), one "group event" traffic-fraction pair per threshold.
/// Shared by bench/table1_classes and tools/fbedge_scale so the two emit
/// byte-identical tables — which is what the scale-equivalence check diffs.
void print_table1(const EdgeAnalysisResult& result, AnalysisKind kind,
                  const std::vector<std::string>& threshold_labels);

}  // namespace fbedge
