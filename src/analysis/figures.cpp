#include "analysis/figures.h"

namespace fbedge {

TrafficCharacterization characterize_traffic(const World& world,
                                             const DatasetConfig& config) {
  TrafficCharacterization out;
  DatasetGenerator generator(world, config);
  generator.generate([&](const SessionSample& s) {
    if (!SessionSampler::keep_for_analysis(s.client)) return;
    ++out.sessions;
    const bool h2 = s.version == HttpVersion::kHttp2;

    out.duration_all.add(s.duration);
    (h2 ? out.duration_h2 : out.duration_h1).add(s.duration);

    const double busy_pct = 100.0 * std::clamp(s.busy_time / s.duration, 0.0, 1.0);
    out.busy_all.add(busy_pct);
    (h2 ? out.busy_h2 : out.busy_h1).add(busy_pct);

    if (s.total_bytes > 0) out.session_bytes.add(static_cast<double>(s.total_bytes));
    for (const auto& w : s.writes) {
      out.response_bytes.add(static_cast<double>(w.bytes));
      if (s.endpoint == EndpointClass::kMedia) {
        out.media_response_bytes.add(static_cast<double>(w.bytes));
      }
    }

    out.txns_all.add(s.num_transactions);
    (h2 ? out.txns_h2 : out.txns_h1).add(s.num_transactions);

    out.traffic_total += s.total_bytes;
    if (s.num_transactions >= 50) out.traffic_sessions_50plus += s.total_bytes;
  });
  return out;
}

void GlobalPerformance::merge(const GlobalPerformance& other) {
  minrtt_all.merge(other.minrtt_all);
  hdratio_all.merge(other.hdratio_all);
  hdratio_naive_all.merge(other.hdratio_naive_all);
  for (std::size_t c = 0; c < minrtt_continent.size(); ++c) {
    minrtt_continent[c].merge(other.minrtt_continent[c]);
    hdratio_continent[c].merge(other.hdratio_continent[c]);
  }
  for (std::size_t b = 0; b < hdratio_by_rtt.size(); ++b) {
    hdratio_by_rtt[b].merge(other.hdratio_by_rtt[b]);
  }
  sessions_total += other.sessions_total;
  sessions_hd_testable += other.sessions_hd_testable;
  filtered_hosting += other.filtered_hosting;
}

namespace {

/// Per-worker arenas for the batched fig6 sweep (see EdgeScratch in
/// edge_analysis.cpp for the reuse/determinism contract).
struct PerfScratch {
  SessionBatch batch;
  CoalescedBatch coalesced;
  std::vector<SessionHd> hd;
  std::vector<std::uint8_t> skip;
};

}  // namespace

GlobalPerformance measure_global_performance(const World& world,
                                             const DatasetConfig& config,
                                             GoodputConfig goodput,
                                             const RuntimeOptions& runtime,
                                             RunStats* stats) {
  // The generator is immutable after construction; every shard shares it
  // and draws from per-group Rng streams (util/rng.h entity_stream).
  DatasetGenerator generator(world, config);
  return shard_map_reduce_scratch<PerfScratch>(
      world, runtime, GlobalPerformance{},
      [&](PerfScratch& scratch, const UserGroupProfile& group, std::size_t) {
        GlobalPerformance part;
        const int continent = static_cast<int>(group.continent);
        generator.generate_group_batched(
            group, scratch.batch, [&](int, const SessionBatch& b) {
              const std::size_t rows = b.size();
              // §4 uses measurements from the policy-preferred route only;
              // hosting rows fall to the §2.2.4 filter. Neither needs the
              // goodput work, so both are masked out before coalescing.
              scratch.skip.resize(rows);
              for (std::size_t i = 0; i < rows; ++i) {
                scratch.skip[i] =
                    (b.hosting[i] != 0 || b.route_index[i] != 0) ? 1 : 0;
              }
              coalesce_batch(b, scratch.skip.data(), scratch.coalesced);
              scratch.hd.resize(rows);
              evaluate_hd_batch(scratch.coalesced.txns.data(),
                                scratch.coalesced.offset.data(),
                                scratch.coalesced.count.data(), rows,
                                scratch.hd.data(), goodput);
              for (std::size_t i = 0; i < rows; ++i) {
                if (b.hosting[i] != 0) {
                  ++part.filtered_hosting;
                  continue;
                }
                if (b.route_index[i] != 0) continue;
                ++part.sessions_total;

                const Duration min_rtt = b.min_rtt[i];
                part.minrtt_all.add(min_rtt);
                part.minrtt_continent[static_cast<std::size_t>(continent)].add(
                    min_rtt);

                const SessionHd& hd = scratch.hd[i];
                if (const auto hdratio = hd.hdratio()) {
                  ++part.sessions_hd_testable;
                  part.hdratio_all.add(*hdratio);
                  part.hdratio_continent[static_cast<std::size_t>(continent)].add(
                      *hdratio);
                  part.hdratio_by_rtt[static_cast<std::size_t>(
                                          GlobalPerformance::rtt_bucket(min_rtt))]
                      .add(*hdratio);
                  if (const auto naive = hd.hdratio_naive()) {
                    part.hdratio_naive_all.add(*naive);
                  }
                }
              }
            });
        return part;
      },
      [](GlobalPerformance& acc, GlobalPerformance&& part, std::size_t) {
        acc.merge(part);
      },
      stats);
}

}  // namespace fbedge
