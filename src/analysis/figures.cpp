#include "analysis/figures.h"

namespace fbedge {

TrafficCharacterization characterize_traffic(const World& world,
                                             const DatasetConfig& config) {
  TrafficCharacterization out;
  DatasetGenerator generator(world, config);
  generator.generate([&](const SessionSample& s) {
    if (!SessionSampler::keep_for_analysis(s.client)) return;
    ++out.sessions;
    const bool h2 = s.version == HttpVersion::kHttp2;

    out.duration_all.add(s.duration);
    (h2 ? out.duration_h2 : out.duration_h1).add(s.duration);

    const double busy_pct = 100.0 * std::clamp(s.busy_time / s.duration, 0.0, 1.0);
    out.busy_all.add(busy_pct);
    (h2 ? out.busy_h2 : out.busy_h1).add(busy_pct);

    if (s.total_bytes > 0) out.session_bytes.add(static_cast<double>(s.total_bytes));
    for (const auto& w : s.writes) {
      out.response_bytes.add(static_cast<double>(w.bytes));
      if (s.endpoint == EndpointClass::kMedia) {
        out.media_response_bytes.add(static_cast<double>(w.bytes));
      }
    }

    out.txns_all.add(s.num_transactions);
    (h2 ? out.txns_h2 : out.txns_h1).add(s.num_transactions);

    out.traffic_total += s.total_bytes;
    if (s.num_transactions >= 50) out.traffic_sessions_50plus += s.total_bytes;
  });
  return out;
}

GlobalPerformance measure_global_performance(const World& world,
                                             const DatasetConfig& config,
                                             GoodputConfig goodput) {
  GlobalPerformance out;
  DatasetGenerator generator(world, config);
  generator.generate([&](const SessionSample& s) {
    if (!SessionSampler::keep_for_analysis(s.client)) {
      ++out.filtered_hosting;
      return;
    }
    // §4 uses measurements from the policy-preferred route only.
    if (s.route_index != 0) return;
    const SessionMetrics m = compute_session_metrics(s, goodput);
    ++out.sessions_total;

    const int continent = static_cast<int>(s.client.continent);
    out.minrtt_all.add(m.min_rtt);
    out.minrtt_continent[static_cast<std::size_t>(continent)].add(m.min_rtt);

    if (m.hdratio) {
      ++out.sessions_hd_testable;
      out.hdratio_all.add(*m.hdratio);
      out.hdratio_continent[static_cast<std::size_t>(continent)].add(*m.hdratio);
      out.hdratio_by_rtt[static_cast<std::size_t>(
                            GlobalPerformance::rtt_bucket(m.min_rtt))]
          .add(*m.hdratio);
      if (m.hdratio_naive) out.hdratio_naive_all.add(*m.hdratio_naive);
    }
  });
  return out;
}

}  // namespace fbedge
