#include "analysis/figures.h"

namespace fbedge {

TrafficCharacterization characterize_traffic(const World& world,
                                             const DatasetConfig& config) {
  TrafficCharacterization out;
  DatasetGenerator generator(world, config);
  generator.generate([&](const SessionSample& s) {
    if (!SessionSampler::keep_for_analysis(s.client)) return;
    ++out.sessions;
    const bool h2 = s.version == HttpVersion::kHttp2;

    out.duration_all.add(s.duration);
    (h2 ? out.duration_h2 : out.duration_h1).add(s.duration);

    const double busy_pct = 100.0 * std::clamp(s.busy_time / s.duration, 0.0, 1.0);
    out.busy_all.add(busy_pct);
    (h2 ? out.busy_h2 : out.busy_h1).add(busy_pct);

    if (s.total_bytes > 0) out.session_bytes.add(static_cast<double>(s.total_bytes));
    for (const auto& w : s.writes) {
      out.response_bytes.add(static_cast<double>(w.bytes));
      if (s.endpoint == EndpointClass::kMedia) {
        out.media_response_bytes.add(static_cast<double>(w.bytes));
      }
    }

    out.txns_all.add(s.num_transactions);
    (h2 ? out.txns_h2 : out.txns_h1).add(s.num_transactions);

    out.traffic_total += s.total_bytes;
    if (s.num_transactions >= 50) out.traffic_sessions_50plus += s.total_bytes;
  });
  return out;
}

void GlobalPerformance::merge(const GlobalPerformance& other) {
  minrtt_all.merge(other.minrtt_all);
  hdratio_all.merge(other.hdratio_all);
  hdratio_naive_all.merge(other.hdratio_naive_all);
  for (std::size_t c = 0; c < minrtt_continent.size(); ++c) {
    minrtt_continent[c].merge(other.minrtt_continent[c]);
    hdratio_continent[c].merge(other.hdratio_continent[c]);
  }
  for (std::size_t b = 0; b < hdratio_by_rtt.size(); ++b) {
    hdratio_by_rtt[b].merge(other.hdratio_by_rtt[b]);
  }
  sessions_total += other.sessions_total;
  sessions_hd_testable += other.sessions_hd_testable;
  filtered_hosting += other.filtered_hosting;
}

GlobalPerformance measure_global_performance(const World& world,
                                             const DatasetConfig& config,
                                             GoodputConfig goodput,
                                             const RuntimeOptions& runtime,
                                             RunStats* stats) {
  // The generator is immutable after construction; every shard shares it
  // and draws from per-group Rng streams (util/rng.h entity_stream).
  DatasetGenerator generator(world, config);
  return shard_map_reduce(
      world, runtime, GlobalPerformance{},
      [&](const UserGroupProfile& group, std::size_t) {
        GlobalPerformance part;
        CoalescedSession coalesce_scratch;
        generator.generate_group(group, [&](const SessionSample& s) {
          if (!SessionSampler::keep_for_analysis(s.client)) {
            ++part.filtered_hosting;
            return;
          }
          // §4 uses measurements from the policy-preferred route only.
          if (s.route_index != 0) return;
          const SessionMetrics m = compute_session_metrics(s, coalesce_scratch, goodput);
          ++part.sessions_total;

          const int continent = static_cast<int>(s.client.continent);
          part.minrtt_all.add(m.min_rtt);
          part.minrtt_continent[static_cast<std::size_t>(continent)].add(m.min_rtt);

          if (m.hdratio) {
            ++part.sessions_hd_testable;
            part.hdratio_all.add(*m.hdratio);
            part.hdratio_continent[static_cast<std::size_t>(continent)].add(
                *m.hdratio);
            part.hdratio_by_rtt[static_cast<std::size_t>(
                                    GlobalPerformance::rtt_bucket(m.min_rtt))]
                .add(*m.hdratio);
            if (m.hdratio_naive) part.hdratio_naive_all.add(*m.hdratio_naive);
          }
        });
        return part;
      },
      [](GlobalPerformance& acc, GlobalPerformance&& part, std::size_t) {
        acc.merge(part);
      },
      stats);
}

}  // namespace fbedge
