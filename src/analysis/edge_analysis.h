// Degradation / routing-opportunity sweep over the full dataset (§5, §6).
//
// One pass over the synthetic world per run: each user group's 10-day
// series is generated, aggregated into (window x route) cells, analyzed for
// degradation (vs the group baseline) and opportunity (preferred vs best
// alternate), classified temporally at each threshold, and folded into the
// outputs of Fig. 8, Fig. 9, Fig. 10, Table 1, and Table 2.
#pragma once

#include <map>
#include <vector>

#include "agg/classifier.h"
#include "agg/degradation.h"
#include "agg/opportunity.h"
#include "analysis/ingest_cache.h"
#include "analysis/session_metrics.h"
#include "faultsim/fault_plan.h"
#include "runtime/pipeline.h"
#include "scenario/scenario.h"
#include "stats/cdf.h"
#include "util/geo.h"
#include "workload/generator.h"

namespace fbedge {

/// Thresholds studied in Table 1.
struct AnalysisThresholds {
  std::vector<Duration> degradation_rtt{0.005, 0.010, 0.020, 0.050};
  std::vector<double> degradation_hd{0.05, 0.10, 0.20, 0.50};
  std::vector<Duration> opportunity_rtt{0.005, 0.010};
  std::vector<double> opportunity_hd{0.05};
};

/// Which of the four Table 1 analyses a record belongs to.
enum class AnalysisKind : std::uint8_t {
  kDegradationRtt,
  kDegradationHd,
  kOpportunityRtt,
  kOpportunityHd,
};

constexpr const char* to_string(AnalysisKind k) {
  switch (k) {
    case AnalysisKind::kDegradationRtt: return "Degradation MinRTT_P50";
    case AnalysisKind::kDegradationHd: return "Degradation HDratio_P50";
    case AnalysisKind::kOpportunityRtt: return "Opportunity MinRTT_P50";
    case AnalysisKind::kOpportunityHd: return "Opportunity HDratio_P50";
  }
  return "?";
}

/// One Table 1 cell: traffic fractions for a (analysis, threshold, class,
/// continent) combination. `group_traffic` weights user groups by total
/// traffic (the paper's blue column); `event_traffic` is the traffic sent
/// during event windows (orange column). Both are normalized by the
/// classified traffic of the corresponding scope (overall or continent).
struct Table1Cell {
  double group_traffic{0};
  double event_traffic{0};
};

/// Table 2 row: opportunity by (preferred, alternate) relationship pair.
struct Table2Row {
  double absolute{0};   // fraction of total traffic with opportunity
  double longer{0};     // ... where the alternate lost on AS-path length
  double prepended{0};  // ... where the alternate is more prepended
};

struct EdgeAnalysisResult {
  // ---- Fig. 8: degradation CDFs (traffic-weighted, one point per valid
  // aggregation). The lower/upper CDFs are the CI-bound distributions
  // rendered as the shaded band in the paper.
  WeightedCdf degr_rtt, degr_rtt_lower, degr_rtt_upper;   // seconds
  WeightedCdf degr_hd, degr_hd_lower, degr_hd_upper;
  /// Fraction of traffic with valid aggregations (paper: 94.8% / 89.5%).
  double degr_valid_traffic_rtt{0};
  double degr_valid_traffic_hd{0};

  // ---- Fig. 9: preferred-vs-alternate difference CDFs.
  // RTT: preferred - alternate (positive = alternate faster);
  // HD: alternate - preferred (positive = alternate better).
  WeightedCdf opp_rtt, opp_rtt_lower, opp_rtt_upper;
  WeightedCdf opp_hd, opp_hd_lower, opp_hd_upper;
  double opp_valid_traffic_rtt{0};
  double opp_valid_traffic_hd{0};

  // ---- Headline §6.2 numbers.
  /// Traffic fraction whose preferred MinRTT_P50 is within 3 ms of optimal.
  double rtt_within_3ms{0};
  /// Traffic fraction whose preferred HDratio_P50 is within 0.025 of optimal.
  double hd_within_0025{0};
  /// Traffic fraction improvable by >= 5 ms / >= 0.05.
  double rtt_improvable_5ms{0};
  double hd_improvable_005{0};

  // ---- Table 1.
  // key: (kind, threshold index, class, continent index or -1 for overall)
  std::map<std::tuple<AnalysisKind, int, TemporalClass, int>, Table1Cell> table1;

  // ---- Table 2 (at the first opportunity threshold).
  std::map<std::pair<Relationship, Relationship>, Table2Row> table2_rtt;
  std::map<std::pair<Relationship, Relationship>, Table2Row> table2_hd;

  // ---- Fig. 10: MinRTT_P50 difference (preferred - alternate) by
  // relationship comparison, traffic-weighted.
  WeightedCdf fig10_peer_vs_transit;
  WeightedCdf fig10_transit_vs_transit;
  WeightedCdf fig10_private_vs_public;

  double total_traffic{0};
  int groups_analyzed{0};
  /// Sessions aggregated across every (window, route) cell analyzed — the
  /// throughput denominator for sessions/s scale tracking. Counted from
  /// the series (not at ingest), so warm/artifact-served runs report the
  /// same number as cold runs.
  std::uint64_t sessions_analyzed{0};

  /// Injected-fault tally for this run (all zeros on a fault-free run):
  /// sampler/aggregation counters summed over groups in group-id order,
  /// plus the runtime layer's abort/retry/loss counts.
  FaultCounters faults;
};

/// Runs the full §5/§6 sweep, sharded by user group across
/// `runtime.threads` workers. Per-group contributions are folded in
/// group-id order, so the result is byte-identical for any thread count.
///
/// `faults` injects a deterministic chaos schedule (faultsim/): invalid
/// records are rejected at ingest, dropped windows and silenced groups are
/// excluded from rollups and classification (they become kExcluded /
/// invalid-window cases under the §3.4 validity rules, never crashes), and
/// shard aborts are retried up to the plan's attempt budget with lost
/// groups skipped and reported. The default (zeroed) plan takes exactly
/// the fault-free code path: outputs are byte-identical to a build without
/// faultsim in the loop, at any thread count.
///
/// `cache` (analysis/ingest_cache.h) persists the per-group ingest product
/// so later runs with the same (world, config, goodput) skip session
/// generation entirely. Warm runs are byte-identical to cold runs at any
/// thread count; any unusable artifact silently falls back to cold ingest.
/// Runs with any fault injected bypass the cache completely (no read, no
/// write) — faulted series must never poison or be served from the cache.
///
/// `scenario` (scenario/scenario.h) runs the sweep against
/// apply_scenario(world, scenario) instead of `world`: a declarative
/// what-if (PoP drain, transit depref, flash crowd, cable cut) whose
/// applied-perturbation counts land in the result's FaultCounters
/// (scenario_* fields). An empty pack takes exactly the scenario-free code
/// path — byte-identical output at any thread count. Scenario runs keep
/// the cache enabled: ingest_cache_key hashes the (perturbed) world
/// contents, so baseline and scenario artifacts can never collide.
EdgeAnalysisResult run_edge_analysis(
    const World& world, const DatasetConfig& config,
    const AnalysisThresholds& thresholds = {},
    const ComparisonConfig& comparison = {}, GoodputConfig goodput = {},
    const RuntimeOptions& runtime = RuntimeOptions::sequential(),
    RunStats* stats = nullptr, const FaultPlan& faults = {},
    const IngestCacheOptions& cache = {}, const ScenarioPack& scenario = {});

}  // namespace fbedge
