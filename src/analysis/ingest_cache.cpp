#include "analysis/ingest_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#include <unordered_map>

#include "agg/series_io.h"
#include "util/binio.h"

namespace fbedge {
namespace {

constexpr char kMagic[8] = {'F', 'B', 'E', 'C', 'A', 'C', 'H', 'E'};
// magic + epoch + key + group count ... trailing checksum.
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;
constexpr std::size_t kChecksumBytes = 8;

void hash_route(Fnv64& h, const RouteProfile& rp) {
  h.u32(rp.route.prefix.addr);
  h.u32(static_cast<std::uint32_t>(rp.route.prefix.length));
  h.u64(rp.route.as_path.size());
  for (const std::uint32_t asn : rp.route.as_path) h.u32(asn);
  h.u8(static_cast<std::uint8_t>(rp.route.relationship));
  h.f64(rp.rtt_offset);
  h.f64(rp.base_loss);
  h.f64(rp.capacity);
  h.u8(rp.diurnal_congestion ? 1 : 0);
  h.f64(rp.peak_extra_delay);
  h.f64(rp.peak_extra_loss);
}

void hash_group(Fnv64& h, const UserGroupProfile& g) {
  h.u32(g.key.pop.value);
  h.u32(g.key.prefix.addr);
  h.u32(static_cast<std::uint32_t>(g.key.prefix.length));
  h.u32(g.key.country.value);
  h.u8(static_cast<std::uint8_t>(g.continent));
  h.u32(g.asn.value);
  h.f64(g.tz_offset_hours);
  h.f64(g.location.lat);
  h.f64(g.location.lon);
  h.f64(g.pop_distance_km);
  h.u8(g.remote_served ? 1 : 0);
  h.f64(g.base_rtt);
  h.f64(g.jitter_mean);
  h.f64(g.non_hd_fraction);
  h.f64(g.sessions_per_window);
  h.f64(g.weight);
  h.u8(g.dest_diurnal ? 1 : 0);
  h.f64(g.dest_peak_delay);
  h.f64(g.dest_peak_loss);
  h.u64(g.episodes.size());
  for (const Episode& e : g.episodes) {
    h.u32(static_cast<std::uint32_t>(e.start_window));
    h.u32(static_cast<std::uint32_t>(e.end_window));
    h.u32(static_cast<std::uint32_t>(e.route_index));
    h.f64(e.extra_delay);
    h.f64(e.extra_loss);
  }
  h.u64(g.routes.size());
  for (const RouteProfile& rp : g.routes) hash_route(h, rp);
}

// Validated-artifact memo for IngestArtifactReader::open(): maps a path to
// the file identity that passed the full checksum pass and the header
// values read during it. A hit skips re-hashing the whole file — the
// warm-path cost that dominated repeated artifact opens — while key and
// group-count checks still run against the memoized header. Only fully
// successful validations are stored; identity is (dev, ino, size,
// mtime_ns), so any rewrite, truncation, or rename-over misses.
struct ReaderMemo {
  dev_t dev{};
  ino_t ino{};
  std::int64_t size{0};
  std::int64_t mtime_ns{0};
  std::uint64_t key{0};
  std::uint64_t groups{0};
};

std::mutex g_reader_memo_mutex;
std::unordered_map<std::string, ReaderMemo>& reader_memo() {
  static auto* memo = new std::unordered_map<std::string, ReaderMemo>();
  return *memo;
}
std::atomic<std::uint64_t> g_reader_checksum_passes{0};
// Artifacts are few (one per cache key / shard); the bound only guards
// against pathological path churn.
constexpr std::size_t kReaderMemoMaxEntries = 256;

std::int64_t stat_mtime_ns(const struct stat& st) {
  return static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1'000'000'000 +
         static_cast<std::int64_t>(st.st_mtim.tv_nsec);
}

}  // namespace

std::uint64_t ingest_reader_checksum_passes() {
  return g_reader_checksum_passes.load(std::memory_order_relaxed);
}

void ingest_reader_memo_clear() {
  std::lock_guard<std::mutex> lock(g_reader_memo_mutex);
  reader_memo().clear();
}

std::uint64_t ingest_cache_key(const World& world, const DatasetConfig& config,
                               const GoodputConfig& goodput) {
  Fnv64 h;
  h.u32(kIngestArtifactEpoch);
  // Dataset / sampler knobs the generator reads.
  h.u64(config.seed);
  h.u32(static_cast<std::uint32_t>(config.days));
  h.f64(config.session_scale);
  h.f64(config.sampler.sample_rate);
  h.u32(static_cast<std::uint32_t>(config.sampler.num_alternates));
  h.f64(config.sampler.preferred_fraction);
  h.u64(config.sampler.salt);
  h.f64(config.hosting_fraction);
  h.f64(config.bufferbloat_fraction);
  // Goodput target (HD evaluation happens at ingest).
  h.f64(goodput.target_goodput);
  // The built world, group by group. Hashing the world — not the
  // WorldConfig — means callers that assembled a world by hand (tests) are
  // keyed correctly too; build_world is deterministic, so a config maps to
  // exactly one world content hash.
  h.u64(world.pops.size());
  for (const PopInfo& p : world.pops) {
    h.u32(p.id.value);
    h.u8(static_cast<std::uint8_t>(p.continent));
    h.bytes(p.name.data(), p.name.size());
    h.u8(0);  // name terminator so adjacent strings cannot alias
  }
  h.u64(world.groups.size());
  for (const UserGroupProfile& g : world.groups) hash_group(h, g);
  return h.value();
}

std::string ingest_artifact_path(const std::string& dir, std::uint64_t key) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx",
                static_cast<unsigned long long>(key));
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path.push_back('/');
  path += "ingest-";
  path += name;
  path += ".fbecache";
  return path;
}

bool read_ingest_artifact(const std::string& path, std::uint64_t key,
                          std::size_t expected_groups, IngestArtifact& artifact) {
  artifact.bytes.clear();
  artifact.blobs.clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  if (file_size < static_cast<long>(kHeaderBytes + kChecksumBytes)) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  artifact.bytes.resize(static_cast<std::size_t>(file_size));
  const std::size_t got =
      std::fread(artifact.bytes.data(), 1, artifact.bytes.size(), f);
  std::fclose(f);
  if (got != artifact.bytes.size()) {
    artifact.bytes.clear();
    return false;
  }

  // Whole-file checksum first: everything before the trailing u64 must
  // hash to it, so any flipped bit anywhere reads as a miss.
  const std::size_t body = artifact.bytes.size() - kChecksumBytes;
  Fnv64 sum;
  sum.bytes(artifact.bytes.data(), body);
  ByteReader tail(artifact.bytes.data() + body, kChecksumBytes);
  if (tail.u64() != sum.value()) {
    artifact.bytes.clear();
    return false;
  }

  ByteReader r(artifact.bytes.data(), body);
  char magic[8];
  for (char& c : magic) c = static_cast<char>(r.u8());
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    artifact.bytes.clear();
    return false;
  }
  const std::uint32_t epoch = r.u32();
  const std::uint64_t stored_key = r.u64();
  const std::uint64_t groups = r.u64();
  // Each blob costs at least its u64 length prefix, bounding a plausible
  // group count by the bytes present (a corrupt count cannot trigger an
  // absurd reserve — the checksum should catch it first, but belt and
  // braces for hand-built files).
  if (!r.ok() || epoch != kIngestArtifactEpoch || stored_key != key ||
      (expected_groups != kAnyGroupCount && groups != expected_groups) ||
      groups > r.remaining() / 8) {
    artifact.bytes.clear();
    return false;
  }
  artifact.blobs.reserve(static_cast<std::size_t>(groups));
  for (std::uint64_t g = 0; g < groups; ++g) {
    const std::uint64_t len = r.u64();
    if (!r.ok() || len > r.remaining()) {
      artifact.bytes.clear();
      artifact.blobs.clear();
      return false;
    }
    artifact.blobs.emplace_back(r.position(), static_cast<std::size_t>(len));
    r.skip(static_cast<std::size_t>(len));
  }
  if (!r.ok() || r.remaining() != 0) {
    artifact.bytes.clear();
    artifact.blobs.clear();
    return false;
  }
  return true;
}

void IngestArtifactReader::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  groups_ = 0;
  remaining_groups_ = 0;
  body_remaining_ = 0;
}

bool IngestArtifactReader::open(const std::string& path, std::uint64_t key,
                                std::size_t expected_groups) {
  close();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  struct stat st{};
  if (::fstat(::fileno(f), &st) != 0) {
    std::fclose(f);
    return false;
  }
  const auto file_size = static_cast<long>(st.st_size);
  if (file_size < static_cast<long>(kHeaderBytes + kChecksumBytes)) {
    std::fclose(f);
    return false;
  }
  const std::size_t body =
      static_cast<std::size_t>(file_size) - kChecksumBytes;

  // Memo hit: this exact file (device, inode, size, mtime) already passed
  // a full validating pass in this process. Skip the checksum; the key /
  // group-count checks still run, against the memoized header.
  {
    std::lock_guard<std::mutex> lock(g_reader_memo_mutex);
    const auto it = reader_memo().find(path);
    if (it != reader_memo().end() && it->second.dev == st.st_dev &&
        it->second.ino == st.st_ino &&
        it->second.size == static_cast<std::int64_t>(st.st_size) &&
        it->second.mtime_ns == stat_mtime_ns(st)) {
      const std::uint64_t groups = it->second.groups;
      if (it->second.key != key ||
          (expected_groups != kAnyGroupCount && groups != expected_groups) ||
          std::fseek(f, static_cast<long>(kHeaderBytes), SEEK_SET) != 0) {
        std::fclose(f);
        return false;
      }
      file_ = f;
      groups_ = groups;
      remaining_groups_ = groups;
      body_remaining_ = body - kHeaderBytes;
      return true;
    }
  }

  // Checksum the whole body in fixed-size chunks (the header rides along
  // in the first chunk — kHeaderBytes <= body is guaranteed by the size
  // check above), then compare against the trailing u64. Memory stays
  // O(chunk) no matter how large the artifact is.
  g_reader_checksum_passes.fetch_add(1, std::memory_order_relaxed);
  char header[kHeaderBytes];
  char buf[1 << 16];
  Fnv64 sum;
  std::size_t hashed = 0;
  while (hashed < body) {
    const std::size_t want = std::min(body - hashed, sizeof(buf));
    if (std::fread(buf, 1, want, f) != want) {
      std::fclose(f);
      return false;
    }
    if (hashed == 0) std::memcpy(header, buf, kHeaderBytes);
    sum.bytes(buf, want);
    hashed += want;
  }
  char tail_bytes[kChecksumBytes];
  if (std::fread(tail_bytes, 1, kChecksumBytes, f) != kChecksumBytes) {
    std::fclose(f);
    return false;
  }
  ByteReader tail(tail_bytes, kChecksumBytes);
  if (tail.u64() != sum.value()) {
    std::fclose(f);
    return false;
  }

  ByteReader r(header, kHeaderBytes);
  char magic[8];
  for (char& c : magic) c = static_cast<char>(r.u8());
  const std::uint32_t epoch = r.u32();
  const std::uint64_t stored_key = r.u64();
  const std::uint64_t groups = r.u64();
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 || !r.ok() ||
      epoch != kIngestArtifactEpoch || stored_key != key ||
      (expected_groups != kAnyGroupCount && groups != expected_groups) ||
      groups > (body - kHeaderBytes) / 8 ||
      std::fseek(f, static_cast<long>(kHeaderBytes), SEEK_SET) != 0) {
    std::fclose(f);
    return false;
  }
  {
    // Memoize only this fully validated identity. Re-stat the open fd so a
    // concurrent rename-over between the first fstat and here cannot pin a
    // stale identity to the path (the fd still reads the old inode, whose
    // bytes are the ones that just validated — but the *path* may now name
    // a different file, so the memo must record what we actually hashed;
    // a mismatch on the next open's fstat then misses as intended).
    struct stat vst{};
    if (::fstat(::fileno(f), &vst) == 0) {
      std::lock_guard<std::mutex> lock(g_reader_memo_mutex);
      if (reader_memo().size() >= kReaderMemoMaxEntries) reader_memo().clear();
      ReaderMemo& m = reader_memo()[path];
      m.dev = vst.st_dev;
      m.ino = vst.st_ino;
      m.size = static_cast<std::int64_t>(vst.st_size);
      m.mtime_ns = stat_mtime_ns(vst);
      m.key = stored_key;
      m.groups = groups;
    }
  }
  file_ = f;
  groups_ = groups;
  remaining_groups_ = groups;
  body_remaining_ = body - kHeaderBytes;
  return true;
}

bool IngestArtifactReader::next(std::string& blob) {
  blob.clear();
  if (file_ == nullptr || remaining_groups_ == 0) {
    close();
    return false;
  }
  char len_bytes[8];
  if (body_remaining_ < 8 ||
      std::fread(len_bytes, 1, sizeof(len_bytes), file_) !=
          sizeof(len_bytes)) {
    close();
    return false;
  }
  body_remaining_ -= 8;
  ByteReader r(len_bytes, sizeof(len_bytes));
  const std::uint64_t len = r.u64();
  if (len > body_remaining_) {
    close();
    return false;
  }
  blob.resize(static_cast<std::size_t>(len));
  if (len > 0 && std::fread(blob.data(), 1, blob.size(), file_) !=
                     blob.size()) {
    blob.clear();
    close();
    return false;
  }
  body_remaining_ -= len;
  --remaining_groups_;
  if (remaining_groups_ == 0) {
    // The checksum vouched for the bytes; the lengths must still tile the
    // body exactly (a hand-built file could checksum fine yet lie).
    const bool clean = body_remaining_ == 0;
    close();
    if (!clean) {
      blob.clear();
      return false;
    }
  }
  return true;
}

bool write_ingest_artifact(const std::string& path, std::uint64_t key,
                           const std::vector<std::string>& blobs) {
  IngestArtifactWriter w;
  if (!w.open(path, key, blobs.size())) return false;
  for (const std::string& blob : blobs) {
    if (!w.append(blob)) return false;
  }
  return w.finish();
}

IngestArtifactWriter::~IngestArtifactWriter() { abandon(); }

void IngestArtifactWriter::abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_.c_str());
  }
}

bool IngestArtifactWriter::open(const std::string& path, std::uint64_t key,
                                std::uint64_t groups) {
  abandon();
  // Ensure the directory exists (single level is enough for the common
  // `--cache-dir some/dir` case; deeper prefixes must pre-exist).
  const std::size_t slash = path.rfind('/');
  if (slash != std::string::npos && slash > 0) {
    ::mkdir(path.substr(0, slash).c_str(), 0777);  // EEXIST is fine
  }

  // Unique temp name per writer: pid separates racing processes, the
  // sequence number separates racing writers inside one process. A shared
  // temp name would let two same-key writers interleave into one file and
  // publish a corrupt (checksum-rejected) artifact.
  static std::atomic<std::uint64_t> sequence{0};
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%ld.%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    sequence.fetch_add(1, std::memory_order_relaxed)));
  path_ = path;
  tmp_ = path + suffix;
  expected_groups_ = groups;
  appended_ = 0;
  checksum_ = Fnv64{};
  failed_ = false;

  file_ = std::fopen(tmp_.c_str(), "wb");
  if (file_ == nullptr) return false;

  ByteWriter header;
  header.bytes(kMagic, sizeof(kMagic));
  header.u32(kIngestArtifactEpoch);
  header.u64(key);
  header.u64(groups);
  checksum_.bytes(header.data().data(), header.size());
  if (std::fwrite(header.data().data(), 1, header.size(), file_) !=
      header.size()) {
    abandon();
    return false;
  }
  return true;
}

bool IngestArtifactWriter::append(const std::string& blob) {
  if (file_ == nullptr || failed_) return false;
  ByteWriter len;
  len.u64(blob.size());
  checksum_.bytes(len.data().data(), len.size());
  checksum_.bytes(blob.data(), blob.size());
  if (std::fwrite(len.data().data(), 1, len.size(), file_) != len.size() ||
      std::fwrite(blob.data(), 1, blob.size(), file_) != blob.size()) {
    failed_ = true;
    return false;
  }
  ++appended_;
  return true;
}

bool IngestArtifactWriter::finish() {
  if (file_ == nullptr || failed_ || appended_ != expected_groups_) {
    abandon();
    return false;
  }
  ByteWriter tail;
  tail.u64(checksum_.value());
  const bool wrote =
      std::fwrite(tail.data().data(), 1, tail.size(), file_) == tail.size();
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!wrote || !closed) {
    std::remove(tmp_.c_str());
    return false;
  }
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_.c_str());
    return false;
  }
  return true;
}

}  // namespace fbedge
