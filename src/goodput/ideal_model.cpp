#include "goodput/ideal_model.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace fbedge::ideal {

int rounds(Bytes btotal, Bytes wstart) {
  FBEDGE_EXPECT(btotal > 0 && wstart > 0, "rounds() requires positive sizes");
  const double ratio = static_cast<double>(btotal) / static_cast<double>(wstart) + 1.0;
  return std::max(1, static_cast<int>(std::ceil(std::log2(ratio) - 1e-12)));
}

double window_at_round(int n, Bytes wstart) {
  FBEDGE_EXPECT(n >= 1, "rounds are 1-based");
  return std::ldexp(static_cast<double>(wstart), n - 1);  // 2^(n-1) * wstart
}

Bytes end_window(Bytes btotal, Bytes wstart) {
  const int m = rounds(btotal, wstart);
  return static_cast<Bytes>(window_at_round(m, wstart));
}

BitsPerSecond testable_goodput(Bytes btotal, Bytes wstart, Duration min_rtt) {
  FBEDGE_EXPECT(min_rtt > 0, "testable_goodput requires positive MinRTT");
  const int m = rounds(btotal, wstart);
  if (m == 1) {
    // Whole response fits in the initial window: it can only demonstrate
    // its own size per round-trip.
    return to_bits(btotal) / min_rtt;
  }
  // sum_{i=1}^{m-1} WSS(i) = wstart * (2^(m-1) - 1)
  const double sent_before_last =
      static_cast<double>(wstart) * (std::ldexp(1.0, m - 1) - 1.0);
  const double penultimate = window_at_round(m - 1, wstart);
  const double last_round = static_cast<double>(btotal) - sent_before_last;
  return std::max(penultimate, last_round) * 8.0 / min_rtt;
}

Bytes WstartTracker::next(Bytes wnic, Bytes btotal) {
  FBEDGE_EXPECT(wnic > 0 && btotal > 0, "WstartTracker requires positive sizes");
  const Bytes wstart = std::max(wnic, prev_end_);
  prev_end_ = end_window(btotal, wstart);
  return wstart;
}

}  // namespace fbedge::ideal
