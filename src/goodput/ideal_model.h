// Ideal-conditions TCP transfer model (§3.2.2, Equations 1-3).
//
// Under ideal conditions (fixed RTT, no loss, no bottleneck) a connection
// never leaves slow start and the cwnd doubles whenever it is cwnd-limited.
// Given a response of Btotal bytes and a window of Wstart bytes when its
// first byte is sent:
//
//   m        = ceil(log2(Btotal/Wstart + 1))            rounds to transfer  (Eq. 1)
//   WSS(n)   = 2^(n-1) * Wstart                         cwnd at round n     (Eq. 2)
//   Gtestable = max{WSS(m-1), Btotal - sum_{i=1}^{m-1} WSS(i)} / MinRTT     (Eq. 3)
//
// Gtestable is the highest goodput the transaction can demonstrate — the
// max bytes deliverable in a single round-trip under ideal conditions.
// (For m == 1 the whole response fits in the first window and Eq. 3
// degenerates to Btotal / MinRTT; see the Figure 4 worked example where
// transaction 1 tests for 2 packets / 60 ms = 0.4 Mbps.)
//
// Everything here is defined inline: these functions run once per coalesced
// transaction (tens of millions of calls per bench run), and the batched HD
// evaluator relies on them folding into its per-row loop without a
// cross-translation-unit call per transaction.
#pragma once

#include <algorithm>
#include <cmath>

#include "util/expect.h"
#include "util/units.h"

namespace fbedge::ideal {

/// Number of round-trips m required to transfer `btotal` bytes starting
/// from a window of `wstart` bytes (Eq. 1). Both must be > 0.
inline int rounds(Bytes btotal, Bytes wstart) {
  FBEDGE_EXPECT(btotal > 0 && wstart > 0, "rounds() requires positive sizes");
  const double ratio = static_cast<double>(btotal) / static_cast<double>(wstart) + 1.0;
  return std::max(1, static_cast<int>(std::ceil(std::log2(ratio) - 1e-12)));
}

/// WSS(n): window size in bytes at the start of the nth round-trip,
/// 1-based (Eq. 2).
inline double window_at_round(int n, Bytes wstart) {
  FBEDGE_EXPECT(n >= 1, "rounds are 1-based");
  return std::ldexp(static_cast<double>(wstart), n - 1);  // 2^(n-1) * wstart
}

/// Ideal cwnd at the *end* of the transfer: WSS(m). Used as the lower bound
/// for the next transaction's Wstart (§3.2.2, footnote 4).
inline Bytes end_window(Bytes btotal, Bytes wstart) {
  const int m = rounds(btotal, wstart);
  return static_cast<Bytes>(window_at_round(m, wstart));
}

/// Gtestable (Eq. 3): the maximum goodput this transaction can test for.
inline BitsPerSecond testable_goodput(Bytes btotal, Bytes wstart, Duration min_rtt) {
  FBEDGE_EXPECT(min_rtt > 0, "testable_goodput requires positive MinRTT");
  const int m = rounds(btotal, wstart);
  if (m == 1) {
    // Whole response fits in the initial window: it can only demonstrate
    // its own size per round-trip.
    return to_bits(btotal) / min_rtt;
  }
  // sum_{i=1}^{m-1} WSS(i) = wstart * (2^(m-1) - 1)
  const double sent_before_last =
      static_cast<double>(wstart) * (std::ldexp(1.0, m - 1) - 1.0);
  const double penultimate = window_at_round(m - 1, wstart);
  const double last_round = static_cast<double>(btotal) - sent_before_last;
  return std::max(penultimate, last_round) * 8.0 / min_rtt;
}

/// Tracks Wstart across a session's transactions (§3.2.2): the first
/// transaction uses Wnic; later ones use max(Wnic, ideal end window of the
/// previous transaction), so that poor network conditions (which shrink the
/// real cwnd) do not mask evidence of poor performance.
class WstartTracker {
 public:
  /// Returns Wstart for a transaction with the given measured Wnic and
  /// size, and advances the ideal-growth state.
  Bytes next(Bytes wnic, Bytes btotal) {
    FBEDGE_EXPECT(wnic > 0 && btotal > 0, "WstartTracker requires positive sizes");
    const Bytes wstart = std::max(wnic, prev_end_);
    prev_end_ = end_window(btotal, wstart);
    return wstart;
  }

  /// Ideal window at the end of the last observed transaction (0 before any).
  Bytes ideal_end() const { return prev_end_; }

 private:
  Bytes prev_end_{0};
};

}  // namespace fbedge::ideal
