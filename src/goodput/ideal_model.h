// Ideal-conditions TCP transfer model (§3.2.2, Equations 1-3).
//
// Under ideal conditions (fixed RTT, no loss, no bottleneck) a connection
// never leaves slow start and the cwnd doubles whenever it is cwnd-limited.
// Given a response of Btotal bytes and a window of Wstart bytes when its
// first byte is sent:
//
//   m        = ceil(log2(Btotal/Wstart + 1))            rounds to transfer  (Eq. 1)
//   WSS(n)   = 2^(n-1) * Wstart                         cwnd at round n     (Eq. 2)
//   Gtestable = max{WSS(m-1), Btotal - sum_{i=1}^{m-1} WSS(i)} / MinRTT     (Eq. 3)
//
// Gtestable is the highest goodput the transaction can demonstrate — the
// max bytes deliverable in a single round-trip under ideal conditions.
// (For m == 1 the whole response fits in the first window and Eq. 3
// degenerates to Btotal / MinRTT; see the Figure 4 worked example where
// transaction 1 tests for 2 packets / 60 ms = 0.4 Mbps.)
#pragma once

#include "util/units.h"

namespace fbedge::ideal {

/// Number of round-trips m required to transfer `btotal` bytes starting
/// from a window of `wstart` bytes (Eq. 1). Both must be > 0.
int rounds(Bytes btotal, Bytes wstart);

/// WSS(n): window size in bytes at the start of the nth round-trip,
/// 1-based (Eq. 2).
double window_at_round(int n, Bytes wstart);

/// Ideal cwnd at the *end* of the transfer: WSS(m). Used as the lower bound
/// for the next transaction's Wstart (§3.2.2, footnote 4).
Bytes end_window(Bytes btotal, Bytes wstart);

/// Gtestable (Eq. 3): the maximum goodput this transaction can test for.
BitsPerSecond testable_goodput(Bytes btotal, Bytes wstart, Duration min_rtt);

/// Tracks Wstart across a session's transactions (§3.2.2): the first
/// transaction uses Wnic; later ones use max(Wnic, ideal end window of the
/// previous transaction), so that poor network conditions (which shrink the
/// real cwnd) do not mask evidence of poor performance.
class WstartTracker {
 public:
  /// Returns Wstart for a transaction with the given measured Wnic and
  /// size, and advances the ideal-growth state.
  Bytes next(Bytes wnic, Bytes btotal);

  /// Ideal window at the end of the last observed transaction (0 before any).
  Bytes ideal_end() const { return prev_end_; }

 private:
  Bytes prev_end_{0};
};

}  // namespace fbedge::ideal
