// AVX2 lane-per-row kernel for evaluate_hd_batch (see hdratio.h and the
// bitwise contract in util/simd.h).
//
// Four sessions advance in lock-step, one transaction per lane per step.
// When a lane's session runs out of transactions its SessionHd is flushed
// and the lane is refilled with the next pending row (mask-and-compact), so
// ragged session lengths keep all four lanes occupied. Idle lanes load a
// zeroed dummy transaction, which fails the validity gate and therefore
// cannot perturb any state.
//
// Bitwise identity with the scalar HdEvaluator chain rests on:
//   * AVX2 add/sub/mul/div/max on doubles are IEEE correctly-rounded, i.e.
//     identical to the scalar instructions, and this TU is compiled with
//     -ffp-contract=off so no mul+add fuses into an FMA;
//   * every double is combined in exactly the scalar order — lanes are
//     independent sessions, never reassociated partial sums;
//   * the one non-replicable libm call in the chain, std::log2 inside
//     ideal::rounds(), is eliminated: for ratio = Btotal/Wstart + 1 > 1 the
//     result m = max(1, ceil(log2(ratio) - 1e-12)) equals e + 1 (e =
//     unbiased exponent of ratio) whenever the mantissa fraction is at
//     least 16384 ulps above a power of two — then log2(ratio) - 1e-12 lies
//     strictly inside (e, e+1) for any correctly-rounded-to-1-ulp log2.
//     Lanes inside the 16384-ulp guard zone (including exact powers of
//     two) re-run the scalar std::log2 expression verbatim, so the same
//     libm code decides those.
#include "goodput/hdratio.h"

#if FBEDGE_HAVE_AVX2

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace fbedge {

namespace {

static_assert(sizeof(TxnTiming) == 32, "lane loads assume a packed 4x8-byte TxnTiming");
static_assert(offsetof(TxnTiming, btotal) == 0 && offsetof(TxnTiming, ttotal) == 8 &&
                  offsetof(TxnTiming, wnic) == 16 && offsetof(TxnTiming, min_rtt) == 24,
              "transpose assumes field order btotal, ttotal, wnic, min_rtt");

// Loaded by idle lanes; btotal == 0 fails the validity gate so the lane's
// counters and Wstart chain stay untouched.
constexpr TxnTiming kIdleTxn{};

// Exact int64 -> double. The branchless magic-constant trick is exact for
// 0 <= v < 2^52 (every byte count the pipeline produces); larger values --
// only reachable via a saturated Wstart chain -- take the per-lane scalar
// conversion, which is what the reference code does everywhere. Negative
// inputs only occur in lanes the validity gate already discarded.
inline __m256d exact_i64_to_pd(__m256i v) {
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);  // (double)2^52
  const __m256i big = _mm256_cmpgt_epi64(v, _mm256_set1_epi64x((1LL << 52) - 1));
  if (_mm256_testz_si256(big, big)) {
    return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(v, magic)),
                         _mm256_castsi256_pd(magic));
  }
  alignas(32) long long a[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(a), v);
  return _mm256_set_pd(static_cast<double>(a[3]), static_cast<double>(a[2]),
                       static_cast<double>(a[1]), static_cast<double>(a[0]));
}

// 2^k as a double, built from the exponent bits; exact for 0 <= k <= 1023
// (m never exceeds 64 here). Masked-out lanes may pass garbage k and get a
// defined-but-meaningless double back, which the caller blends away.
inline __m256d pow2_epi64(__m256i k) {
  return _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_add_epi64(k, _mm256_set1_epi64x(1023)), 52));
}

}  // namespace

void evaluate_hd_batch_avx2(const TxnTiming* txns, const std::uint32_t* offsets,
                            const std::uint32_t* counts, std::size_t rows,
                            SessionHd* out, GoodputConfig config) {
  // Per-lane session state. Counters and the Wstart chain live in memory so
  // a single lane can be flushed/reset on refill without unpacking vectors.
  const TxnTiming* lane_ptr[4] = {&kIdleTxn, &kIdleTxn, &kIdleTxn, &kIdleTxn};
  std::uint32_t lane_left[4] = {0, 0, 0, 0};
  std::size_t lane_row[4] = {0, 0, 0, 0};
  alignas(32) long long prev_end[4] = {0, 0, 0, 0};
  alignas(32) long long tested[4] = {0, 0, 0, 0};
  alignas(32) long long achieved[4] = {0, 0, 0, 0};
  alignas(32) long long naive[4] = {0, 0, 0, 0};

  std::size_t next_row = 0;
  int live = 4;

  const auto refill = [&](int lane) {
    // Zero-transaction rows produce an empty SessionHd without occupying a
    // lane (the scalar loop writes eval.result() of a fresh evaluator).
    while (next_row < rows && counts[next_row] == 0) {
      out[next_row] = SessionHd{};
      ++next_row;
    }
    if (next_row == rows) {
      lane_ptr[lane] = &kIdleTxn;
      lane_left[lane] = 0;
      --live;
      return;
    }
    lane_row[lane] = next_row;
    lane_ptr[lane] = txns + offsets[next_row];
    lane_left[lane] = counts[next_row];
    prev_end[lane] = 0;
    tested[lane] = 0;
    achieved[lane] = 0;
    naive[lane] = 0;
    ++next_row;
  };
  for (int lane = 0; lane < 4; ++lane) refill(lane);

  const __m256d kZero = _mm256_setzero_pd();
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d kTwo = _mm256_set1_pd(2.0);
  const __m256d kEight = _mm256_set1_pd(8.0);
  const __m256d kInf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256i kZeroI = _mm256_setzero_si256();
  const __m256i kOneI = _mm256_set1_epi64x(1);
  const __m256d target = _mm256_set1_pd(config.target_goodput);

  while (live > 0) {
    // One transaction per lane; 4x4 transpose into columns. The int64
    // fields travel as raw bits through the double shuffles.
    const __m256d r0 = _mm256_loadu_pd(reinterpret_cast<const double*>(lane_ptr[0]));
    const __m256d r1 = _mm256_loadu_pd(reinterpret_cast<const double*>(lane_ptr[1]));
    const __m256d r2 = _mm256_loadu_pd(reinterpret_cast<const double*>(lane_ptr[2]));
    const __m256d r3 = _mm256_loadu_pd(reinterpret_cast<const double*>(lane_ptr[3]));
    const __m256d t01lo = _mm256_unpacklo_pd(r0, r1);
    const __m256d t01hi = _mm256_unpackhi_pd(r0, r1);
    const __m256d t23lo = _mm256_unpacklo_pd(r2, r3);
    const __m256d t23hi = _mm256_unpackhi_pd(r2, r3);
    const __m256i btotal_i = _mm256_castpd_si256(_mm256_permute2f128_pd(t01lo, t23lo, 0x20));
    const __m256d ttotal = _mm256_permute2f128_pd(t01hi, t23hi, 0x20);
    const __m256i wnic_i = _mm256_castpd_si256(_mm256_permute2f128_pd(t01lo, t23lo, 0x31));
    const __m256d min_rtt = _mm256_permute2f128_pd(t01hi, t23hi, 0x31);

    // Validity gate (HdEvaluator::evaluate's skip conditions). 0 < x < inf
    // is exactly isfinite(x) && x > 0; NaN fails both ordered compares.
    const __m256i pos_sizes =
        _mm256_and_si256(_mm256_cmpgt_epi64(btotal_i, kZeroI), _mm256_cmpgt_epi64(wnic_i, kZeroI));
    const __m256d rtt_ok = _mm256_and_pd(_mm256_cmp_pd(min_rtt, kZero, _CMP_GT_OQ),
                                         _mm256_cmp_pd(min_rtt, kInf, _CMP_LT_OQ));
    const __m256d tt_ok = _mm256_and_pd(_mm256_cmp_pd(ttotal, kZero, _CMP_GT_OQ),
                                        _mm256_cmp_pd(ttotal, kInf, _CMP_LT_OQ));
    const __m256d valid =
        _mm256_and_pd(_mm256_castsi256_pd(pos_sizes), _mm256_and_pd(rtt_ok, tt_ok));
    const unsigned valid_bits = static_cast<unsigned>(_mm256_movemask_pd(valid));

    if (valid_bits) {
      // Wstart = max(Wnic, ideal end window of the previous transaction).
      const __m256i prev = _mm256_load_si256(reinterpret_cast<const __m256i*>(prev_end));
      const __m256i wstart_i =
          _mm256_blendv_epi8(prev, wnic_i, _mm256_cmpgt_epi64(wnic_i, prev));

      const __m256d btotal_d = exact_i64_to_pd(btotal_i);
      const __m256d wstart_d = exact_i64_to_pd(wstart_i);

      // rounds() (Eq. 1) without libm: ratio > 1 for valid lanes, so with
      // biased exponent E and mantissa fraction f,
      //   m = E - 1022  when f >= 16384 (see file comment);
      // the guard zone f < 16384 re-runs the scalar log2 expression.
      const __m256d ratio = _mm256_add_pd(_mm256_div_pd(btotal_d, wstart_d), kOne);
      const __m256i ratio_bits = _mm256_castpd_si256(ratio);
      const __m256i frac =
          _mm256_and_si256(ratio_bits, _mm256_set1_epi64x((1LL << 52) - 1));
      __m256i m = _mm256_sub_epi64(_mm256_srli_epi64(ratio_bits, 52),
                                   _mm256_set1_epi64x(1022));
      const __m256i frac_small = _mm256_cmpgt_epi64(_mm256_set1_epi64x(16384), frac);
      const unsigned fallback_bits =
          valid_bits &
          static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(frac_small)));
      if (fallback_bits) {
        alignas(32) double ratio_a[4];
        alignas(32) long long m_a[4];
        _mm256_store_pd(ratio_a, ratio);
        _mm256_store_si256(reinterpret_cast<__m256i*>(m_a), m);
        for (int lane = 0; lane < 4; ++lane) {
          if (fallback_bits & (1u << lane)) {
            m_a[lane] =
                std::max(1, static_cast<int>(std::ceil(std::log2(ratio_a[lane]) - 1e-12)));
          }
        }
        m = _mm256_load_si256(reinterpret_cast<const __m256i*>(m_a));
      }

      // Gtestable (Eq. 3). pow2(m-2) is garbage for m == 1 lanes; blended
      // away below. maxpd picks its second operand on ties where std::max
      // picks the first, but a tie means both hold identical bytes
      // (penultimate is always a positive normal), so the pick is moot.
      const __m256d pow_m1 = pow2_epi64(_mm256_sub_epi64(m, kOneI));
      const __m256d pow_m2 = pow2_epi64(_mm256_sub_epi64(m, _mm256_set1_epi64x(2)));
      const __m256d sent_before_last = _mm256_mul_pd(wstart_d, _mm256_sub_pd(pow_m1, kOne));
      const __m256d penultimate = _mm256_mul_pd(wstart_d, pow_m2);
      const __m256d last_round = _mm256_sub_pd(btotal_d, sent_before_last);
      const __m256d best_round = _mm256_max_pd(penultimate, last_round);
      const __m256d num = _mm256_blendv_pd(
          best_round, btotal_d, _mm256_castsi256_pd(_mm256_cmpeq_epi64(m, kOneI)));
      const __m256d gtestable = _mm256_div_pd(_mm256_mul_pd(num, kEight), min_rtt);

      // Advance the ideal-growth chain for every valid transaction (the
      // scalar evaluator does this before the can_test check). The cast
      // compiles to the same cvttsd2si as the scalar code, including its
      // saturating out-of-range behavior.
      {
        alignas(32) double end_a[4];
        _mm256_store_pd(end_a, _mm256_mul_pd(wstart_d, pow_m1));  // ldexp(wstart, m-1)
        for (int lane = 0; lane < 4; ++lane) {
          if (valid_bits & (1u << lane)) {
            prev_end[lane] = static_cast<long long>(end_a[lane]);
          }
        }
      }

      const __m256d can_test =
          _mm256_and_pd(_mm256_cmp_pd(gtestable, target, _CMP_GE_OQ), valid);
      if (_mm256_movemask_pd(can_test)) {
        _mm256_store_si256(
            reinterpret_cast<__m256i*>(tested),
            _mm256_sub_epi64(_mm256_load_si256(reinterpret_cast<const __m256i*>(tested)),
                             _mm256_castpd_si256(can_test)));

        // t_model's slow-start loop, all testing lanes in lock-step. A lane
        // leaves the loop exactly when the scalar loop would: window
        // sustains the target, transfer fits in slow start, or n > 64.
        const __m256d wnic_d = exact_i64_to_pd(wnic_i);
        __m256d cwnd = wnic_d;
        __m256d sent = kZero;
        __m256i n = kZeroI;
        __m256d looping = can_test;
        while (_mm256_movemask_pd(looping)) {
          const __m256d growing = _mm256_cmp_pd(
              _mm256_div_pd(_mm256_mul_pd(cwnd, kEight), min_rtt), target, _CMP_LT_OQ);
          const __m256d fits =
              _mm256_cmp_pd(_mm256_add_pd(sent, cwnd), btotal_d, _CMP_GE_OQ);
          const __m256d step = _mm256_andnot_pd(fits, _mm256_and_pd(growing, looping));
          sent = _mm256_blendv_pd(sent, _mm256_add_pd(sent, cwnd), step);
          cwnd = _mm256_blendv_pd(cwnd, _mm256_mul_pd(cwnd, kTwo), step);
          n = _mm256_sub_epi64(n, _mm256_castpd_si256(step));
          looping = _mm256_andnot_pd(
              _mm256_castsi256_pd(_mm256_cmpgt_epi64(n, _mm256_set1_epi64x(64))), step);
        }
        const __m256d remaining = _mm256_max_pd(kZero, _mm256_sub_pd(btotal_d, sent));
        const __m256d tmodel = _mm256_add_pd(
            _mm256_add_pd(_mm256_mul_pd(exact_i64_to_pd(n), min_rtt),
                          _mm256_div_pd(_mm256_mul_pd(remaining, kEight), target)),
            min_rtt);

        const __m256d ach =
            _mm256_and_pd(_mm256_cmp_pd(ttotal, tmodel, _CMP_LE_OQ), can_test);
        const __m256d nai = _mm256_and_pd(
            _mm256_cmp_pd(_mm256_div_pd(_mm256_mul_pd(btotal_d, kEight), ttotal), target,
                          _CMP_GE_OQ),
            can_test);
        _mm256_store_si256(
            reinterpret_cast<__m256i*>(achieved),
            _mm256_sub_epi64(_mm256_load_si256(reinterpret_cast<const __m256i*>(achieved)),
                             _mm256_castpd_si256(ach)));
        _mm256_store_si256(
            reinterpret_cast<__m256i*>(naive),
            _mm256_sub_epi64(_mm256_load_si256(reinterpret_cast<const __m256i*>(naive)),
                             _mm256_castpd_si256(nai)));
      }
    }

    // Consume one transaction per occupied lane; flush and refill finished
    // rows.
    for (int lane = 0; lane < 4; ++lane) {
      if (lane_left[lane] == 0) continue;
      ++lane_ptr[lane];
      if (--lane_left[lane] == 0) {
        out[lane_row[lane]] = SessionHd{static_cast<int>(tested[lane]),
                                        static_cast<int>(achieved[lane]),
                                        static_cast<int>(naive[lane])};
        refill(lane);
      }
    }
  }
}

}  // namespace fbedge

#endif  // FBEDGE_HAVE_AVX2
