// Best-case transaction model Tmodel(R) and the achieved-rate solver
// (§3.2.3).
//
// To decide whether a real transaction delivered traffic at rate R, the
// paper compares its measured transfer time Ttotal against the transfer
// time of a best-case model transaction through a bottleneck of available
// bandwidth R:
//
//   Tmodel(R) = n * MinRTT  +  (Btotal - slow-start bytes) / R  +  MinRTT
//
// where the model congestion control doubles the cwnd from Wnic for n
// round-trips until it is large enough to sustain R, then delivers the
// remaining bytes at exactly R. If Ttotal <= Tmodel(R), the real
// transaction delivered at a rate of at least R.
//
// The *estimated delivery rate* is the largest R satisfying the inequality.
// For single-round transfers (n = 0) this reduces to the closed form
// R = Btotal / (Ttotal - MinRTT).
#pragma once

#include <algorithm>
#include <cmath>

#include "util/expect.h"
#include "util/units.h"

namespace fbedge {

/// Inputs of the model comparison for one (coalesced, eligible) transaction.
/// Byte and time fields are the §3.2.5-adjusted values (last packet and its
/// possibly-delayed ACK excluded).
struct TxnTiming {
  Bytes btotal{0};        // adjusted bytes
  Duration ttotal{0};     // first NIC write -> ACK of second-to-last packet
  Bytes wnic{0};          // cwnd in bytes at first NIC write
  Duration min_rtt{0};    // session MinRTT (§3.1)
};

/// Transfer time of the best-case model transaction through a bottleneck of
/// rate `r` (bits/s). Monotonically non-increasing in r (up to the
/// round-quantization of n). Inline: evaluated once per (transaction, rate)
/// on the HD hot path, where the call itself was measurable.
inline Duration t_model(const TxnTiming& txn, BitsPerSecond r) {
  FBEDGE_EXPECT(txn.btotal > 0 && txn.wnic > 0 && txn.min_rtt > 0, "invalid TxnTiming");
  FBEDGE_EXPECT(r > 0, "t_model requires positive rate");

  // Slow-start phase: double from Wnic until the window sustains r.
  // n counts *completed* doubling round-trips; bytes sent during them are
  // subtracted from the rate-limited remainder.
  int n = 0;
  double cwnd = static_cast<double>(txn.wnic);
  double sent = 0;
  const double btotal = static_cast<double>(txn.btotal);
  while (cwnd * 8.0 / txn.min_rtt < r) {
    if (sent + cwnd >= btotal) break;  // transfer finishes inside slow start
    sent += cwnd;
    cwnd *= 2.0;
    ++n;
    if (n > 64) break;  // r beyond any reachable window; remainder dominates
  }
  const double remaining = std::max(0.0, btotal - sent);
  return static_cast<double>(n) * txn.min_rtt + remaining * 8.0 / r + txn.min_rtt;
}

/// True iff the transaction demonstrably delivered at >= `r`:
/// Ttotal <= Tmodel(r).
inline bool achieved_rate(const TxnTiming& txn, BitsPerSecond r) {
  return txn.ttotal <= t_model(txn, r);
}

/// Largest rate R such that Ttotal <= Tmodel(R); the transaction's
/// estimated delivery rate. Returns 0 if even a negligible rate was not
/// achieved (Ttotal enormous), and caps the search at `max_rate`.
///
/// Solved in closed form per slow-start segment: the doubling schedule
/// fixes n for any rate interval (thr_{n-1}, thr_n], where Tmodel is a
/// hyperbola in R, so Tmodel(R) = Ttotal inverts directly. The candidate is
/// then refined by ULP steps against the real `achieved_rate` predicate, so
/// the result is the exact largest double satisfying it. Debug builds
/// cross-check against the legacy bisection.
BitsPerSecond estimate_delivery_rate(const TxnTiming& txn,
                                     BitsPerSecond max_rate = 100 * kGbps);

/// Legacy 100-iteration log-space bisection solver. Kept as the reference
/// implementation for tests and the debug-mode cross-check; prefer
/// `estimate_delivery_rate`, which is ~50x cheaper and at least as exact.
BitsPerSecond estimate_delivery_rate_bisect(const TxnTiming& txn,
                                            BitsPerSecond max_rate = 100 * kGbps);

}  // namespace fbedge
