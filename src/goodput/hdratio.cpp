#include "goodput/hdratio.h"

#include <cmath>

namespace fbedge {

TxnVerdict HdEvaluator::evaluate(const TxnTiming& txn) {
  TxnVerdict v;
  // Degenerate timings are data, not programmer error: a corrupted record
  // can carry NaN MinRTT (which passes a plain `<= 0` check and would then
  // abort inside t_model's preconditions), and ACK-clock skew can pull
  // Ttotal to or below zero. Such transactions carry no goodput signal;
  // skip them instead of letting them reach the fail-fast model code.
  if (txn.btotal <= 0 || txn.wnic <= 0 || !std::isfinite(txn.min_rtt) ||
      txn.min_rtt <= 0 || !std::isfinite(txn.ttotal) || txn.ttotal <= 0) {
    return v;
  }

  // Gtestable uses Wstart from ideal growth: a session that has had the
  // opportunity to grow its window is held to that standard even if real
  // conditions shrank the actual cwnd (§3.2.2).
  v.wstart = wstart_.next(txn.wnic, txn.btotal);
  v.gtestable = ideal::testable_goodput(txn.btotal, v.wstart, txn.min_rtt);
  v.can_test = v.gtestable >= config_.target_goodput;
  if (!v.can_test) return v;

  ++session_.tested;
  v.achieved = achieved_rate(txn, config_.target_goodput);
  if (v.achieved) ++session_.achieved;

  if (txn.ttotal > 0) {
    v.achieved_naive = to_bits(txn.btotal) / txn.ttotal >= config_.target_goodput;
    if (v.achieved_naive) ++session_.achieved_naive;
  }
  return v;
}

SessionHd evaluate_session(const std::vector<TxnTiming>& txns, GoodputConfig config) {
  HdEvaluator eval(config);
  for (const auto& t : txns) eval.evaluate(t);
  return eval.result();
}

}  // namespace fbedge
