#include "goodput/hdratio.h"

#include <cstdint>

#include "util/simd.h"

namespace fbedge {

SessionHd evaluate_session(const std::vector<TxnTiming>& txns, GoodputConfig config) {
  HdEvaluator eval(config);
  for (const auto& t : txns) eval.evaluate(t);
  return eval.result();
}

void evaluate_hd_batch_scalar(const TxnTiming* txns, const std::uint32_t* offsets,
                              const std::uint32_t* counts, std::size_t rows,
                              SessionHd* out, GoodputConfig config) {
  // One evaluator reused across rows: reset() is two trivial assignments,
  // and keeping it in a register-friendly local lets the compiler fold the
  // inline evaluate() into a single loop with `config` (the rate ladder's
  // only per-batch constant) hoisted.
  HdEvaluator eval(config);
  for (std::size_t i = 0; i < rows; ++i) {
    eval.reset();
    const TxnTiming* t = txns + offsets[i];
    const std::uint32_t n = counts[i];
    for (std::uint32_t j = 0; j < n; ++j) eval.evaluate(t[j]);
    out[i] = eval.result();
  }
}

void evaluate_hd_batch(const TxnTiming* txns, const std::uint32_t* offsets,
                       const std::uint32_t* counts, std::size_t rows,
                       SessionHd* out, GoodputConfig config) {
#if FBEDGE_HAVE_AVX2
  if (simd::avx2_active()) {
    evaluate_hd_batch_avx2(txns, offsets, counts, rows, out, config);
    return;
  }
#endif
  evaluate_hd_batch_scalar(txns, offsets, counts, rows, out, config);
}

}  // namespace fbedge
