// Multi-target goodput evaluation.
//
// §3.2.1: "Although we focus on HD goodput, our methodology is generic and
// can work for any target goodput." This evaluator runs the full gate +
// achievement determination for a ladder of target rates simultaneously
// (e.g. audio / SD / HD / FHD), sharing one Wstart tracker per session so
// every rung sees identical inputs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "goodput/ideal_model.h"
#include "goodput/tmodel.h"
#include "util/units.h"

namespace fbedge {

/// One rung of the ladder.
struct RateTarget {
  std::string name;
  BitsPerSecond rate{0};
};

/// The standard video rate ladder used by the examples and benches.
std::vector<RateTarget> default_video_ladder();

/// Per-session tally for one rung.
struct RungResult {
  RateTarget target;
  int tested{0};
  int achieved{0};

  std::optional<double> ratio() const {
    if (tested == 0) return std::nullopt;
    return static_cast<double>(achieved) / tested;
  }
};

/// Evaluates a session's transactions against every rung at once.
class RateLadderEvaluator {
 public:
  explicit RateLadderEvaluator(std::vector<RateTarget> targets);

  /// Evaluates one coalesced, eligible transaction against all rungs.
  void evaluate(const TxnTiming& txn);

  const std::vector<RungResult>& results() const { return rungs_; }

  /// Highest rung with ratio >= `threshold` (e.g. the best bitrate this
  /// session could sustain); -1 if none. Assumes rungs sorted ascending.
  int highest_sustained(double threshold = 0.5) const;

  void reset();

 private:
  std::vector<RungResult> rungs_;
  ideal::WstartTracker wstart_;
};

}  // namespace fbedge
