// HDratio: per-session target-goodput capability metric (§3.2.4).
//
// For each (coalesced, eligible) transaction of a session the evaluator
// determines:
//   1. whether the transaction was *capable of testing* for the target
//      goodput — Gtestable >= target, computed with Wstart from ideal
//      window growth (§3.2.2, goodput/ideal_model.h);
//   2. for capable transactions, whether the target was *achieved* —
//      Ttotal <= Tmodel(target), with the model window grown from the
//      measured Wnic (§3.2.3, goodput/tmodel.h).
//
// HDratio = achieved / tested over the session. Sessions where no
// transaction could test are reported as "no signal" (std::nullopt), not as
// zero: small objects failing to demonstrate HD goodput is not evidence of
// a bad path.
#pragma once

#include <optional>
#include <vector>

#include "goodput/ideal_model.h"
#include "goodput/tmodel.h"
#include "util/units.h"

namespace fbedge {

/// Parameters of the goodput methodology.
struct GoodputConfig {
  /// Target goodput; 2.5 Mbps is the minimum bitrate for HD video (§3.2.1).
  BitsPerSecond target_goodput{2.5 * kMbps};
};

/// Per-transaction outcome.
struct TxnVerdict {
  /// Wstart used for Gtestable (ideal growth, not the measured Wnic).
  Bytes wstart{0};
  /// Maximum goodput the transaction could test for (Eq. 3).
  BitsPerSecond gtestable{0};
  /// Gtestable >= target.
  bool can_test{false};
  /// Target goodput demonstrably achieved (only meaningful if can_test).
  bool achieved{false};
  /// Naive estimate Btotal/Ttotal >= target — the strawman the paper's
  /// model-corrected approach improves on (§4: median HDratio 0.69 naive
  /// vs 1.0 corrected). Only meaningful if can_test.
  bool achieved_naive{false};
};

/// Session-level summary.
struct SessionHd {
  int tested{0};
  int achieved{0};
  int achieved_naive{0};

  /// HDratio (§3.2.4); nullopt when no transaction could test.
  std::optional<double> hdratio() const {
    if (tested == 0) return std::nullopt;
    return static_cast<double>(achieved) / tested;
  }

  std::optional<double> hdratio_naive() const {
    if (tested == 0) return std::nullopt;
    return static_cast<double>(achieved_naive) / tested;
  }
};

/// Streaming per-session evaluator. Feed transactions in order; read
/// result() at session end. Reuse across sessions via reset().
class HdEvaluator {
 public:
  explicit HdEvaluator(GoodputConfig config = {}) : config_(config) {}

  /// Evaluates one coalesced, eligible transaction. `txn` carries the
  /// §3.2.5-adjusted bytes/duration, the measured Wnic, and the session
  /// MinRTT. Transactions with non-positive adjusted size are skipped
  /// (single-packet responses cannot test for anything).
  TxnVerdict evaluate(const TxnTiming& txn);

  const SessionHd& result() const { return session_; }

  void reset() {
    session_ = {};
    wstart_ = {};
  }

 private:
  GoodputConfig config_;
  SessionHd session_;
  ideal::WstartTracker wstart_;
};

/// Convenience: evaluates a whole session's transactions at once.
SessionHd evaluate_session(const std::vector<TxnTiming>& txns, GoodputConfig config = {});

}  // namespace fbedge
