// HDratio: per-session target-goodput capability metric (§3.2.4).
//
// For each (coalesced, eligible) transaction of a session the evaluator
// determines:
//   1. whether the transaction was *capable of testing* for the target
//      goodput — Gtestable >= target, computed with Wstart from ideal
//      window growth (§3.2.2, goodput/ideal_model.h);
//   2. for capable transactions, whether the target was *achieved* —
//      Ttotal <= Tmodel(target), with the model window grown from the
//      measured Wnic (§3.2.3, goodput/tmodel.h).
//
// HDratio = achieved / tested over the session. Sessions where no
// transaction could test are reported as "no signal" (std::nullopt), not as
// zero: small objects failing to demonstrate HD goodput is not evidence of
// a bad path.
#pragma once

#include <optional>
#include <vector>

#include "goodput/ideal_model.h"
#include "goodput/tmodel.h"
#include "util/units.h"

namespace fbedge {

/// Parameters of the goodput methodology.
struct GoodputConfig {
  /// Target goodput; 2.5 Mbps is the minimum bitrate for HD video (§3.2.1).
  BitsPerSecond target_goodput{2.5 * kMbps};
};

/// Per-transaction outcome.
struct TxnVerdict {
  /// Wstart used for Gtestable (ideal growth, not the measured Wnic).
  Bytes wstart{0};
  /// Maximum goodput the transaction could test for (Eq. 3).
  BitsPerSecond gtestable{0};
  /// Gtestable >= target.
  bool can_test{false};
  /// Target goodput demonstrably achieved (only meaningful if can_test).
  bool achieved{false};
  /// Naive estimate Btotal/Ttotal >= target — the strawman the paper's
  /// model-corrected approach improves on (§4: median HDratio 0.69 naive
  /// vs 1.0 corrected). Only meaningful if can_test.
  bool achieved_naive{false};
};

/// Session-level summary.
struct SessionHd {
  int tested{0};
  int achieved{0};
  int achieved_naive{0};

  /// HDratio (§3.2.4); nullopt when no transaction could test.
  std::optional<double> hdratio() const {
    if (tested == 0) return std::nullopt;
    return static_cast<double>(achieved) / tested;
  }

  std::optional<double> hdratio_naive() const {
    if (tested == 0) return std::nullopt;
    return static_cast<double>(achieved_naive) / tested;
  }
};

/// Streaming per-session evaluator. Feed transactions in order; read
/// result() at session end. Reuse across sessions via reset().
class HdEvaluator {
 public:
  explicit HdEvaluator(GoodputConfig config = {}) : config_(config) {}

  /// Evaluates one coalesced, eligible transaction. `txn` carries the
  /// §3.2.5-adjusted bytes/duration, the measured Wnic, and the session
  /// MinRTT. Transactions with non-positive adjusted size are skipped
  /// (single-packet responses cannot test for anything). Inline (with the
  /// ideal-growth and Tmodel helpers it calls) so the per-transaction hot
  /// path — and the batched kernel built on it — compiles into one loop
  /// with no cross-translation-unit calls.
  TxnVerdict evaluate(const TxnTiming& txn) {
    TxnVerdict v;
    // Degenerate timings are data, not programmer error: a corrupted record
    // can carry NaN MinRTT (which passes a plain `<= 0` check and would then
    // abort inside t_model's preconditions), and ACK-clock skew can pull
    // Ttotal to or below zero. Such transactions carry no goodput signal;
    // skip them instead of letting them reach the fail-fast model code.
    if (txn.btotal <= 0 || txn.wnic <= 0 || !std::isfinite(txn.min_rtt) ||
        txn.min_rtt <= 0 || !std::isfinite(txn.ttotal) || txn.ttotal <= 0) {
      return v;
    }

    // Gtestable uses Wstart from ideal growth: a session that has had the
    // opportunity to grow its window is held to that standard even if real
    // conditions shrank the actual cwnd (§3.2.2).
    v.wstart = wstart_.next(txn.wnic, txn.btotal);
    v.gtestable = ideal::testable_goodput(txn.btotal, v.wstart, txn.min_rtt);
    v.can_test = v.gtestable >= config_.target_goodput;
    if (!v.can_test) return v;

    ++session_.tested;
    v.achieved = achieved_rate(txn, config_.target_goodput);
    if (v.achieved) ++session_.achieved;

    if (txn.ttotal > 0) {
      v.achieved_naive = to_bits(txn.btotal) / txn.ttotal >= config_.target_goodput;
      if (v.achieved_naive) ++session_.achieved_naive;
    }
    return v;
  }

  const SessionHd& result() const { return session_; }

  void reset() {
    session_ = {};
    wstart_ = {};
  }

 private:
  GoodputConfig config_;
  SessionHd session_;
  ideal::WstartTracker wstart_;
};

/// Convenience: evaluates a whole session's transactions at once.
SessionHd evaluate_session(const std::vector<TxnTiming>& txns, GoodputConfig config = {});

/// Batched HD evaluation over a whole SessionBatch worth of coalesced
/// transactions: row i's transactions are txns[offsets[i] ..
/// offsets[i]+counts[i]); rows are independent sessions (ideal-growth Wstart
/// tracking restarts per row). Writes one SessionHd per row into
/// out[0..rows). Per-transaction arithmetic is the inline
/// HdEvaluator::evaluate above, so results are bit-identical to the scalar
/// path; the win is structural — the rate ladder's constants (the target
/// rate) are hoisted once per batch and the whole chain (Wstart -> Eq. 3
/// Gtestable -> Tmodel testability) runs as a single loop over contiguous
/// TxnTimings instead of a per-session call tree.
void evaluate_hd_batch(const TxnTiming* txns, const std::uint32_t* offsets,
                       const std::uint32_t* counts, std::size_t rows,
                       SessionHd* out, GoodputConfig config = {});

/// The always-built scalar reference for evaluate_hd_batch — the pinned
/// definition of the output. evaluate_hd_batch() dispatches here unless
/// the AVX2 path is active (util/simd.h); the differential tests call both
/// explicitly and require bitwise-equal results.
void evaluate_hd_batch_scalar(const TxnTiming* txns, const std::uint32_t* offsets,
                              const std::uint32_t* counts, std::size_t rows,
                              SessionHd* out, GoodputConfig config = {});

/// AVX2 lane-per-row kernel (defined only when FBEDGE_HAVE_AVX2; guard
/// call sites with simd::compiled_avx2()). Four sessions advance in
/// lock-step, one transaction per lane per step, with finished rows
/// refilled from the remaining work (mask-and-compact) — every double is
/// combined in the same order as the scalar chain, so the output is
/// bitwise identical.
void evaluate_hd_batch_avx2(const TxnTiming* txns, const std::uint32_t* offsets,
                            const std::uint32_t* counts, std::size_t rows,
                            SessionHd* out, GoodputConfig config = {});

}  // namespace fbedge
