#include "goodput/tmodel.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/expect.h"

namespace fbedge {

namespace {

constexpr BitsPerSecond kMinRate = 1.0;  // 1 bit/s

// Positive finite doubles are order-isomorphic to their bit patterns, so a
// bracket search over bits visits every representable rate and terminates
// in <= 64 predicate evaluations regardless of bracket width.
std::uint64_t rate_bits(double x) { return std::bit_cast<std::uint64_t>(x); }
double rate_from_bits(std::uint64_t b) { return std::bit_cast<double>(b); }

// Polishes a closed-form candidate into the exact boundary double R in
// [kMinRate, max_rate]: achieved_rate(R) holds and fails one ULP above.
// The candidate is usually within a couple of ULP, but cancellation in
// Ttotal - (n+1)*MinRTT can push it hundreds of ULP off when Ttotal barely
// exceeds the round-trip floor, so we gallop to a bracket and bisect over
// the bit patterns: ~2*log2(gap) evaluations, exact for any gap.
// Caller guarantees achieved_rate(kMinRate) && !achieved_rate(max_rate).
double refine_candidate(const TxnTiming& txn, double r, BitsPerSecond max_rate) {
  if (!(r >= kMinRate)) r = kMinRate;  // also catches NaN
  if (r > max_rate) r = max_rate;
  std::uint64_t lo, hi;
  if (achieved_rate(txn, r)) {
    lo = rate_bits(r);
    const std::uint64_t cap = rate_bits(max_rate);
    std::uint64_t step = 1;
    for (;;) {
      const std::uint64_t probe = (cap - lo < step) ? cap : lo + step;
      if (!achieved_rate(txn, rate_from_bits(probe))) {
        hi = probe;
        break;
      }
      lo = probe;
      if (probe == cap) return max_rate;  // unreachable per caller contract
      step *= 2;
    }
  } else {
    hi = rate_bits(r);
    const std::uint64_t floor_b = rate_bits(static_cast<double>(kMinRate));
    std::uint64_t step = 1;
    for (;;) {
      const std::uint64_t probe = (hi - floor_b < step) ? floor_b : hi - step;
      if (achieved_rate(txn, rate_from_bits(probe))) {
        lo = probe;
        break;
      }
      hi = probe;
      if (probe == floor_b) return kMinRate;  // unreachable per caller contract
      step *= 2;
    }
  }
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (achieved_rate(txn, rate_from_bits(mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return rate_from_bits(lo);
}

}  // namespace

BitsPerSecond estimate_delivery_rate_bisect(const TxnTiming& txn, BitsPerSecond max_rate) {
  if (achieved_rate(txn, max_rate)) return max_rate;
  if (!achieved_rate(txn, kMinRate)) return 0.0;

  // Bisect in log-rate space. Tmodel is non-increasing in R up to the
  // quantization of slow-start rounds, so the predicate flips once.
  double lo = std::log(kMinRate);
  double hi = std::log(max_rate);
  for (int i = 0; i < 100; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (achieved_rate(txn, std::exp(mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::exp(lo);
}

BitsPerSecond estimate_delivery_rate(const TxnTiming& txn, BitsPerSecond max_rate) {
  // Tmodel(R) >= (n+1)*MinRTT > Ttotal can hold for every R when the
  // transfer beat one round-trip (measurement jitter); then every rate is
  // "achieved" and we report the cap.
  if (achieved_rate(txn, max_rate)) return max_rate;
  if (!achieved_rate(txn, kMinRate)) return 0.0;

  // Walk the slow-start schedule exactly as t_model's loop would (same
  // mutation order, same break conditions, so `sent`/`cwnd` are bitwise the
  // values t_model sees). Segment n covers the rate interval where exactly
  // n doubling rounds run; within it Tmodel(R) = (n+1)*MinRTT + rem*8/R, so
  // Tmodel(R) = Ttotal gives the boundary rate directly.
  const double btotal = static_cast<double>(txn.btotal);
  double cwnd = static_cast<double>(txn.wnic);
  double sent = 0;
  double seg_lo = kMinRate;  // lower edge of segment n: cwnd_{n-1}*8/MinRTT
  double result = -1.0;
  for (int n = 0; n <= 65; ++n) {
    // Terminal segment: the transfer finishes inside slow start (byte cap)
    // or the round cap is hit; it extends to arbitrarily large rates.
    const bool last = sent + cwnd >= btotal || n == 65;
    const double denom = txn.ttotal - (n + 1) * txn.min_rtt;
    if (denom > 0) {
      const double rem = std::max(0.0, btotal - sent);
      const double cand = rem * 8.0 / denom;
      if (last || cand <= cwnd * 8.0 / txn.min_rtt) {
        // cand below the segment means Ttotal sits inside the discontinuity
        // at the segment edge; the flip is then exactly at seg_lo (t_model's
        // strict `<` keeps n-1 rounds at the edge itself, so it is achieved,
        // while one ULP above enters this segment, which is not). Clamping
        // hands refine_candidate a value at most a couple of ULP away.
        result = refine_candidate(txn, std::max(cand, seg_lo), max_rate);
        break;
      }
    }
    // denom <= 0: Tmodel >= (n+1)*MinRTT >= Ttotal throughout this segment,
    // i.e. every rate here is achieved; the flip is in a later segment.
    if (last) break;
    seg_lo = cwnd * 8.0 / txn.min_rtt;
    sent += cwnd;
    cwnd *= 2.0;
  }
  if (result < 0) result = estimate_delivery_rate_bisect(txn, max_rate);
#ifndef NDEBUG
  // Debug-mode cross-check against the reference bisection (which lands
  // within ~1 ULP of the predicate boundary the refinement solves exactly).
  const double bis = estimate_delivery_rate_bisect(txn, max_rate);
  FBEDGE_EXPECT(std::abs(result - bis) <= 1e-9 * std::max(result, bis) + 1e-12,
                "closed-form delivery rate diverged from bisection");
#endif
  return result;
}

}  // namespace fbedge
