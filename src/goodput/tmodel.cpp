#include "goodput/tmodel.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace fbedge {

Duration t_model(const TxnTiming& txn, BitsPerSecond r) {
  FBEDGE_EXPECT(txn.btotal > 0 && txn.wnic > 0 && txn.min_rtt > 0, "invalid TxnTiming");
  FBEDGE_EXPECT(r > 0, "t_model requires positive rate");

  // Slow-start phase: double from Wnic until the window sustains r.
  // n counts *completed* doubling round-trips; bytes sent during them are
  // subtracted from the rate-limited remainder.
  int n = 0;
  double cwnd = static_cast<double>(txn.wnic);
  double sent = 0;
  const double btotal = static_cast<double>(txn.btotal);
  while (cwnd * 8.0 / txn.min_rtt < r) {
    if (sent + cwnd >= btotal) break;  // transfer finishes inside slow start
    sent += cwnd;
    cwnd *= 2.0;
    ++n;
    if (n > 64) break;  // r beyond any reachable window; remainder dominates
  }
  const double remaining = std::max(0.0, btotal - sent);
  return static_cast<double>(n) * txn.min_rtt + remaining * 8.0 / r + txn.min_rtt;
}

bool achieved_rate(const TxnTiming& txn, BitsPerSecond r) {
  return txn.ttotal <= t_model(txn, r);
}

BitsPerSecond estimate_delivery_rate(const TxnTiming& txn, BitsPerSecond max_rate) {
  // Tmodel(R) >= (n+1)*MinRTT > Ttotal can hold for every R when the
  // transfer beat one round-trip (measurement jitter); then every rate is
  // "achieved" and we report the cap.
  if (achieved_rate(txn, max_rate)) return max_rate;
  constexpr BitsPerSecond kMinRate = 1.0;  // 1 bit/s
  if (!achieved_rate(txn, kMinRate)) return 0.0;

  // Bisect in log-rate space. Tmodel is non-increasing in R up to the
  // quantization of slow-start rounds, so the predicate flips once.
  double lo = std::log(kMinRate);
  double hi = std::log(max_rate);
  for (int i = 0; i < 100; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (achieved_rate(txn, std::exp(mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::exp(lo);
}

}  // namespace fbedge
