#include "goodput/rate_ladder.h"

#include <algorithm>

#include "util/expect.h"

namespace fbedge {

std::vector<RateTarget> default_video_ladder() {
  return {
      {"audio-0.128", 0.128 * kMbps},
      {"sd-1.1", 1.1 * kMbps},
      {"hd-2.5", 2.5 * kMbps},  // the paper's HD goodput
      {"fhd-5.0", 5.0 * kMbps},
      {"uhd-16", 16.0 * kMbps},
  };
}

RateLadderEvaluator::RateLadderEvaluator(std::vector<RateTarget> targets) {
  FBEDGE_EXPECT(!targets.empty(), "rate ladder needs at least one rung");
  std::sort(targets.begin(), targets.end(),
            [](const RateTarget& a, const RateTarget& b) { return a.rate < b.rate; });
  rungs_.reserve(targets.size());
  for (auto& t : targets) rungs_.push_back(RungResult{std::move(t), 0, 0});
}

void RateLadderEvaluator::evaluate(const TxnTiming& txn) {
  if (txn.btotal <= 0 || txn.wnic <= 0 || txn.min_rtt <= 0) return;
  const Bytes wstart = wstart_.next(txn.wnic, txn.btotal);
  const BitsPerSecond gtestable =
      ideal::testable_goodput(txn.btotal, wstart, txn.min_rtt);
  for (auto& rung : rungs_) {
    if (gtestable < rung.target.rate) break;  // ascending: higher rungs gated too
    ++rung.tested;
    if (achieved_rate(txn, rung.target.rate)) ++rung.achieved;
  }
}

int RateLadderEvaluator::highest_sustained(double threshold) const {
  int best = -1;
  for (std::size_t i = 0; i < rungs_.size(); ++i) {
    const auto r = rungs_[i].ratio();
    if (r && *r >= threshold) best = static_cast<int>(i);
  }
  return best;
}

void RateLadderEvaluator::reset() {
  for (auto& rung : rungs_) {
    rung.tested = 0;
    rung.achieved = 0;
  }
  wstart_ = {};
}

}  // namespace fbedge
