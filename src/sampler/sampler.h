// Session sampling and alternate-route assignment (§2.2.2, §2.2.3).
//
// Servers randomly select HTTP sessions to sample at a defined rate. To
// measure alternate paths, a fraction of sampled sessions is pinned (in
// coordination with the egress controller, overriding Edge Fabric's
// shifts) to the k best alternate routes; the rest use the policy-preferred
// route. Assignment is hash-based on the session id so it is deterministic,
// unbiased, and reproducible.
#pragma once

#include <cstdint>

#include "sampler/record.h"
#include "util/ids.h"

namespace fbedge {

struct SamplerConfig {
  /// Fraction of HTTP sessions sampled.
  double sample_rate{0.05};
  /// Number of alternate routes continuously measured (paper default: the
  /// two next-best paths, §6.2).
  int num_alternates{2};
  /// Fraction of *sampled* sessions kept on the preferred route (§6.2:
  /// "approximately 47% of sampled HTTP sessions are routed via the best
  /// path"); the remainder is split evenly across alternates.
  double preferred_fraction{0.47};
  std::uint64_t salt{0x5eed5eed5eedULL};
};

/// Deterministic sampling / route-override decisions.
class SessionSampler {
 public:
  explicit SessionSampler(SamplerConfig config = {}) : config_(config) {}

  /// Whether this session is selected for measurement.
  bool should_sample(SessionId id) const {
    return hash01(id, 0x01) < config_.sample_rate;
  }

  /// Route index this sampled session must use: 0 = preferred, 1..k =
  /// policy-ranked alternates. `available_routes` is the size of the user
  /// group's route set; with a single route the answer is always 0.
  int choose_route(SessionId id, int available_routes) const {
    const int alternates =
        std::min(config_.num_alternates, available_routes - 1);
    if (alternates <= 0) return 0;
    const double u = hash01(id, 0x02);
    if (u < config_.preferred_fraction) return 0;
    const double v = (u - config_.preferred_fraction) / (1.0 - config_.preferred_fraction);
    return 1 + std::min(alternates - 1, static_cast<int>(v * alternates));
  }

  /// §2.2.4 dataset filter: drops hosting-provider / VPN-relay clients.
  static bool keep_for_analysis(const ClientInfo& client) {
    return !client.hosting_provider;
  }

 private:
  double hash01(SessionId id, std::uint64_t stream) const {
    const std::uint64_t h =
        hash_mix(id.value ^ hash_mix(config_.salt + stream));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  SamplerConfig config_;
};

}  // namespace fbedge
