// AVX2 path for coalesce_batch (see session_batch.h and the bitwise
// contract in util/simd.h).
//
// The scalar merge scan's only floating-point work is the per-pair join
// predicate
//
//   joins(i) = cur.multiplexed || cur.preempted || prev.multiplexed ||
//              prev.preempted ||
//              cur.first_byte_nic <= prev.last_byte_nic + gap
//
// and the scan always compares write i against write i-1 (the group's
// `last` is by construction the previous element), so the predicate is
// pairwise over the flat write buffer and independent of grouping state.
// That lets this path evaluate the timing compare four pairs at a time over
// the *entire* batch — row boundaries included; those mask entries are
// simply never read — ORing in the flag bits from the same cache lines in
// the same pass, and finally run the integer-only masked merge scan per row
// (coalesce_writes_append_masked). The vector add/compare are the same
// IEEE operations as the scalar expression (this TU is compiled with
// -ffp-contract=off), so the mask, and with it every group boundary, byte
// total, and eligibility verdict, is bitwise identical.
#include "sampler/session_batch.h"

#if FBEDGE_HAVE_AVX2

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace fbedge {

namespace {

static_assert(offsetof(ResponseWrite, first_byte_nic) == 0 &&
                  offsetof(ResponseWrite, last_byte_nic) == 8,
              "paired loads assume adjacent first/last NIC timestamps");
static_assert(offsetof(ResponseWrite, preempted) ==
                  offsetof(ResponseWrite, multiplexed) + 1,
              "flag word load assumes adjacent multiplexed/preempted bytes");

// Nonzero iff either flag byte of w is set (both are 0/1 bools, loaded as
// one 16-bit word from their adjacent bytes).
std::uint8_t flag_pair(const ResponseWrite& w) {
  std::uint16_t both;
  std::memcpy(&both, &w.multiplexed, 2);
  return static_cast<std::uint8_t>(both != 0);
}

// joins[i] = full join predicate (gap compare OR either side's
// multiplexed/preempted flag) for i in [1, n); joins[0] is left untouched.
// Flags live in the same cache line as the timestamps, so folding them in
// here keeps the whole mask build a single pass over the write buffer.
void fill_join_mask(const ResponseWrite* w, std::size_t n, Duration gap, std::uint8_t* joins) {
  const __m256d gap_v = _mm256_set1_pd(gap);
  std::uint32_t prev_flag = n > 0 ? flag_pair(w[0]) : 0u;
  std::size_t i = 1;
  // {first_byte_nic, last_byte_nic} pair of write i-1, carried across
  // iterations (each step's last load is the next step's predecessor).
  __m128d p = n > 1 ? _mm_loadu_pd(&w[0].first_byte_nic) : _mm_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    const __m128d a0 = _mm_loadu_pd(&w[i].first_byte_nic);
    const __m128d a1 = _mm_loadu_pd(&w[i + 1].first_byte_nic);
    const __m128d a2 = _mm_loadu_pd(&w[i + 2].first_byte_nic);
    const __m128d a3 = _mm_loadu_pd(&w[i + 3].first_byte_nic);
    const __m256d first_cur =
        _mm256_set_m128d(_mm_unpacklo_pd(a2, a3), _mm_unpacklo_pd(a0, a1));
    const __m256d last_prev =
        _mm256_set_m128d(_mm_unpackhi_pd(a1, a2), _mm_unpackhi_pd(p, a0));
    const std::uint32_t bits = static_cast<std::uint32_t>(_mm256_movemask_pd(
        _mm256_cmp_pd(first_cur, _mm256_add_pd(last_prev, gap_v), _CMP_LE_OQ)));
    // Spread the 4 compare bits to one byte each (b0|b1<<8|b2<<16|b3<<24),
    // OR in each write's own flag and its predecessor's, and store all four
    // mask bytes with a single write.
    const std::uint32_t gap_bytes = (bits * 0x00204081u) & 0x01010101u;
    const std::uint32_t flags = flag_pair(w[i]) | (flag_pair(w[i + 1]) << 8) |
                                (flag_pair(w[i + 2]) << 16) |
                                (flag_pair(w[i + 3]) << 24);
    const std::uint32_t mask = gap_bytes | flags | (flags << 8) | prev_flag;
    std::memcpy(joins + i, &mask, 4);
    prev_flag = flags >> 24;
    p = a3;
  }
  for (; i < n; ++i) {
    const std::uint32_t f = flag_pair(w[i]);
    joins[i] = static_cast<std::uint8_t>(
        static_cast<std::uint32_t>(w[i].first_byte_nic <=
                                   w[i - 1].last_byte_nic + gap) |
        f | prev_flag);
    prev_flag = f;
  }
}

}  // namespace

void coalesce_batch_avx2(const SessionBatch& batch, const std::uint8_t* skip,
                         CoalescedBatch& out, CoalescerConfig config) {
  out.clear();
  const std::size_t rows = batch.size();
  out.offset.reserve(rows);
  out.count.reserve(rows);

  const ResponseWrite* w = batch.writes.data();
  const std::size_t n_writes = batch.writes.size();
  out.join_scratch.resize(n_writes);
  std::uint8_t* joins = out.join_scratch.data();

  // Row-aligned chunks: fill the join mask for ~64 KB of writes, then scan
  // those rows while the lines are still in cache. One whole-buffer fill
  // followed by a whole-buffer scan would touch every write twice from
  // memory once the batch outgrows L2 — that second pass is what made the
  // unchunked variant lose to the fused scalar scan.
  constexpr std::size_t kChunkWrites = 1024;
  std::size_t r0 = 0;
  while (r0 < rows) {
    const std::size_t chunk_off = batch.write_offset[r0];
    std::size_t chunk_end = chunk_off;
    std::size_t r1 = r0;
    while (r1 < rows && (r1 == r0 || chunk_end - chunk_off < kChunkWrites)) {
      chunk_end = batch.write_offset[r1] + batch.write_count[r1];
      ++r1;
    }
    fill_join_mask(w + chunk_off, chunk_end - chunk_off, config.back_to_back_gap,
                   joins + chunk_off);
    for (std::size_t i = r0; i < r1; ++i) {
      const auto before = static_cast<std::uint32_t>(out.txns.size());
      out.offset.push_back(before);
      if (skip != nullptr && skip[i] != 0) {
        out.count.push_back(0);
        continue;
      }
      const std::uint32_t off = batch.write_offset[i];
      coalesce_writes_append_masked(w + off, joins + off, batch.write_count[i],
                                    batch.min_rtt[i], out.txns,
                                    out.ineligible_groups, out.coalesced_writes);
      out.count.push_back(static_cast<std::uint32_t>(out.txns.size()) - before);
    }
    r0 = r1;
  }
}

}  // namespace fbedge

#endif  // FBEDGE_HAVE_AVX2
