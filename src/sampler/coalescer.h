// Transaction coalescing and eligibility (§3.2.5).
//
// HTTP/2 preemption and multiplexing inflate a transaction's Ttotal with
// time spent sending *other* responses, so multiplexed/preempted responses
// are coalesced into one larger transaction. Responses written back-to-back
// (no gap at the transport layer) are also coalesced, letting a burst of
// small responses be measured as one large one. A response whose first byte
// was sent while a previous response still had bytes in flight — without
// meeting the coalescing conditions — is ineligible for goodput
// measurement.
#pragma once

#include <vector>

#include "goodput/tmodel.h"
#include "sampler/record.h"

namespace fbedge {

/// Configuration for coalescing decisions.
struct CoalescerConfig {
  /// Max gap between one response's last NIC write and the next response's
  /// first NIC write for them to count as back-to-back.
  Duration back_to_back_gap{50 * kMicrosecond};
};

/// Result of coalescing one session's responses.
struct CoalescedSession {
  /// Eligible, coalesced transactions ready for goodput evaluation.
  std::vector<TxnTiming> txns;
  /// Responses discarded because a prior response was still in flight.
  int ineligible_groups{0};
  /// Number of raw responses merged away by coalescing.
  int coalesced_writes{0};
};

/// Coalesces a session's response writes (ordered by first_byte_nic) into
/// goodput-eligible transactions. `min_rtt` is the session's windowed
/// MinRTT, stamped into each output TxnTiming.
CoalescedSession coalesce_session(const std::vector<ResponseWrite>& writes,
                                  Duration min_rtt, CoalescerConfig config = {});

/// As coalesce_session, but refills `out` in place (the txns vector keeps
/// its capacity across sessions) so the per-session allocation disappears
/// on the analysis hot path. Identical output.
void coalesce_session_into(const std::vector<ResponseWrite>& writes, Duration min_rtt,
                           CoalescedSession& out, CoalescerConfig config = {});

/// Span-based core shared by coalesce_session_into and the batched path
/// (sampler/session_batch.h): coalesces `writes[0..n)` and *appends* the
/// resulting transactions to `txns` (no clear), bumping the two counters.
/// Appending is what lets a whole SessionBatch coalesce into one flat
/// TxnTiming buffer without per-session vectors.
void coalesce_writes_append(const ResponseWrite* writes, std::size_t n, Duration min_rtt,
                            std::vector<TxnTiming>& txns, int& ineligible_groups,
                            int& coalesced_writes, CoalescerConfig config = {});

/// As coalesce_writes_append, but the per-pair join decision is read from a
/// precomputed mask instead of being evaluated inline: joins[i] != 0 iff
/// write i joins write i-1's group (joins[0] is never read). The AVX2
/// batch path (session_batch_avx2.cpp) computes the mask for a whole flat
/// write buffer in one vectorized pass — legal because the scan always
/// compares write i against write i-1, never against an older group member
/// — and this scan then only does integer group bookkeeping.
void coalesce_writes_append_masked(const ResponseWrite* writes, const std::uint8_t* joins,
                                   std::size_t n, Duration min_rtt,
                                   std::vector<TxnTiming>& txns, int& ineligible_groups,
                                   int& coalesced_writes);

}  // namespace fbedge
