#include "sampler/io.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace fbedge {

namespace {

constexpr int kSessionFields = 16;
constexpr int kWriteFields = 9;

void append_write(std::string& out, const ResponseWrite& w) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "\t%.17g\t%.17g\t%.17g\t%.17g\t%lld\t%lld\t%lld\t%d\t%d",
                w.first_byte_nic, w.last_byte_nic, w.second_last_ack, w.last_ack,
                static_cast<long long>(w.bytes),
                static_cast<long long>(w.last_packet_bytes),
                static_cast<long long>(w.wnic), w.multiplexed ? 1 : 0,
                w.preempted ? 1 : 0);
  out += buf;
}

}  // namespace

std::string serialize_sample(const SessionSample& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%" PRIu64 "\t%u\t%u\t%u\t%d\t%u\t%u\t%d\t%d\t%d\t%.17g\t%.17g\t%.17g\t%lld\t%d\t%.17g",
      s.id.value, s.pop.value, s.client.ip, s.client.bgp_prefix.addr,
      s.client.bgp_prefix.length, s.client.asn.value, s.client.country.value,
      static_cast<int>(s.client.continent), s.client.hosting_provider ? 1 : 0,
      static_cast<int>(s.version) * 2 + static_cast<int>(s.endpoint),
      s.established_at, s.duration, s.busy_time, static_cast<long long>(s.total_bytes),
      s.route_index, s.min_rtt);
  std::string out(buf);
  char count[32];
  std::snprintf(count, sizeof(count), "\t%d", s.num_transactions);
  out += count;
  for (const auto& w : s.writes) append_write(out, w);
  return out;
}

std::optional<SessionSample> parse_sample(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  // Header fields + txn count, then 9 fields per write.
  if (fields.size() < kSessionFields + 1) return std::nullopt;
  const std::size_t write_fields = fields.size() - kSessionFields - 1;
  if (write_fields % kWriteFields != 0) return std::nullopt;

  auto to_u64 = [](const std::string& f, bool& ok) -> std::uint64_t {
    char* end = nullptr;
    const auto v = std::strtoull(f.c_str(), &end, 10);
    ok = ok && end && *end == '\0' && !f.empty();
    return v;
  };
  auto to_d = [](const std::string& f, bool& ok) -> double {
    char* end = nullptr;
    const double v = std::strtod(f.c_str(), &end);
    ok = ok && end && *end == '\0' && !f.empty();
    return v;
  };

  bool ok = true;
  SessionSample s;
  int i = 0;
  s.id = SessionId{to_u64(fields[i++], ok)};
  s.pop = PopId{static_cast<std::uint32_t>(to_u64(fields[i++], ok))};
  s.client.ip = static_cast<std::uint32_t>(to_u64(fields[i++], ok));
  s.client.bgp_prefix.addr = static_cast<std::uint32_t>(to_u64(fields[i++], ok));
  s.client.bgp_prefix.length = static_cast<int>(to_u64(fields[i++], ok));
  s.client.asn = Asn{static_cast<std::uint32_t>(to_u64(fields[i++], ok))};
  s.client.country = CountryId{static_cast<std::uint32_t>(to_u64(fields[i++], ok))};
  const auto continent = to_u64(fields[i++], ok);
  if (continent >= static_cast<std::uint64_t>(kNumContinents)) return std::nullopt;
  s.client.continent = static_cast<Continent>(continent);
  s.client.hosting_provider = to_u64(fields[i++], ok) != 0;
  const auto version_endpoint = to_u64(fields[i++], ok);
  s.version = static_cast<HttpVersion>(version_endpoint / 2);
  s.endpoint = static_cast<EndpointClass>(version_endpoint % 2);
  s.established_at = to_d(fields[i++], ok);
  s.duration = to_d(fields[i++], ok);
  s.busy_time = to_d(fields[i++], ok);
  s.total_bytes = static_cast<Bytes>(to_u64(fields[i++], ok));
  s.route_index = static_cast<int>(to_u64(fields[i++], ok));
  s.min_rtt = to_d(fields[i++], ok);
  s.num_transactions = static_cast<int>(to_u64(fields[i++], ok));

  s.writes.reserve(write_fields / kWriteFields);
  for (std::size_t w = 0; w < write_fields / kWriteFields; ++w) {
    ResponseWrite rw;
    rw.first_byte_nic = to_d(fields[i++], ok);
    rw.last_byte_nic = to_d(fields[i++], ok);
    rw.second_last_ack = to_d(fields[i++], ok);
    rw.last_ack = to_d(fields[i++], ok);
    rw.bytes = static_cast<Bytes>(to_u64(fields[i++], ok));
    rw.last_packet_bytes = static_cast<Bytes>(to_u64(fields[i++], ok));
    rw.wnic = static_cast<Bytes>(to_u64(fields[i++], ok));
    rw.multiplexed = to_u64(fields[i++], ok) != 0;
    rw.preempted = to_u64(fields[i++], ok) != 0;
    s.writes.push_back(rw);
  }
  if (!ok) return std::nullopt;
  return s;
}

SampleDefect validate_sample(const SessionSample& s) {
  auto finite = [](double v) { return std::isfinite(v); };
  if (s.total_bytes < 0) return SampleDefect::kNegativeBytes;
  if (s.client.bgp_prefix.length < 0 || s.client.bgp_prefix.length > 32) {
    return SampleDefect::kBadPrefix;
  }
  if (s.route_index < 0) return SampleDefect::kBadRoute;
  if (s.num_transactions < 0) return SampleDefect::kBadTransactions;
  if (!finite(s.established_at) || s.established_at < 0 || !finite(s.duration) ||
      s.duration < 0 || !finite(s.busy_time) || s.busy_time < 0) {
    return SampleDefect::kBadTime;
  }
  if (!finite(s.min_rtt) || s.min_rtt < 0) return SampleDefect::kBadRtt;
  for (const auto& w : s.writes) {
    if (w.bytes < 0 || w.last_packet_bytes < 0 || w.wnic < 0) {
      return SampleDefect::kNegativeBytes;
    }
    // Only each clock's own sanity is checked, never ACK-vs-NIC ordering:
    // the two streams run on different clocks (§3.1) and may legitimately
    // disagree under skew. Cross-stream inconsistencies are the goodput
    // evaluator's job to tolerate, not the ingest gate's to reject.
    if (!finite(w.first_byte_nic) || !finite(w.last_byte_nic) ||
        !finite(w.second_last_ack) || !finite(w.last_ack)) {
      return SampleDefect::kBadWriteTime;
    }
  }
  return SampleDefect::kNone;
}

void write_samples(std::ostream& out, const std::vector<SessionSample>& samples) {
  for (const auto& s : samples) out << serialize_sample(s) << '\n';
}

ReadResult read_samples(std::istream& in) {
  ReadResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto sample = parse_sample(line)) {
      if (validate_sample(*sample) == SampleDefect::kNone) {
        result.samples.push_back(std::move(*sample));
      } else {
        ++result.invalid;
      }
    } else {
      ++result.malformed;
    }
  }
  return result;
}

}  // namespace fbedge
