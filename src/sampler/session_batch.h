// Columnar (SoA) session storage for the analysis hot path.
//
// The scalar pipeline builds one SessionSample at a time — an AoS record
// with its own writes vector — and walks it field-by-field through
// sampler -> goodput -> agg. At fig6/table1 scale (10^6..10^7 sessions per
// run) that layout taxes every stage twice: an allocation per session and a
// cache line per field touch. A SessionBatch instead holds one *window* of
// a group's sessions as parallel columns plus a single flat ResponseWrite
// buffer indexed by per-row offset/count. The batch is the arena: clear()
// drops the rows but keeps every column's capacity, so after the first few
// windows a group's sessions are generated, coalesced, HD-evaluated and
// aggregated with zero per-session heap allocations.
//
// Batching changes only where values live. The generator fills rows through
// the same simulation code (and therefore the same RNG draw sequence) as
// the scalar path, and downstream kernels consume rows in row order, so
// every derived statistic is bit-identical to the per-session pipeline —
// see tests/session_batch_test.cpp for the enforced equivalence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "http/types.h"
#include "sampler/coalescer.h"
#include "sampler/record.h"
#include "util/ids.h"
#include "util/units.h"

namespace fbedge {

struct SessionBatch {
  // Hot scalar columns; element i of each column belongs to session row i.
  std::vector<SessionId> id;
  std::vector<std::uint32_t> client_ip;
  std::vector<std::uint8_t> hosting;  // hosting_provider flag (§2.2.4 filter)
  std::vector<HttpVersion> version;
  std::vector<EndpointClass> endpoint;
  std::vector<SimTime> established_at;
  std::vector<Duration> duration;
  std::vector<Duration> busy_time;
  std::vector<Bytes> total_bytes;
  std::vector<std::int32_t> num_transactions;
  std::vector<std::int32_t> route_index;
  std::vector<Duration> min_rtt;

  // Flat write buffer: row i's ResponseWrites are
  // writes[write_offset[i] .. write_offset[i] + write_count[i]).
  std::vector<ResponseWrite> writes;
  std::vector<std::uint32_t> write_offset;
  std::vector<std::uint32_t> write_count;

  std::size_t size() const { return established_at.size(); }
  bool empty() const { return established_at.empty(); }

  /// Drops all rows but keeps every column's capacity — the arena reuse
  /// that makes the steady-state loop allocation-free.
  void clear();

  /// Total capacity currently reserved across all columns, in bytes.
  std::size_t arena_bytes() const;

  // Row protocol (generator side): begin_row, then add_write per response,
  // then finish_row. Mirrors the order run_session_into learns the values,
  // so the emitter needs no staging buffer.
  void begin_row(SessionId sid, SimTime at, int route, std::uint32_t ip,
                 bool hosting_provider, HttpVersion ver, EndpointClass ep,
                 int num_txns);

  void add_write(const ResponseWrite& w) {
    writes.push_back(w);
    total_bytes.back() += w.bytes;
  }

  void finish_row(Duration dur, Duration busy, Duration rtt) {
    duration.push_back(dur);
    busy_time.push_back(busy);
    min_rtt.push_back(rtt);
    write_count.push_back(static_cast<std::uint32_t>(writes.size()) -
                          write_offset.back());
  }
};

/// §3.2.5 coalescing output for a whole batch: one flat TxnTiming buffer,
/// row i's transactions at txns[offset[i] .. offset[i] + count[i]) — the
/// exact span layout evaluate_hd_batch() consumes. Counters aggregate over
/// all non-skipped rows.
struct CoalescedBatch {
  std::vector<TxnTiming> txns;
  std::vector<std::uint32_t> offset;
  std::vector<std::uint32_t> count;
  int ineligible_groups{0};
  int coalesced_writes{0};

  /// Scratch for the AVX2 path's precomputed join mask (one byte per write
  /// in the source batch); kept here so its capacity is reused across
  /// windows like every other column. Contents are meaningless between
  /// calls and never part of the result.
  std::vector<std::uint8_t> join_scratch;

  void clear() {
    txns.clear();
    offset.clear();
    count.clear();
    ineligible_groups = 0;
    coalesced_writes = 0;
  }
};

/// Coalesces every row of `batch` into `out` (cleared first; capacity
/// reused). `skip` is an optional per-row mask (nullptr = coalesce all):
/// rows with a nonzero skip byte get count 0 and cost nothing — the
/// analysis passes the hosting column here so hosting-provider sessions
/// are filtered before, not after, the goodput work.
void coalesce_batch(const SessionBatch& batch, const std::uint8_t* skip,
                    CoalescedBatch& out, CoalescerConfig config = {});

/// The always-built scalar reference for coalesce_batch (the pinned
/// definition of the output); coalesce_batch() dispatches here unless the
/// AVX2 path is active (util/simd.h).
void coalesce_batch_scalar(const SessionBatch& batch, const std::uint8_t* skip,
                           CoalescedBatch& out, CoalescerConfig config = {});

/// AVX2 variant (defined only when FBEDGE_HAVE_AVX2; guard call sites with
/// simd::compiled_avx2()): the gap/merge join predicate for the whole flat
/// write buffer is evaluated four pairs at a time into join_scratch, then
/// each row runs the integer-only masked merge scan. The join decision is
/// one IEEE add + ordered compare per pair, so the mask — and therefore
/// every group boundary, byte total, and eligibility verdict — is bitwise
/// identical to the scalar scan.
void coalesce_batch_avx2(const SessionBatch& batch, const std::uint8_t* skip,
                         CoalescedBatch& out, CoalescerConfig config = {});

}  // namespace fbedge
