// Sample (de)serialization.
//
// The paper's pipeline ships captured samples from the load balancers to
// an analytics tier (§2.2.2). This module provides a compact line-based
// text format for SessionSample so datasets can be exported, inspected,
// and re-ingested; the round-trip is exact for every field the analyzers
// consume.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "sampler/record.h"

namespace fbedge {

/// Serializes one sample as a single line (fields tab-separated; writes
/// appended as repeated groups). Never contains '\n'.
std::string serialize_sample(const SessionSample& sample);

/// Parses a line produced by serialize_sample(). Returns nullopt on
/// malformed input (wrong field count or unparseable numbers).
std::optional<SessionSample> parse_sample(const std::string& line);

/// Streams every sample of `samples` to `out`, one line each.
void write_samples(std::ostream& out, const std::vector<SessionSample>& samples);

/// Reads samples until EOF; malformed lines are skipped and counted.
struct ReadResult {
  std::vector<SessionSample> samples;
  int malformed{0};
};
ReadResult read_samples(std::istream& in);

}  // namespace fbedge
