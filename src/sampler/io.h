// Sample (de)serialization.
//
// The paper's pipeline ships captured samples from the load balancers to
// an analytics tier (§2.2.2). This module provides a compact line-based
// text format for SessionSample so datasets can be exported, inspected,
// and re-ingested; the round-trip is exact for every field the analyzers
// consume.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "sampler/record.h"

namespace fbedge {

/// Serializes one sample as a single line (fields tab-separated; writes
/// appended as repeated groups). Never contains '\n'.
std::string serialize_sample(const SessionSample& sample);

/// Parses a line produced by serialize_sample(). Returns nullopt on
/// malformed input (wrong field count or unparseable numbers).
std::optional<SessionSample> parse_sample(const std::string& line);

/// Streams every sample of `samples` to `out`, one line each.
void write_samples(std::ostream& out, const std::vector<SessionSample>& samples);

/// Semantic defect classes for a structurally parseable sample. Records
/// from a real capture path can carry values no generator would produce
/// (negative sizes, non-finite timestamps); the pipeline must reject them
/// as data — recoverable, counted — rather than trip the fail-fast
/// FBEDGE_EXPECT checks reserved for programmer errors.
enum class SampleDefect : std::uint8_t {
  kNone = 0,
  kNegativeBytes,     // total_bytes or a write's byte field < 0
  kBadPrefix,         // BGP prefix length outside [0, 32]
  kBadRoute,          // negative route index
  kBadTransactions,   // negative transaction count
  kBadTime,           // non-finite or negative session timing
  kBadRtt,            // non-finite or negative MinRTT
  kBadWriteTime,      // non-finite write timestamp
};

constexpr const char* to_string(SampleDefect d) {
  switch (d) {
    case SampleDefect::kNone: return "none";
    case SampleDefect::kNegativeBytes: return "negative bytes";
    case SampleDefect::kBadPrefix: return "bad prefix";
    case SampleDefect::kBadRoute: return "bad route";
    case SampleDefect::kBadTransactions: return "bad transaction count";
    case SampleDefect::kBadTime: return "bad session time";
    case SampleDefect::kBadRtt: return "bad min rtt";
    case SampleDefect::kBadWriteTime: return "bad write time";
  }
  return "?";
}

/// Validates a parsed sample semantically. Every sample the generator
/// produces passes; faultsim-corrupted and wild-capture records that would
/// poison sketches (NaN MinRTT) or abort in the goodput models are
/// classified by their first defect.
SampleDefect validate_sample(const SessionSample& sample);

/// Reads samples until EOF; malformed lines (parse failures) and invalid
/// samples (parseable but failing validate_sample) are skipped and counted.
struct ReadResult {
  std::vector<SessionSample> samples;
  int malformed{0};
  int invalid{0};
};
ReadResult read_samples(std::istream& in);

}  // namespace fbedge
