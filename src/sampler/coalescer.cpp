#include "sampler/coalescer.h"

namespace fbedge {

namespace {

/// An open coalescing group: a run of responses measured as one.
struct Group {
  std::size_t first;
  std::size_t last;
  Bytes bytes{0};
};

TxnTiming finalize(const ResponseWrite* writes, const Group& g, Duration min_rtt) {
  const ResponseWrite& head = writes[g.first];
  const ResponseWrite& tail = writes[g.last];
  TxnTiming txn;
  // §3.2.5 delayed-ACK adjustment: drop the final packet and clock to the
  // ACK of the second-to-last packet.
  txn.btotal = g.bytes - tail.last_packet_bytes;
  txn.ttotal = tail.second_last_ack - head.first_byte_nic;
  txn.wnic = head.wnic;
  txn.min_rtt = min_rtt;
  return txn;
}

}  // namespace

CoalescedSession coalesce_session(const std::vector<ResponseWrite>& writes,
                                  Duration min_rtt, CoalescerConfig config) {
  CoalescedSession out;
  coalesce_session_into(writes, min_rtt, out, config);
  return out;
}

void coalesce_session_into(const std::vector<ResponseWrite>& writes, Duration min_rtt,
                           CoalescedSession& out, CoalescerConfig config) {
  out.txns.clear();
  out.ineligible_groups = 0;
  out.coalesced_writes = 0;
  coalesce_writes_append(writes.data(), writes.size(), min_rtt, out.txns,
                         out.ineligible_groups, out.coalesced_writes, config);
}

void coalesce_writes_append(const ResponseWrite* writes, std::size_t n, Duration min_rtt,
                            std::vector<TxnTiming>& txns, int& ineligible_groups,
                            int& coalesced_writes, CoalescerConfig config) {
  if (n == 0) return;

  Group group{0, 0, writes[0].bytes};
  // last_ack of the most recently *closed* group; used for the
  // bytes-in-flight eligibility check on the next group's first byte.
  Duration prev_group_last_ack = -1;

  auto close_group = [&](bool eligible) {
    if (eligible) {
      txns.push_back(finalize(writes, group, min_rtt));
    } else {
      ++ineligible_groups;
    }
    prev_group_last_ack = writes[group.last].last_ack;
  };

  bool current_eligible = true;
  for (std::size_t i = 1; i < n; ++i) {
    const ResponseWrite& prev = writes[group.last];
    const ResponseWrite& cur = writes[i];
    const bool joins = cur.multiplexed || cur.preempted || prev.multiplexed ||
                       prev.preempted ||
                       cur.first_byte_nic <= prev.last_byte_nic + config.back_to_back_gap;
    if (joins) {
      group.last = i;
      group.bytes += cur.bytes;
      ++coalesced_writes;
      continue;
    }
    close_group(current_eligible);
    // New group: ineligible if its first byte left while the previous
    // group's bytes were still in flight (§3.2.5 "Bytes in Flight").
    current_eligible = cur.first_byte_nic >= prev_group_last_ack;
    group = Group{i, i, cur.bytes};
  }
  close_group(current_eligible);
}

void coalesce_writes_append_masked(const ResponseWrite* writes, const std::uint8_t* joins,
                                   std::size_t n, Duration min_rtt,
                                   std::vector<TxnTiming>& txns, int& ineligible_groups,
                                   int& coalesced_writes) {
  if (n == 0) return;

  Group group{0, 0, writes[0].bytes};
  Duration prev_group_last_ack = -1;

  auto close_group = [&](bool eligible) {
    if (eligible) {
      txns.push_back(finalize(writes, group, min_rtt));
    } else {
      ++ineligible_groups;
    }
    prev_group_last_ack = writes[group.last].last_ack;
  };

  bool current_eligible = true;
  for (std::size_t i = 1; i < n; ++i) {
    if (joins[i] != 0) {
      group.last = i;
      group.bytes += writes[i].bytes;
      ++coalesced_writes;
      continue;
    }
    close_group(current_eligible);
    current_eligible = writes[i].first_byte_nic >= prev_group_last_ack;
    group = Group{i, i, writes[i].bytes};
  }
  close_group(current_eligible);
}

}  // namespace fbedge
