#include "sampler/session_batch.h"

#include "util/simd.h"

namespace fbedge {

void SessionBatch::clear() {
  id.clear();
  client_ip.clear();
  hosting.clear();
  version.clear();
  endpoint.clear();
  established_at.clear();
  duration.clear();
  busy_time.clear();
  total_bytes.clear();
  num_transactions.clear();
  route_index.clear();
  min_rtt.clear();
  writes.clear();
  write_offset.clear();
  write_count.clear();
}

std::size_t SessionBatch::arena_bytes() const {
  auto cap = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  return cap(id) + cap(client_ip) + cap(hosting) + cap(version) + cap(endpoint) +
         cap(established_at) + cap(duration) + cap(busy_time) + cap(total_bytes) +
         cap(num_transactions) + cap(route_index) + cap(min_rtt) + cap(writes) +
         cap(write_offset) + cap(write_count);
}

void SessionBatch::begin_row(SessionId sid, SimTime at, int route, std::uint32_t ip,
                             bool hosting_provider, HttpVersion ver, EndpointClass ep,
                             int num_txns) {
  id.push_back(sid);
  client_ip.push_back(ip);
  hosting.push_back(hosting_provider ? 1 : 0);
  version.push_back(ver);
  endpoint.push_back(ep);
  established_at.push_back(at);
  total_bytes.push_back(0);
  num_transactions.push_back(num_txns);
  route_index.push_back(route);
  write_offset.push_back(static_cast<std::uint32_t>(writes.size()));
}

void coalesce_batch(const SessionBatch& batch, const std::uint8_t* skip,
                    CoalescedBatch& out, CoalescerConfig config) {
#if FBEDGE_HAVE_AVX2
  // The AVX2 coalesce kernel loses to scalar at every measured batch size
  // (see kCoalesceAvx2MinWrites), so `auto` dispatch never takes it here;
  // forced dispatch still does.
  if (simd::avx2_batch_active(batch.writes.size(), simd::kCoalesceAvx2MinWrites)) {
    coalesce_batch_avx2(batch, skip, out, config);
    return;
  }
#endif
  coalesce_batch_scalar(batch, skip, out, config);
}

void coalesce_batch_scalar(const SessionBatch& batch, const std::uint8_t* skip,
                           CoalescedBatch& out, CoalescerConfig config) {
  out.clear();
  const std::size_t rows = batch.size();
  out.offset.reserve(rows);
  out.count.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto before = static_cast<std::uint32_t>(out.txns.size());
    out.offset.push_back(before);
    if (skip != nullptr && skip[i] != 0) {
      out.count.push_back(0);
      continue;
    }
    coalesce_writes_append(batch.writes.data() + batch.write_offset[i],
                           batch.write_count[i], batch.min_rtt[i], out.txns,
                           out.ineligible_groups, out.coalesced_writes, config);
    out.count.push_back(static_cast<std::uint32_t>(out.txns.size()) - before);
  }
}

}  // namespace fbedge
