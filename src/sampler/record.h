// Measurement records captured by the load-balancer instrumentation
// (§2.2.2).
//
// For sampled sessions, Proxygen captures TCP state at the start and end of
// the session and, per transaction, timestamps and TCP state at prescribed
// points (socket and NIC timestamps, cwnd at first response byte, ACK
// arrival times). On connection close the final TCP state is captured and
// the record is annotated with the egress route used.
#pragma once

#include <cstdint>
#include <vector>

#include "http/types.h"
#include "routing/route.h"
#include "util/geo.h"
#include "util/ids.h"
#include "util/units.h"

namespace fbedge {

/// Client-side metadata attached to a sample (geolocation + BGP).
struct ClientInfo {
  std::uint32_t ip{0};
  IpPrefix bgp_prefix;
  Asn asn{};
  CountryId country{};
  Continent continent{Continent::kNorthAmerica};
  /// Flagged by the commercial geolocation service as a hosting provider /
  /// VPN relay; such samples are filtered before analysis (§2.2.4).
  bool hosting_provider{false};
};

/// Per-response instrumentation points (one per HTTP transaction response).
struct ResponseWrite {
  /// First response byte written to the NIC (Ttotal clock start).
  SimTime first_byte_nic{0};
  /// Last response byte written to the NIC (back-to-back detection).
  SimTime last_byte_nic{0};
  /// ACK covering the second-to-last packet received (§3.2.5 clock end).
  SimTime second_last_ack{0};
  /// ACK covering the final byte received.
  SimTime last_ack{0};
  Bytes bytes{0};
  Bytes last_packet_bytes{0};
  /// cwnd in bytes when the first response byte was written to the NIC.
  Bytes wnic{0};
  /// HTTP/2 send window shared with an equal-priority transaction.
  bool multiplexed{false};
  /// Paused mid-response for a higher-priority transaction.
  bool preempted{false};
};

/// Everything captured for one sampled HTTP session.
struct SessionSample {
  SessionId id{};
  PopId pop{};
  ClientInfo client;
  HttpVersion version{HttpVersion::kHttp1_1};
  EndpointClass endpoint{EndpointClass::kDynamic};

  /// Absolute dataset time of TCP establishment.
  SimTime established_at{0};
  Duration duration{0};
  Duration busy_time{0};
  Bytes total_bytes{0};
  int num_transactions{0};

  /// Index into the user group's policy-ranked route set actually used to
  /// deliver this session; 0 = preferred route (§2.2.3 route override).
  int route_index{0};

  /// Windowed MinRTT from the final TCP state (§3.1).
  Duration min_rtt{0};

  std::vector<ResponseWrite> writes;
};

}  // namespace fbedge
