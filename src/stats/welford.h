// Streaming mean/variance accumulator (Welford's algorithm).
#pragma once

#include <cmath>
#include <cstdint>

namespace fbedge {

/// Numerically stable online mean and variance.
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  /// Combines another accumulator (Chan et al. parallel variance merge).
  void merge(const Welford& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Raw sum of squared deviations, exposed (with mean/count) so the
  /// accumulator state can be serialized bitwise (agg/series_io).
  double m2() const { return m2_; }

  /// Rebuilds an accumulator from previously captured raw state. The
  /// triple is stored verbatim, so save -> from_raw round-trips bitwise
  /// for any payload (including non-finite values from corrupt input —
  /// downstream validity checks, not this type, reject those).
  static Welford from_raw(std::uint64_t n, double mean, double m2) {
    Welford w;
    w.n_ = n;
    w.mean_ = mean;
    w.m2_ = m2;
    return w;
  }

  /// Sample variance (n-1 denominator); 0 for fewer than 2 points.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t n_{0};
  double mean_{0};
  double m2_{0};
};

}  // namespace fbedge
