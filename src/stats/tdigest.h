// Merging t-digest (Dunning & Ertl, "Computing Extremely Accurate Quantiles
// Using t-Digests", arXiv:1902.04023).
//
// The paper (footnote 11) notes that production traffic-engineering systems
// compute per-aggregation percentiles and confidence intervals with
// t-digests in streaming analytics frameworks. This is that data structure:
// a mergeable, bounded-size sketch with very low error near the tails and
// near the median.
//
// Hot-path design (see DESIGN.md "performance notes"): `centroids_` is kept
// sorted between compressions, so compress() only sorts the small unmerged
// buffer and two-pointer-merges it with the existing run into a persistent
// scratch vector — no allocation and no O(n log n) work over data that is
// already sorted. Ties sort by (mean, weight) so the output is identical
// across toolchains regardless of std::sort's handling of equal keys.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/binio.h"
#include "util/expect.h"

namespace fbedge {

namespace detail {
/// 16-byte integer sort key whose lexicographic (mean, weight) order equals
/// the centroid comparator's order for every input without a -0.0 or NaN
/// field (see tdigest_avx2.cpp).
struct CentroidKey {
  std::uint64_t mean{0};
  std::uint64_t weight{0};
};
}  // namespace detail

/// A mergeable quantile sketch.
///
/// Usage:
///   TDigest d(100);
///   d.add(value, weight);
///   double p50 = d.quantile(0.5);
///
/// add() buffers points; buffers are merged into centroids automatically
/// when full, or explicitly via compress(). All read accessors compress
/// first, so interleaved add/quantile is safe.
class TDigest {
 public:
  struct Centroid {
    double mean{0};
    double weight{0};
  };

  /// `compression` bounds the number of retained centroids (~2x compression)
  /// and controls accuracy; 100 gives ~0.1-1% relative rank error.
  explicit TDigest(double compression = 100.0);

  /// Adds a point with the given weight (weight > 0). Inline: every session
  /// feeds several digests (per-route MinRTT/HDratio cells), so on the
  /// aggregation hot path the common buffered case should compile down to a
  /// push + bookkeeping with no call; the rare buffer-full case takes the
  /// out-of-line compress().
  void add(double value, double weight = 1.0) {
    FBEDGE_EXPECT(weight > 0, "t-digest weight must be positive");
    FBEDGE_EXPECT(std::isfinite(value), "t-digest value must be finite");
    buffer_.push_back({value, weight});
    unmerged_weight_ += weight;
    ++count_;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    if (buffer_.size() >= buffer_limit_) compress();
  }

  /// Merges another digest into this one.
  void merge(const TDigest& other);

  /// Returns the estimated value at quantile q in [0, 1].
  /// Returns NaN for an empty digest.
  double quantile(double q) const;

  /// Returns the estimated fraction of weight <= x. Returns NaN if empty.
  double cdf(double x) const;

  /// Total weight added so far.
  double total_weight() const { return total_weight_ + unmerged_weight_; }

  /// Number of points added (unweighted count of add() calls).
  std::size_t count() const { return count_; }

  bool empty() const { return total_weight() <= 0; }

  double min() const { return min_; }
  double max() const { return max_; }

  /// Flushes the input buffer into the centroid set.
  void compress() const;

  /// Read-only view of the merged centroids (compresses first).
  const std::vector<Centroid>& centroids() const;

  /// Returns the digest to its empty post-construction state while keeping
  /// every internal buffer's capacity — the reuse primitive behind the
  /// per-worker aggregation pools (a reset digest produces bit-identical
  /// results to a freshly constructed one with the same compression).
  void reset();

  /// Appends the compressed state (compression, count, weight, min/max,
  /// centroid list) to `w` as raw little-endian bit patterns. save() then
  /// load() reconstructs a digest whose every subsequent query is bitwise
  /// identical to this one's — compress() runs first, and a compressed
  /// digest's behavior is a pure function of the serialized fields.
  void save(ByteWriter& w) const;

  /// Exact number of bytes the next save() will append: the fixed header
  /// plus 16 per centroid. Compresses first (save() does the same), so
  /// calling saved_size() then save() adds no extra work and the two always
  /// agree — callers use it to reserve output buffers up front.
  std::size_t saved_size() const;

  /// Replaces this digest's state from `r` (keeping buffer capacity, so
  /// pooled digests deserialize without allocating once warm). Returns
  /// false — leaving the digest reset-empty — on truncated input or
  /// structurally invalid fields; never crashes on corrupt bytes.
  bool load(ByteReader& r);

 private:
  /// Merges the sorted `run` with the sorted `centroids_` and rebuilds the
  /// centroid set under the k1 size limit. `run` must not alias members.
  void absorb_sorted_run(const Centroid* run, std::size_t n) const;

  double compression_;
  /// Buffered points before an automatic compress; cached from the ctor so
  /// add() does not recompute the float->size_t conversion per call.
  std::size_t buffer_limit_;
  // Logically-const caching: compress() reshapes internal representation
  // without changing the distribution represented.
  mutable std::vector<Centroid> centroids_;
  mutable std::vector<Centroid> buffer_;
  /// Persistent merge scratch: compress() writes the combined sorted run
  /// here, then rebuilds centroids_ from it. Reused across compressions so
  /// the steady state allocates nothing.
  mutable std::vector<Centroid> scratch_;
  /// Key scratch for the AVX2 sort path in compress(); capacity persists
  /// like the other pools. Contents are meaningless between calls.
  mutable std::vector<detail::CentroidKey> key_scratch_;
  mutable double total_weight_{0};
  mutable double unmerged_weight_{0};
  std::size_t count_{0};
  double min_;
  double max_;
};

namespace detail {
/// AVX2 sort of a centroid buffer into exactly the comparator order
/// (defined only when FBEDGE_HAVE_AVX2; guard call sites with
/// simd::compiled_avx2()): centroids are encoded four doubles at a time
/// into order-preserving integer keys, sorted branchlessly as integers, and
/// decoded back bit-exactly. Returns false — leaving `buffer` untouched —
/// when any field is -0.0 or NaN (the two cases where integer order and
/// IEEE compare order disagree); the caller then runs the comparator sort.
bool tdigest_sort_avx2(std::vector<TDigest::Centroid>& buffer,
                       std::vector<CentroidKey>& scratch);
}  // namespace detail

}  // namespace fbedge
