#include "stats/median_ci.h"

#include <algorithm>
#include <cmath>

#include "util/expect.h"

namespace fbedge {

double normal_quantile(double p) {
  FBEDGE_EXPECT(p > 0.0 && p < 1.0, "normal_quantile domain");
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= 1 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

namespace {

// Fractional "ranks" (0-based positions into the sorted sample) bracketing
// the median at confidence alpha, from the binomial/normal approximation.
struct MedianBracket {
  double lo_pos;  // 0-based position, may be fractional
  double hi_pos;
};

MedianBracket median_bracket(double n, double alpha) {
  const double z = normal_quantile(0.5 + alpha / 2.0);
  const double half_width = z * std::sqrt(n) / 2.0;
  double lo = n / 2.0 - half_width;   // 1-based fractional rank
  double hi = n / 2.0 + half_width + 1.0;
  lo = std::max(1.0, lo);
  hi = std::min(n, hi);
  return {lo - 1.0, hi - 1.0};  // convert to 0-based
}

// Standard error of the median recovered from its order-statistic interval.
double median_se(const ConfidenceInterval& ci, double alpha) {
  const double z = normal_quantile(0.5 + alpha / 2.0);
  return ci.width() / (2.0 * z);
}

// The interval needs the sample values at three fractional positions
// (median, bracket low, bracket high), i.e. at most six order statistics.
// Rather than sorting the whole scratch buffer, each needed rank is placed
// with nth_element restricted to the segment between the nearest
// already-placed ranks (nth_element leaves the buffer partitioned around
// every rank it has placed). O(n) total instead of O(n log n), and an
// exact order statistic is the same double either way, so results match
// the former full sort bit-for-bit.
class OrderStatSelector {
 public:
  explicit OrderStatSelector(std::vector<double>& scratch) : v_(scratch) {}

  // Interpolated value at fractional 0-based position `pos` (the formula of
  // quantile_sorted / the former value_at_pos, verbatim).
  double at(double pos) {
    pos = std::clamp(pos, 0.0, static_cast<double>(v_.size() - 1));
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    const double lo_v = rank(lo);
    const double hi_v = rank(hi);
    return lo_v + frac * (hi_v - lo_v);
  }

 private:
  double rank(std::size_t k) {
    std::size_t from = 0, to = v_.size();
    for (const std::size_t p : placed_) {
      if (p == k) return v_[k];
      if (p < k) {
        from = std::max(from, p + 1);
      } else {
        to = std::min(to, p);
      }
    }
    std::nth_element(v_.begin() + static_cast<std::ptrdiff_t>(from),
                     v_.begin() + static_cast<std::ptrdiff_t>(k),
                     v_.begin() + static_cast<std::ptrdiff_t>(to));
    placed_.push_back(k);
    return v_[k];
  }

  std::vector<double>& v_;
  std::vector<std::size_t> placed_;
};

ConfidenceInterval ci_from_scratch(std::vector<double>& scratch, double alpha) {
  FBEDGE_EXPECT(scratch.size() >= 5, "median CI needs >= 5 samples");
  const auto bracket = median_bracket(static_cast<double>(scratch.size()), alpha);
  const double median_pos = 0.5 * static_cast<double>(scratch.size() - 1);
  OrderStatSelector sel(scratch);
  ConfidenceInterval ci;
  ci.estimate = sel.at(median_pos);
  ci.lower = sel.at(bracket.lo_pos);
  ci.upper = sel.at(bracket.hi_pos);
  return ci;
}

}  // namespace

ConfidenceInterval median_confidence_interval(std::span<const double> values,
                                              std::vector<double>& scratch,
                                              double alpha) {
  scratch.assign(values.begin(), values.end());
  return ci_from_scratch(scratch, alpha);
}

ConfidenceInterval median_confidence_interval(const TDigest& digest, double alpha) {
  const double n = static_cast<double>(digest.count());
  FBEDGE_EXPECT(n >= 5, "median CI needs >= 5 samples");
  const auto bracket = median_bracket(n, alpha);
  ConfidenceInterval ci;
  ci.estimate = digest.quantile(0.5);
  // Convert bracket positions to quantiles of the sketch.
  ci.lower = digest.quantile(bracket.lo_pos / (n - 1.0));
  ci.upper = digest.quantile(bracket.hi_pos / (n - 1.0));
  return ci;
}

namespace {

ConfidenceInterval combine_difference(const ConfidenceInterval& ca,
                                      const ConfidenceInterval& cb, double alpha) {
  const double z = normal_quantile(0.5 + alpha / 2.0);
  const double se_a = median_se(ca, alpha);
  const double se_b = median_se(cb, alpha);
  const double se = std::sqrt(se_a * se_a + se_b * se_b);
  ConfidenceInterval out;
  out.estimate = ca.estimate - cb.estimate;
  out.lower = out.estimate - z * se;
  out.upper = out.estimate + z * se;
  return out;
}

}  // namespace

ConfidenceInterval median_difference_interval(std::span<const double> a,
                                              std::span<const double> b,
                                              std::vector<double>& scratch,
                                              double alpha) {
  const auto ca = median_confidence_interval(a, scratch, alpha);
  const auto cb = median_confidence_interval(b, scratch, alpha);
  return combine_difference(ca, cb, alpha);
}

ConfidenceInterval median_difference_interval(const TDigest& a, const TDigest& b,
                                              double alpha) {
  const auto ca = median_confidence_interval(a, alpha);
  const auto cb = median_confidence_interval(b, alpha);
  return combine_difference(ca, cb, alpha);
}

}  // namespace fbedge
