// AVX2 sort path for TDigest::compress (see tdigest.h and the bitwise
// contract in util/simd.h).
//
// The centroid comparator orders by (mean, weight) with IEEE `<`. For
// doubles that are neither -0.0 nor NaN, the classic order-preserving
// integer encoding
//
//   key(x) = bits(x) XOR (x < 0 ? 0xFFFF'FFFF'FFFF'FFFF
//                                : 0x8000'0000'0000'0000)
//
// is a strictly monotone bijection, so sorting (key(mean), key(weight))
// pairs lexicographically as integers visits exactly the comparator's
// order — and because comparator-equivalent centroids are byte-identical
// 16-byte pairs, even an unstable sort yields the same output bytes. The
// encode, the hazard scan (-0.0 orders differently under integer compare;
// NaN compares unordered), and the decode all run four doubles per
// instruction; the sort itself is std::sort over two branchless integer
// compares. Buffers containing a hazard are declined untouched and the
// caller falls back to the comparator sort.
#include "stats/tdigest.h"

#if FBEDGE_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace fbedge::detail {

namespace {

static_assert(sizeof(TDigest::Centroid) == 16 && sizeof(CentroidKey) == 16,
              "key array must mirror the centroid array layout");

constexpr std::uint64_t kSignBit = 0x8000'0000'0000'0000ULL;
constexpr std::uint64_t kExpMask = 0x7FF0'0000'0000'0000ULL;

inline std::uint64_t encode_scalar(std::uint64_t bits) {
  return bits ^ ((bits & kSignBit) != 0 ? ~std::uint64_t{0} : kSignBit);
}

inline std::uint64_t decode_scalar(std::uint64_t key) {
  return key ^ ((key & kSignBit) != 0 ? kSignBit : ~std::uint64_t{0});
}

inline bool hazard_scalar(std::uint64_t bits) {
  return bits == kSignBit || (bits & ~kSignBit) > kExpMask;  // -0.0 or NaN
}

}  // namespace

bool tdigest_sort_avx2(std::vector<TDigest::Centroid>& buffer,
                       std::vector<CentroidKey>& scratch) {
  const std::size_t n = buffer.size();
  scratch.resize(n);
  // The buffer is 2n contiguous doubles (mean, weight, mean, weight, ...);
  // the transform is lane-independent, so no deinterleave is needed. Byte
  // pointers + memcpy/intrinsic loads keep the double<->uint64 punning
  // aliasing-clean.
  const auto* src = reinterpret_cast<const unsigned char*>(buffer.data());
  auto* keys = reinterpret_cast<unsigned char*>(scratch.data());
  const std::size_t total = 2 * n;

  const __m256i sign = _mm256_set1_epi64x(static_cast<long long>(kSignBit));
  const __m256i expmask = _mm256_set1_epi64x(static_cast<long long>(kExpMask));
  const __m256i zero = _mm256_setzero_si256();
  __m256i hazard = zero;
  std::size_t i = 0;
  for (; i + 4 <= total; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i * 8));
    const __m256i neg = _mm256_cmpgt_epi64(zero, v);  // arithmetic >>63
    hazard = _mm256_or_si256(
        hazard, _mm256_or_si256(
                    _mm256_cmpeq_epi64(v, sign),                            // -0.0
                    _mm256_cmpgt_epi64(_mm256_andnot_si256(sign, v), expmask)));  // NaN
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i * 8),
                        _mm256_xor_si256(v, _mm256_or_si256(neg, sign)));
  }
  bool tail_hazard = false;
  for (; i < total; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, src + i * 8, 8);
    tail_hazard |= hazard_scalar(bits);
    const std::uint64_t key = encode_scalar(bits);
    std::memcpy(keys + i * 8, &key, 8);
  }
  if (tail_hazard || !_mm256_testz_si256(hazard, hazard)) return false;

  std::sort(scratch.begin(), scratch.end(), [](const CentroidKey& a, const CentroidKey& b) {
    return a.mean < b.mean || (a.mean == b.mean && a.weight < b.weight);
  });

  auto* dst = reinterpret_cast<unsigned char*>(buffer.data());
  const auto* sorted = reinterpret_cast<const unsigned char*>(scratch.data());
  i = 0;
  for (; i + 4 <= total; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sorted + i * 8));
    const __m256i nonneg =
        _mm256_xor_si256(_mm256_cmpgt_epi64(zero, k), _mm256_set1_epi64x(-1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i * 8),
                        _mm256_xor_si256(k, _mm256_or_si256(nonneg, sign)));
  }
  for (; i < total; ++i) {
    std::uint64_t key;
    std::memcpy(&key, sorted + i * 8, 8);
    const std::uint64_t bits = decode_scalar(key);
    std::memcpy(dst + i * 8, &bits, 8);
  }
  return true;
}

}  // namespace fbedge::detail

#endif  // FBEDGE_HAVE_AVX2
