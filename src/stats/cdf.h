// Weighted empirical CDFs — the output format of every figure in the paper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/expect.h"

namespace fbedge {

/// An empirical distribution built from (value, weight) points.
///
/// The paper's figures are CDFs of sessions (unit weight) or of traffic
/// (weight = bytes). This class supports both and can be evaluated at an
/// arbitrary x or inverted at a quantile.
class WeightedCdf {
 public:
  struct Point {
    double value;
    double weight;
  };

  void add(double value, double weight = 1.0) {
    FBEDGE_EXPECT(weight > 0, "cdf weight must be positive");
    points_.push_back({value, weight});
    sorted_ = false;
  }

  /// Appends every point of `other` (the reduce primitive of the sharded
  /// runtime). Merging per-shard partials in a fixed order yields the same
  /// point sequence as a single-threaded pass, so all queries are
  /// byte-identical for any thread count.
  void merge(const WeightedCdf& other) {
    points_.insert(points_.end(), other.points_.begin(), other.points_.end());
    sorted_ = false;
  }

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /// Fraction of total weight with value <= x.
  double fraction_at_or_below(double x) const {
    ensure_sorted();
    if (points_.empty()) return 0.0;
    double cum = 0;
    for (const auto& p : points_) {
      if (p.value > x) break;
      cum += p.weight;
    }
    return cum / total_weight_;
  }

  /// Smallest value v such that fraction_at_or_below(v) >= q.
  double quantile(double q) const {
    ensure_sorted();
    FBEDGE_EXPECT(!points_.empty(), "quantile of empty cdf");
    const double target = std::clamp(q, 0.0, 1.0) * total_weight_;
    double cum = 0;
    for (const auto& p : points_) {
      cum += p.weight;
      if (cum >= target) return p.value;
    }
    return points_.back().value;
  }

  /// Samples the CDF at `n` evenly spaced quantiles; used to print figure
  /// series. Returns (value, cumulative fraction) pairs.
  std::vector<std::pair<double, double>> series(int n = 20) const {
    ensure_sorted();
    std::vector<std::pair<double, double>> out;
    out.reserve(static_cast<std::size_t>(n) + 1);
    for (int i = 0; i <= n; ++i) {
      const double q = static_cast<double>(i) / n;
      out.emplace_back(quantile(q), q);
    }
    return out;
  }

  double total_weight() const {
    ensure_sorted();
    return total_weight_;
  }

  /// Raw points in current storage order — the serialization view. Saving
  /// these verbatim and restoring via assign_points() reproduces a cdf
  /// whose every query is bitwise identical (the sort runs over the same
  /// sequence either way).
  const std::vector<Point>& points() const { return points_; }

  /// Replaces the point set (deserialization); queries re-sort lazily.
  void assign_points(std::vector<Point> points) {
    points_ = std::move(points);
    sorted_ = false;
  }

 private:
  void ensure_sorted() const {
    if (sorted_) return;
    std::sort(points_.begin(), points_.end(),
              [](const Point& a, const Point& b) { return a.value < b.value; });
    total_weight_ = 0;
    for (const auto& p : points_) total_weight_ += p.weight;
    sorted_ = true;
  }

  mutable std::vector<Point> points_;
  mutable double total_weight_{0};
  mutable bool sorted_{false};
};

}  // namespace fbedge
