#include "stats/bootstrap.h"

#include <algorithm>

#include "stats/quantiles.h"
#include "util/expect.h"

namespace fbedge {

namespace {

// Fills `out` with a with-replacement resample. The caller owns the buffer
// so it is reused across iterations (the RNG draw sequence is unchanged
// from the allocating version).
void resample_into(const std::vector<double>& sample, Rng& rng,
                   std::vector<double>& out) {
  out.clear();
  const auto n = static_cast<std::int64_t>(sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    out.push_back(sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
  }
}

ConfidenceInterval percentile_interval(std::vector<double> stats, double point,
                                       double alpha) {
  std::sort(stats.begin(), stats.end());
  ConfidenceInterval ci;
  ci.estimate = point;
  ci.lower = quantile_sorted(stats, (1.0 - alpha) / 2.0);
  ci.upper = quantile_sorted(stats, 1.0 - (1.0 - alpha) / 2.0);
  return ci;
}

}  // namespace

ConfidenceInterval bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(std::vector<double>&)>& statistic, int resamples,
    double alpha, std::uint64_t seed) {
  FBEDGE_EXPECT(sample.size() >= 5, "bootstrap needs >= 5 samples");
  FBEDGE_EXPECT(resamples >= 100, "bootstrap needs >= 100 resamples");
  Rng rng(seed);
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> draw;
  draw.reserve(sample.size());
  for (int r = 0; r < resamples; ++r) {
    resample_into(sample, rng, draw);
    stats.push_back(statistic(draw));
  }
  auto copy = sample;
  return percentile_interval(std::move(stats), statistic(copy), alpha);
}

ConfidenceInterval bootstrap_median_difference(const std::vector<double>& a,
                                               const std::vector<double>& b,
                                               int resamples, double alpha,
                                               std::uint64_t seed) {
  FBEDGE_EXPECT(a.size() >= 5 && b.size() >= 5, "bootstrap needs >= 5 samples");
  Rng rng(seed);
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> da;
  std::vector<double> db;
  da.reserve(a.size());
  db.reserve(b.size());
  for (int r = 0; r < resamples; ++r) {
    resample_into(a, rng, da);
    resample_into(b, rng, db);
    std::sort(da.begin(), da.end());
    std::sort(db.begin(), db.end());
    stats.push_back(median_sorted(da) - median_sorted(db));
  }
  const double point = median(a) - median(b);
  return percentile_interval(std::move(stats), point, alpha);
}

}  // namespace fbedge
