#include "stats/bootstrap.h"

#include <algorithm>

#include "stats/quantiles.h"
#include "util/expect.h"

namespace fbedge {

namespace {

std::vector<double> resample(const std::vector<double>& sample, Rng& rng) {
  std::vector<double> out;
  out.reserve(sample.size());
  const auto n = static_cast<std::int64_t>(sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    out.push_back(sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))]);
  }
  return out;
}

ConfidenceInterval percentile_interval(std::vector<double> stats, double point,
                                       double alpha) {
  std::sort(stats.begin(), stats.end());
  ConfidenceInterval ci;
  ci.estimate = point;
  ci.lower = quantile_sorted(stats, (1.0 - alpha) / 2.0);
  ci.upper = quantile_sorted(stats, 1.0 - (1.0 - alpha) / 2.0);
  return ci;
}

}  // namespace

ConfidenceInterval bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(std::vector<double>&)>& statistic, int resamples,
    double alpha, std::uint64_t seed) {
  FBEDGE_EXPECT(sample.size() >= 5, "bootstrap needs >= 5 samples");
  FBEDGE_EXPECT(resamples >= 100, "bootstrap needs >= 100 resamples");
  Rng rng(seed);
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    auto draw = resample(sample, rng);
    stats.push_back(statistic(draw));
  }
  auto copy = sample;
  return percentile_interval(std::move(stats), statistic(copy), alpha);
}

ConfidenceInterval bootstrap_median_difference(const std::vector<double>& a,
                                               const std::vector<double>& b,
                                               int resamples, double alpha,
                                               std::uint64_t seed) {
  FBEDGE_EXPECT(a.size() >= 5 && b.size() >= 5, "bootstrap needs >= 5 samples");
  Rng rng(seed);
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    auto da = resample(a, rng);
    auto db = resample(b, rng);
    stats.push_back(median(std::move(da)) - median(std::move(db)));
  }
  const double point = median(a) - median(b);
  return percentile_interval(std::move(stats), point, alpha);
}

}  // namespace fbedge
