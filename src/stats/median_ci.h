// Distribution-free confidence intervals for medians and for the difference
// of two medians (Price & Bonett, "Distribution-Free Confidence Intervals
// for Difference and Ratio of Medians", J. Stat. Comput. Simul. 72(2), 2002).
//
// This is the statistical machinery of §3.4 of the paper: when comparing two
// aggregations (current vs baseline for degradation, preferred vs alternate
// for opportunity), the analyzers compute the difference of medians and its
// 95% confidence interval without assuming normality, then test the lower
// bound of the interval against a threshold.
#pragma once

#include <span>
#include <vector>

#include "stats/tdigest.h"

namespace fbedge {

/// A two-sided confidence interval [lower, upper] around a point estimate.
struct ConfidenceInterval {
  double estimate{0};
  double lower{0};
  double upper{0};

  double width() const { return upper - lower; }
  bool contains(double x) const { return lower <= x && x <= upper; }
};

/// Confidence interval for the median of a sample.
///
/// Uses the order-statistic interval: ranks l = floor((n - z*sqrt(n))/2) and
/// u = n - l + 1 (1-based) bracket the median with coverage >= alpha by the
/// binomial argument; values are interpolated from the sorted sample.
/// Requires n >= 5; alpha in (0, 1), default 0.95.
///
/// `values` is copied into `scratch` (whose capacity is reused across
/// calls) and the handful of bracketing order statistics are selected with
/// std::nth_element — O(n) per call instead of a full sort, and an exact
/// order statistic is an exact order statistic either way, so the interval
/// is bitwise identical to the sort-based computation.
ConfidenceInterval median_confidence_interval(std::span<const double> values,
                                              std::vector<double>& scratch,
                                              double alpha = 0.95);

/// Same interval computed from a t-digest sketch instead of raw samples,
/// as a streaming system would (paper footnote 11). `n` defaults to the
/// digest's point count.
ConfidenceInterval median_confidence_interval(const TDigest& digest, double alpha = 0.95);

/// Price-Bonett confidence interval for the difference of medians
/// median(a) - median(b) of two independent samples.
///
/// The standard error of each median is recovered from its order-statistic
/// interval (se = width / (2 z)); the difference interval is
/// (m_a - m_b) +/- z * sqrt(se_a^2 + se_b^2). `scratch` is reused for both
/// sides' selections.
ConfidenceInterval median_difference_interval(std::span<const double> a,
                                              std::span<const double> b,
                                              std::vector<double>& scratch,
                                              double alpha = 0.95);

/// Sketch-based version of the above.
ConfidenceInterval median_difference_interval(const TDigest& a, const TDigest& b,
                                              double alpha = 0.95);

/// Inverse standard normal CDF (Acklam's rational approximation, |err|<1e-9).
double normal_quantile(double p);

}  // namespace fbedge
