// Exact quantiles over in-memory samples.
//
// Used by tests as ground truth for the t-digest, and by analyzers when the
// full sample vector for an aggregation is available.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "util/expect.h"

namespace fbedge {

/// Quantile of a *sorted* sample using linear interpolation between order
/// statistics (type-7 / numpy default). q in [0, 1].
inline double quantile_sorted(const std::vector<double>& sorted, double q) {
  FBEDGE_EXPECT(!sorted.empty(), "quantile of empty sample");
  if (sorted.size() == 1) return sorted[0];
  const double pos = std::clamp(q, 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// Quantile of an unsorted sample. Selection-based: nth_element places the
/// lower order statistic, and the upper one is the minimum of the remaining
/// tail — both are exact order statistics, so the result is bitwise
/// identical to sorting fully, at O(n) instead of O(n log n).
inline double quantile(std::vector<double> values, double q) {
  FBEDGE_EXPECT(!values.empty(), "quantile of empty sample");
  if (values.size() == 1) return values[0];
  const double pos = std::clamp(q, 0.0, 1.0) * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const auto lo_it = values.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(values.begin(), lo_it, values.end());
  const double lo_v = *lo_it;
  if (lo + 1 >= values.size()) return lo_v;
  const double hi_v = *std::min_element(lo_it + 1, values.end());
  return lo_v + frac * (hi_v - lo_v);
}

/// Allocation-free variant for hot loops: copies `values` into `scratch`
/// (reusing its capacity) and selects in place. Same result, bit-for-bit,
/// as the by-value overload.
inline double quantile(std::span<const double> values, std::vector<double>& scratch,
                       double q) {
  scratch.assign(values.begin(), values.end());
  FBEDGE_EXPECT(!scratch.empty(), "quantile of empty sample");
  if (scratch.size() == 1) return scratch[0];
  const double pos = std::clamp(q, 0.0, 1.0) * static_cast<double>(scratch.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const auto lo_it = scratch.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(scratch.begin(), lo_it, scratch.end());
  const double lo_v = *lo_it;
  if (lo + 1 >= scratch.size()) return lo_v;
  const double hi_v = *std::min_element(lo_it + 1, scratch.end());
  return lo_v + frac * (hi_v - lo_v);
}

inline double median_sorted(const std::vector<double>& sorted) {
  return quantile_sorted(sorted, 0.5);
}

inline double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

inline double median(std::span<const double> values, std::vector<double>& scratch) {
  return quantile(values, scratch, 0.5);
}

}  // namespace fbedge
