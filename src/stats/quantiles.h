// Exact quantiles over in-memory samples.
//
// Used by tests as ground truth for the t-digest, and by analyzers when the
// full sample vector for an aggregation is available.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/expect.h"

namespace fbedge {

/// Quantile of a *sorted* sample using linear interpolation between order
/// statistics (type-7 / numpy default). q in [0, 1].
inline double quantile_sorted(const std::vector<double>& sorted, double q) {
  FBEDGE_EXPECT(!sorted.empty(), "quantile of empty sample");
  if (sorted.size() == 1) return sorted[0];
  const double pos = std::clamp(q, 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// Quantile of an unsorted sample (copies and sorts).
inline double quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

inline double median_sorted(const std::vector<double>& sorted) {
  return quantile_sorted(sorted, 0.5);
}

inline double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

}  // namespace fbedge
