#include "stats/tdigest.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.h"

namespace fbedge {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Scale function k1: k(q) = (delta / 2pi) * asin(2q - 1). Limits centroid
// size so that centroids near q=0, q=0.5 extremes stay small, giving high
// accuracy at the tails and the median.
double k_scale(double q, double compression) {
  q = std::clamp(q, 0.0, 1.0);
  return compression / (2.0 * M_PI) * std::asin(2.0 * q - 1.0);
}

}  // namespace

TDigest::TDigest(double compression)
    : compression_(compression),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  FBEDGE_EXPECT(compression >= 20.0, "t-digest compression too small");
  buffer_.reserve(static_cast<std::size_t>(compression * 4));
}

void TDigest::add(double value, double weight) {
  FBEDGE_EXPECT(weight > 0, "t-digest weight must be positive");
  FBEDGE_EXPECT(std::isfinite(value), "t-digest value must be finite");
  buffer_.push_back({value, weight});
  unmerged_weight_ += weight;
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (buffer_.size() >= static_cast<std::size_t>(compression_ * 4)) compress();
}

void TDigest::merge(const TDigest& other) {
  other.compress();
  for (const auto& c : other.centroids_) {
    buffer_.push_back(c);
    unmerged_weight_ += c.weight;
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  compress();
}

void TDigest::compress() const {
  if (buffer_.empty()) return;
  // Merge centroids and buffer into one sorted list.
  std::vector<Centroid> all;
  all.reserve(centroids_.size() + buffer_.size());
  all.insert(all.end(), centroids_.begin(), centroids_.end());
  all.insert(all.end(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  std::sort(all.begin(), all.end(),
            [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });

  double total = 0;
  for (const auto& c : all) total += c.weight;

  std::vector<Centroid> merged;
  merged.reserve(static_cast<std::size_t>(compression_ * 2));
  double so_far = 0;         // weight in fully-merged centroids
  Centroid cur = all.front();
  double k_lo = k_scale(0.0, compression_);
  for (std::size_t i = 1; i < all.size(); ++i) {
    const Centroid& next = all[i];
    const double proposed_q = (so_far + cur.weight + next.weight) / total;
    if (k_scale(proposed_q, compression_) - k_lo <= 1.0) {
      // Merge next into cur (weighted mean).
      const double w = cur.weight + next.weight;
      cur.mean += (next.mean - cur.mean) * next.weight / w;
      cur.weight = w;
    } else {
      so_far += cur.weight;
      merged.push_back(cur);
      k_lo = k_scale(so_far / total, compression_);
      cur = next;
    }
  }
  merged.push_back(cur);

  centroids_ = std::move(merged);
  total_weight_ = total;
  const_cast<TDigest*>(this)->unmerged_weight_ = 0;
}

const std::vector<TDigest::Centroid>& TDigest::centroids() const {
  compress();
  return centroids_;
}

double TDigest::quantile(double q) const {
  compress();
  if (centroids_.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  if (centroids_.size() == 1) return centroids_[0].mean;

  const double target = q * total_weight_;
  // Walk centroids, interpolating between midpoints (standard t-digest
  // quantile estimation: each centroid's weight is split half before /
  // half after its mean).
  double cum = 0;
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    const double mid = cum + centroids_[i].weight / 2.0;
    if (target < mid) {
      if (i == 0) {
        // Interpolate between min and first centroid mean.
        const double lo_w = centroids_[0].weight / 2.0;
        if (lo_w <= 0) return centroids_[0].mean;
        const double frac = target / lo_w;
        return min_ + frac * (centroids_[0].mean - min_);
      }
      const double prev_mid = cum - centroids_[i - 1].weight / 2.0;
      const double span = mid - prev_mid;
      const double frac = span > 0 ? (target - prev_mid) / span : 0.5;
      return centroids_[i - 1].mean + frac * (centroids_[i].mean - centroids_[i - 1].mean);
    }
    cum += centroids_[i].weight;
  }
  // Beyond the last midpoint: interpolate toward max.
  const auto& last = centroids_.back();
  const double last_mid = total_weight_ - last.weight / 2.0;
  const double span = total_weight_ - last_mid;
  const double frac = span > 0 ? (target - last_mid) / span : 1.0;
  return last.mean + std::clamp(frac, 0.0, 1.0) * (max_ - last.mean);
}

double TDigest::cdf(double x) const {
  compress();
  if (centroids_.empty()) return kNaN;
  if (x < min_) return 0.0;
  if (x >= max_) return 1.0;
  if (centroids_.size() == 1) {
    // Interpolate within [min, max].
    const double span = max_ - min_;
    return span > 0 ? (x - min_) / span : 0.5;
  }

  double cum = 0;
  double prev_mean = min_;
  double prev_mid = 0;
  for (const auto& c : centroids_) {
    const double mid = cum + c.weight / 2.0;
    if (x < c.mean) {
      const double span = c.mean - prev_mean;
      const double frac = span > 0 ? (x - prev_mean) / span : 0.5;
      return (prev_mid + frac * (mid - prev_mid)) / total_weight_;
    }
    cum += c.weight;
    prev_mean = c.mean;
    prev_mid = mid;
  }
  const double span = max_ - prev_mean;
  const double frac = span > 0 ? (x - prev_mean) / span : 1.0;
  return (prev_mid + frac * (total_weight_ - prev_mid)) / total_weight_;
}

}  // namespace fbedge
