#include "stats/tdigest.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/expect.h"
#include "util/simd.h"

namespace fbedge {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Scale function k1: k(q) = (delta / 2pi) * asin(2q - 1). Limits centroid
// size so that centroids near q=0, q=0.5 extremes stay small, giving high
// accuracy at the tails and the median.
double k_scale(double q, double compression) {
  q = std::clamp(q, 0.0, 1.0);
  return compression / (2.0 * M_PI) * std::asin(2.0 * q - 1.0);
}

// Inverse of k_scale: the largest q with k(q) <= k. Returns 2.0 (never
// binding) once k exceeds k(1) = compression/4, mirroring k_scale's clamp.
// Evaluating the merge criterion as `q <= k_inverse(k_lo + 1)` costs one
// sin() per *emitted* centroid instead of one asin() per *input* centroid —
// the dominant transcendental saving in compress().
double k_inverse(double k, double compression) {
  const double arg = k * (2.0 * M_PI) / compression;
  if (arg >= M_PI / 2.0) return 2.0;
  return (std::sin(arg) + 1.0) / 2.0;
}

/// Sort order for centroids: by mean, then weight. The weight tie-break
/// keeps the merge order — and therefore the output centroids — identical
/// across toolchains even when many points share a mean (std::sort on
/// equal keys is otherwise implementation-defined).
struct CentroidLess {
  bool operator()(const TDigest::Centroid& a, const TDigest::Centroid& b) const {
    return a.mean < b.mean || (a.mean == b.mean && a.weight < b.weight);
  }
};
// A functor (not a function pointer) so std::sort inlines the comparison.
constexpr CentroidLess centroid_less{};

}  // namespace

TDigest::TDigest(double compression)
    : compression_(compression),
      buffer_limit_(static_cast<std::size_t>(compression * 4)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  FBEDGE_EXPECT(compression >= 20.0, "t-digest compression too small");
  // The buffer grows on demand: most digests live in per-window aggregates
  // that see a handful of points, and reserving the full merge buffer up
  // front (compression*4 entries) made constructing those aggregates the
  // dominant allocation cost. Sustained feeds reach capacity once and keep
  // it across compress() cycles.
}

void TDigest::merge(const TDigest& other) {
  other.compress();
  buffer_.insert(buffer_.end(), other.centroids_.begin(), other.centroids_.end());
  unmerged_weight_ += other.total_weight_;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  compress();
}

void TDigest::compress() const {
  if (buffer_.empty()) return;
  // Only the buffer is unsorted; centroids_ is an already-sorted run. The
  // AVX2 key sort produces exactly the comparator's order (equivalent
  // elements are byte-identical 16-byte pairs, so unstable placement cannot
  // change the output run); it declines buffers containing -0.0/NaN, which
  // then take the comparator sort like everything else.
  bool sorted = false;
#if FBEDGE_HAVE_AVX2
  if (simd::avx2_active() && buffer_.size() >= 8) {
    sorted = detail::tdigest_sort_avx2(buffer_, key_scratch_);
  }
#endif
  if (!sorted) std::sort(buffer_.begin(), buffer_.end(), centroid_less);
  absorb_sorted_run(buffer_.data(), buffer_.size());
  buffer_.clear();
  unmerged_weight_ = 0;
}

void TDigest::absorb_sorted_run(const Centroid* run, std::size_t n) const {
  // Two-pointer merge of the two sorted runs into the persistent scratch;
  // centroids_ wins ties so older centroids keep their position.
  scratch_.clear();
  scratch_.reserve(centroids_.size() + n);
  std::size_t ci = 0;
  std::size_t ri = 0;
  while (ci < centroids_.size() && ri < n) {
    if (centroid_less(run[ri], centroids_[ci])) {
      scratch_.push_back(run[ri++]);
    } else {
      scratch_.push_back(centroids_[ci++]);
    }
  }
  scratch_.insert(scratch_.end(), centroids_.begin() + static_cast<std::ptrdiff_t>(ci),
                  centroids_.end());
  scratch_.insert(scratch_.end(), run + ri, run + n);

  double total = 0;
  for (const auto& c : scratch_) total += c.weight;

  centroids_.clear();
  centroids_.reserve(static_cast<std::size_t>(compression_ * 2));
  double so_far = 0;  // weight in fully-merged centroids
  Centroid cur = scratch_.front();
  // q up to which the open centroid may grow: k(q) - k(so_far/total) <= 1.
  double q_limit = k_inverse(k_scale(0.0, compression_) + 1.0, compression_);
  for (std::size_t i = 1; i < scratch_.size(); ++i) {
    const Centroid& next = scratch_[i];
    const double proposed_q = (so_far + cur.weight + next.weight) / total;
    if (std::min(proposed_q, 1.0) <= q_limit) {
      // Merge next into cur (weighted mean).
      const double w = cur.weight + next.weight;
      cur.mean += (next.mean - cur.mean) * next.weight / w;
      cur.weight = w;
    } else {
      so_far += cur.weight;
      centroids_.push_back(cur);
      q_limit = k_inverse(k_scale(so_far / total, compression_) + 1.0, compression_);
      cur = next;
    }
  }
  centroids_.push_back(cur);
  total_weight_ = total;
}

const std::vector<TDigest::Centroid>& TDigest::centroids() const {
  compress();
  return centroids_;
}

void TDigest::reset() {
  centroids_.clear();
  buffer_.clear();
  total_weight_ = 0;
  unmerged_weight_ = 0;
  count_ = 0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void TDigest::save(ByteWriter& w) const {
  compress();
  w.f64(compression_);
  w.u64(static_cast<std::uint64_t>(count_));
  w.f64(total_weight_);
  w.f64(min_);
  w.f64(max_);
  w.u64(static_cast<std::uint64_t>(centroids_.size()));
  for (const Centroid& c : centroids_) {
    w.f64(c.mean);
    w.f64(c.weight);
  }
}

std::size_t TDigest::saved_size() const {
  compress();
  // Header: compression, count, total_weight, min, max, centroid count.
  return 6 * 8 + 16 * centroids_.size();
}

bool TDigest::load(ByteReader& r) {
  reset();
  const double compression = r.f64();
  const std::uint64_t count = r.u64();
  const double total_weight = r.f64();
  const double min = r.f64();
  const double max = r.f64();
  const std::uint64_t n = r.u64();
  // Structural validation: a centroid is 16 bytes, so a count the stream
  // cannot possibly hold marks a corrupt length field (prevents a huge
  // reserve from a few flipped bits).
  if (!r.ok() || !(compression >= 20.0) || n > r.remaining() / 16) {
    r.fail();
    return false;
  }
  compression_ = compression;
  buffer_limit_ = static_cast<std::size_t>(compression * 4);
  centroids_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Centroid c;
    c.mean = r.f64();
    c.weight = r.f64();
    centroids_.push_back(c);
  }
  if (!r.ok()) {
    reset();
    return false;
  }
  count_ = static_cast<std::size_t>(count);
  total_weight_ = total_weight;
  min_ = min;
  max_ = max;
  return true;
}

double TDigest::quantile(double q) const {
  compress();
  if (centroids_.empty()) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  if (centroids_.size() == 1) return centroids_[0].mean;

  const double target = q * total_weight_;
  // Walk centroids, interpolating between midpoints (standard t-digest
  // quantile estimation: each centroid's weight is split half before /
  // half after its mean).
  double cum = 0;
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    const double mid = cum + centroids_[i].weight / 2.0;
    if (target < mid) {
      if (i == 0) {
        // Interpolate between min and first centroid mean.
        const double lo_w = centroids_[0].weight / 2.0;
        if (lo_w <= 0) return centroids_[0].mean;
        const double frac = target / lo_w;
        return min_ + frac * (centroids_[0].mean - min_);
      }
      const double prev_mid = cum - centroids_[i - 1].weight / 2.0;
      const double span = mid - prev_mid;
      const double frac = span > 0 ? (target - prev_mid) / span : 0.5;
      return centroids_[i - 1].mean + frac * (centroids_[i].mean - centroids_[i - 1].mean);
    }
    cum += centroids_[i].weight;
  }
  // Beyond the last midpoint: interpolate toward max.
  const auto& last = centroids_.back();
  const double last_mid = total_weight_ - last.weight / 2.0;
  const double span = total_weight_ - last_mid;
  const double frac = span > 0 ? (target - last_mid) / span : 1.0;
  return last.mean + std::clamp(frac, 0.0, 1.0) * (max_ - last.mean);
}

double TDigest::cdf(double x) const {
  compress();
  if (centroids_.empty()) return kNaN;
  if (x < min_) return 0.0;
  if (x >= max_) return 1.0;
  if (centroids_.size() == 1) {
    // Interpolate within [min, max].
    const double span = max_ - min_;
    return span > 0 ? (x - min_) / span : 0.5;
  }

  double cum = 0;
  double prev_mean = min_;
  double prev_mid = 0;
  for (const auto& c : centroids_) {
    const double mid = cum + c.weight / 2.0;
    if (x < c.mean) {
      const double span = c.mean - prev_mean;
      const double frac = span > 0 ? (x - prev_mean) / span : 0.5;
      return (prev_mid + frac * (mid - prev_mid)) / total_weight_;
    }
    cum += c.weight;
    prev_mean = c.mean;
    prev_mid = mid;
  }
  const double span = max_ - prev_mean;
  const double frac = span > 0 ? (x - prev_mean) / span : 1.0;
  return (prev_mid + frac * (total_weight_ - prev_mid)) / total_weight_;
}

}  // namespace fbedge
