// Percentile-bootstrap confidence intervals.
//
// Used as an independent cross-check of the distribution-free
// (Price-Bonett) intervals in stats/median_ci.h: the analyzers use the
// closed-form intervals (cheap, streamable); the tests verify both methods
// agree on the same data.
#pragma once

#include <functional>
#include <vector>

#include "stats/median_ci.h"
#include "util/rng.h"

namespace fbedge {

/// Percentile bootstrap CI for statistic(sample).
ConfidenceInterval bootstrap_ci(const std::vector<double>& sample,
                                const std::function<double(std::vector<double>&)>& statistic,
                                int resamples = 1000, double alpha = 0.95,
                                std::uint64_t seed = 1);

/// Bootstrap CI for median(a) - median(b) of two independent samples.
ConfidenceInterval bootstrap_median_difference(const std::vector<double>& a,
                                               const std::vector<double>& b,
                                               int resamples = 1000,
                                               double alpha = 0.95,
                                               std::uint64_t seed = 1);

}  // namespace fbedge
