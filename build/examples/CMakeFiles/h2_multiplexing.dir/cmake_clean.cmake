file(REMOVE_RECURSE
  "CMakeFiles/h2_multiplexing.dir/h2_multiplexing.cpp.o"
  "CMakeFiles/h2_multiplexing.dir/h2_multiplexing.cpp.o.d"
  "h2_multiplexing"
  "h2_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
