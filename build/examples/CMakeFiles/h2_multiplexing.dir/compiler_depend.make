# Empty compiler generated dependencies file for h2_multiplexing.
# This may be replaced when dependencies are built.
