# Empty dependencies file for pep_effect.
# This may be replaced when dependencies are built.
