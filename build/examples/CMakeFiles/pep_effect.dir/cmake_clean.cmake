file(REMOVE_RECURSE
  "CMakeFiles/pep_effect.dir/pep_effect.cpp.o"
  "CMakeFiles/pep_effect.dir/pep_effect.cpp.o.d"
  "pep_effect"
  "pep_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pep_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
