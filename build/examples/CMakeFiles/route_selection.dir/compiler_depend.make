# Empty compiler generated dependencies file for route_selection.
# This may be replaced when dependencies are built.
