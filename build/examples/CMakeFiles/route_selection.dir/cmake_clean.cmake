file(REMOVE_RECURSE
  "CMakeFiles/route_selection.dir/route_selection.cpp.o"
  "CMakeFiles/route_selection.dir/route_selection.cpp.o.d"
  "route_selection"
  "route_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
