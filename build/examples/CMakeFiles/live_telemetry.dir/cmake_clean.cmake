file(REMOVE_RECURSE
  "CMakeFiles/live_telemetry.dir/live_telemetry.cpp.o"
  "CMakeFiles/live_telemetry.dir/live_telemetry.cpp.o.d"
  "live_telemetry"
  "live_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
