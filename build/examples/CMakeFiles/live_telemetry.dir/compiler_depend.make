# Empty compiler generated dependencies file for live_telemetry.
# This may be replaced when dependencies are built.
