file(REMOVE_RECURSE
  "CMakeFiles/mixed_geo_prefix.dir/mixed_geo_prefix.cpp.o"
  "CMakeFiles/mixed_geo_prefix.dir/mixed_geo_prefix.cpp.o.d"
  "mixed_geo_prefix"
  "mixed_geo_prefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_geo_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
