# Empty dependencies file for mixed_geo_prefix.
# This may be replaced when dependencies are built.
