# Empty compiler generated dependencies file for fbedge_netsim.
# This may be replaced when dependencies are built.
