file(REMOVE_RECURSE
  "libfbedge_netsim.a"
)
