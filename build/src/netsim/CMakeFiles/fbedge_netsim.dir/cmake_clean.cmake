file(REMOVE_RECURSE
  "CMakeFiles/fbedge_netsim.dir/link.cpp.o"
  "CMakeFiles/fbedge_netsim.dir/link.cpp.o.d"
  "CMakeFiles/fbedge_netsim.dir/simulator.cpp.o"
  "CMakeFiles/fbedge_netsim.dir/simulator.cpp.o.d"
  "CMakeFiles/fbedge_netsim.dir/trace.cpp.o"
  "CMakeFiles/fbedge_netsim.dir/trace.cpp.o.d"
  "libfbedge_netsim.a"
  "libfbedge_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
