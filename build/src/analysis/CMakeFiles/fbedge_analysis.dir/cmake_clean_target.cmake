file(REMOVE_RECURSE
  "libfbedge_analysis.a"
)
