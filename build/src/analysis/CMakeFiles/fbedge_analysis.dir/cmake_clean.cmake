file(REMOVE_RECURSE
  "CMakeFiles/fbedge_analysis.dir/edge_analysis.cpp.o"
  "CMakeFiles/fbedge_analysis.dir/edge_analysis.cpp.o.d"
  "CMakeFiles/fbedge_analysis.dir/figures.cpp.o"
  "CMakeFiles/fbedge_analysis.dir/figures.cpp.o.d"
  "CMakeFiles/fbedge_analysis.dir/format.cpp.o"
  "CMakeFiles/fbedge_analysis.dir/format.cpp.o.d"
  "libfbedge_analysis.a"
  "libfbedge_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
