# Empty dependencies file for fbedge_analysis.
# This may be replaced when dependencies are built.
