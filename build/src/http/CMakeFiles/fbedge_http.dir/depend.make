# Empty dependencies file for fbedge_http.
# This may be replaced when dependencies are built.
