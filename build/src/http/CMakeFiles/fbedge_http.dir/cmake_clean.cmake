file(REMOVE_RECURSE
  "CMakeFiles/fbedge_http.dir/h2_scheduler.cpp.o"
  "CMakeFiles/fbedge_http.dir/h2_scheduler.cpp.o.d"
  "libfbedge_http.a"
  "libfbedge_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
