file(REMOVE_RECURSE
  "libfbedge_http.a"
)
