# Empty compiler generated dependencies file for fbedge_routing.
# This may be replaced when dependencies are built.
