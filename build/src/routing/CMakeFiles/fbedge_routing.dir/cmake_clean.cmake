file(REMOVE_RECURSE
  "CMakeFiles/fbedge_routing.dir/controller.cpp.o"
  "CMakeFiles/fbedge_routing.dir/controller.cpp.o.d"
  "CMakeFiles/fbedge_routing.dir/policy.cpp.o"
  "CMakeFiles/fbedge_routing.dir/policy.cpp.o.d"
  "libfbedge_routing.a"
  "libfbedge_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
