file(REMOVE_RECURSE
  "libfbedge_routing.a"
)
