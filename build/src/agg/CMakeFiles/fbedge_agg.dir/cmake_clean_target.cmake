file(REMOVE_RECURSE
  "libfbedge_agg.a"
)
