file(REMOVE_RECURSE
  "CMakeFiles/fbedge_agg.dir/classifier.cpp.o"
  "CMakeFiles/fbedge_agg.dir/classifier.cpp.o.d"
  "CMakeFiles/fbedge_agg.dir/comparison.cpp.o"
  "CMakeFiles/fbedge_agg.dir/comparison.cpp.o.d"
  "CMakeFiles/fbedge_agg.dir/degradation.cpp.o"
  "CMakeFiles/fbedge_agg.dir/degradation.cpp.o.d"
  "CMakeFiles/fbedge_agg.dir/monitor.cpp.o"
  "CMakeFiles/fbedge_agg.dir/monitor.cpp.o.d"
  "CMakeFiles/fbedge_agg.dir/opportunity.cpp.o"
  "CMakeFiles/fbedge_agg.dir/opportunity.cpp.o.d"
  "CMakeFiles/fbedge_agg.dir/rollup.cpp.o"
  "CMakeFiles/fbedge_agg.dir/rollup.cpp.o.d"
  "libfbedge_agg.a"
  "libfbedge_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
