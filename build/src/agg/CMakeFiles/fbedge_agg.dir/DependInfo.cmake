
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agg/classifier.cpp" "src/agg/CMakeFiles/fbedge_agg.dir/classifier.cpp.o" "gcc" "src/agg/CMakeFiles/fbedge_agg.dir/classifier.cpp.o.d"
  "/root/repo/src/agg/comparison.cpp" "src/agg/CMakeFiles/fbedge_agg.dir/comparison.cpp.o" "gcc" "src/agg/CMakeFiles/fbedge_agg.dir/comparison.cpp.o.d"
  "/root/repo/src/agg/degradation.cpp" "src/agg/CMakeFiles/fbedge_agg.dir/degradation.cpp.o" "gcc" "src/agg/CMakeFiles/fbedge_agg.dir/degradation.cpp.o.d"
  "/root/repo/src/agg/monitor.cpp" "src/agg/CMakeFiles/fbedge_agg.dir/monitor.cpp.o" "gcc" "src/agg/CMakeFiles/fbedge_agg.dir/monitor.cpp.o.d"
  "/root/repo/src/agg/opportunity.cpp" "src/agg/CMakeFiles/fbedge_agg.dir/opportunity.cpp.o" "gcc" "src/agg/CMakeFiles/fbedge_agg.dir/opportunity.cpp.o.d"
  "/root/repo/src/agg/rollup.cpp" "src/agg/CMakeFiles/fbedge_agg.dir/rollup.cpp.o" "gcc" "src/agg/CMakeFiles/fbedge_agg.dir/rollup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/fbedge_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/fbedge_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
