# Empty dependencies file for fbedge_agg.
# This may be replaced when dependencies are built.
