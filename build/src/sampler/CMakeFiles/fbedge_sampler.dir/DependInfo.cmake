
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampler/coalescer.cpp" "src/sampler/CMakeFiles/fbedge_sampler.dir/coalescer.cpp.o" "gcc" "src/sampler/CMakeFiles/fbedge_sampler.dir/coalescer.cpp.o.d"
  "/root/repo/src/sampler/io.cpp" "src/sampler/CMakeFiles/fbedge_sampler.dir/io.cpp.o" "gcc" "src/sampler/CMakeFiles/fbedge_sampler.dir/io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/fbedge_http.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/fbedge_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/goodput/CMakeFiles/fbedge_goodput.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
