file(REMOVE_RECURSE
  "CMakeFiles/fbedge_sampler.dir/coalescer.cpp.o"
  "CMakeFiles/fbedge_sampler.dir/coalescer.cpp.o.d"
  "CMakeFiles/fbedge_sampler.dir/io.cpp.o"
  "CMakeFiles/fbedge_sampler.dir/io.cpp.o.d"
  "libfbedge_sampler.a"
  "libfbedge_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
