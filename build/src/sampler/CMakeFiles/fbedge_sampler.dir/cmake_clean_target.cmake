file(REMOVE_RECURSE
  "libfbedge_sampler.a"
)
