# Empty dependencies file for fbedge_sampler.
# This may be replaced when dependencies are built.
