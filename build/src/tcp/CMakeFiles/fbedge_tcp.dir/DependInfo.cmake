
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/fluid_model.cpp" "src/tcp/CMakeFiles/fbedge_tcp.dir/fluid_model.cpp.o" "gcc" "src/tcp/CMakeFiles/fbedge_tcp.dir/fluid_model.cpp.o.d"
  "/root/repo/src/tcp/pep.cpp" "src/tcp/CMakeFiles/fbedge_tcp.dir/pep.cpp.o" "gcc" "src/tcp/CMakeFiles/fbedge_tcp.dir/pep.cpp.o.d"
  "/root/repo/src/tcp/tcp.cpp" "src/tcp/CMakeFiles/fbedge_tcp.dir/tcp.cpp.o" "gcc" "src/tcp/CMakeFiles/fbedge_tcp.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/fbedge_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
