# Empty compiler generated dependencies file for fbedge_tcp.
# This may be replaced when dependencies are built.
