file(REMOVE_RECURSE
  "libfbedge_tcp.a"
)
