file(REMOVE_RECURSE
  "CMakeFiles/fbedge_tcp.dir/fluid_model.cpp.o"
  "CMakeFiles/fbedge_tcp.dir/fluid_model.cpp.o.d"
  "CMakeFiles/fbedge_tcp.dir/pep.cpp.o"
  "CMakeFiles/fbedge_tcp.dir/pep.cpp.o.d"
  "CMakeFiles/fbedge_tcp.dir/tcp.cpp.o"
  "CMakeFiles/fbedge_tcp.dir/tcp.cpp.o.d"
  "libfbedge_tcp.a"
  "libfbedge_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
