
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/goodput/hdratio.cpp" "src/goodput/CMakeFiles/fbedge_goodput.dir/hdratio.cpp.o" "gcc" "src/goodput/CMakeFiles/fbedge_goodput.dir/hdratio.cpp.o.d"
  "/root/repo/src/goodput/ideal_model.cpp" "src/goodput/CMakeFiles/fbedge_goodput.dir/ideal_model.cpp.o" "gcc" "src/goodput/CMakeFiles/fbedge_goodput.dir/ideal_model.cpp.o.d"
  "/root/repo/src/goodput/rate_ladder.cpp" "src/goodput/CMakeFiles/fbedge_goodput.dir/rate_ladder.cpp.o" "gcc" "src/goodput/CMakeFiles/fbedge_goodput.dir/rate_ladder.cpp.o.d"
  "/root/repo/src/goodput/tmodel.cpp" "src/goodput/CMakeFiles/fbedge_goodput.dir/tmodel.cpp.o" "gcc" "src/goodput/CMakeFiles/fbedge_goodput.dir/tmodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
