file(REMOVE_RECURSE
  "CMakeFiles/fbedge_goodput.dir/hdratio.cpp.o"
  "CMakeFiles/fbedge_goodput.dir/hdratio.cpp.o.d"
  "CMakeFiles/fbedge_goodput.dir/ideal_model.cpp.o"
  "CMakeFiles/fbedge_goodput.dir/ideal_model.cpp.o.d"
  "CMakeFiles/fbedge_goodput.dir/rate_ladder.cpp.o"
  "CMakeFiles/fbedge_goodput.dir/rate_ladder.cpp.o.d"
  "CMakeFiles/fbedge_goodput.dir/tmodel.cpp.o"
  "CMakeFiles/fbedge_goodput.dir/tmodel.cpp.o.d"
  "libfbedge_goodput.a"
  "libfbedge_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
