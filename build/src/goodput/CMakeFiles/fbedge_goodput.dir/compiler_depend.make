# Empty compiler generated dependencies file for fbedge_goodput.
# This may be replaced when dependencies are built.
