file(REMOVE_RECURSE
  "libfbedge_goodput.a"
)
