# Empty dependencies file for fbedge_workload.
# This may be replaced when dependencies are built.
