
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cartographer.cpp" "src/workload/CMakeFiles/fbedge_workload.dir/cartographer.cpp.o" "gcc" "src/workload/CMakeFiles/fbedge_workload.dir/cartographer.cpp.o.d"
  "/root/repo/src/workload/distributions.cpp" "src/workload/CMakeFiles/fbedge_workload.dir/distributions.cpp.o" "gcc" "src/workload/CMakeFiles/fbedge_workload.dir/distributions.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/fbedge_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/fbedge_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/packet_generator.cpp" "src/workload/CMakeFiles/fbedge_workload.dir/packet_generator.cpp.o" "gcc" "src/workload/CMakeFiles/fbedge_workload.dir/packet_generator.cpp.o.d"
  "/root/repo/src/workload/world.cpp" "src/workload/CMakeFiles/fbedge_workload.dir/world.cpp.o" "gcc" "src/workload/CMakeFiles/fbedge_workload.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/fbedge_http.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/fbedge_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/fbedge_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sampler/CMakeFiles/fbedge_sampler.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/fbedge_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/fbedge_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/goodput/CMakeFiles/fbedge_goodput.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fbedge_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
