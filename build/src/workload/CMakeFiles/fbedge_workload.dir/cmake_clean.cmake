file(REMOVE_RECURSE
  "CMakeFiles/fbedge_workload.dir/cartographer.cpp.o"
  "CMakeFiles/fbedge_workload.dir/cartographer.cpp.o.d"
  "CMakeFiles/fbedge_workload.dir/distributions.cpp.o"
  "CMakeFiles/fbedge_workload.dir/distributions.cpp.o.d"
  "CMakeFiles/fbedge_workload.dir/generator.cpp.o"
  "CMakeFiles/fbedge_workload.dir/generator.cpp.o.d"
  "CMakeFiles/fbedge_workload.dir/packet_generator.cpp.o"
  "CMakeFiles/fbedge_workload.dir/packet_generator.cpp.o.d"
  "CMakeFiles/fbedge_workload.dir/world.cpp.o"
  "CMakeFiles/fbedge_workload.dir/world.cpp.o.d"
  "libfbedge_workload.a"
  "libfbedge_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
