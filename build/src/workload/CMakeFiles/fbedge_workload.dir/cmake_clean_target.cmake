file(REMOVE_RECURSE
  "libfbedge_workload.a"
)
