file(REMOVE_RECURSE
  "libfbedge_stats.a"
)
