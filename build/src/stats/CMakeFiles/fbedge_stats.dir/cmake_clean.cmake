file(REMOVE_RECURSE
  "CMakeFiles/fbedge_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/fbedge_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/fbedge_stats.dir/median_ci.cpp.o"
  "CMakeFiles/fbedge_stats.dir/median_ci.cpp.o.d"
  "CMakeFiles/fbedge_stats.dir/tdigest.cpp.o"
  "CMakeFiles/fbedge_stats.dir/tdigest.cpp.o.d"
  "libfbedge_stats.a"
  "libfbedge_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
