# Empty dependencies file for fbedge_stats.
# This may be replaced when dependencies are built.
