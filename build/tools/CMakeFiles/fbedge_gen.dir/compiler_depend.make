# Empty compiler generated dependencies file for fbedge_gen.
# This may be replaced when dependencies are built.
