file(REMOVE_RECURSE
  "CMakeFiles/fbedge_gen.dir/fbedge_gen.cpp.o"
  "CMakeFiles/fbedge_gen.dir/fbedge_gen.cpp.o.d"
  "fbedge_gen"
  "fbedge_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
