file(REMOVE_RECURSE
  "CMakeFiles/fbedge_analyze.dir/fbedge_analyze.cpp.o"
  "CMakeFiles/fbedge_analyze.dir/fbedge_analyze.cpp.o.d"
  "fbedge_analyze"
  "fbedge_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbedge_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
