# Empty dependencies file for fbedge_analyze.
# This may be replaced when dependencies are built.
