file(REMOVE_RECURSE
  "CMakeFiles/monitor_io_test.dir/monitor_io_test.cpp.o"
  "CMakeFiles/monitor_io_test.dir/monitor_io_test.cpp.o.d"
  "monitor_io_test"
  "monitor_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
