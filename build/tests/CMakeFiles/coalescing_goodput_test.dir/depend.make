# Empty dependencies file for coalescing_goodput_test.
# This may be replaced when dependencies are built.
