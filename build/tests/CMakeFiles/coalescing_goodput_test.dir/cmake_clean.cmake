file(REMOVE_RECURSE
  "CMakeFiles/coalescing_goodput_test.dir/coalescing_goodput_test.cpp.o"
  "CMakeFiles/coalescing_goodput_test.dir/coalescing_goodput_test.cpp.o.d"
  "coalescing_goodput_test"
  "coalescing_goodput_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalescing_goodput_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
