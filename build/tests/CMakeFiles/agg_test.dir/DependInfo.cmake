
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/agg_test.cpp" "tests/CMakeFiles/agg_test.dir/agg_test.cpp.o" "gcc" "tests/CMakeFiles/agg_test.dir/agg_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/fbedge_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fbedge_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/fbedge_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/fbedge_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sampler/CMakeFiles/fbedge_sampler.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/fbedge_http.dir/DependInfo.cmake"
  "/root/repo/build/src/goodput/CMakeFiles/fbedge_goodput.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/fbedge_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fbedge_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/fbedge_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
