file(REMOVE_RECURSE
  "CMakeFiles/agg_test.dir/agg_test.cpp.o"
  "CMakeFiles/agg_test.dir/agg_test.cpp.o.d"
  "agg_test"
  "agg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
