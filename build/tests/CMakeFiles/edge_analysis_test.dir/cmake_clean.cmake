file(REMOVE_RECURSE
  "CMakeFiles/edge_analysis_test.dir/edge_analysis_test.cpp.o"
  "CMakeFiles/edge_analysis_test.dir/edge_analysis_test.cpp.o.d"
  "edge_analysis_test"
  "edge_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
