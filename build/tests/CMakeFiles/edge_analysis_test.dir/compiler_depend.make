# Empty compiler generated dependencies file for edge_analysis_test.
# This may be replaced when dependencies are built.
