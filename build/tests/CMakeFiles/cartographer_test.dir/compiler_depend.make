# Empty compiler generated dependencies file for cartographer_test.
# This may be replaced when dependencies are built.
