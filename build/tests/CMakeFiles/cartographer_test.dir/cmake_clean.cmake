file(REMOVE_RECURSE
  "CMakeFiles/cartographer_test.dir/cartographer_test.cpp.o"
  "CMakeFiles/cartographer_test.dir/cartographer_test.cpp.o.d"
  "cartographer_test"
  "cartographer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cartographer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
