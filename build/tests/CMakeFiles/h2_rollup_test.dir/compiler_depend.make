# Empty compiler generated dependencies file for h2_rollup_test.
# This may be replaced when dependencies are built.
