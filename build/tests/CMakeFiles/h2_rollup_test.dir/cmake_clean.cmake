file(REMOVE_RECURSE
  "CMakeFiles/h2_rollup_test.dir/h2_rollup_test.cpp.o"
  "CMakeFiles/h2_rollup_test.dir/h2_rollup_test.cpp.o.d"
  "h2_rollup_test"
  "h2_rollup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_rollup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
