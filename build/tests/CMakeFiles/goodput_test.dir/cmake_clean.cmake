file(REMOVE_RECURSE
  "CMakeFiles/goodput_test.dir/goodput_test.cpp.o"
  "CMakeFiles/goodput_test.dir/goodput_test.cpp.o.d"
  "goodput_test"
  "goodput_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goodput_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
