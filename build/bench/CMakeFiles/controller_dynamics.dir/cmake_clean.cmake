file(REMOVE_RECURSE
  "CMakeFiles/controller_dynamics.dir/controller_dynamics.cpp.o"
  "CMakeFiles/controller_dynamics.dir/controller_dynamics.cpp.o.d"
  "controller_dynamics"
  "controller_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
