# Empty dependencies file for controller_dynamics.
# This may be replaced when dependencies are built.
