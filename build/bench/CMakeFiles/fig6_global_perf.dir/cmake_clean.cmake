file(REMOVE_RECURSE
  "CMakeFiles/fig6_global_perf.dir/fig6_global_perf.cpp.o"
  "CMakeFiles/fig6_global_perf.dir/fig6_global_perf.cpp.o.d"
  "fig6_global_perf"
  "fig6_global_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_global_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
