# Empty dependencies file for fig6_global_perf.
# This may be replaced when dependencies are built.
