# Empty compiler generated dependencies file for fig10_peer_transit.
# This may be replaced when dependencies are built.
