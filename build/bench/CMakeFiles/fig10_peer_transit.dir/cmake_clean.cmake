file(REMOVE_RECURSE
  "CMakeFiles/fig10_peer_transit.dir/fig10_peer_transit.cpp.o"
  "CMakeFiles/fig10_peer_transit.dir/fig10_peer_transit.cpp.o.d"
  "fig10_peer_transit"
  "fig10_peer_transit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_peer_transit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
