file(REMOVE_RECURSE
  "CMakeFiles/fig7_rtt_vs_hd.dir/fig7_rtt_vs_hd.cpp.o"
  "CMakeFiles/fig7_rtt_vs_hd.dir/fig7_rtt_vs_hd.cpp.o.d"
  "fig7_rtt_vs_hd"
  "fig7_rtt_vs_hd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rtt_vs_hd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
