# Empty compiler generated dependencies file for fig7_rtt_vs_hd.
# This may be replaced when dependencies are built.
