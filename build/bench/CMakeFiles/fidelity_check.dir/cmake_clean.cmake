file(REMOVE_RECURSE
  "CMakeFiles/fidelity_check.dir/fidelity_check.cpp.o"
  "CMakeFiles/fidelity_check.dir/fidelity_check.cpp.o.d"
  "fidelity_check"
  "fidelity_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidelity_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
