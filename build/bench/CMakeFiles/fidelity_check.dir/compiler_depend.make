# Empty compiler generated dependencies file for fidelity_check.
# This may be replaced when dependencies are built.
