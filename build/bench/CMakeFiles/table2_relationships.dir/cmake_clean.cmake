file(REMOVE_RECURSE
  "CMakeFiles/table2_relationships.dir/table2_relationships.cpp.o"
  "CMakeFiles/table2_relationships.dir/table2_relationships.cpp.o.d"
  "table2_relationships"
  "table2_relationships.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_relationships.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
