# Empty dependencies file for table2_relationships.
# This may be replaced when dependencies are built.
