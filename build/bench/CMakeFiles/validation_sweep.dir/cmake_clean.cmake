file(REMOVE_RECURSE
  "CMakeFiles/validation_sweep.dir/validation_sweep.cpp.o"
  "CMakeFiles/validation_sweep.dir/validation_sweep.cpp.o.d"
  "validation_sweep"
  "validation_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
