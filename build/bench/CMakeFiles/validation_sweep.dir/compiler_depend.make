# Empty compiler generated dependencies file for validation_sweep.
# This may be replaced when dependencies are built.
