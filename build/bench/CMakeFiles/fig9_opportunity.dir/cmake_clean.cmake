file(REMOVE_RECURSE
  "CMakeFiles/fig9_opportunity.dir/fig9_opportunity.cpp.o"
  "CMakeFiles/fig9_opportunity.dir/fig9_opportunity.cpp.o.d"
  "fig9_opportunity"
  "fig9_opportunity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_opportunity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
