# Empty dependencies file for fig9_opportunity.
# This may be replaced when dependencies are built.
