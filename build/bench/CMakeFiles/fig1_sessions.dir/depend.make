# Empty dependencies file for fig1_sessions.
# This may be replaced when dependencies are built.
