file(REMOVE_RECURSE
  "CMakeFiles/fig1_sessions.dir/fig1_sessions.cpp.o"
  "CMakeFiles/fig1_sessions.dir/fig1_sessions.cpp.o.d"
  "fig1_sessions"
  "fig1_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
