# Empty compiler generated dependencies file for fig3_transactions.
# This may be replaced when dependencies are built.
