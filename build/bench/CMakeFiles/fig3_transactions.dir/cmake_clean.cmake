file(REMOVE_RECURSE
  "CMakeFiles/fig3_transactions.dir/fig3_transactions.cpp.o"
  "CMakeFiles/fig3_transactions.dir/fig3_transactions.cpp.o.d"
  "fig3_transactions"
  "fig3_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
