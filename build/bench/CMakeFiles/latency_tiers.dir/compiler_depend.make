# Empty compiler generated dependencies file for latency_tiers.
# This may be replaced when dependencies are built.
