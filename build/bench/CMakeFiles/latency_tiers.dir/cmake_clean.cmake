file(REMOVE_RECURSE
  "CMakeFiles/latency_tiers.dir/latency_tiers.cpp.o"
  "CMakeFiles/latency_tiers.dir/latency_tiers.cpp.o.d"
  "latency_tiers"
  "latency_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
