file(REMOVE_RECURSE
  "CMakeFiles/rate_ladder_sweep.dir/rate_ladder_sweep.cpp.o"
  "CMakeFiles/rate_ladder_sweep.dir/rate_ladder_sweep.cpp.o.d"
  "rate_ladder_sweep"
  "rate_ladder_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_ladder_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
