# Empty dependencies file for rate_ladder_sweep.
# This may be replaced when dependencies are built.
