file(REMOVE_RECURSE
  "CMakeFiles/fig4_example.dir/fig4_example.cpp.o"
  "CMakeFiles/fig4_example.dir/fig4_example.cpp.o.d"
  "fig4_example"
  "fig4_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
