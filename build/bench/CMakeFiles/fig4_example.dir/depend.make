# Empty dependencies file for fig4_example.
# This may be replaced when dependencies are built.
