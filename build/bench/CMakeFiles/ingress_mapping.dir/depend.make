# Empty dependencies file for ingress_mapping.
# This may be replaced when dependencies are built.
