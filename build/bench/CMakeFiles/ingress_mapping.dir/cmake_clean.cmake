file(REMOVE_RECURSE
  "CMakeFiles/ingress_mapping.dir/ingress_mapping.cpp.o"
  "CMakeFiles/ingress_mapping.dir/ingress_mapping.cpp.o.d"
  "ingress_mapping"
  "ingress_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingress_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
