file(REMOVE_RECURSE
  "CMakeFiles/fig2_bytes.dir/fig2_bytes.cpp.o"
  "CMakeFiles/fig2_bytes.dir/fig2_bytes.cpp.o.d"
  "fig2_bytes"
  "fig2_bytes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
