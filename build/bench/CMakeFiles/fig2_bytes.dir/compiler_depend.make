# Empty compiler generated dependencies file for fig2_bytes.
# This may be replaced when dependencies are built.
