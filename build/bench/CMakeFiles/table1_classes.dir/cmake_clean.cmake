file(REMOVE_RECURSE
  "CMakeFiles/table1_classes.dir/table1_classes.cpp.o"
  "CMakeFiles/table1_classes.dir/table1_classes.cpp.o.d"
  "table1_classes"
  "table1_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
