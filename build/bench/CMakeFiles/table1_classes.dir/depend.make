# Empty dependencies file for table1_classes.
# This may be replaced when dependencies are built.
