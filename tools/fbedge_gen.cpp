// fbedge_gen — generate a synthetic sampled-session dataset to stdout (or
// a file), one serialized SessionSample per line. Pairs with
// fbedge_analyze, which re-ingests the file and runs the measurement
// pipeline — the same produce/ship/analyze split as the paper's
// production deployment (§2.2.2).
//
// Usage: fbedge_gen [--groups N] [--days D] [--scale S] [--seed X]
//                   [--threads T] [--out FILE]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fbedge/fbedge.h"

using namespace fbedge;

namespace {

struct Options {
  int groups_per_continent = 2;
  int days = 1;
  double scale = 0.2;
  std::uint64_t seed = 2019;
  int threads = 0;  // 0 = hardware concurrency
  std::string out;
};

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--groups") {
      if (const char* v = next()) opts.groups_per_continent = std::atoi(v);
    } else if (arg == "--days") {
      if (const char* v = next()) opts.days = std::atoi(v);
    } else if (arg == "--scale") {
      if (const char* v = next()) opts.scale = std::atof(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      if (const char* v = next()) opts.threads = std::atoi(v);
    } else if (arg == "--out") {
      if (const char* v = next()) opts.out = v;
    } else {
      std::fprintf(stderr,
                   "usage: fbedge_gen [--groups N] [--days D] [--scale S] "
                   "[--seed X] [--threads T] [--out FILE]\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  WorldConfig wc;
  wc.seed = opts.seed;
  wc.groups_per_continent = opts.groups_per_continent;
  wc.days = opts.days;
  const World world = build_world(wc);

  DatasetConfig dc;
  dc.seed = opts.seed;
  dc.days = opts.days;
  dc.session_scale = opts.scale;
  DatasetGenerator generator(world, dc);

  std::ofstream file;
  std::ostream* out = &std::cout;
  if (!opts.out.empty()) {
    file.open(opts.out);
    if (!file) {
      std::fprintf(stderr, "fbedge_gen: cannot open %s\n", opts.out.c_str());
      return 1;
    }
    out = &file;
  }

  // Serialize each group's sessions into a private buffer on the runtime,
  // then write the buffers in group order — output is byte-identical to a
  // sequential run for any thread count.
  RuntimeOptions runtime;
  runtime.threads = opts.threads;
  RunStats stats;
  const std::vector<std::string> buffers = parallel_map(
      world.groups.size(), runtime,
      [&](std::size_t g) {
        std::string buf;
        generator.generate_group(world.groups[g], [&](const SessionSample& s) {
          buf += serialize_sample(s);
          buf += '\n';
        });
        return buf;
      },
      &stats);

  std::uint64_t sessions = 0;
  for (const std::string& buf : buffers) {
    (*out) << buf;
    for (const char ch : buf) sessions += ch == '\n';
  }
  std::fprintf(stderr, "fbedge_gen: wrote %llu sessions from %zu user groups\n",
               static_cast<unsigned long long>(sessions), world.groups.size());
  stats.print("fbedge_gen");
  return 0;
}
