// fbedge_whatif — run declarative what-if scenarios (src/scenario/) against
// the synthetic world and report the opportunity/degradation deltas vs
// baseline, the way the paper's pipeline was used operationally ("what
// happens if we drain this PoP during peak?").
//
// Usage: fbedge_whatif [groups] [--days N] [--threads N] [--json PATH]
//                      [--cache-dir DIR] [--scenario FILE]...
//                      [--sweep DIR] [--workers N]
//
// Prints one "=== name ===" metric block per run (baseline first), each
// ending in an FNV-1a verdict hash; scenario blocks additionally print
// per-metric deltas and the applied-perturbation counts. All stdout is
// byte-identical for any --threads; a scenario file with no deltas prints
// a block byte-identical to the baseline block (the CI whatif-equivalence
// gate). With --cache-dir, baseline and scenarios share the ingest cache —
// artifact keys hash the perturbed world contents, so they never collide.
//
// --sweep DIR loads every *.conf in DIR (sorted by name) and runs them as
// one incremental sweep (analysis/sweep.h): baseline ingested once, each
// scenario re-ingests only its affected groups and splices the rest. The
// metric blocks are byte-identical to running the same files via
// --scenario one at a time; each scenario block adds a "sweep:
// reused/recomputed" line (pure functions of world x pack, so still
// thread-count invariant). --workers N > 0 additionally fans each
// scenario's affected ingest across N worker processes through the distrib
// sweep fleet (requires --cache-dir; workers are this binary re-invoked in
// the hidden --sweep-worker mode).
#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/sweep.h"
#include "analysis/whatif.h"
#include "bench_common.h"
#include "distrib/sweep_fleet.h"
#include "fbedge/fbedge.h"
#include "scenario/scenario.h"

using namespace fbedge;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [groups] [--days N] [--threads N] [--json PATH] "
               "[--cache-dir DIR] [--scenario FILE]... "
               "[--sweep DIR] [--workers N]\n",
               argv0);
  std::exit(2);
}

/// Every *.conf in `dir`, sorted by name so the scenario order — and
/// therefore stdout — is independent of readdir order.
std::vector<std::string> list_scenario_files(const std::string& dir) {
  std::vector<std::string> paths;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    std::fprintf(stderr, "fbedge_whatif: cannot open sweep dir %s\n",
                 dir.c_str());
    std::exit(1);
  }
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    constexpr const char* kExt = ".conf";
    if (name.size() > 5 && name.compare(name.size() - 5, 5, kExt) == 0) {
      std::string path = dir;
      if (!path.empty() && path.back() != '/') path.push_back('/');
      paths.push_back(path + name);
    }
  }
  ::closedir(d);
  std::sort(paths.begin(), paths.end());
  return paths;
}

ScenarioPack load_pack(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "fbedge_whatif: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  ScenarioParseResult parsed = parse_scenario(buffer.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "fbedge_whatif: %s: %s\n", path.c_str(),
                 parsed.error.c_str());
    std::exit(1);
  }
  if (parsed.pack.name.empty()) parsed.pack.name = path;
  return std::move(parsed.pack);
}

void print_scenario_block(const WhatifReport& baseline,
                          const WhatifReport& report, const ScenarioPack& pack,
                          const FaultCounters& faults) {
  std::printf("=== scenario %s ===\n", pack.name.c_str());
  print_whatif_report(report);
  if (!pack.empty()) {
    // Scenario counters are pure functions of (pack, world), so they are
    // safe on the thread-count-invariant stdout.
    std::printf(
        "applied: drained=%llu depref=%llu flash=%llu cable_cut=%llu\n",
        static_cast<unsigned long long>(faults.scenario_drained_groups),
        static_cast<unsigned long long>(faults.scenario_depref_groups),
        static_cast<unsigned long long>(faults.scenario_flash_groups),
        static_cast<unsigned long long>(faults.scenario_cable_cut_groups));
    print_whatif_deltas(baseline, report);
  }
}

void add_json_metrics(bench::JsonOutput& json, const std::string& prefix,
                      const WhatifReport& report) {
  for (const auto& [name, value] : report.metrics) {
    json.add(prefix + name, value);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunConfig rc;
  rc.world.seed = 2019;
  rc.world.days = 10;
  rc.dataset.seed = 2019;
  rc.dataset.days = 10;
  rc.dataset.session_scale = 1.0;
  rc.world.groups_per_continent = 6;
  if (const char* env = std::getenv("FBEDGE_CACHE_DIR")) rc.cache.dir = env;

  std::vector<std::string> scenario_paths;
  std::string sweep_dir;
  int sweep_workers = 0;
  int worker_shard = -1;
  int worker_count = 0;
  int worker_attempt = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      rc.runtime.threads = std::atoi(argv[++i]);
    } else if (arg == "--days" && i + 1 < argc) {
      rc.world.days = std::atoi(argv[++i]);
      rc.dataset.days = rc.world.days;
    } else if (arg == "--json" && i + 1 < argc) {
      rc.json_path = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      rc.cache.dir = argv[++i];
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario_paths.emplace_back(argv[++i]);
    } else if (arg == "--sweep" && i + 1 < argc) {
      sweep_dir = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      sweep_workers = std::atoi(argv[++i]);
    } else if (arg == "--sweep-worker" && i + 1 < argc) {
      // Hidden worker mode: "--sweep-worker S/N" = shard S of N.
      if (std::sscanf(argv[++i], "%d/%d", &worker_shard, &worker_count) != 2) {
        usage(argv[0]);
      }
    } else if (arg == "--attempt" && i + 1 < argc) {
      worker_attempt = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      rc.world.groups_per_continent = std::atoi(arg.c_str());
    } else {
      usage(argv[0]);
    }
  }

  if (!sweep_dir.empty()) {
    for (const std::string& path : list_scenario_files(sweep_dir)) {
      scenario_paths.push_back(path);
    }
  }

  std::vector<ScenarioPack> packs;
  packs.reserve(scenario_paths.size());
  for (const auto& path : scenario_paths) {
    packs.push_back(load_pack(path));
  }

  const World world = build_world(rc.world);
  RunStats stats;

  // ---- hidden sweep-worker mode: one shard of one scenario's affected
  // ingest, then exit with the worker's status (the sweep fleet's
  // launcher re-invokes this binary here).
  if (worker_shard >= 0) {
    if (packs.size() != 1 || rc.cache.dir.empty() || worker_count < 1) {
      std::fprintf(stderr,
                   "fbedge_whatif: --sweep-worker needs exactly one "
                   "--scenario and a --cache-dir\n");
      return 2;
    }
    SweepWorkerSpec spec;
    spec.shard = worker_shard;
    spec.workers = worker_count;
    spec.attempt = worker_attempt;
    spec.cache_dir = rc.cache.dir;
    return run_sweep_worker(world, rc.dataset, {}, packs[0], spec, {},
                            rc.runtime);
  }

  // ---- sweep mode: incremental splice-reduce over every pack -------------
  if (!sweep_dir.empty()) {
    SweepOutcome outcome;
    if (sweep_workers > 0) {
      if (rc.cache.dir.empty()) {
        std::fprintf(stderr, "fbedge_whatif: --workers needs --cache-dir\n");
        return 2;
      }
      SweepFleetOptions options;
      options.workers = sweep_workers;
      options.worker_threads = rc.runtime.threads;
      options.cache_dir = rc.cache.dir;
      options.reduce_runtime = rc.runtime;
      const std::string self = self_executable_path(argv[0]);
      options.launcher = [&](int scenario, int shard, int attempt) {
        char shard_arg[32];
        std::snprintf(shard_arg, sizeof(shard_arg), "%d/%d", shard,
                      sweep_workers);
        const std::vector<std::string> worker_argv = {
            self,
            std::to_string(rc.world.groups_per_continent),
            "--days", std::to_string(rc.world.days),
            "--threads", std::to_string(rc.runtime.threads),
            "--cache-dir", rc.cache.dir,
            "--scenario", scenario_paths[static_cast<std::size_t>(scenario)],
            "--sweep-worker", shard_arg,
            "--attempt", std::to_string(attempt)};
        return spawn_worker(worker_argv);
      };
      outcome = run_sweep_analysis(world, rc.dataset, {}, {}, {}, packs,
                                   options, &stats);
    } else {
      outcome = run_scenario_sweep(world, rc.dataset, {}, {}, {}, packs,
                                   rc.runtime, &stats, {}, rc.cache);
    }

    const WhatifReport baseline = whatif_report(outcome.baseline);
    std::printf("=== baseline ===\n");
    print_whatif_report(baseline);
    bench::JsonOutput json(rc.json_path);
    add_json_metrics(json, "baseline_", baseline);

    std::uint64_t total_reused = 0;
    std::uint64_t total_recomputed = 0;
    for (const SweepScenarioResult& scen : outcome.scenarios) {
      const WhatifReport report = whatif_report(scen.result);
      print_scenario_block(baseline, report, scen.pack, scen.result.faults);
      const std::uint64_t reused = scen.result.faults.scenario_groups_reused;
      const std::uint64_t recomputed =
          scen.result.faults.scenario_groups_recomputed;
      std::printf("sweep: reused=%llu recomputed=%llu\n",
                  static_cast<unsigned long long>(reused),
                  static_cast<unsigned long long>(recomputed));
      total_reused += reused;
      total_recomputed += recomputed;
      add_json_metrics(json, scen.pack.name + "_", report);
      json.add(scen.pack.name + "_sweep_groups_reused",
               static_cast<double>(reused));
      json.add(scen.pack.name + "_sweep_groups_recomputed",
               static_cast<double>(recomputed));
    }
    json.add("sweep_groups_reused", static_cast<double>(total_reused));
    json.add("sweep_groups_recomputed", static_cast<double>(total_recomputed));
    bench::add_runtime_json(json, stats);
    stats.print("fbedge_whatif");
    return json.write() ? 0 : 1;
  }

  const auto baseline_result =
      run_edge_analysis(world, rc.dataset, {}, {}, {}, rc.runtime, &stats, {},
                        rc.cache);
  const WhatifReport baseline = whatif_report(baseline_result);
  std::printf("=== baseline ===\n");
  print_whatif_report(baseline);

  bench::JsonOutput json(rc.json_path);
  add_json_metrics(json, "baseline_", baseline);

  for (const auto& pack : packs) {
    const auto result = run_edge_analysis(world, rc.dataset, {}, {}, {},
                                          rc.runtime, &stats, {}, rc.cache,
                                          pack);
    const WhatifReport report = whatif_report(result);
    print_scenario_block(baseline, report, pack, result.faults);
    add_json_metrics(json, pack.name + "_", report);
  }

  bench::add_runtime_json(json, stats);
  stats.print("fbedge_whatif");
  return json.write() ? 0 : 1;
}
