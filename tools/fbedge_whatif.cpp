// fbedge_whatif — run declarative what-if scenarios (src/scenario/) against
// the synthetic world and report the opportunity/degradation deltas vs
// baseline, the way the paper's pipeline was used operationally ("what
// happens if we drain this PoP during peak?").
//
// Usage: fbedge_whatif [groups] [--days N] [--threads N] [--json PATH]
//                      [--cache-dir DIR] [--scenario FILE]...
//
// Prints one "=== name ===" metric block per run (baseline first), each
// ending in an FNV-1a verdict hash; scenario blocks additionally print
// per-metric deltas and the applied-perturbation counts. All stdout is
// byte-identical for any --threads; a scenario file with no deltas prints
// a block byte-identical to the baseline block (the CI whatif-equivalence
// gate). With --cache-dir, baseline and scenarios share the ingest cache —
// artifact keys hash the perturbed world contents, so they never collide.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/whatif.h"
#include "bench_common.h"
#include "fbedge/fbedge.h"
#include "scenario/scenario.h"

using namespace fbedge;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [groups] [--days N] [--threads N] [--json PATH] "
               "[--cache-dir DIR] [--scenario FILE]...\n",
               argv0);
  std::exit(2);
}

void add_json_metrics(bench::JsonOutput& json, const std::string& prefix,
                      const WhatifReport& report) {
  for (const auto& [name, value] : report.metrics) {
    json.add(prefix + name, value);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunConfig rc;
  rc.world.seed = 2019;
  rc.world.days = 10;
  rc.dataset.seed = 2019;
  rc.dataset.days = 10;
  rc.dataset.session_scale = 1.0;
  rc.world.groups_per_continent = 6;
  if (const char* env = std::getenv("FBEDGE_CACHE_DIR")) rc.cache.dir = env;

  std::vector<std::string> scenario_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      rc.runtime.threads = std::atoi(argv[++i]);
    } else if (arg == "--days" && i + 1 < argc) {
      rc.world.days = std::atoi(argv[++i]);
      rc.dataset.days = rc.world.days;
    } else if (arg == "--json" && i + 1 < argc) {
      rc.json_path = argv[++i];
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      rc.cache.dir = argv[++i];
    } else if (arg == "--scenario" && i + 1 < argc) {
      scenario_paths.emplace_back(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      rc.world.groups_per_continent = std::atoi(arg.c_str());
    } else {
      usage(argv[0]);
    }
  }

  std::vector<ScenarioPack> packs;
  for (const auto& path : scenario_paths) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "fbedge_whatif: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    ScenarioParseResult parsed = parse_scenario(buffer.str());
    if (!parsed.ok) {
      std::fprintf(stderr, "fbedge_whatif: %s: %s\n", path.c_str(),
                   parsed.error.c_str());
      return 1;
    }
    if (parsed.pack.name.empty()) parsed.pack.name = path;
    packs.push_back(std::move(parsed.pack));
  }

  const World world = build_world(rc.world);
  RunStats stats;

  const auto baseline_result =
      run_edge_analysis(world, rc.dataset, {}, {}, {}, rc.runtime, &stats, {},
                        rc.cache);
  const WhatifReport baseline = whatif_report(baseline_result);
  std::printf("=== baseline ===\n");
  print_whatif_report(baseline);

  bench::JsonOutput json(rc.json_path);
  add_json_metrics(json, "baseline_", baseline);

  for (const auto& pack : packs) {
    const auto result = run_edge_analysis(world, rc.dataset, {}, {}, {},
                                          rc.runtime, &stats, {}, rc.cache,
                                          pack);
    const WhatifReport report = whatif_report(result);
    std::printf("=== scenario %s ===\n", pack.name.c_str());
    print_whatif_report(report);
    if (!pack.empty()) {
      // Scenario counters are pure functions of (pack, world), so they are
      // safe on the thread-count-invariant stdout.
      std::printf("applied: drained=%llu depref=%llu flash=%llu "
                  "cable_cut=%llu\n",
                  static_cast<unsigned long long>(
                      result.faults.scenario_drained_groups),
                  static_cast<unsigned long long>(
                      result.faults.scenario_depref_groups),
                  static_cast<unsigned long long>(
                      result.faults.scenario_flash_groups),
                  static_cast<unsigned long long>(
                      result.faults.scenario_cable_cut_groups));
      print_whatif_deltas(baseline, report);
    }
    add_json_metrics(json, pack.name + "_", report);
  }

  bench::add_runtime_json(json, stats);
  stats.print("fbedge_whatif");
  return json.write() ? 0 : 1;
}
