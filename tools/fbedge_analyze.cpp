// fbedge_analyze — ingest a serialized sample dataset (from fbedge_gen or
// any compatible exporter) and run the paper's measurement pipeline over
// it: hosting filter, §3.2.5 coalescing, HDratio evaluation, and a
// Figure 6-style summary plus a per-group opportunity scan.
//
// Usage: fbedge_analyze [--threads T] [FILE]   (reads stdin if no file)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fbedge/fbedge.h"

using namespace fbedge;

int main(int argc, char** argv) {
  RuntimeOptions runtime;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      runtime.threads = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: fbedge_analyze [--threads T] [FILE]\n");
      return 2;
    }
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (!path.empty()) {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "fbedge_analyze: cannot open %s\n", path.c_str());
      return 1;
    }
    in = &file;
  }

  // Streaming ingest: aggregate as lines arrive.
  WeightedCdf minrtt, hdratio;
  AggregationStore store;
  std::uint64_t sessions = 0, filtered = 0, malformed = 0;
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    const auto sample = parse_sample(line);
    if (!sample) {
      ++malformed;
      continue;
    }
    if (!SessionSampler::keep_for_analysis(sample->client)) {
      ++filtered;
      continue;
    }
    ++sessions;
    const SessionMetrics m = compute_session_metrics(*sample);
    if (sample->route_index == 0) {
      minrtt.add(m.min_rtt);
      if (m.hdratio) hdratio.add(*m.hdratio);
    }
    UserGroupKey key{sample->pop, sample->client.bgp_prefix, sample->client.country};
    store.add_session(key, sample->client.continent, sample->established_at,
                      sample->route_index, m.min_rtt, m.hdratio, m.traffic);
  }

  std::printf("ingested %llu sessions (%llu hosting-filtered, %llu malformed), "
              "%zu user groups\n",
              static_cast<unsigned long long>(sessions),
              static_cast<unsigned long long>(filtered),
              static_cast<unsigned long long>(malformed), store.group_count());
  if (sessions == 0) return 0;

  print_header("Performance summary (preferred route)");
  print_quantile_summary("MinRTT [ms]", minrtt, 1e3);
  if (!hdratio.empty()) {
    std::printf("HDratio: P(=0)=%.3f  P(=1)=%.3f  median=%.2f "
                "(%zu HD-testable sessions)\n",
                hdratio.fraction_at_or_below(0.0),
                1.0 - hdratio.fraction_at_or_below(0.999), hdratio.quantile(0.5),
                hdratio.size());
  }

  print_header("Routing opportunity scan (§6)");
  // Fan the per-group scans out over the runtime; the per-group hit counts
  // are summed in group order (integer sums, so exact for any thread count).
  std::vector<const GroupSeries*> series_list;
  series_list.reserve(store.group_count());
  for (const auto& [key, series] : store.groups()) series_list.push_back(&series);

  RunStats stats;
  const std::vector<int> window_hits = parallel_map(
      series_list.size(), runtime,
      [&](std::size_t i) {
        int hits = 0;
        for (const auto& ow : analyze_opportunity(*series_list[i], {})) {
          if (ow.rtt_opportunity(0.005) || ow.hd_opportunity(0.05)) ++hits;
        }
        return hits;
      },
      &stats);

  int groups_with_opportunity = 0;
  int windows_with_opportunity = 0;
  for (const int hits : window_hits) {
    if (hits > 0) ++groups_with_opportunity;
    windows_with_opportunity += hits;
  }
  std::printf("groups with any >=5 ms / >=0.05 opportunity: %d of %zu "
              "(%d window hits)\n",
              groups_with_opportunity, store.group_count(), windows_with_opportunity);
  stats.print("fbedge_analyze");
  return 0;
}
