// fbedge_analyze — ingest a serialized sample dataset (from fbedge_gen or
// any compatible exporter) and run the paper's measurement pipeline over
// it: hosting filter, §3.2.5 coalescing, HDratio evaluation, and a
// Figure 6-style summary plus a per-group opportunity scan.
//
// Usage: fbedge_analyze [FILE]   (reads stdin if no file)
#include <cstdio>
#include <fstream>
#include <iostream>

#include "fbedge/fbedge.h"

using namespace fbedge;

int main(int argc, char** argv) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "fbedge_analyze: cannot open %s\n", argv[1]);
      return 1;
    }
    in = &file;
  }

  // Streaming ingest: aggregate as lines arrive.
  WeightedCdf minrtt, hdratio;
  AggregationStore store;
  std::uint64_t sessions = 0, filtered = 0, malformed = 0;
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    const auto sample = parse_sample(line);
    if (!sample) {
      ++malformed;
      continue;
    }
    if (!SessionSampler::keep_for_analysis(sample->client)) {
      ++filtered;
      continue;
    }
    ++sessions;
    const SessionMetrics m = compute_session_metrics(*sample);
    if (sample->route_index == 0) {
      minrtt.add(m.min_rtt);
      if (m.hdratio) hdratio.add(*m.hdratio);
    }
    UserGroupKey key{sample->pop, sample->client.bgp_prefix, sample->client.country};
    store.add_session(key, sample->client.continent, sample->established_at,
                      sample->route_index, m.min_rtt, m.hdratio, m.traffic);
  }

  std::printf("ingested %llu sessions (%llu hosting-filtered, %llu malformed), "
              "%zu user groups\n",
              static_cast<unsigned long long>(sessions),
              static_cast<unsigned long long>(filtered),
              static_cast<unsigned long long>(malformed), store.group_count());
  if (sessions == 0) return 0;

  print_header("Performance summary (preferred route)");
  print_quantile_summary("MinRTT [ms]", minrtt, 1e3);
  if (!hdratio.empty()) {
    std::printf("HDratio: P(=0)=%.3f  P(=1)=%.3f  median=%.2f "
                "(%zu HD-testable sessions)\n",
                hdratio.fraction_at_or_below(0.0),
                1.0 - hdratio.fraction_at_or_below(0.999), hdratio.quantile(0.5),
                hdratio.size());
  }

  print_header("Routing opportunity scan (§6)");
  int groups_with_opportunity = 0;
  int windows_with_opportunity = 0;
  for (const auto& [key, series] : store.groups()) {
    bool any = false;
    for (const auto& ow : analyze_opportunity(series, {})) {
      if (ow.rtt_opportunity(0.005) || ow.hd_opportunity(0.05)) {
        any = true;
        ++windows_with_opportunity;
      }
    }
    if (any) ++groups_with_opportunity;
  }
  std::printf("groups with any >=5 ms / >=0.05 opportunity: %d of %zu "
              "(%d window hits)\n",
              groups_with_opportunity, store.group_count(), windows_with_opportunity);
  return 0;
}
