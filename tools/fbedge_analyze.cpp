// fbedge_analyze — ingest a serialized sample dataset (from fbedge_gen or
// any compatible exporter) and run the paper's measurement pipeline over
// it: hosting filter, §3.2.5 coalescing, HDratio evaluation, and a
// Figure 6-style summary plus a per-group opportunity scan.
//
// Usage: fbedge_analyze [--threads T] [--cache-dir DIR] [--verbose] [FILE]
//        (reads stdin if no file)
//
// --verbose reports (on stderr, so measurement output stays byte-identical)
// which columnar-kernel path the run dispatched to and why — the guard
// against an AVX2 build silently falling back to scalar.
//
// With --cache-dir (or FBEDGE_CACHE_DIR) and a FILE argument, the parsed
// ingest state (counters, summary CDFs, and every group's aggregation
// series) is persisted keyed by a content hash of the input bytes; a rerun
// over the same file skips parsing entirely and prints identical output.
// Stdin input is never cached (no stable identity to key on).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "agg/series_io.h"
#include "analysis/ingest_cache.h"
#include "fbedge/fbedge.h"
#include "util/simd.h"

using namespace fbedge;

namespace {

/// Everything the analysis below needs from ingest — the cacheable state.
struct IngestState {
  WeightedCdf minrtt, hdratio;
  AggregationStore store;
  std::uint64_t sessions = 0, filtered = 0, malformed = 0;
};

void save_cdf(const WeightedCdf& cdf, ByteWriter& w) {
  w.u64(cdf.points().size());
  for (const auto& p : cdf.points()) {
    w.f64(p.value);
    w.f64(p.weight);
  }
}

bool load_cdf(ByteReader& r, WeightedCdf& cdf) {
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > r.remaining() / 16) return false;
  std::vector<WeightedCdf::Point> points;
  points.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    WeightedCdf::Point p;
    p.value = r.f64();
    p.weight = r.f64();
    points.push_back(p);
  }
  if (!r.ok()) return false;
  cdf.assign_points(std::move(points));
  return true;
}

/// Artifact layout: blob 0 is the header (counters + summary CDFs), blobs
/// 1..N each hold one group's key followed by its serialized series, in
/// ascending key order so the artifact bytes are independent of the
/// unordered_map's iteration order.
std::vector<std::string> serialize_state(const IngestState& state) {
  std::vector<std::string> blobs;
  ByteWriter w;
  w.u64(state.sessions);
  w.u64(state.filtered);
  w.u64(state.malformed);
  save_cdf(state.minrtt, w);
  save_cdf(state.hdratio, w);
  blobs.push_back(w.take());

  std::vector<const std::pair<const UserGroupKey, GroupSeries>*> entries;
  entries.reserve(state.store.group_count());
  for (const auto& entry : state.store.groups()) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
    const UserGroupKey& ka = a->first;
    const UserGroupKey& kb = b->first;
    if (ka.pop.value != kb.pop.value) return ka.pop.value < kb.pop.value;
    if (ka.prefix.addr != kb.prefix.addr) return ka.prefix.addr < kb.prefix.addr;
    if (ka.prefix.length != kb.prefix.length) return ka.prefix.length < kb.prefix.length;
    return ka.country.value < kb.country.value;
  });
  for (const auto* entry : entries) {
    w.clear();
    w.u32(entry->first.pop.value);
    w.u32(entry->first.prefix.addr);
    w.u32(static_cast<std::uint32_t>(entry->first.prefix.length));
    w.u32(entry->first.country.value);
    save_group_series(entry->second, w);
    blobs.push_back(w.take());
  }
  return blobs;
}

bool deserialize_state(const IngestArtifact& artifact, IngestState& state) {
  if (artifact.blobs.empty()) return false;
  {
    const auto [offset, length] = artifact.blobs.front();
    ByteReader r(artifact.bytes.data() + offset, length);
    state.sessions = r.u64();
    state.filtered = r.u64();
    state.malformed = r.u64();
    if (!load_cdf(r, state.minrtt) || !load_cdf(r, state.hdratio) || !r.ok() ||
        r.remaining() != 0) {
      return false;
    }
  }
  for (std::size_t i = 1; i < artifact.blobs.size(); ++i) {
    const auto [offset, length] = artifact.blobs[i];
    ByteReader r(artifact.bytes.data() + offset, length);
    UserGroupKey key;
    key.pop = PopId{r.u32()};
    key.prefix.addr = r.u32();
    key.prefix.length = static_cast<int>(r.u32());
    key.country = CountryId{r.u32()};
    if (!r.ok() ||
        !load_group_series(r, state.store.series_for(key), nullptr) ||
        r.remaining() != 0) {
      return false;
    }
  }
  return true;
}

/// Content hash of the input dataset bytes (plus the format epoch and a
/// tool tag so edge-analysis artifacts can never collide with these).
std::uint64_t dataset_cache_key(const std::string& data) {
  Fnv64 h;
  h.u32(kIngestArtifactEpoch);
  h.bytes("fbedge_analyze", 14);
  h.u64(data.size());
  h.bytes(data.data(), data.size());
  return h.value();
}

void ingest_lines(std::istream& in, IngestState& state) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto sample = parse_sample(line);
    if (!sample) {
      ++state.malformed;
      continue;
    }
    if (!SessionSampler::keep_for_analysis(sample->client)) {
      ++state.filtered;
      continue;
    }
    ++state.sessions;
    const SessionMetrics m = compute_session_metrics(*sample);
    if (sample->route_index == 0) {
      state.minrtt.add(m.min_rtt);
      if (m.hdratio) state.hdratio.add(*m.hdratio);
    }
    UserGroupKey key{sample->pop, sample->client.bgp_prefix, sample->client.country};
    state.store.add_session(key, sample->client.continent, sample->established_at,
                            sample->route_index, m.min_rtt, m.hdratio, m.traffic);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RuntimeOptions runtime;
  std::string path;
  IngestCacheOptions cache;
  bool verbose = false;
  if (const char* env = std::getenv("FBEDGE_CACHE_DIR")) cache.dir = env;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      runtime.threads = std::atoi(argv[++i]);
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      cache.dir = argv[++i];
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: fbedge_analyze [--threads T] [--cache-dir DIR] "
                   "[--verbose] [FILE]\n");
      return 2;
    }
  }
  if (verbose) {
    std::fprintf(stderr,
                 "[simd] path=%s source=%s compiled_avx2=%d cpu_avx2=%d\n",
                 simd::active_path_name(), simd::dispatch_source(),
                 simd::compiled_avx2() ? 1 : 0,
                 simd::cpu_supports_avx2() ? 1 : 0);
  }

  IngestState state;
  bool warm = false;
  if (cache.enabled() && !path.empty()) {
    // Cached mode: the file is the cache identity, so read it whole.
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "fbedge_analyze: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string data = buffer.str();
    const std::uint64_t key = dataset_cache_key(data);
    const std::string artifact_path = ingest_artifact_path(cache.dir, key);
    IngestArtifact artifact;
    if (read_ingest_artifact(artifact_path, key, kAnyGroupCount, artifact) &&
        deserialize_state(artifact, state)) {
      warm = true;
    } else {
      state = IngestState{};  // discard any partial deserialization
      std::istringstream in(data);
      ingest_lines(in, state);
      write_ingest_artifact(artifact_path, key, serialize_state(state));
    }
  } else {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (!path.empty()) {
      file.open(path);
      if (!file) {
        std::fprintf(stderr, "fbedge_analyze: cannot open %s\n", path.c_str());
        return 1;
      }
      in = &file;
    }
    ingest_lines(*in, state);
  }

  std::printf("ingested %llu sessions (%llu hosting-filtered, %llu malformed), "
              "%zu user groups\n",
              static_cast<unsigned long long>(state.sessions),
              static_cast<unsigned long long>(state.filtered),
              static_cast<unsigned long long>(state.malformed),
              state.store.group_count());
  if (state.sessions == 0) return 0;

  print_header("Performance summary (preferred route)");
  print_quantile_summary("MinRTT [ms]", state.minrtt, 1e3);
  if (!state.hdratio.empty()) {
    std::printf("HDratio: P(=0)=%.3f  P(=1)=%.3f  median=%.2f "
                "(%zu HD-testable sessions)\n",
                state.hdratio.fraction_at_or_below(0.0),
                1.0 - state.hdratio.fraction_at_or_below(0.999),
                state.hdratio.quantile(0.5), state.hdratio.size());
  }

  print_header("Routing opportunity scan (§6)");
  // Fan the per-group scans out over the runtime; the per-group hit counts
  // are summed in group order (integer sums, so exact for any thread count).
  std::vector<const GroupSeries*> series_list;
  series_list.reserve(state.store.group_count());
  for (const auto& [key, series] : state.store.groups()) series_list.push_back(&series);

  RunStats stats;
  const std::vector<int> window_hits = parallel_map(
      series_list.size(), runtime,
      [&](std::size_t i) {
        int hits = 0;
        for (const auto& ow : analyze_opportunity(*series_list[i], {})) {
          if (ow.rtt_opportunity(0.005) || ow.hd_opportunity(0.05)) ++hits;
        }
        return hits;
      },
      &stats);

  int groups_with_opportunity = 0;
  int windows_with_opportunity = 0;
  for (const int hits : window_hits) {
    if (hits > 0) ++groups_with_opportunity;
    windows_with_opportunity += hits;
  }
  std::printf("groups with any >=5 ms / >=0.05 opportunity: %d of %zu "
              "(%d window hits)\n",
              groups_with_opportunity, state.store.group_count(),
              windows_with_opportunity);
  if (warm) {
    stats.cache_hits += state.store.group_count();
  } else if (cache.enabled() && !path.empty()) {
    stats.cache_misses += state.store.group_count();
  }
  stats.print("fbedge_analyze");
  return 0;
}
