// fbedge_scale: multi-process shard coordinator over the ingest-artifact
// cache (src/distrib/).
//
// Coordinator mode partitions the group space across N worker processes
// (re-invocations of this binary in hidden --shard-worker mode), each of
// which ingests its contiguous group block and publishes a shard ingest
// artifact + manifest into the shared cache directory; the coordinator
// then reduces shard by shard in shard order. stdout is byte-identical
// for any worker count — including --workers 0, which runs the plain
// in-process run_edge_analysis — so equivalence is checked with `diff`.
//
//   fbedge_scale [groups] [--days D] [--workers N] [--threads R]
//                [--worker-threads T] [--cache-dir DIR] [--max-attempts M]
//                [--worker-crash-rate P] [--fault-seed S] [--in-process]
//                [--sweep 1,2,4] [--json PATH]
//
//   --workers 0        in-process baseline (run_edge_analysis, no cache)
//   --workers N        N worker subprocesses (default 1)
//   --in-process       run workers as in-process calls instead of fork/exec
//                      (exercises identical coordinator logic; used where
//                      spawning is unavailable)
//   --sweep A,B,...    run each worker count against a fresh cold cache
//                      subdir, verify the result digests match, and report
//                      wall time / sessions-per-second / per-worker RSS
//                      per count (the BENCH_scale.json generator)
//
// Worker mode (spawned by the coordinator, not for direct use):
//   fbedge_scale --shard-worker S/N --attempt A ... --cache-dir DIR
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/edge_analysis.h"
#include "analysis/format.h"
#include "bench_common.h"
#include "distrib/coordinator.h"
#include "distrib/shard_manifest.h"
#include "distrib/subprocess.h"
#include "util/binio.h"

using namespace fbedge;

namespace {

struct ScaleCli {
  int groups_per_continent{10};
  int days{10};
  int workers{1};
  int threads{0};         // reduce / baseline threads; 0 = hardware
  int worker_threads{1};  // threads inside each worker's ingest
  int max_attempts{2};
  double worker_crash_rate{0};
  std::uint64_t fault_seed{0};
  bool in_process{false};
  std::string cache_dir;
  std::string json_path;
  std::vector<int> sweep;
  // Hidden worker mode.
  bool worker_mode{false};
  int worker_shard{0};
  int worker_count{1};
  int worker_attempt{0};
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [groups] [--days D] [--workers N] [--threads R]\n"
               "          [--worker-threads T] [--cache-dir DIR] "
               "[--max-attempts M]\n"
               "          [--worker-crash-rate P] [--fault-seed S] "
               "[--in-process]\n"
               "          [--sweep 1,2,4] [--json PATH]\n",
               argv0);
  std::exit(2);
}

ScaleCli parse_cli(int argc, char** argv) {
  ScaleCli cli;
  if (const char* env = std::getenv("FBEDGE_CACHE_DIR")) cli.cache_dir = env;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--days") {
      cli.days = std::atoi(next());
    } else if (arg == "--workers") {
      cli.workers = std::atoi(next());
    } else if (arg == "--threads") {
      cli.threads = std::atoi(next());
    } else if (arg == "--worker-threads") {
      cli.worker_threads = std::atoi(next());
    } else if (arg == "--max-attempts") {
      cli.max_attempts = std::atoi(next());
    } else if (arg == "--worker-crash-rate") {
      cli.worker_crash_rate = std::atof(next());
    } else if (arg == "--fault-seed") {
      cli.fault_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--in-process") {
      cli.in_process = true;
    } else if (arg == "--cache-dir") {
      cli.cache_dir = next();
    } else if (arg == "--json") {
      cli.json_path = next();
    } else if (arg == "--sweep") {
      const char* list = next();
      int value = 0;
      bool have = false;
      for (const char* p = list;; ++p) {
        if (*p >= '0' && *p <= '9') {
          value = value * 10 + (*p - '0');
          have = true;
        } else if (*p == ',' || *p == '\0') {
          if (have) cli.sweep.push_back(value);
          value = 0;
          have = false;
          if (*p == '\0') break;
        } else {
          usage(argv[0]);
        }
      }
    } else if (arg == "--shard-worker") {
      const char* spec = next();
      if (std::sscanf(spec, "%d/%d", &cli.worker_shard, &cli.worker_count) != 2) {
        usage(argv[0]);
      }
      cli.worker_mode = true;
    } else if (arg == "--attempt") {
      cli.worker_attempt = std::atoi(next());
    } else if (!arg.empty() && arg[0] != '-') {
      cli.groups_per_continent = std::atoi(arg.c_str());
    } else {
      usage(argv[0]);
    }
  }
  return cli;
}

/// The dataset every mode analyzes: the edge_run shape (seed 2019,
/// session_scale 1.0) with the CLI's group count and day span, so a
/// --workers 0 baseline and any worker partition see the same world.
void configure_run(const ScaleCli& cli, WorldConfig& world, DatasetConfig& dataset) {
  world.seed = 2019;
  world.days = cli.days;
  world.groups_per_continent = cli.groups_per_continent;
  dataset.seed = 2019;
  dataset.days = cli.days;
  dataset.session_scale = 1.0;
}

FaultPlan cli_faults(const ScaleCli& cli) {
  FaultPlan faults;
  faults.seed = cli.fault_seed;
  faults.worker_crash_rate = cli.worker_crash_rate;
  faults.worker_max_attempts = cli.max_attempts;
  return faults;
}

void digest_cdf(Fnv64& h, const WeightedCdf& cdf) {
  if (cdf.empty()) {
    h.u8(0);
    return;
  }
  h.u8(1);
  for (const auto& [value, fraction] : cdf.series(64)) {
    h.f64(value);
    h.f64(fraction);
  }
}

/// Order-stable FNV digest of every measurement field of the result
/// (counters excluded — a crash-injected run must digest identically to a
/// clean one). Printed in the report, so any cross-worker-count drift is
/// visible even when only deep table cells changed.
std::uint64_t result_digest(const EdgeAnalysisResult& r) {
  Fnv64 h;
  h.u64(static_cast<std::uint64_t>(r.groups_analyzed));
  h.u64(r.sessions_analyzed);
  h.f64(r.total_traffic);
  for (const WeightedCdf* cdf :
       {&r.degr_rtt, &r.degr_rtt_lower, &r.degr_rtt_upper, &r.degr_hd,
        &r.degr_hd_lower, &r.degr_hd_upper, &r.opp_rtt, &r.opp_rtt_lower,
        &r.opp_rtt_upper, &r.opp_hd, &r.opp_hd_lower, &r.opp_hd_upper,
        &r.fig10_peer_vs_transit, &r.fig10_transit_vs_transit,
        &r.fig10_private_vs_public}) {
    digest_cdf(h, *cdf);
  }
  for (const double v :
       {r.degr_valid_traffic_rtt, r.degr_valid_traffic_hd,
        r.opp_valid_traffic_rtt, r.opp_valid_traffic_hd, r.rtt_within_3ms,
        r.hd_within_0025, r.rtt_improvable_5ms, r.hd_improvable_005}) {
    h.f64(v);
  }
  for (const auto& [key, cell] : r.table1) {
    const auto& [kind, threshold, cls, scope] = key;
    h.u8(static_cast<std::uint8_t>(kind));
    h.u32(static_cast<std::uint32_t>(threshold));
    h.u8(static_cast<std::uint8_t>(cls));
    h.i64(scope);
    h.f64(cell.group_traffic);
    h.f64(cell.event_traffic);
  }
  for (const auto* table : {&r.table2_rtt, &r.table2_hd}) {
    for (const auto& [pair, row] : *table) {
      h.u8(static_cast<std::uint8_t>(pair.first));
      h.u8(static_cast<std::uint8_t>(pair.second));
      h.f64(row.absolute);
      h.f64(row.longer);
      h.f64(row.prepended);
    }
  }
  return h.value();
}

/// The measurement report: identical bytes for --workers 0 and any worker
/// partition of the same dataset (that is the scale-equivalence check).
void print_report(const EdgeAnalysisResult& result) {
  print_header("Fig. 8: degradation (scale run)");
  print_quantile_summary("MinRTT_P50 degradation (ms)", result.degr_rtt, 1000.0);
  print_quantile_summary("HDratio_P50 degradation", result.degr_hd);
  std::printf("valid traffic: rtt=%.3f hd=%.3f\n", result.degr_valid_traffic_rtt,
              result.degr_valid_traffic_hd);

  print_header("Fig. 9: opportunity (scale run)");
  print_quantile_summary("MinRTT_P50 pref-alt (ms)", result.opp_rtt, 1000.0);
  print_quantile_summary("HDratio_P50 alt-pref", result.opp_hd);
  std::printf("within: rtt_3ms=%.3f hd_0.025=%.3f  improvable: rtt_5ms=%.3f "
              "hd_0.05=%.3f\n",
              result.rtt_within_3ms, result.hd_within_0025,
              result.rtt_improvable_5ms, result.hd_improvable_005);

  print_table1(result, AnalysisKind::kDegradationRtt,
               {"+5ms", "+10ms", "+20ms", "+50ms"});
  print_table1(result, AnalysisKind::kDegradationHd,
               {"-0.05", "-0.1", "-0.2", "-0.5"});
  print_table1(result, AnalysisKind::kOpportunityRtt, {"-5ms", "-10ms"});
  print_table1(result, AnalysisKind::kOpportunityHd, {"+0.05"});

  std::printf("\ngroups analyzed: %d\n", result.groups_analyzed);
  std::printf("sessions analyzed: %llu\n",
              static_cast<unsigned long long>(result.sessions_analyzed));
  std::printf("result digest: %016llx\n",
              static_cast<unsigned long long>(result_digest(result)));
}

/// Builds the argv for one worker attempt (self re-invocation).
std::vector<std::string> worker_argv(const std::string& self, const ScaleCli& cli,
                                     const std::string& cache_dir, int shard,
                                     int attempt) {
  std::vector<std::string> argv;
  argv.push_back(self);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "--shard-worker");
  argv.push_back(buf);
  std::snprintf(buf, sizeof(buf), "%d/%d", shard, cli.workers);
  argv.push_back(buf);
  argv.push_back("--attempt");
  std::snprintf(buf, sizeof(buf), "%d", attempt);
  argv.push_back(buf);
  std::snprintf(buf, sizeof(buf), "%d", cli.groups_per_continent);
  argv.push_back(buf);
  argv.push_back("--days");
  std::snprintf(buf, sizeof(buf), "%d", cli.days);
  argv.push_back(buf);
  argv.push_back("--worker-threads");
  std::snprintf(buf, sizeof(buf), "%d", cli.worker_threads);
  argv.push_back(buf);
  argv.push_back("--cache-dir");
  argv.push_back(cache_dir);
  if (cli.worker_crash_rate > 0) {
    argv.push_back("--worker-crash-rate");
    std::snprintf(buf, sizeof(buf), "%.17g", cli.worker_crash_rate);
    argv.push_back(buf);
    argv.push_back("--fault-seed");
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(cli.fault_seed));
    argv.push_back(buf);
  }
  return argv;
}

int run_worker_mode(const ScaleCli& cli) {
  if (cli.cache_dir.empty()) {
    std::fprintf(stderr, "fbedge_scale: worker mode needs --cache-dir\n");
    return 2;
  }
  WorldConfig wc;
  DatasetConfig dataset;
  configure_run(cli, wc, dataset);
  const World world = build_world(wc);
  WorkerSpec spec;
  spec.shard = cli.worker_shard;
  spec.workers = cli.worker_count;
  spec.attempt = cli.worker_attempt;
  spec.cache_dir = cli.cache_dir;
  return run_shard_worker(world, dataset, {}, spec, cli_faults(cli),
                          RuntimeOptions{cli.worker_threads});
}

struct ScaleRun {
  EdgeAnalysisResult result;
  RunStats stats;
  double wall_seconds{0};
};

ScaleRun run_once(const ScaleCli& cli, const World& world,
                  const DatasetConfig& dataset, const std::string& self,
                  const std::string& cache_dir, int workers) {
  ScaleRun run;
  const auto start = std::chrono::steady_clock::now();
  if (workers == 0) {
    const IngestCacheOptions cache{cache_dir};
    run.result = run_edge_analysis(world, dataset, {}, {}, {},
                                   RuntimeOptions{cli.threads}, &run.stats, {},
                                   cache);
  } else {
    ScaleOptions options;
    options.workers = workers;
    options.worker_threads = cli.worker_threads;
    options.cache_dir = cache_dir;
    options.reduce_runtime = RuntimeOptions{cli.threads};
    options.faults = cli_faults(cli);
    if (!cli.in_process) {
      ScaleCli worker_cli = cli;
      worker_cli.workers = workers;
      options.launcher = [&, worker_cli](int shard, int attempt) {
        return spawn_worker(
            worker_argv(self, worker_cli, cache_dir, shard, attempt));
      };
    }
    run.result = run_scale_analysis(world, dataset, {}, {}, {}, options,
                                    &run.stats);
  }
  run.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  return run;
}

void add_scale_json(bench::JsonOutput& json, const ScaleRun& run) {
  bench::add_runtime_json(json, run.stats);
  json.add("runtime_workers_spawned",
           static_cast<double>(run.stats.workers_spawned));
  json.add("runtime_worker_failures",
           static_cast<double>(run.stats.worker_failures));
  json.add("runtime_worker_retries",
           static_cast<double>(run.stats.faults.worker_retries));
  json.add("runtime_degraded_shards",
           static_cast<double>(run.stats.faults.degraded_shards));
  json.add("runtime_worker_rss_peak",
           static_cast<double>(run.stats.worker_rss_peak_bytes));
}

int run_sweep(const ScaleCli& cli, const std::string& self) {
  WorldConfig wc;
  DatasetConfig dataset;
  configure_run(cli, wc, dataset);
  const World world = build_world(wc);

  ::mkdir(cli.cache_dir.c_str(), 0777);  // parent for per-count subdirs
  bench::JsonOutput json(cli.json_path);
  json.add("groups", static_cast<double>(world.groups.size()));
  json.add("days", cli.days);

  std::uint64_t first_digest = 0;
  bool digests_match = true;
  std::uint64_t sessions = 0;
  double wall_workers1 = 0;
  std::printf("%8s %10s %12s %10s %10s %14s  %s\n", "workers", "wall_s",
              "sessions_per_s", "spawned", "failures", "worker_rss_mb",
              "digest");
  for (std::size_t i = 0; i < cli.sweep.size(); ++i) {
    const int workers = cli.sweep[i];
    ScaleCli run_cli = cli;
    run_cli.workers = workers;
    char sub[32];
    std::snprintf(sub, sizeof(sub), "/w%d", workers);
    const std::string cache_dir = cli.cache_dir + sub;
    const ScaleRun run =
        run_once(run_cli, world, dataset, self, cache_dir, workers);
    const std::uint64_t digest = result_digest(run.result);
    if (i == 0) {
      first_digest = digest;
      sessions = run.result.sessions_analyzed;
    } else if (digest != first_digest) {
      digests_match = false;
    }
    if (workers == 1) wall_workers1 = run.wall_seconds;
    const double per_s = run.wall_seconds > 0
                             ? static_cast<double>(run.result.sessions_analyzed) /
                                   run.wall_seconds
                             : 0;
    std::printf("%8d %10.2f %12.0f %10llu %10llu %14.1f  %016llx\n", workers,
                run.wall_seconds, per_s,
                static_cast<unsigned long long>(run.stats.workers_spawned),
                static_cast<unsigned long long>(run.stats.worker_failures),
                static_cast<double>(run.stats.worker_rss_peak_bytes) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(digest));
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "workers_%d_", workers);
    json.add(std::string(prefix) + "wall_seconds", run.wall_seconds);
    json.add(std::string(prefix) + "sessions_per_s", per_s);
    json.add(std::string(prefix) + "spawned",
             static_cast<double>(run.stats.workers_spawned));
    json.add(std::string(prefix) + "failures",
             static_cast<double>(run.stats.worker_failures));
    json.add(std::string(prefix) + "worker_rss_peak",
             static_cast<double>(run.stats.worker_rss_peak_bytes));
    if (workers == 1 || wall_workers1 > 0) {
      json.add(std::string(prefix) + "speedup_vs_1",
               run.wall_seconds > 0 ? wall_workers1 / run.wall_seconds : 0);
    }
  }
  std::printf("digests %s\n", digests_match ? "match" : "DIVERGE");
  json.add("sessions_analyzed", static_cast<double>(sessions));
  json.add("digests_match", digests_match ? 1 : 0);
  if (!json.write()) return 1;
  return digests_match ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const ScaleCli cli = parse_cli(argc, argv);
  if (cli.worker_mode) return run_worker_mode(cli);
  const std::string self = self_executable_path(argv[0]);

  if (!cli.sweep.empty()) {
    if (cli.cache_dir.empty()) {
      std::fprintf(stderr, "fbedge_scale: --sweep needs --cache-dir\n");
      return 2;
    }
    return run_sweep(cli, self);
  }

  if (cli.workers > 0 && cli.cache_dir.empty()) {
    std::fprintf(stderr, "fbedge_scale: --workers needs --cache-dir\n");
    return 2;
  }

  WorldConfig wc;
  DatasetConfig dataset;
  configure_run(cli, wc, dataset);
  const World world = build_world(wc);
  const ScaleRun run =
      run_once(cli, world, dataset, self, cli.cache_dir, cli.workers);

  print_report(run.result);
  run.stats.print("fbedge_scale");

  bench::JsonOutput json(cli.json_path);
  json.add("groups_analyzed", run.result.groups_analyzed);
  json.add("sessions_analyzed",
           static_cast<double>(run.result.sessions_analyzed));
  json.add("runtime_scale_wall_seconds", run.wall_seconds);
  json.add("runtime_sessions_per_second",
           run.wall_seconds > 0
               ? static_cast<double>(run.result.sessions_analyzed) /
                     run.wall_seconds
               : 0);
  add_scale_json(json, run);
  return json.write() ? 0 : 1;
}
