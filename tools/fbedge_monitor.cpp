// fbedge_monitor — the fig9 opportunity workload run as a long-lived
// service instead of a batch job: every user group's generated sessions
// replay through the streaming pipeline (src/stream/) in event-time order,
// 15-minute windows close on a low-watermark, and each sealed window gets
// its §3.4 degradation/opportunity verdict immediately, after which the
// window's state is recycled — live memory stays flat no matter how many
// days the stream runs.
//
// Usage: fbedge_monitor [groups] [--threads N] [--json PATH]
//                       [--mode stream|batch] [--days N] [--lateness W]
//                       [--batch-rows N] [--dump-verdicts]
//                       [--late-rate P] [--late-max-delay W] [--dup-rate P]
//                       [--fault-seed S]
//
//   --mode batch runs the identical pipeline with an infinite lateness
//   band (materialize everything, seal at flush): its stdout and every
//   monitor_* JSON key are byte-identical to stream mode at any --threads
//   — that equivalence is the subsystem's acceptance gate (CI diffs the
//   two). --days scales the stream length at fixed group count; the
//   flat-RSS claim is judged by runtime_rss_peak across --days values.
//   The fault flags inject stream-transport faults (held-back / duplicated
//   micro-batches); late rows that miss their window are counted, dropped,
//   and reported, never crashed on.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "fbedge/fbedge.h"

using namespace fbedge;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [groups] [--threads N] [--json PATH] "
               "[--mode stream|batch] [--days N] [--lateness W] "
               "[--batch-rows N] [--dump-verdicts] [--late-rate P] "
               "[--late-max-delay W] [--dup-rate P] [--fault-seed S]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  // Same world/dataset shape as the fig9 bench (bench_common.h edge_run):
  // seed 2019, 10 days, 10 groups per continent by default.
  bench::RunConfig rc;
  rc.world.seed = 2019;
  rc.world.days = 10;
  rc.dataset.seed = 2019;
  rc.dataset.days = 10;
  rc.dataset.session_scale = 1.0;
  rc.world.groups_per_continent = 10;

  MonitorMode mode = MonitorMode::kStream;
  StreamMonitorOptions options;
  FaultPlan faults;
  bool dump_verdicts = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--threads") {
      rc.runtime.threads = std::atoi(next());
    } else if (arg == "--json") {
      rc.json_path = next();
    } else if (arg == "--mode") {
      const std::string m = next();
      if (m == "stream") {
        mode = MonitorMode::kStream;
      } else if (m == "batch") {
        mode = MonitorMode::kBatch;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--days") {
      const int days = std::atoi(next());
      if (days < 1) usage(argv[0]);
      rc.world.days = days;
      rc.dataset.days = days;
    } else if (arg == "--lateness") {
      options.allowed_lateness_windows = std::atoi(next());
      if (options.allowed_lateness_windows < 0) usage(argv[0]);
    } else if (arg == "--batch-rows") {
      options.max_batch_rows = std::atoi(next());
    } else if (arg == "--dump-verdicts") {
      dump_verdicts = true;
    } else if (arg == "--late-rate") {
      faults.stream_late_rate = std::atof(next());
    } else if (arg == "--late-max-delay") {
      faults.stream_late_max_delay = std::atoi(next());
    } else if (arg == "--dup-rate") {
      faults.stream_duplicate_rate = std::atof(next());
    } else if (arg == "--fault-seed") {
      faults.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (!arg.empty() && arg[0] != '-') {
      rc.world.groups_per_continent = std::atoi(arg.c_str());
    } else {
      usage(argv[0]);
    }
  }

  const World world = build_world(rc.world);
  RunStats stats;
  options.collect_verdicts = dump_verdicts;
  const MonitorResult result = run_stream_monitor(world, rc.dataset, mode, options,
                                                  rc.runtime, &stats, faults);

  // stdout is the equivalence surface: everything printed here is a pure
  // function of (world, dataset, monitor options, fault plan) — never of
  // --mode, --threads, or machine speed. Timings go to stderr.
  std::printf("fbedge_monitor: %zu groups, %d days, lateness=%d windows, "
              "batch_rows=%d\n",
              world.groups.size(), rc.dataset.days,
              options.allowed_lateness_windows, options.max_batch_rows);
  for (std::size_t g = 0; g < result.groups.size(); ++g) {
    const GroupVerdictSummary& s = result.groups[g];
    std::printf("group %4zu: windows=%4llu degraded_rtt=%3llu degraded_hd=%3llu "
                "opp_rtt=%3llu opp_hd=%3llu late_rows=%llu hash=%016llx\n",
                g, static_cast<unsigned long long>(s.windows),
                static_cast<unsigned long long>(s.degraded_rtt),
                static_cast<unsigned long long>(s.degraded_hd),
                static_cast<unsigned long long>(s.opp_rtt),
                static_cast<unsigned long long>(s.opp_hd),
                static_cast<unsigned long long>(s.late_rows),
                static_cast<unsigned long long>(s.verdict_hash));
    if (dump_verdicts) {
      for (const WindowVerdict& v : result.verdicts[g]) {
        std::printf("  w=%4d degr_rtt=%d degr_hd=%d opp=%d\n", v.window,
                    v.degr.rtt.exceeds(options.policy.degradation_rtt) ? 1 : 0,
                    v.degr.hd.exceeds(options.policy.degradation_hd) ? 1 : 0,
                    v.has_opp &&
                            (v.opp.rtt_opportunity(options.policy.opportunity_rtt) ||
                             v.opp.hd_opportunity(options.policy.opportunity_hd))
                        ? 1
                        : 0);
      }
    }
  }
  const GroupVerdictSummary& t = result.total;
  std::printf("total: sessions=%llu windows=%llu degraded_rtt=%llu "
              "degraded_hd=%llu opp_rtt=%llu opp_hd=%llu late_rows=%llu\n",
              static_cast<unsigned long long>(t.rows),
              static_cast<unsigned long long>(t.windows),
              static_cast<unsigned long long>(t.degraded_rtt),
              static_cast<unsigned long long>(t.degraded_hd),
              static_cast<unsigned long long>(t.opp_rtt),
              static_cast<unsigned long long>(t.opp_hd),
              static_cast<unsigned long long>(t.late_rows));
  std::printf("degraded_traffic_fraction=%.6f opportunity_traffic_fraction=%.6f\n",
              t.traffic > 0 ? t.degraded_traffic / t.traffic : 0.0,
              t.traffic > 0 ? t.opportunity_traffic / t.traffic : 0.0);
  std::printf("verdict_hash=%016llx\n",
              static_cast<unsigned long long>(t.verdict_hash));
  if (result.faults.any()) {
    std::printf("faults: late_batches=%llu dup_batches=%llu dropped_rows=%llu\n",
                static_cast<unsigned long long>(result.faults.stream_late_batches),
                static_cast<unsigned long long>(
                    result.faults.stream_duplicate_batches),
                static_cast<unsigned long long>(result.faults.stream_dropped_rows));
  }

  bench::JsonOutput json(rc.json_path);
  // monitor_* keys are mode- and thread-invariant (diffed verbatim by the
  // CI equivalence job); runtime_* keys describe this run's execution.
  json.add("monitor_groups", static_cast<double>(result.groups.size()));
  json.add("monitor_sessions", static_cast<double>(t.rows));
  json.add("monitor_windows_sealed", static_cast<double>(t.windows));
  json.add("monitor_degraded_rtt_windows", static_cast<double>(t.degraded_rtt));
  json.add("monitor_degraded_hd_windows", static_cast<double>(t.degraded_hd));
  json.add("monitor_opp_rtt_windows", static_cast<double>(t.opp_rtt));
  json.add("monitor_opp_hd_windows", static_cast<double>(t.opp_hd));
  json.add("monitor_late_rows", static_cast<double>(t.late_rows));
  json.add("monitor_degraded_traffic_fraction",
           t.traffic > 0 ? t.degraded_traffic / t.traffic : 0.0);
  json.add("monitor_opportunity_traffic_fraction",
           t.traffic > 0 ? t.opportunity_traffic / t.traffic : 0.0);
  // The 64-bit verdict hash split into exact 32-bit halves (%.10g doubles
  // cannot carry 64 significant bits).
  json.add("monitor_verdict_hash_hi",
           static_cast<double>(t.verdict_hash >> 32));
  json.add("monitor_verdict_hash_lo",
           static_cast<double>(t.verdict_hash & 0xffffffffu));
  json.add("runtime_sessions_per_second",
           stats.wall_seconds > 0 ? static_cast<double>(t.rows) / stats.wall_seconds
                                  : 0.0);
  json.add("runtime_stream_open_windows_peak",
           static_cast<double>(stats.stream_open_windows_peak));
  json.add("runtime_stream_watermark_advances",
           static_cast<double>(stats.stream_watermark_advances));
  bench::add_runtime_json(json, stats);
  if (!json.write()) return 1;

  stats.print("fbedge_monitor");
  return 0;
}
