// Tests for the core goodput methodology (§3.2): the ideal-conditions
// model (Eq. 1-3), Wstart tracking, Tmodel, the achieved-rate solver, and
// session HDratio — anchored on the paper's Figure 4 worked example.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "goodput/hdratio.h"
#include "goodput/ideal_model.h"
#include "goodput/tmodel.h"
#include "util/rng.h"

namespace fbedge {
namespace {

constexpr Bytes kPkt = 1500;           // packet size in the Fig. 4 example
constexpr Duration kRtt = 0.060;       // 60 ms
constexpr Bytes kW10 = 10 * kPkt;      // initial window of 10 packets

// ---------------------------------------------------------------------------
// Eq. 1: m = ceil(log2(Btotal/Wstart + 1))
// ---------------------------------------------------------------------------

TEST(IdealModel, RoundsMatchesFigure4) {
  EXPECT_EQ(ideal::rounds(2 * kPkt, kW10), 1);   // txn 1: 2 pkts, W=10
  EXPECT_EQ(ideal::rounds(24 * kPkt, kW10), 2);  // txn 2: 24 pkts, W=10
  EXPECT_EQ(ideal::rounds(14 * kPkt, 20 * kPkt), 1);  // txn 3: 14 pkts, W=20
}

TEST(IdealModel, RoundsBoundaries) {
  // Exactly one window: one round.
  EXPECT_EQ(ideal::rounds(kW10, kW10), 1);
  // One byte more than a window: two rounds.
  EXPECT_EQ(ideal::rounds(kW10 + 1, kW10), 2);
  // W + 2W bytes: still two rounds; +1 byte: three.
  EXPECT_EQ(ideal::rounds(3 * kW10, kW10), 2);
  EXPECT_EQ(ideal::rounds(3 * kW10 + 1, kW10), 3);
  // Tiny transfer.
  EXPECT_EQ(ideal::rounds(1, kW10), 1);
}

TEST(IdealModel, RoundsMonotoneInSize) {
  int prev = 0;
  for (Bytes b = 1; b < 2000000; b = b * 3 / 2 + 1) {
    const int m = ideal::rounds(b, kW10);
    EXPECT_GE(m, prev) << "b=" << b;
    prev = m;
  }
}

// ---------------------------------------------------------------------------
// Eq. 2: WSS(n) = 2^(n-1) * Wstart
// ---------------------------------------------------------------------------

TEST(IdealModel, WindowAtRound) {
  EXPECT_DOUBLE_EQ(ideal::window_at_round(1, kW10), 15000.0);
  EXPECT_DOUBLE_EQ(ideal::window_at_round(2, kW10), 30000.0);
  EXPECT_DOUBLE_EQ(ideal::window_at_round(3, kW10), 60000.0);
}

TEST(IdealModel, EndWindowDoublesPerRound) {
  // 24 packets from W=10 takes 2 rounds; ideal end window is WSS(2) = 20 pkts.
  EXPECT_EQ(ideal::end_window(24 * kPkt, kW10), 20 * kPkt);
  // Single-round transfers leave the window at WSS(1) = Wstart.
  EXPECT_EQ(ideal::end_window(2 * kPkt, kW10), kW10);
}

// ---------------------------------------------------------------------------
// Eq. 3: Gtestable — the Figure 4 numbers.
// ---------------------------------------------------------------------------

TEST(IdealModel, GtestableFigure4Txn1) {
  // 2 packets / 60 ms = 0.4 Mbps.
  EXPECT_NEAR(ideal::testable_goodput(2 * kPkt, kW10, kRtt), 0.4e6, 1e3);
}

TEST(IdealModel, GtestableFigure4Txn2) {
  // Second RTT carries 14 packets: 14 * 1500 * 8 / 60 ms = 2.8 Mbps.
  EXPECT_NEAR(ideal::testable_goodput(24 * kPkt, kW10, kRtt), 2.8e6, 1e3);
}

TEST(IdealModel, GtestableFigure4Txn3) {
  // 14 packets in one RTT with W=20: 2.8 Mbps.
  EXPECT_NEAR(ideal::testable_goodput(14 * kPkt, 20 * kPkt, kRtt), 2.8e6, 1e3);
}

TEST(IdealModel, GtestablePenultimateRoundDominatesWhenLastIsSmall) {
  // 21 packets from W=10: m=2, rounds send 10 then 11. Penultimate window
  // (10 pkts) < last round (11 pkts) -> 11 pkts/RTT.
  EXPECT_NEAR(ideal::testable_goodput(21 * kPkt, kW10, kRtt),
              to_bits(11 * kPkt) / kRtt, 1e3);
  // 31 packets from W=10: m=3 (10+20+1). Last round has 1 packet; the
  // penultimate round's 20 packets dominate.
  EXPECT_NEAR(ideal::testable_goodput(31 * kPkt, kW10, kRtt),
              to_bits(20 * kPkt) / kRtt, 1e3);
}

TEST(IdealModel, GtestableScalesInverselyWithRtt) {
  const auto g60 = ideal::testable_goodput(24 * kPkt, kW10, 0.060);
  const auto g30 = ideal::testable_goodput(24 * kPkt, kW10, 0.030);
  EXPECT_NEAR(g30, 2 * g60, 1);
}

// ---------------------------------------------------------------------------
// Wstart tracking (§3.2.2): ideal growth, not the measured Wnic.
// ---------------------------------------------------------------------------

TEST(WstartTracker, FirstTransactionUsesWnic) {
  ideal::WstartTracker tracker;
  EXPECT_EQ(tracker.next(kW10, 2 * kPkt), kW10);
}

TEST(WstartTracker, SubsequentUsesIdealGrowth) {
  ideal::WstartTracker tracker;
  tracker.next(kW10, 2 * kPkt);            // txn 1: no growth (1 round)
  EXPECT_EQ(tracker.next(kW10, 24 * kPkt), kW10);  // txn 2 starts at W=10
  // Txn 3: ideal end of txn 2 is 20 pkts even if the real Wnic collapsed
  // to 1 packet after timeouts — the paper's key correction.
  EXPECT_EQ(tracker.next(1 * kPkt, 14 * kPkt), 20 * kPkt);
}

TEST(WstartTracker, MeasuredWnicWinsWhenLarger) {
  ideal::WstartTracker tracker;
  tracker.next(kW10, 2 * kPkt);  // ideal end = 10 pkts
  // A larger measured Wnic (e.g. window inherited from a prior session
  // phase the model didn't see) raises Wstart (footnote 4).
  EXPECT_EQ(tracker.next(40 * kPkt, 14 * kPkt), 40 * kPkt);
}

// ---------------------------------------------------------------------------
// Tmodel (§3.2.3).
// ---------------------------------------------------------------------------

TEST(TModel, SingleRoundClosedForm) {
  // Response fits in Wnic: Tmodel(R) = Btotal/R + MinRTT.
  TxnTiming txn{/*btotal=*/kW10, /*ttotal=*/0.1, /*wnic=*/kW10, /*min_rtt=*/kRtt};
  const BitsPerSecond r = 2.5e6;
  EXPECT_NEAR(t_model(txn, r), to_bits(kW10) / r + kRtt, 1e-9);
}

TEST(TModel, SlowStartRoundsAdded) {
  // 36000 B from Wnic = 15000 B targeting 2.5 Mbps: window supports only
  // 2 Mbps, so one doubling round (sending 15000 B) precedes the
  // rate-limited remainder: 0.06 + 21000*8/2.5e6 + 0.06.
  TxnTiming txn{36000, 0.12, 15000, kRtt};
  EXPECT_NEAR(t_model(txn, 2.5e6), 0.06 + 21000 * 8 / 2.5e6 + 0.06, 1e-9);
}

TEST(TModel, NonIncreasingInRate) {
  TxnTiming txn{200000, 0.5, 15000, kRtt};
  double prev = t_model(txn, 1e5);
  for (double r = 1.2e5; r < 1e9; r *= 1.17) {
    const double t = t_model(txn, r);
    EXPECT_LE(t, prev + 1e-9) << "r=" << r;
    prev = t;
  }
}

TEST(TModel, AchievedRateMatchesFigure4Txn2) {
  // Ideal 2-RTT transfer of 24 packets: achieved at 2.5 Mbps.
  TxnTiming txn{24 * kPkt, 2 * kRtt, kW10, kRtt};
  EXPECT_TRUE(achieved_rate(txn, 2.5e6));
}

TEST(TModel, BottleneckInflatedTransferStillAchieves) {
  // §3.2.3 example: a 3 Mbps bottleneck adds ~55 ms to txn 3 (14 packets,
  // W=20). Naive goodput says 1.46 Mbps < 2.5, but the model recognizes the
  // transmission time: Tmodel(2.5e6) = 21000*8/2.5e6 + 0.06 = 0.127 >= 0.115.
  TxnTiming txn{14 * kPkt, 0.115, 20 * kPkt, kRtt};
  EXPECT_LT(to_bits(txn.btotal) / txn.ttotal, 2.5e6);  // naive fails
  EXPECT_TRUE(achieved_rate(txn, 2.5e6));              // model corrects
}

TEST(TModel, SlowTransferDoesNotAchieve) {
  TxnTiming txn{14 * kPkt, 0.5, 20 * kPkt, kRtt};
  EXPECT_FALSE(achieved_rate(txn, 2.5e6));
}

TEST(TModel, EstimateRecoversBottleneckRate) {
  // Construct Ttotal exactly as a bottleneck of rate B would produce it;
  // the solver must return ~B (and never above).
  for (const double bottleneck : {0.5e6, 1e6, 2.5e6, 5e6, 20e6}) {
    TxnTiming txn;
    txn.btotal = 120000;
    txn.wnic = 15000;
    txn.min_rtt = kRtt;
    txn.ttotal = t_model(txn, bottleneck);
    const double estimate = estimate_delivery_rate(txn);
    EXPECT_LE(estimate, bottleneck * 1.001) << bottleneck;
    EXPECT_GE(estimate, bottleneck * 0.98) << bottleneck;
  }
}

TEST(TModel, EstimateZeroForAbsurdlySlowTransfer) {
  TxnTiming txn{1500, 1e9, 15000, kRtt};
  EXPECT_EQ(estimate_delivery_rate(txn), 0.0);
}

TEST(TModel, EstimateCapsForImpossiblyFastTransfer) {
  // Ttotal below one RTT: every rate is "achieved"; the solver reports the
  // cap instead of diverging.
  TxnTiming txn{150000, 0.01, 15000, kRtt};
  EXPECT_EQ(estimate_delivery_rate(txn, 1e9), 1e9);
}

TEST(TModel, ClosedFormMatchesBisectionSweep) {
  // Property sweep over (btotal, wnic, min_rtt, ttotal): the closed-form
  // segment solver must land where the 100-iteration log-space bisection
  // lands. The bisection converges to within ~1 ULP of the predicate
  // boundary, so the allowed slack is a few ULP of relative difference.
  Rng rng(2026);
  int interior = 0;
  for (int i = 0; i < 3000; ++i) {
    TxnTiming txn;
    txn.btotal =
        static_cast<Bytes>(std::exp(rng.uniform(std::log(1e3), std::log(1e7))));
    txn.wnic = static_cast<Bytes>(1460 * rng.uniform_int(1, 50));
    txn.min_rtt = rng.uniform(0.002, 0.4);
    const double rate = std::exp(rng.uniform(std::log(1e4), std::log(1e9)));
    txn.ttotal = t_model(txn, rate) * rng.uniform(0.6, 1.8);

    const double closed = estimate_delivery_rate(txn);
    const double bisect = estimate_delivery_rate_bisect(txn);
    ASSERT_LE(std::abs(closed - bisect), 1e-12 * std::max(1.0, std::max(closed, bisect)))
        << "btotal=" << txn.btotal << " wnic=" << txn.wnic
        << " min_rtt=" << txn.min_rtt << " ttotal=" << txn.ttotal;
    if (closed > 0 && closed < 100 * kGbps) ++interior;
  }
  // The sweep must actually exercise the segment solver, not just the
  // early-outs at 0 and the cap.
  EXPECT_GT(interior, 1000);
}

TEST(TModel, ClosedFormIsExactPredicateBoundary) {
  // The returned rate is the largest double satisfying achieved_rate:
  // achieved at R, not achieved one ULP above.
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    TxnTiming txn;
    txn.btotal =
        static_cast<Bytes>(std::exp(rng.uniform(std::log(5e3), std::log(5e6))));
    txn.wnic = static_cast<Bytes>(1460 * rng.uniform_int(2, 30));
    txn.min_rtt = rng.uniform(0.005, 0.2);
    const double rate = std::exp(rng.uniform(std::log(1e5), std::log(1e8)));
    txn.ttotal = t_model(txn, rate) * rng.uniform(0.8, 1.4);

    const double r = estimate_delivery_rate(txn);
    if (r <= 0 || r >= 100 * kGbps) continue;  // early-out cases
    EXPECT_TRUE(achieved_rate(txn, r));
    EXPECT_FALSE(achieved_rate(
        txn, std::nextafter(r, std::numeric_limits<double>::infinity())));
  }
}

TEST(TModel, NonIncreasingInRateRandomized) {
  // t_model monotonicity in R across random transactions (the structured
  // case above checks one; the solver's correctness rests on this holding
  // everywhere).
  Rng rng(77);
  for (int i = 0; i < 60; ++i) {
    TxnTiming txn;
    txn.btotal =
        static_cast<Bytes>(std::exp(rng.uniform(std::log(1e3), std::log(1e7))));
    txn.wnic = static_cast<Bytes>(1460 * rng.uniform_int(1, 50));
    txn.min_rtt = rng.uniform(0.002, 0.4);
    txn.ttotal = 1.0;  // t_model ignores ttotal
    double prev = t_model(txn, 1e4);
    for (double r = 1.3e4; r < 1e10; r *= 1.31) {
      const double t = t_model(txn, r);
      EXPECT_LE(t, prev * (1 + 1e-12) + 1e-12) << "r=" << r << " i=" << i;
      prev = t;
    }
  }
}

// ---------------------------------------------------------------------------
// HdEvaluator / session HDratio (§3.2.4).
// ---------------------------------------------------------------------------

TEST(HdEvaluator, Figure4Session) {
  HdEvaluator eval;
  // Txn 1: 2 packets, cannot test for 2.5 Mbps (Gtestable = 0.4 Mbps).
  auto v1 = eval.evaluate({2 * kPkt, kRtt, kW10, kRtt});
  EXPECT_FALSE(v1.can_test);
  EXPECT_NEAR(v1.gtestable, 0.4e6, 1e3);

  // Txn 2: tests 2.8 Mbps and achieves it (ideal 2-RTT transfer).
  auto v2 = eval.evaluate({24 * kPkt, 2 * kRtt, kW10, kRtt});
  EXPECT_TRUE(v2.can_test);
  EXPECT_TRUE(v2.achieved);

  // Txn 3: Wstart = 20 pkts from ideal growth; tests and achieves.
  auto v3 = eval.evaluate({14 * kPkt, kRtt + 0.01, kW10, kRtt});
  EXPECT_EQ(v3.wstart, 20 * kPkt);
  EXPECT_TRUE(v3.can_test);
  EXPECT_TRUE(v3.achieved);

  EXPECT_EQ(eval.result().tested, 2);
  EXPECT_EQ(eval.result().achieved, 2);
  EXPECT_DOUBLE_EQ(*eval.result().hdratio(), 1.0);
}

TEST(HdEvaluator, CollapsedWnicDoesNotHideBadPath) {
  // §3.2.2: after timeouts the real cwnd is 1 packet, but ideal growth says
  // the session could have a 20-packet window. The transaction must still
  // count as testable — and a slow transfer as a failure.
  HdEvaluator eval;
  eval.evaluate({24 * kPkt, 2 * kRtt, kW10, kRtt});
  auto v = eval.evaluate({14 * kPkt, 1.0, 1 * kPkt, kRtt});
  EXPECT_TRUE(v.can_test) << "ideal Wstart must gate testing, not real Wnic";
  EXPECT_FALSE(v.achieved);
  EXPECT_DOUBLE_EQ(*eval.result().hdratio(), 0.5);
}

TEST(HdEvaluator, NoTestableTransactionsMeansNoSignal) {
  HdEvaluator eval;
  eval.evaluate({2 * kPkt, kRtt, kW10, kRtt});
  EXPECT_FALSE(eval.result().hdratio().has_value());
}

TEST(HdEvaluator, NaiveUnderestimates) {
  // Corrected model achieves on both transactions; the naive Btotal/Ttotal
  // estimate fails both — the 2-RTT transfer (24 pkts / 120 ms = 2.4 Mbps)
  // and the bottleneck-inflated one (14 pkts / 115 ms = 1.46 Mbps). This is
  // exactly the underestimation §4 reports for the simple approach.
  HdEvaluator eval;
  eval.evaluate({24 * kPkt, 2 * kRtt, kW10, kRtt});          // grows window
  eval.evaluate({14 * kPkt, 0.115, 20 * kPkt, kRtt});        // 3 Mbps bottleneck
  EXPECT_EQ(eval.result().achieved, 2);
  EXPECT_EQ(eval.result().achieved_naive, 0);
  EXPECT_GT(*eval.result().hdratio(), *eval.result().hdratio_naive());
}

TEST(HdEvaluator, SkipsDegenerateTransactions) {
  HdEvaluator eval;
  auto v = eval.evaluate({0, 0.1, kW10, kRtt});
  EXPECT_FALSE(v.can_test);
  EXPECT_EQ(eval.result().tested, 0);
}

TEST(HdEvaluator, ResetClearsState) {
  HdEvaluator eval;
  eval.evaluate({24 * kPkt, 2 * kRtt, kW10, kRtt});
  eval.reset();
  EXPECT_EQ(eval.result().tested, 0);
  // Wstart tracking restarts: next txn is "first" again.
  auto v = eval.evaluate({14 * kPkt, kRtt, 1 * kPkt, kRtt});
  EXPECT_EQ(v.wstart, 1 * kPkt);
}

// Parameterized property: for transfers whose Ttotal was produced by
// Tmodel at a known bottleneck, the estimate never exceeds the bottleneck
// across a grid of (bottleneck, rtt, wnic, size) — the §3.2.3 invariant in
// its purest (model-vs-model) form.
struct SolverCase {
  double bottleneck_mbps;
  double rtt_ms;
  int wnic_pkts;
  int size_pkts;
};

class SolverSweep : public ::testing::TestWithParam<SolverCase> {};

TEST_P(SolverSweep, NeverOverestimatesModelBottleneck) {
  const auto& p = GetParam();
  TxnTiming txn;
  txn.btotal = static_cast<Bytes>(p.size_pkts) * kPkt;
  txn.wnic = static_cast<Bytes>(p.wnic_pkts) * kPkt;
  txn.min_rtt = p.rtt_ms * 1e-3;
  const double bottleneck = p.bottleneck_mbps * 1e6;
  txn.ttotal = t_model(txn, bottleneck);
  const double estimate = estimate_delivery_rate(txn);
  EXPECT_LE(estimate, bottleneck * 1.001);
}

TEST_P(SolverSweep, ClosedFormMatchesLegacyBisectionOnGrid) {
  // Differential test of the closed-form segment solver against the legacy
  // log-space bisection, anchored on the same §3.2.3 grid. Each grid case
  // is swept with Ttotal perturbed around the model time, hitting the
  // fast-transfer cap, the exact boundary, and the slower-than-modeled
  // interior where the segment walk does real work.
  const auto& p = GetParam();
  TxnTiming txn;
  txn.btotal = static_cast<Bytes>(p.size_pkts) * kPkt;
  txn.wnic = static_cast<Bytes>(p.wnic_pkts) * kPkt;
  txn.min_rtt = p.rtt_ms * 1e-3;
  const double bottleneck = p.bottleneck_mbps * 1e6;
  const Duration base = t_model(txn, bottleneck);
  for (const double factor : {0.5, 0.9, 1.0, 1.1, 1.5, 3.0, 10.0}) {
    txn.ttotal = base * factor;
    const double closed = estimate_delivery_rate(txn);
    const double bisect = estimate_delivery_rate_bisect(txn);
    ASSERT_LE(std::abs(closed - bisect),
              1e-12 * std::max(1.0, std::max(closed, bisect)))
        << "factor=" << factor << " closed=" << closed << " bisect=" << bisect;
    if (closed > 0 && closed < 100 * kGbps) {
      // Interior solutions must sit exactly on the predicate boundary.
      EXPECT_TRUE(achieved_rate(txn, closed)) << "factor=" << factor;
      EXPECT_FALSE(achieved_rate(
          txn, std::nextafter(closed, std::numeric_limits<double>::infinity())))
          << "factor=" << factor;
    }
  }
}

std::vector<SolverCase> solver_grid() {
  std::vector<SolverCase> cases;
  for (double bw : {0.5, 1.0, 2.5, 5.0})
    for (double rtt : {20.0, 60.0, 120.0, 200.0})
      for (int w : {1, 4, 10, 50})
        for (int size : {2, 10, 50, 200, 500}) cases.push_back({bw, rtt, w, size});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, SolverSweep, ::testing::ValuesIn(solver_grid()));

}  // namespace
}  // namespace fbedge
