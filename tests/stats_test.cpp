// Tests for the statistics substrate: t-digest, exact quantiles, order-
// statistic median CIs, and the Price-Bonett difference-of-medians CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/cdf.h"
#include "stats/median_ci.h"
#include "stats/quantiles.h"
#include "stats/tdigest.h"
#include "stats/welford.h"
#include "util/rng.h"

namespace fbedge {
namespace {

// ---------------------------------------------------------------------------
// Exact quantiles.
// ---------------------------------------------------------------------------

TEST(Quantiles, SmallSamples) {
  EXPECT_DOUBLE_EQ(quantile({5.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);
}

TEST(Quantiles, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0, 20.0}, 0.75), 15.0);
}

// ---------------------------------------------------------------------------
// Welford.
// ---------------------------------------------------------------------------

TEST(Welford, MatchesClosedForm) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Welford, MergeMatchesSinglePass) {
  Rng rng(61);
  Welford parts[4], combined;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.lognormal(1.0, 0.7);
    parts[i % 4].add(v);
    combined.add(v);
  }
  Welford merged;
  for (const auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_NEAR(merged.mean(), combined.mean(), 1e-9 * std::abs(combined.mean()));
  EXPECT_NEAR(merged.variance(), combined.variance(),
              1e-9 * combined.variance());
}

TEST(Welford, MergeWithEmptySides) {
  Welford filled;
  for (double x : {1.0, 2.0, 3.0}) filled.add(x);

  Welford lhs_empty;
  lhs_empty.merge(filled);
  EXPECT_EQ(lhs_empty.count(), 3u);
  EXPECT_DOUBLE_EQ(lhs_empty.mean(), 2.0);
  EXPECT_DOUBLE_EQ(lhs_empty.variance(), 1.0);

  Welford rhs_empty;
  filled.merge(rhs_empty);
  EXPECT_EQ(filled.count(), 3u);
  EXPECT_DOUBLE_EQ(filled.mean(), 2.0);
  EXPECT_DOUBLE_EQ(filled.variance(), 1.0);
}

// ---------------------------------------------------------------------------
// t-digest.
// ---------------------------------------------------------------------------

struct DigestCase {
  const char* name;
  int n;
  int dist;  // 0 uniform, 1 lognormal, 2 bimodal (HDratio-like)
};

class TDigestAccuracy : public ::testing::TestWithParam<DigestCase> {};

TEST_P(TDigestAccuracy, QuantilesCloseToExact) {
  const auto& p = GetParam();
  Rng rng(1234);
  TDigest digest(100);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.n; ++i) {
    double v = 0;
    switch (p.dist) {
      case 0: v = rng.uniform(0, 100); break;
      case 1: v = rng.lognormal(3.0, 1.0); break;
      default: v = rng.bernoulli(0.6) ? 1.0 : rng.uniform(0.0, 0.2); break;
    }
    digest.add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact = quantile_sorted(values, q);
    const double approx = digest.quantile(q);
    // Rank error: q must fall within 2% of the approximate value's rank
    // *range* (a range because distributions with atoms — e.g. the
    // HDratio-like bimodal mass at 1.0 — give one value a wide rank span).
    const double n = static_cast<double>(values.size());
    const auto rank_lo = static_cast<double>(
                             std::lower_bound(values.begin(), values.end(), approx) -
                             values.begin()) /
                         n;
    const auto rank_hi = static_cast<double>(
                             std::upper_bound(values.begin(), values.end(), approx) -
                             values.begin()) /
                         n;
    EXPECT_GE(q, rank_lo - 0.02) << p.name << " q=" << q << " exact=" << exact
                                 << " approx=" << approx;
    EXPECT_LE(q, rank_hi + 0.02) << p.name << " q=" << q << " exact=" << exact
                                 << " approx=" << approx;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, TDigestAccuracy,
                         ::testing::Values(DigestCase{"uniform_1k", 1000, 0},
                                           DigestCase{"uniform_100k", 100000, 0},
                                           DigestCase{"lognormal_10k", 10000, 1},
                                           DigestCase{"bimodal_10k", 10000, 2}));

TEST(TDigest, EmptyReturnsNaN) {
  TDigest d;
  EXPECT_TRUE(std::isnan(d.quantile(0.5)));
  EXPECT_TRUE(std::isnan(d.cdf(1.0)));
  EXPECT_TRUE(d.empty());
}

TEST(TDigest, SingleValue) {
  TDigest d;
  d.add(42.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 42.0);
}

TEST(TDigest, MinMaxPreserved) {
  Rng rng(7);
  TDigest d;
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.normal(0, 10);
    d.add(v);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_DOUBLE_EQ(d.min(), lo);
  EXPECT_DOUBLE_EQ(d.max(), hi);
  EXPECT_LE(d.quantile(1.0), hi + 1e-12);
  EXPECT_GE(d.quantile(0.0), lo - 1e-12);
}

TEST(TDigest, MergeEquivalentToCombinedStream) {
  Rng rng(99);
  TDigest a(100), b(100), combined(100);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.lognormal(0, 1);
    (i % 2 == 0 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(a.quantile(q), combined.quantile(q),
                0.05 * std::max(1.0, combined.quantile(q)));
  }
  EXPECT_DOUBLE_EQ(a.total_weight(), combined.total_weight());
}

TEST(TDigest, MergeOfManyPartsWithinRankError) {
  // Shard-merge shape used by the runtime reducer: K per-shard digests
  // folded into one must stay within the sketch's rank error of the exact
  // quantiles of the combined stream.
  Rng rng(101);
  std::vector<TDigest> parts(8, TDigest(100));
  std::vector<double> values;
  for (int i = 0; i < 40000; ++i) {
    const double v = rng.lognormal(1.5, 0.8);
    parts[static_cast<std::size_t>(i % 8)].add(v);
    values.push_back(v);
  }
  TDigest merged(100);
  for (const auto& p : parts) merged.merge(p);
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  EXPECT_DOUBLE_EQ(merged.total_weight(), n);
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double approx = merged.quantile(q);
    const double rank = static_cast<double>(
                            std::lower_bound(values.begin(), values.end(), approx) -
                            values.begin()) /
                        n;
    EXPECT_NEAR(rank, q, 0.02) << "q=" << q;
  }
}

TEST(TDigest, MergeEmptyCases) {
  TDigest filled, empty;
  for (int i = 0; i < 100; ++i) filled.add(i);
  const double median = filled.quantile(0.5);
  filled.merge(empty);  // no-op
  EXPECT_DOUBLE_EQ(filled.quantile(0.5), median);
  EXPECT_DOUBLE_EQ(filled.total_weight(), 100.0);
  empty.merge(filled);  // adopt
  EXPECT_DOUBLE_EQ(empty.total_weight(), 100.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), median);
}

TEST(TDigest, WeightedMedianShifts) {
  TDigest d;
  d.add(0.0, 1.0);
  d.add(10.0, 9.0);
  EXPECT_GT(d.quantile(0.5), 5.0);
}

TEST(TDigest, CdfIsMonotoneAndInverseOfQuantile) {
  Rng rng(5);
  TDigest d;
  for (int i = 0; i < 10000; ++i) d.add(rng.uniform(0, 1000));
  double prev = -1;
  for (double x = 0; x <= 1000; x += 50) {
    const double c = d.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  for (double q : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(d.cdf(d.quantile(q)), q, 0.03);
  }
}

TEST(TDigest, BoundedSize) {
  Rng rng(3);
  TDigest d(100);
  for (int i = 0; i < 200000; ++i) d.add(rng.lognormal(0, 2));
  EXPECT_LE(d.centroids().size(), 220u);  // ~2x compression bound
}

// ---------------------------------------------------------------------------
// normal_quantile.
// ---------------------------------------------------------------------------

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-8);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.841344746), 1.0, 1e-5);
}

// ---------------------------------------------------------------------------
// Median confidence intervals.
// ---------------------------------------------------------------------------

TEST(MedianCi, ContainsSampleMedian) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(50, 10));
  const auto ci = median_confidence_interval(xs);
  EXPECT_LE(ci.lower, ci.estimate);
  EXPECT_GE(ci.upper, ci.estimate);
  EXPECT_NEAR(ci.estimate, 50.0, 2.0);
}

TEST(MedianCi, CoverageNearNominal) {
  // Monte Carlo: the 95% CI should contain the true median (= 0 for a
  // standard normal) in roughly 95% of trials.
  Rng rng(17);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs;
    for (int i = 0; i < 81; ++i) xs.push_back(rng.normal(0, 1));
    const auto ci = median_confidence_interval(xs, 0.95);
    if (ci.contains(0.0)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GE(coverage, 0.90);
  EXPECT_LE(coverage, 0.995);
}

TEST(MedianCi, WidthShrinksWithSampleSize) {
  Rng rng(23);
  auto make = [&](int n) {
    std::vector<double> xs;
    for (int i = 0; i < n; ++i) xs.push_back(rng.normal(0, 1));
    return median_confidence_interval(xs).width();
  };
  EXPECT_GT(make(50), make(5000));
}

TEST(MedianCi, SketchAgreesWithExact) {
  Rng rng(31);
  std::vector<double> xs;
  TDigest d;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.lognormal(2, 0.5);
    xs.push_back(v);
    d.add(v);
  }
  const auto exact = median_confidence_interval(xs);
  const auto sketch = median_confidence_interval(d);
  EXPECT_NEAR(sketch.estimate, exact.estimate, 0.05 * exact.estimate);
  EXPECT_NEAR(sketch.lower, exact.lower, 0.1 * exact.estimate);
  EXPECT_NEAR(sketch.upper, exact.upper, 0.1 * exact.estimate);
}

TEST(MedianDifference, DetectsShift) {
  Rng rng(41);
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back(rng.normal(60, 5));
    b.push_back(rng.normal(50, 5));
  }
  const auto ci = median_difference_interval(a, b);
  EXPECT_NEAR(ci.estimate, 10.0, 2.0);
  EXPECT_GT(ci.lower, 5.0);  // clearly positive
}

TEST(MedianDifference, NoFalseShiftOnEqualDistributions) {
  Rng rng(43);
  int false_positive = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a, b;
    for (int i = 0; i < 100; ++i) {
      a.push_back(rng.normal(50, 5));
      b.push_back(rng.normal(50, 5));
    }
    const auto ci = median_difference_interval(a, b);
    if (!ci.contains(0.0)) ++false_positive;
  }
  EXPECT_LE(false_positive, trials / 10);  // ~5% nominal
}

TEST(MedianDifference, SketchDetectsShiftToo) {
  Rng rng(47);
  TDigest a, b;
  for (int i = 0; i < 2000; ++i) {
    a.add(rng.normal(0.060, 0.005));
    b.add(rng.normal(0.050, 0.005));
  }
  const auto ci = median_difference_interval(a, b);
  EXPECT_GT(ci.lower, 0.005);  // >= 5 ms improvement, confidently
}

// ---------------------------------------------------------------------------
// WeightedCdf.
// ---------------------------------------------------------------------------

TEST(WeightedCdf, FractionsAndQuantiles) {
  WeightedCdf cdf;
  cdf.add(1.0, 1.0);
  cdf.add(2.0, 1.0);
  cdf.add(3.0, 2.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 3.0);
}

TEST(WeightedCdf, MergeEqualsCombinedExactly) {
  // WeightedCdf::merge appends raw points, so merge-of-parts is *exactly*
  // the single-pass distribution — the property the runtime reducer
  // relies on for byte-identical bench output at any thread count.
  Rng rng(59);
  WeightedCdf parts[3], combined;
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.lognormal(0, 1);
    const double w = rng.uniform(0.5, 2.0);
    parts[i % 3].add(v, w);
    combined.add(v, w);
  }
  WeightedCdf merged;
  for (const auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.size(), combined.size());
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), combined.quantile(q));
  }
  EXPECT_DOUBLE_EQ(merged.fraction_at_or_below(1.0),
                   combined.fraction_at_or_below(1.0));
}

TEST(WeightedCdf, SeriesIsMonotone) {
  Rng rng(53);
  WeightedCdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(rng.lognormal(0, 1), rng.uniform(0.5, 2));
  double prev = -1e300;
  for (const auto& [v, q] : cdf.series(25)) {
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace fbedge
