// Tests for the statistics substrate: t-digest, exact quantiles, order-
// statistic median CIs, and the Price-Bonett difference-of-medians CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "stats/cdf.h"
#include "stats/median_ci.h"
#include "stats/quantiles.h"
#include "stats/tdigest.h"
#include "stats/welford.h"
#include "util/rng.h"

namespace fbedge {
namespace {

// ---------------------------------------------------------------------------
// Exact quantiles.
// ---------------------------------------------------------------------------

TEST(Quantiles, SmallSamples) {
  EXPECT_DOUBLE_EQ(quantile({5.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 1.0), 4.0);
}

TEST(Quantiles, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0, 20.0}, 0.75), 15.0);
}

// ---------------------------------------------------------------------------
// Welford.
// ---------------------------------------------------------------------------

TEST(Welford, MatchesClosedForm) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Welford, MergeMatchesSinglePass) {
  Rng rng(61);
  Welford parts[4], combined;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.lognormal(1.0, 0.7);
    parts[i % 4].add(v);
    combined.add(v);
  }
  Welford merged;
  for (const auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_NEAR(merged.mean(), combined.mean(), 1e-9 * std::abs(combined.mean()));
  EXPECT_NEAR(merged.variance(), combined.variance(),
              1e-9 * combined.variance());
}

TEST(Welford, MergeWithEmptySides) {
  Welford filled;
  for (double x : {1.0, 2.0, 3.0}) filled.add(x);

  Welford lhs_empty;
  lhs_empty.merge(filled);
  EXPECT_EQ(lhs_empty.count(), 3u);
  EXPECT_DOUBLE_EQ(lhs_empty.mean(), 2.0);
  EXPECT_DOUBLE_EQ(lhs_empty.variance(), 1.0);

  Welford rhs_empty;
  filled.merge(rhs_empty);
  EXPECT_EQ(filled.count(), 3u);
  EXPECT_DOUBLE_EQ(filled.mean(), 2.0);
  EXPECT_DOUBLE_EQ(filled.variance(), 1.0);
}

// ---------------------------------------------------------------------------
// t-digest.
// ---------------------------------------------------------------------------

struct DigestCase {
  const char* name;
  int n;
  int dist;  // 0 uniform, 1 lognormal, 2 bimodal (HDratio-like)
};

class TDigestAccuracy : public ::testing::TestWithParam<DigestCase> {};

TEST_P(TDigestAccuracy, QuantilesCloseToExact) {
  const auto& p = GetParam();
  Rng rng(1234);
  TDigest digest(100);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.n; ++i) {
    double v = 0;
    switch (p.dist) {
      case 0: v = rng.uniform(0, 100); break;
      case 1: v = rng.lognormal(3.0, 1.0); break;
      default: v = rng.bernoulli(0.6) ? 1.0 : rng.uniform(0.0, 0.2); break;
    }
    digest.add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact = quantile_sorted(values, q);
    const double approx = digest.quantile(q);
    // Rank error: q must fall within 2% of the approximate value's rank
    // *range* (a range because distributions with atoms — e.g. the
    // HDratio-like bimodal mass at 1.0 — give one value a wide rank span).
    const double n = static_cast<double>(values.size());
    const auto rank_lo = static_cast<double>(
                             std::lower_bound(values.begin(), values.end(), approx) -
                             values.begin()) /
                         n;
    const auto rank_hi = static_cast<double>(
                             std::upper_bound(values.begin(), values.end(), approx) -
                             values.begin()) /
                         n;
    EXPECT_GE(q, rank_lo - 0.02) << p.name << " q=" << q << " exact=" << exact
                                 << " approx=" << approx;
    EXPECT_LE(q, rank_hi + 0.02) << p.name << " q=" << q << " exact=" << exact
                                 << " approx=" << approx;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, TDigestAccuracy,
                         ::testing::Values(DigestCase{"uniform_1k", 1000, 0},
                                           DigestCase{"uniform_100k", 100000, 0},
                                           DigestCase{"lognormal_10k", 10000, 1},
                                           DigestCase{"bimodal_10k", 10000, 2}));

TEST(TDigest, EmptyReturnsNaN) {
  TDigest d;
  EXPECT_TRUE(std::isnan(d.quantile(0.5)));
  EXPECT_TRUE(std::isnan(d.cdf(1.0)));
  EXPECT_TRUE(d.empty());
}

TEST(TDigest, SingleValue) {
  TDigest d;
  d.add(42.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 42.0);
}

TEST(TDigest, MinMaxPreserved) {
  Rng rng(7);
  TDigest d;
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.normal(0, 10);
    d.add(v);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_DOUBLE_EQ(d.min(), lo);
  EXPECT_DOUBLE_EQ(d.max(), hi);
  EXPECT_LE(d.quantile(1.0), hi + 1e-12);
  EXPECT_GE(d.quantile(0.0), lo - 1e-12);
}

TEST(TDigest, MergeEquivalentToCombinedStream) {
  Rng rng(99);
  TDigest a(100), b(100), combined(100);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.lognormal(0, 1);
    (i % 2 == 0 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(a.quantile(q), combined.quantile(q),
                0.05 * std::max(1.0, combined.quantile(q)));
  }
  EXPECT_DOUBLE_EQ(a.total_weight(), combined.total_weight());
}

TEST(TDigest, MergeOfManyPartsWithinRankError) {
  // Shard-merge shape used by the runtime reducer: K per-shard digests
  // folded into one must stay within the sketch's rank error of the exact
  // quantiles of the combined stream.
  Rng rng(101);
  std::vector<TDigest> parts(8, TDigest(100));
  std::vector<double> values;
  for (int i = 0; i < 40000; ++i) {
    const double v = rng.lognormal(1.5, 0.8);
    parts[static_cast<std::size_t>(i % 8)].add(v);
    values.push_back(v);
  }
  TDigest merged(100);
  for (const auto& p : parts) merged.merge(p);
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  EXPECT_DOUBLE_EQ(merged.total_weight(), n);
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double approx = merged.quantile(q);
    const double rank = static_cast<double>(
                            std::lower_bound(values.begin(), values.end(), approx) -
                            values.begin()) /
                        n;
    EXPECT_NEAR(rank, q, 0.02) << "q=" << q;
  }
}

TEST(TDigest, MergeEmptyCases) {
  TDigest filled, empty;
  for (int i = 0; i < 100; ++i) filled.add(i);
  const double median = filled.quantile(0.5);
  filled.merge(empty);  // no-op
  EXPECT_DOUBLE_EQ(filled.quantile(0.5), median);
  EXPECT_DOUBLE_EQ(filled.total_weight(), 100.0);
  empty.merge(filled);  // adopt
  EXPECT_DOUBLE_EQ(empty.total_weight(), 100.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), median);
}

TEST(TDigest, WeightedMedianShifts) {
  TDigest d;
  d.add(0.0, 1.0);
  d.add(10.0, 9.0);
  EXPECT_GT(d.quantile(0.5), 5.0);
}

TEST(TDigest, CdfIsMonotoneAndInverseOfQuantile) {
  Rng rng(5);
  TDigest d;
  for (int i = 0; i < 10000; ++i) d.add(rng.uniform(0, 1000));
  double prev = -1;
  for (double x = 0; x <= 1000; x += 50) {
    const double c = d.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  for (double q : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(d.cdf(d.quantile(q)), q, 0.03);
  }
}

TEST(TDigest, BoundedSize) {
  Rng rng(3);
  TDigest d(100);
  for (int i = 0; i < 200000; ++i) d.add(rng.lognormal(0, 2));
  EXPECT_LE(d.centroids().size(), 220u);  // ~2x compression bound
}

TEST(TDigest, TieBreakIsInsertionOrderIndependent) {
  // Equal-mean points with distinct weights must produce the same centroid
  // set no matter the insertion order: compress() sorts by (mean, weight),
  // so std::sort's handling of equal keys cannot leak into the result.
  // Total inserts stay below the auto-compress threshold (compression * 4)
  // so each digest sees exactly one compress over the full multiset.
  std::vector<TDigest::Centroid> points;
  for (int w = 1; w <= 10; ++w) points.push_back({5.0, static_cast<double>(w)});
  for (int w = 1; w <= 10; ++w) points.push_back({-2.0, static_cast<double>(w)});
  for (int i = 0; i < 50; ++i) points.push_back({0.1 * i, 1.0});

  TDigest forward(100), reverse(100), shuffled(100);
  for (const auto& p : points) forward.add(p.mean, p.weight);
  for (auto it = points.rbegin(); it != points.rend(); ++it) {
    reverse.add(it->mean, it->weight);
  }
  Rng rng(17);
  std::vector<TDigest::Centroid> perm = points;
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1],
              perm[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i) - 1))]);
  }
  for (const auto& p : perm) shuffled.add(p.mean, p.weight);

  const auto& f = forward.centroids();
  const auto& r = reverse.centroids();
  const auto& s = shuffled.centroids();
  ASSERT_EQ(f.size(), r.size());
  ASSERT_EQ(f.size(), s.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_EQ(f[i].mean, r[i].mean) << "i=" << i;
    EXPECT_EQ(f[i].weight, r[i].weight) << "i=" << i;
    EXPECT_EQ(f[i].mean, s[i].mean) << "i=" << i;
    EXPECT_EQ(f[i].weight, s[i].weight) << "i=" << i;
  }
}

namespace reference {

// The pre-optimization TDigest::compress(): concatenate retained centroids
// with the buffer, full std::sort, and an asin-per-candidate k1 merge
// criterion. Kept here as an executable specification so the sorted-run /
// sin-inversion production path can be checked for bitwise equivalence.
// (The only intentional difference from the historical code is the
// (mean, weight) sort tie-break; the test feeds continuous values, so no
// ties occur and the comparator change is unobservable.)
class Digest {
 public:
  explicit Digest(double compression) : compression_(compression) {}

  void add(double value, double weight = 1.0) {
    buffer_.push_back({value, weight});
    if (buffer_.size() >= static_cast<std::size_t>(compression_ * 4)) compress();
  }

  void compress() {
    if (buffer_.empty()) return;
    std::vector<TDigest::Centroid> all;
    all.reserve(centroids_.size() + buffer_.size());
    all.insert(all.end(), centroids_.begin(), centroids_.end());
    all.insert(all.end(), buffer_.begin(), buffer_.end());
    buffer_.clear();
    std::sort(all.begin(), all.end(),
              [](const TDigest::Centroid& a, const TDigest::Centroid& b) {
                return a.mean < b.mean ||
                       (a.mean == b.mean && a.weight < b.weight);
              });

    double total = 0;
    for (const auto& c : all) total += c.weight;

    std::vector<TDigest::Centroid> merged;
    double so_far = 0;
    TDigest::Centroid cur = all.front();
    double k_lo = k_scale(0.0);
    for (std::size_t i = 1; i < all.size(); ++i) {
      const TDigest::Centroid& next = all[i];
      const double proposed_q = (so_far + cur.weight + next.weight) / total;
      if (k_scale(proposed_q) - k_lo <= 1.0) {
        const double w = cur.weight + next.weight;
        cur.mean += (next.mean - cur.mean) * next.weight / w;
        cur.weight = w;
      } else {
        so_far += cur.weight;
        merged.push_back(cur);
        k_lo = k_scale(so_far / total);
        cur = next;
      }
    }
    merged.push_back(cur);
    centroids_ = std::move(merged);
  }

  const std::vector<TDigest::Centroid>& centroids() {
    compress();
    return centroids_;
  }

 private:
  double k_scale(double q) const {
    q = std::clamp(q, 0.0, 1.0);
    return compression_ / (2.0 * M_PI) * std::asin(2.0 * q - 1.0);
  }

  double compression_;
  std::vector<TDigest::Centroid> centroids_;
  std::vector<TDigest::Centroid> buffer_;
};

}  // namespace reference

TEST(TDigest, SortedRunCompressMatchesReferenceBitwise) {
  // The production compress (incremental sorted-run merge + sin-inverted
  // k limit) must produce exactly the centroids the historical
  // sort-everything / asin-per-candidate implementation produced for the
  // same insertion sequence. Continuous draws, weight-1 adds: both the
  // FP-exactness preconditions (no ties; integer weight sums) hold.
  Rng rng(20260805);
  TDigest fast(100);
  reference::Digest ref(100);
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.lognormal(-2.0, 1.3);
    fast.add(v);
    ref.add(v);
  }
  const auto& got = fast.centroids();
  const auto& want = ref.centroids();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].mean, want[i].mean) << "centroid " << i;
    EXPECT_EQ(got[i].weight, want[i].weight) << "centroid " << i;
  }
}

TEST(TDigest, AdversarialTiesPreserveQuantileErrorBounds) {
  // Worst case for the (mean, weight) comparator: a tiny discrete support
  // (16 values) with small integer weights, so nearly every point collides
  // with thousands of others on mean and many on the full (mean, weight)
  // key. 60k adds drive ~150 compress() cycles, exercising the sorted-run
  // tie path ("centroids_ wins ties") over and over. The sketch must still
  // honour its rank-error bound — for a tied distribution the exact rank of
  // a value is an *interval*, so assert q lands within 0.02 of it.
  Rng rng(4242);
  TDigest d(100);
  std::array<double, 16> weight_at{};
  double total = 0;
  for (int i = 0; i < 60000; ++i) {
    const int v = rng.uniform_int(0, 15);
    const double w = static_cast<double>(rng.uniform_int(1, 4));
    d.add(static_cast<double>(v), w);
    weight_at[static_cast<std::size_t>(v)] += w;
    total += w;
  }
  // Integer weights: the sketch's running sum must be exact, not approximate.
  EXPECT_DOUBLE_EQ(d.total_weight(), total);

  double prev = -std::numeric_limits<double>::infinity();
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = d.quantile(q);
    EXPECT_GE(x, prev) << "quantile must stay monotone under ties, q=" << q;
    prev = x;
    // The estimate interpolates between atoms; snap to the nearest atom and
    // require q inside that atom's exact rank interval (plus the bound).
    const int atom = std::clamp(static_cast<int>(std::lround(x)), 0, 15);
    double below = 0;
    double at_or_below = 0;
    for (int v = 0; v < 16; ++v) {
      if (v < atom) below += weight_at[static_cast<std::size_t>(v)];
      if (v <= atom) at_or_below += weight_at[static_cast<std::size_t>(v)];
    }
    EXPECT_GE(q, below / total - 0.02) << "q=" << q << " x=" << x;
    EXPECT_LE(q, at_or_below / total + 0.02) << "q=" << q << " x=" << x;
  }
  // Output centroids stay sorted by mean even when inputs were all ties.
  const auto& cs = d.centroids();
  for (std::size_t i = 1; i < cs.size(); ++i) {
    EXPECT_LE(cs[i - 1].mean, cs[i].mean) << "i=" << i;
  }
}

TEST(TDigest, MergeIsDeterministicUnderAdversarialTies) {
  // Tie-heavy merges must be exactly reproducible: the (mean, weight)
  // comparator leaves std::sort no freedom on equal keys, so replaying the
  // same merge sequence on fresh digests yields bitwise-identical centroids
  // — this is what makes shard reduction byte-stable for any --threads.
  // (Merge *order*, by contrast, is only guaranteed at the rank-error
  // level, see ManyPartMergeOrderKeepsRankErrorUnderTies: each merge
  // recompresses against a new total, so intermediate groupings differ.)
  const auto build = [](std::uint64_t seed) {
    TDigest p(100);
    Rng rng(seed);
    for (int i = 0; i < 5000; ++i) {
      p.add(static_cast<double>(rng.uniform_int(0, 7)),
            static_cast<double>(rng.uniform_int(1, 3)));
    }
    return p;
  };
  const auto expect_same = [](const TDigest& a, const TDigest& b) {
    const auto& ca = a.centroids();
    const auto& cb = b.centroids();
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i].mean, cb[i].mean) << "i=" << i;
      EXPECT_EQ(ca[i].weight, cb[i].weight) << "i=" << i;
    }
    EXPECT_DOUBLE_EQ(a.total_weight(), b.total_weight());
  };

  const TDigest a = build(900);
  const TDigest b = build(901);
  TDigest once(100), again(100);
  once.merge(a);
  once.merge(b);
  again.merge(a);
  again.merge(b);
  expect_same(once, again);

  // Self-merge with a bitwise copy of a — the maximal full-key tie
  // adversary: every centroid of the incoming run equals one already held.
  // Weight must double exactly, and the doubled sketch answers quantiles
  // identically to plain a at every probe (same shape, twice the mass).
  const TDigest a2 = build(900);
  TDigest doubled(100);
  doubled.merge(a);
  doubled.merge(a2);
  EXPECT_DOUBLE_EQ(doubled.total_weight(), 2.0 * a.total_weight());
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_NEAR(doubled.quantile(q), a.quantile(q), 0.25) << "q=" << q;
  }
}

TEST(TDigest, ManyPartMergeOrderKeepsRankErrorUnderTies) {
  // With three or more parts, intermediate recompressions create new means,
  // so bitwise order-independence is not the contract — rank accuracy is.
  // Six tie-heavy shards (seed pairs make whole shards collide as duplicate
  // (mean, weight) runs) merged in three different orders must each stay
  // within the sketch's rank error of the exact tied distribution, and must
  // agree with each other to the same tolerance.
  std::vector<TDigest> parts;
  std::array<double, 8> weight_at{};
  double total = 0;
  for (int s = 0; s < 6; ++s) {
    TDigest p(100);
    Rng rng(static_cast<std::uint64_t>(700 + s / 2));  // pairs share a seed
    for (int i = 0; i < 5000; ++i) {
      const int v = rng.uniform_int(0, 7);
      const double w = static_cast<double>(rng.uniform_int(1, 3));
      p.add(static_cast<double>(v), w);
      weight_at[static_cast<std::size_t>(v)] += w;
      total += w;
    }
    parts.push_back(std::move(p));
  }

  TDigest fwd(100), rev(100), interleaved(100);
  for (const auto& p : parts) fwd.merge(p);
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) rev.merge(*it);
  for (std::size_t i : {1u, 4u, 0u, 5u, 2u, 3u}) interleaved.merge(parts[i]);

  for (const TDigest* d : {&fwd, &rev, &interleaved}) {
    EXPECT_DOUBLE_EQ(d->total_weight(), total);
    for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
      const double x = d->quantile(q);
      double below = 0;
      double at_or_below = 0;
      for (int v = 0; v < 8; ++v) {
        if (static_cast<double>(v) < x) below += weight_at[static_cast<std::size_t>(v)];
        if (static_cast<double>(v) <= x) at_or_below += weight_at[static_cast<std::size_t>(v)];
      }
      EXPECT_GE(q, below / total - 0.02) << "q=" << q;
      EXPECT_LE(q, at_or_below / total + 0.02) << "q=" << q;
    }
  }
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_NEAR(fwd.quantile(q), rev.quantile(q), 0.25) << "q=" << q;
    EXPECT_NEAR(fwd.quantile(q), interleaved.quantile(q), 0.25) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// normal_quantile.
// ---------------------------------------------------------------------------

// Differential check of the selection-based quantile() against the sorting
// quantile_sorted() ground truth, on duplicate-heavy inputs. Duplicates are
// the adversarial case for nth_element-based selection: the lower order
// statistic sits inside a run of equal values and the "upper" statistic is
// the min of an unordered tail full of the same value — any off-by-one in
// the partition logic shows up as a non-bitwise result here.
TEST(Quantiles, SelectionMatchesSortOnDuplicateHeavyInputs) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    // Few distinct values, many repeats (HDratio-like atoms at 0 and 1).
    const int distinct = 1 + static_cast<int>(rng.uniform_int(1, 5));
    std::vector<double> atoms;
    for (int i = 0; i < distinct; ++i) atoms.push_back(rng.uniform(0.0, 1.0));
    atoms.push_back(0.0);
    atoms.push_back(1.0);

    const int n = 1 + static_cast<int>(rng.uniform_int(1, 400));
    std::vector<double> values;
    values.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      values.push_back(
          atoms[static_cast<std::size_t>(rng.uniform_int(0, distinct + 1))]);
    }

    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      const double exact = quantile_sorted(sorted, q);
      const double selected = quantile(values, q);  // copies; values reusable
      EXPECT_EQ(exact, selected) << "trial=" << trial << " n=" << n << " q=" << q;
    }
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-8);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.841344746), 1.0, 1e-5);
}

// ---------------------------------------------------------------------------
// Median confidence intervals.
// ---------------------------------------------------------------------------

TEST(MedianCi, ContainsSampleMedian) {
  Rng rng(11);
  std::vector<double> xs, scratch;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal(50, 10));
  const auto ci = median_confidence_interval(xs, scratch);
  EXPECT_LE(ci.lower, ci.estimate);
  EXPECT_GE(ci.upper, ci.estimate);
  EXPECT_NEAR(ci.estimate, 50.0, 2.0);
}

TEST(MedianCi, CoverageNearNominal) {
  // Monte Carlo: the 95% CI should contain the true median (= 0 for a
  // standard normal) in roughly 95% of trials.
  Rng rng(17);
  int covered = 0;
  const int trials = 400;
  std::vector<double> scratch;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs;
    for (int i = 0; i < 81; ++i) xs.push_back(rng.normal(0, 1));
    const auto ci = median_confidence_interval(xs, scratch, 0.95);
    if (ci.contains(0.0)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_GE(coverage, 0.90);
  EXPECT_LE(coverage, 0.995);
}

TEST(MedianCi, WidthShrinksWithSampleSize) {
  Rng rng(23);
  std::vector<double> scratch;
  auto make = [&](int n) {
    std::vector<double> xs;
    for (int i = 0; i < n; ++i) xs.push_back(rng.normal(0, 1));
    return median_confidence_interval(xs, scratch).width();
  };
  EXPECT_GT(make(50), make(5000));
}

TEST(MedianCi, SketchAgreesWithExact) {
  Rng rng(31);
  std::vector<double> xs, scratch;
  TDigest d;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.lognormal(2, 0.5);
    xs.push_back(v);
    d.add(v);
  }
  const auto exact = median_confidence_interval(xs, scratch);
  const auto sketch = median_confidence_interval(d);
  EXPECT_NEAR(sketch.estimate, exact.estimate, 0.05 * exact.estimate);
  EXPECT_NEAR(sketch.lower, exact.lower, 0.1 * exact.estimate);
  EXPECT_NEAR(sketch.upper, exact.upper, 0.1 * exact.estimate);
}

TEST(MedianDifference, DetectsShift) {
  Rng rng(41);
  std::vector<double> a, b, scratch;
  for (int i = 0; i < 300; ++i) {
    a.push_back(rng.normal(60, 5));
    b.push_back(rng.normal(50, 5));
  }
  const auto ci = median_difference_interval(a, b, scratch);
  EXPECT_NEAR(ci.estimate, 10.0, 2.0);
  EXPECT_GT(ci.lower, 5.0);  // clearly positive
}

TEST(MedianDifference, NoFalseShiftOnEqualDistributions) {
  Rng rng(43);
  int false_positive = 0;
  const int trials = 200;
  std::vector<double> scratch;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> a, b;
    for (int i = 0; i < 100; ++i) {
      a.push_back(rng.normal(50, 5));
      b.push_back(rng.normal(50, 5));
    }
    const auto ci = median_difference_interval(a, b, scratch);
    if (!ci.contains(0.0)) ++false_positive;
  }
  EXPECT_LE(false_positive, trials / 10);  // ~5% nominal
}

TEST(MedianCi, SelectionMatchesFullSortBitwise) {
  // The nth_element-based selector must reproduce the full-sort reference
  // computation exactly — same order statistics, same interpolation — so
  // every CI is bitwise identical to the pre-selection implementation.
  Rng rng(53);
  std::vector<double> scratch;
  for (const int n : {5, 6, 7, 30, 81, 500, 4097}) {
    std::vector<double> xs;
    for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(1, 0.8));
    // duplicate-heavy variant exercises equal-element partitions too
    for (int i = 0; i < n / 3; ++i) xs[static_cast<std::size_t>(i)] = 7.25;
    for (const double alpha : {0.5, 0.8, 0.95, 0.999}) {
      // Reference: full sort + interpolated order statistics.
      std::vector<double> sorted = xs;
      std::sort(sorted.begin(), sorted.end());
      const double z = normal_quantile(0.5 + alpha / 2.0);
      const double half_width = z * std::sqrt(static_cast<double>(n)) / 2.0;
      const double lo_pos =
          std::max(1.0, static_cast<double>(n) / 2.0 - half_width) - 1.0;
      const double hi_pos =
          std::min(static_cast<double>(n),
                   static_cast<double>(n) / 2.0 + half_width + 1.0) - 1.0;
      auto at = [&](double pos) {
        pos = std::clamp(pos, 0.0, static_cast<double>(n - 1));
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
      };
      const auto ci = median_confidence_interval(xs, scratch, alpha);
      EXPECT_EQ(ci.estimate, at(0.5 * (n - 1)));
      EXPECT_EQ(ci.lower, at(lo_pos));
      EXPECT_EQ(ci.upper, at(hi_pos));
    }
  }
}

TEST(MedianDifference, SketchDetectsShiftToo) {
  Rng rng(47);
  TDigest a, b;
  for (int i = 0; i < 2000; ++i) {
    a.add(rng.normal(0.060, 0.005));
    b.add(rng.normal(0.050, 0.005));
  }
  const auto ci = median_difference_interval(a, b);
  EXPECT_GT(ci.lower, 0.005);  // >= 5 ms improvement, confidently
}

// ---------------------------------------------------------------------------
// WeightedCdf.
// ---------------------------------------------------------------------------

TEST(WeightedCdf, FractionsAndQuantiles) {
  WeightedCdf cdf;
  cdf.add(1.0, 1.0);
  cdf.add(2.0, 1.0);
  cdf.add(3.0, 2.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 3.0);
}

TEST(WeightedCdf, MergeEqualsCombinedExactly) {
  // WeightedCdf::merge appends raw points, so merge-of-parts is *exactly*
  // the single-pass distribution — the property the runtime reducer
  // relies on for byte-identical bench output at any thread count.
  Rng rng(59);
  WeightedCdf parts[3], combined;
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.lognormal(0, 1);
    const double w = rng.uniform(0.5, 2.0);
    parts[i % 3].add(v, w);
    combined.add(v, w);
  }
  WeightedCdf merged;
  for (const auto& p : parts) merged.merge(p);
  EXPECT_EQ(merged.size(), combined.size());
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.quantile(q), combined.quantile(q));
  }
  EXPECT_DOUBLE_EQ(merged.fraction_at_or_below(1.0),
                   combined.fraction_at_or_below(1.0));
}

TEST(WeightedCdf, SeriesIsMonotone) {
  Rng rng(53);
  WeightedCdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(rng.lognormal(0, 1), rng.uniform(0.5, 2));
  double prev = -1e300;
  for (const auto& [v, q] : cdf.series(25)) {
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace fbedge
