// Differential property test for the columnar session pipeline
// (sampler/session_batch.h): randomized user groups run through the legacy
// per-session path (generate_group -> coalesce_session_into -> HdEvaluator)
// and the batched path (generate_group_batched -> coalesce_batch ->
// evaluate_hd_batch) must produce *bitwise-identical* aggregations — same
// windows, same route cells, same t-digest centroids, same rollups. This is
// the invariant the analysis layer relies on when it swaps between the two
// ingest paths (faulty runs stay scalar, clean runs go columnar).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "agg/aggregation.h"
#include "agg/rollup.h"
#include "goodput/hdratio.h"
#include "sampler/coalescer.h"
#include "sampler/sampler.h"
#include "sampler/session_batch.h"
#include "workload/generator.h"
#include "workload/world.h"

namespace fbedge {
namespace {

WorldConfig small_world() {
  WorldConfig wc;
  wc.seed = 2019;
  wc.groups_per_continent = 2;
  wc.days = 2;
  return wc;
}

DatasetConfig small_dataset() {
  DatasetConfig dc;
  dc.seed = 2019;
  dc.days = 2;
  dc.session_scale = 0.2;
  return dc;
}

/// Legacy scalar ingest: one session at a time, exactly as the pre-batching
/// analysis loop did it (hosting filter, coalesce, HD-evaluate, aggregate).
GroupSeries ingest_scalar(const DatasetGenerator& generator,
                          const UserGroupProfile& group, GoodputConfig goodput) {
  GroupSeries series;
  series.continent = group.continent;
  CoalescedSession coalesced;
  HdEvaluator eval(goodput);
  generator.generate_group(group, [&](const SessionSample& s) {
    if (s.client.hosting_provider) return;
    coalesce_session_into(s.writes, s.min_rtt, coalesced);
    eval.reset();
    for (const auto& txn : coalesced.txns) eval.evaluate(txn);
    series.windows[window_index(s.established_at)]
        .route(s.route_index)
        .add_session(s.min_rtt, eval.result().hdratio(), s.total_bytes);
  });
  return series;
}

/// Columnar ingest: whole windows at a time through the batch kernels, with
/// hosting rows masked out of coalescing (they coalesce to zero txns).
GroupSeries ingest_batched(const DatasetGenerator& generator,
                           const UserGroupProfile& group, GoodputConfig goodput) {
  GroupSeries series;
  series.continent = group.continent;
  SessionBatch batch;
  CoalescedBatch coalesced;
  std::vector<SessionHd> hd;
  generator.generate_group_batched(group, batch, [&](int, const SessionBatch& b) {
    coalesce_batch(b, b.hosting.data(), coalesced);
    const std::size_t rows = b.size();
    hd.resize(rows);
    evaluate_hd_batch(coalesced.txns.data(), coalesced.offset.data(),
                      coalesced.count.data(), rows, hd.data(), goodput);
    for (std::size_t i = 0; i < rows; ++i) {
      if (b.hosting[i] != 0) continue;
      series.windows[window_index(b.established_at[i])]
          .route(b.route_index[i])
          .add_session(b.min_rtt[i], hd[i].hdratio(), b.total_bytes[i]);
    }
  });
  return series;
}

/// Bitwise comparison of two t-digests fed by the same add() sequence:
/// identical adds imply identical compress boundaries, so every centroid
/// must match exactly — EXPECT_EQ on doubles, not EXPECT_NEAR.
void expect_digests_identical(const TDigest& a, const TDigest& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.total_weight(), b.total_weight());
  if (a.count() > 0) {
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
  }
  const auto& ca = a.centroids();
  const auto& cb = b.centroids();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].mean, cb[i].mean) << "centroid " << i;
    EXPECT_EQ(ca[i].weight, cb[i].weight) << "centroid " << i;
  }
}

void expect_window_maps_identical(const WindowMap& a, const WindowMap& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    ASSERT_EQ(ia->first, ib->first) << "window index mismatch";
    const auto& ra = ia->second.routes;
    const auto& rb = ib->second.routes;
    ASSERT_EQ(ra.size(), rb.size()) << "window " << ia->first;
    for (std::size_t r = 0; r < ra.size(); ++r) {
      EXPECT_EQ(ra[r].sessions(), rb[r].sessions());
      EXPECT_EQ(ra[r].hd_sessions(), rb[r].hd_sessions());
      EXPECT_EQ(ra[r].traffic(), rb[r].traffic());
      expect_digests_identical(ra[r].minrtt_digest(), rb[r].minrtt_digest());
      expect_digests_identical(ra[r].hdratio_digest(), rb[r].hdratio_digest());
    }
  }
}

TEST(SessionBatch, BatchedIngestMatchesScalarBitwise) {
  const World world = build_world(small_world());
  const DatasetGenerator generator(world, small_dataset());
  const GoodputConfig goodput;
  ASSERT_FALSE(world.groups.empty());

  // One shared batch arena across every group, like the analysis loop —
  // this also checks that clear() fully resets state between groups.
  for (const auto& group : world.groups) {
    const GroupSeries scalar = ingest_scalar(generator, group, goodput);
    const GroupSeries batched = ingest_batched(generator, group, goodput);
    expect_window_maps_identical(scalar.windows, batched.windows);
    EXPECT_EQ(scalar.total_traffic(), batched.total_traffic());

    // The equivalence must survive rollup: merged sketches are a pure
    // function of the cells, so rolled windows must match bitwise too.
    WindowRollup roll_scalar(/*factor=*/4);
    WindowRollup roll_batched(/*factor=*/4);
    roll_scalar.add_series(scalar);
    roll_batched.add_series(batched);
    expect_window_maps_identical(roll_scalar.windows(), roll_batched.windows());
  }
}

TEST(SessionBatch, RowProtocolAccumulatesWritesAndClears) {
  SessionBatch batch;
  batch.begin_row(SessionId{1}, /*at=*/10.0, /*route=*/0, /*ip=*/0x0a000001,
                  /*hosting_provider=*/false, HttpVersion::kHttp2,
                  EndpointClass::kDynamic, /*num_txns=*/2);
  ResponseWrite w;
  w.bytes = 1000;
  batch.add_write(w);
  w.bytes = 500;
  batch.add_write(w);
  batch.finish_row(/*dur=*/1.5, /*busy=*/0.5, /*rtt=*/0.03);

  batch.begin_row(SessionId{2}, /*at=*/11.0, /*route=*/1, /*ip=*/0x0a000002,
                  /*hosting_provider=*/true, HttpVersion::kHttp1_1,
                  EndpointClass::kMedia, /*num_txns=*/0);
  batch.finish_row(/*dur=*/0.2, /*busy=*/0.0, /*rtt=*/0.08);

  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.total_bytes[0], 1500);
  EXPECT_EQ(batch.total_bytes[1], 0);
  EXPECT_EQ(batch.write_offset[0], 0u);
  EXPECT_EQ(batch.write_count[0], 2u);
  EXPECT_EQ(batch.write_offset[1], 2u);
  EXPECT_EQ(batch.write_count[1], 0u);
  EXPECT_EQ(batch.hosting[0], 0);
  EXPECT_NE(batch.hosting[1], 0);

  const std::size_t arena_before = batch.arena_bytes();
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.size(), 0u);
  // clear() must keep the arena: capacity is the whole point of reuse.
  EXPECT_EQ(batch.arena_bytes(), arena_before);
}

}  // namespace
}  // namespace fbedge
